#!/usr/bin/env bash
# Golden-regen round-trip guard: regenerate the nn/ golden numerics
# (DIFFTUNE_REGEN_GOLDEN=1) into a temp file and require it to be
# byte-identical to the committed tests/golden/nn_numerics.txt. A
# numerics change that forgot to regen — or a regen that drifted from
# the committed file — fails here instead of hiding until the next
# deliberate regen.
#
# Usage: golden_regen_check.sh <test_nn_golden binary> <committed txt>
#
# Run by the golden.regen_roundtrip CTest entry.
set -Eeuo pipefail

BIN=${1:?usage: golden_regen_check.sh <test_nn_golden> <golden.txt>}
GOLDEN=${2:?usage: golden_regen_check.sh <test_nn_golden> <golden.txt>}

STEP="startup"
step() { STEP="$*"; echo "== $STEP"; }
on_err() {
    echo "FAIL: step '$STEP' failed at line $1 (exit $2)" >&2
}
trap 'on_err "$LINENO" "$?"' ERR

OUT=$(mktemp)
cleanup() { rm -f "$OUT"; }
trap cleanup EXIT

step "regenerate golden numerics into $OUT"
DIFFTUNE_REGEN_GOLDEN=1 DIFFTUNE_GOLDEN_OUT="$OUT" "$BIN" \
    --gtest_filter='NnGolden.MatchesCommittedNumericsBitExactly' \
    > /dev/null

step "regenerated file must be byte-identical to $GOLDEN"
if ! cmp -s "$GOLDEN" "$OUT"; then
    echo "FAIL: regenerated golden differs from the committed file"
    diff -u "$GOLDEN" "$OUT" | head -20 || true
    echo "(the nn/ numerics changed without a deliberate regen, or"
    echo " the committed golden is stale)"
    exit 1
fi

echo "golden regen round-trip OK"
