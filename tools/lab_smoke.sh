#!/usr/bin/env bash
# End-to-end smoke for the traffic lab (docs/TRAFFIC_LAB.md):
#
#   1. save-tiny a checkpoint; generate a Zipf trace twice and
#      require the two trace files to be byte-identical (the
#      deterministic-generation contract)
#   2. sweep the trace through every registered cache policy
#   3. replay the trace locally for every policy x pool size in
#      {lru, slru, tinylfu} x {1, 2, 4} with --check: every reply
#      must be bit-exact against the engine's uncached reference,
#      so pool size and policy provably change only speed
#   4. serve the checkpoint through a pool-served difftuned
#      (--dispatchers 2), replay the trace against it over the wire
#      (self-consistency audit), and difftune_compare check the
#      daemon against a checkpoint-built .preds artifact (exit 0 =
#      every block bit-exact across the process boundary)
#   5. SIGTERM the daemon and require a graceful-drain exit 0
#
# Usage: lab_smoke.sh <difftuned> <difftune_lab> <difftune_compare>
#
# Run by the examples.lab_smoke CTest entry and the lab-smoke CI job.
set -Eeuo pipefail

DIFFTUNED=${1:?usage: lab_smoke.sh <difftuned> <difftune_lab> \
<difftune_compare>}
LAB=${2:?usage: lab_smoke.sh <difftuned> <difftune_lab> \
<difftune_compare>}
COMPARE=${3:?usage: lab_smoke.sh <difftuned> <difftune_lab> \
<difftune_compare>}
WORKDIR=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Every failure names the step it happened in: an unbound variable
# or a failing command mid-script must never exit behind the last
# banner's misleading "OK"-looking output.
STEP="startup"
step() { STEP="$*"; echo "== $STEP"; }
on_err() {
    echo "FAIL: step '$STEP' failed at line $1 (exit $2)" >&2
}
trap 'on_err "$LINENO" "$?"' ERR

GEN_ARGS=(--seed 3 --corpus 64 --requests 600 --zipf 1.1 \
    --respell 0.3)

step "save-tiny checkpoint"
"$DIFFTUNED" save-tiny "$WORKDIR/m.ckpt" 5

step "gen twice: same knobs must be byte-identical"
"$LAB" gen "$WORKDIR/a.trace" "${GEN_ARGS[@]}"
"$LAB" gen "$WORKDIR/b.trace" "${GEN_ARGS[@]}"
cmp "$WORKDIR/a.trace" "$WORKDIR/b.trace" ||
    { echo "FAIL: same-seed traces differ"; exit 1; }

step "policy sweep"
"$LAB" sweep "$WORKDIR/a.trace" --capacity 16

step "replay matrix: policy x pool, bit-exact vs uncached reference"
# --check exits 1 if any reply differs from predictUncached, so an
# exit 0 over the full matrix asserts the acceptance bit-stability:
# every policy and every pool size in {1, 2, 4} serves the same bits.
for policy in lru slru tinylfu; do
    for pool in 1 2 4; do
        echo "   policy=$policy pool=$pool"
        "$LAB" replay "$WORKDIR/a.trace" --ckpt "$WORKDIR/m.ckpt" \
            --policy "$policy" --dispatchers "$pool" \
            --capacity 16 --check
    done
done

step "start pool-served difftuned (--dispatchers 2, ephemeral port)"
"$DIFFTUNED" serve default="$WORKDIR/m.ckpt" --dispatchers 2 \
    --port 0 --port-file "$WORKDIR/port.txt" &
DAEMON_PID=$!

# The port file is written only once the socket is live.
for _ in $(seq 1 100); do
    [ -s "$WORKDIR/port.txt" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null ||
        { echo "FAIL: daemon died before listening"; exit 1; }
    sleep 0.1
done
[ -s "$WORKDIR/port.txt" ] ||
    { echo "FAIL: no port file after 10s"; exit 1; }
PORT=$(cat "$WORKDIR/port.txt")
echo "   port $PORT"

step "replay the trace against the pool-served daemon"
"$LAB" replay "$WORKDIR/a.trace" --daemon "$PORT"

step "compare: checkpoint .preds vs pool-served daemon must exit 0"
"$COMPARE" snapshot "$WORKDIR/ref.preds" --ckpt "$WORKDIR/m.ckpt"
"$COMPARE" check "$WORKDIR/ref.preds" --daemon "$PORT" > /dev/null

step "SIGTERM: graceful drain must exit 0"
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
DAEMON_PID=""
if [ "$DRAIN_RC" -ne 0 ]; then
    echo "FAIL: difftuned exited $DRAIN_RC after SIGTERM"
    exit 1
fi

echo "lab smoke OK"
