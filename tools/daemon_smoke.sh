#!/usr/bin/env bash
# End-to-end smoke for the difftuned serving daemon:
#
#   1. save-tiny two checkpoints with different seeds (untrained —
#      milliseconds — but deterministic and distinct)
#   2. start difftuned on an ephemeral loopback port
#   3. drive a few hundred requests from concurrent client threads,
#      hot-swapping the model mid-run, and audit the daemon's own
#      /statsz over the wire (zero daemon errors, every engine's
#      requests == hits + misses)
#   4. SIGTERM the daemon and require a clean graceful-drain exit 0
#
# Usage: daemon_smoke.sh <path-to-difftuned-binary>
#
# Run by the daemon.smoke CTest entry and the daemon-smoke CI job.
set -Eeuo pipefail

DIFFTUNED=${1:?usage: daemon_smoke.sh <difftuned binary>}
WORKDIR=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# Every failure names the step it happened in: an unbound variable
# or a failing command mid-script must never exit behind the last
# banner's misleading "OK"-looking output.
STEP="startup"
step() { STEP="$*"; echo "== $STEP"; }
on_err() {
    echo "FAIL: step '$STEP' failed at line $1 (exit $2)" >&2
}
trap 'on_err "$LINENO" "$?"' ERR

step "save-tiny checkpoints"
"$DIFFTUNED" save-tiny "$WORKDIR/a.ckpt" 5
"$DIFFTUNED" save-tiny "$WORKDIR/b.ckpt" 9

step "start difftuned (ephemeral port)"
"$DIFFTUNED" serve default="$WORKDIR/a.ckpt" \
    --port 0 --port-file "$WORKDIR/port.txt" &
DAEMON_PID=$!

# The port file is written only once the socket is live.
for _ in $(seq 1 100); do
    [ -s "$WORKDIR/port.txt" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null ||
        { echo "FAIL: daemon died before listening"; exit 1; }
    sleep 0.1
done
[ -s "$WORKDIR/port.txt" ] ||
    { echo "FAIL: no port file after 10s"; exit 1; }
PORT=$(cat "$WORKDIR/port.txt")
echo "   port $PORT"

step "client: 400 requests, 4 threads, hot-swap mid-run, audit"
# --check fails the client (exit 1) on any request error or if the
# daemon's /statsz counters do not reconcile.
"$DIFFTUNED" client "$PORT" --requests 400 --threads 4 \
    --swap default="$WORKDIR/b.ckpt" --check

step "SIGTERM: graceful drain must exit 0"
kill -TERM "$DAEMON_PID"
DRAIN_RC=0
wait "$DAEMON_PID" || DRAIN_RC=$?
DAEMON_PID=""
if [ "$DRAIN_RC" -ne 0 ]; then
    echo "FAIL: difftuned exited $DRAIN_RC after SIGTERM"
    exit 1
fi

echo "daemon smoke OK"
