#!/usr/bin/env bash
# End-to-end smoke for the difftune compare harness
# (docs/COMPARE.md):
#
#   1. save-tiny a checkpoint and snapshot it over the default
#      deterministic corpus into a .preds artifact
#   2. self-compare: compare(A, A) must exit 0 with every block
#      bit-exact, and `check` of the artifact against the same
#      checkpoint must exit 0 on both dispatch paths (AVX2 if the
#      host has it, and DIFFTUNE_FORCE_SCALAR=1)
#   3. perturb exactly one weight — one opcode's embedding row, via
#      the perturb test hook — snapshot again, and require compare
#      to exit 2 naming exactly the blocks that contain that opcode
#      (computed independently from the artifact's own dump), and
#      only those
#
# Usage: compare_smoke.sh <difftuned binary> <difftune_compare binary>
#
# Run by the examples.compare_smoke CTest entry and the
# compare-check CI job.
set -Eeuo pipefail

DIFFTUNED=${1:?usage: compare_smoke.sh <difftuned> <difftune_compare>}
COMPARE=${2:?usage: compare_smoke.sh <difftuned> <difftune_compare>}
WORKDIR=$(mktemp -d)
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

# Every failure names the step it happened in: an unbound variable
# or a failing command mid-script must never exit behind the last
# banner's misleading "OK"-looking output.
STEP="startup"
step() { STEP="$*"; echo "== $STEP"; }
on_err() {
    echo "FAIL: step '$STEP' failed at line $1 (exit $2)" >&2
}
trap 'on_err "$LINENO" "$?"' ERR

# A large delta pushes every affected block past the 1e-5 gate, so
# the expected classification of an affected block is exactly
# "diverged" (a tiny delta could leave some within-tolerance).
OPCODE="TEST64rr"
DELTA=8

step "save-tiny checkpoint + snapshot"
"$DIFFTUNED" save-tiny "$WORKDIR/ref.ckpt" 5
"$COMPARE" snapshot "$WORKDIR/a.preds" --ckpt "$WORKDIR/ref.ckpt"

step "self-compare must exit 0, all bit-exact"
"$COMPARE" compare "$WORKDIR/a.preds" "$WORKDIR/a.preds" \
    > "$WORKDIR/self.out"
grep -q "within-tolerance 0 diverged 0 only-in-a 0 only-in-b 0" \
    "$WORKDIR/self.out" ||
    { echo "FAIL: self-compare not 100% bit-exact"; exit 1; }

step "check against the source checkpoint must exit 0 (native)"
"$COMPARE" check "$WORKDIR/a.preds" --ckpt "$WORKDIR/ref.ckpt" \
    > /dev/null

step "check must exit 0 under DIFFTUNE_FORCE_SCALAR=1"
DIFFTUNE_FORCE_SCALAR=1 "$COMPARE" check "$WORKDIR/a.preds" \
    --ckpt "$WORKDIR/ref.ckpt" > /dev/null

step "perturb one embedding weight ($OPCODE, delta $DELTA)"
"$COMPARE" perturb "$WORKDIR/ref.ckpt" "$WORKDIR/pert.ckpt" \
    --opcode "$OPCODE" --delta "$DELTA"
"$COMPARE" snapshot "$WORKDIR/b.preds" --ckpt "$WORKDIR/pert.ckpt"

step "compare must exit 2 against the perturbed snapshot"
RC=0
"$COMPARE" compare "$WORKDIR/a.preds" "$WORKDIR/b.preds" \
    > "$WORKDIR/diff.out" || RC=$?
if [ "$RC" -ne 2 ]; then
    cat "$WORKDIR/diff.out"
    echo "FAIL: compare exited $RC, want 2"
    exit 1
fi

step "diverged set must be exactly the $OPCODE blocks"
# Expected: the artifact's own dump says which blocks contain the
# perturbed opcode — independent of the comparator's classification.
"$COMPARE" dump "$WORKDIR/a.preds" |
    awk -F'\t' -v op="$OPCODE" \
        '$3 ~ ("(^|,)" op "(,|$)") { print $1 }' |
    sort -n > "$WORKDIR/expected.txt"
# Actual: every non-bit-exact block the report names. Perturbing one
# weight must not reclassify anything as within-tolerance or missing
# either, so all diff lines must say "diverged".
grep "^diff" "$WORKDIR/diff.out" > "$WORKDIR/difflines.txt"
if grep -qv "^diff diverged " "$WORKDIR/difflines.txt"; then
    cat "$WORKDIR/difflines.txt"
    echo "FAIL: non-diverged diff classes in a one-weight perturb"
    exit 1
fi
sed -n 's/^diff diverged #\([0-9]*\).*/\1/p' "$WORKDIR/difflines.txt" |
    sort -n > "$WORKDIR/actual.txt"
[ -s "$WORKDIR/expected.txt" ] ||
    { echo "FAIL: corpus has no $OPCODE blocks"; exit 1; }
if ! cmp -s "$WORKDIR/expected.txt" "$WORKDIR/actual.txt"; then
    echo "FAIL: diverged set != blocks containing $OPCODE"
    echo "expected: $(tr '\n' ' ' < "$WORKDIR/expected.txt")"
    echo "actual:   $(tr '\n' ' ' < "$WORKDIR/actual.txt")"
    exit 1
fi
echo "   $(wc -l < "$WORKDIR/actual.txt") blocks diverged, as expected"

echo "compare smoke OK"
