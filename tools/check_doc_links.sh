#!/usr/bin/env bash
# Fail on dead relative links in docs/**.md and README.md.
#
# Checks every inline markdown link [text](target) whose target is
# not an absolute URL or a pure fragment: the referenced file (or
# directory) must exist relative to the linking file. Fragments and
# markdown link titles ("...") are stripped before the existence
# check; paths with spaces are handled.
#
# Usage: check_doc_links.sh [repo-root]   (default: cwd)
set -u
root="${1:-.}"
cd "$root" || exit 2

fail=0
checked=0
found_any=0
while IFS= read -r file; do
    [ -n "$file" ] || continue
    found_any=1
    dir=$(dirname "$file")
    # Inline links only; reference-style links are not used here.
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"        # strip fragment
        path="${path%% \"*}"        # strip markdown title
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "dead link in $file: ($target)"
            fail=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$file" \
        | sed 's/^\[[^]]*\](//; s/)$//')
done < <(find docs -name '*.md' 2>/dev/null; ls README.md 2>/dev/null)

[ "$found_any" = 1 ] || { echo "docs-check: no markdown found"; exit 2; }
echo "docs-check: $checked relative links checked"
exit $fail
