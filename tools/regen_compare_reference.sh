#!/usr/bin/env bash
# Regenerate the committed compare reference artifact
# (tests/golden/compare_reference.preds): the save-tiny seed-5
# checkpoint snapshotted over the default deterministic corpus.
# Run this only after a *deliberate* numerics change — the whole
# point of the artifact is that accidental drift fails
# Reference.CommittedArtifactMatchesHead and the compare-check CI
# job (docs/COMPARE.md).
#
# Usage: regen_compare_reference.sh <difftuned> <difftune_compare> \
#            [out.preds]
set -Eeuo pipefail

DIFFTUNED=${1:?usage: regen_compare_reference.sh <difftuned> \
<difftune_compare> [out.preds]}
COMPARE=${2:?usage: regen_compare_reference.sh <difftuned> \
<difftune_compare> [out.preds]}
OUT=${3:-$(dirname "$0")/../tests/golden/compare_reference.preds}

# The snapshot runs from a temp dir; resolve everything first.
DIFFTUNED=$(readlink -f "$DIFFTUNED")
COMPARE=$(readlink -f "$COMPARE")
OUT=$(readlink -f "$(dirname "$OUT")")/$(basename "$OUT")

WORKDIR=$(mktemp -d)
cleanup() { rm -rf "$WORKDIR"; }
trap cleanup EXIT

# Run save-tiny from the temp dir so the artifact's recorded engine
# source is the bare "ref.ckpt", not a throwaway absolute path.
(
    cd "$WORKDIR"
    "$DIFFTUNED" save-tiny ref.ckpt 5
    "$COMPARE" snapshot ref.preds --ckpt ref.ckpt
)
mv "$WORKDIR/ref.preds" "$OUT"
echo "regenerated $OUT"
