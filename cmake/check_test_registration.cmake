cmake_minimum_required(VERSION 3.25)

# Run as a CTest check:
#   cmake -DTESTS_DIR=<dir> -DREGISTERED=<list> -P check_test_registration.cmake
#
# Fails when a tests/test_*.cc file exists on disk that is not in the
# DIFFTUNE_TEST_SUITES list, or when the list names a suite whose
# source file is gone — either way CTest would silently diverge from
# the tree.

file(GLOB _suite_files RELATIVE "${TESTS_DIR}" "${TESTS_DIR}/test_*.cc")

set(_on_disk "")
foreach(_file IN LISTS _suite_files)
    string(REPLACE ".cc" "" _suite "${_file}")
    list(APPEND _on_disk "${_suite}")
endforeach()

set(_errors "")
foreach(_suite IN LISTS _on_disk)
    if(NOT _suite IN_LIST REGISTERED)
        list(APPEND _errors
            "tests/${_suite}.cc is not registered in tests/CMakeLists.txt")
    endif()
endforeach()
foreach(_suite IN LISTS REGISTERED)
    if(NOT _suite IN_LIST _on_disk)
        list(APPEND _errors
            "${_suite} is registered but tests/${_suite}.cc does not exist")
    endif()
endforeach()

if(_errors)
    list(JOIN _errors "\n  " _message)
    message(FATAL_ERROR "orphaned test suites:\n  ${_message}")
endif()

list(LENGTH _on_disk _count)
message(STATUS "all ${_count} test suites registered with CTest")
