/**
 * @file
 * USim: an llvm_sim-style micro-op-level simulator (Appendix A).
 *
 * USim differs from XMca in the two ways llvm_sim differs from
 * llvm-mca: it models the frontend (instructions are fetched and
 * decoded into micro-ops at a fixed bandwidth before renaming), and
 * it simulates micro-ops individually — each micro-op is dispatched
 * to the execution port its PortMap names and executes there for one
 * cycle — rather than treating the instruction as the scheduling
 * unit. Registers are renamed with an unlimited physical register
 * file, so the only structural backpressure is the frontend and the
 * ports. Instructions retire in program order once all of their
 * micro-ops have executed.
 *
 * Following Table VII, USim reads only WriteLatency and PortMap from
 * the parameter table: an instruction's micro-op count is the sum of
 * its PortMap entries (the number of micro-ops dispatched to each
 * port), and its results become readable WriteLatency cycles after
 * its first micro-op issues.
 */

#ifndef DIFFTUNE_USIM_USIM_HH
#define DIFFTUNE_USIM_USIM_HH

#include "params/simulator.hh"

namespace difftune::usim
{

/** llvm_sim-analog micro-op simulator. */
class USim : public params::Simulator
{
  public:
    /**
     * @param iterations block repetitions per run (paper: 100)
     * @param fetch_width micro-ops decoded per cycle (fixed, not a
     *        learned parameter — llvm_sim reads it from its own
     *        frontend model)
     */
    explicit USim(int iterations = 100, int fetch_width = 4)
        : iterations_(iterations), fetchWidth_(fetch_width)
    {
    }

    double timing(const isa::BasicBlock &block,
                  const params::ParamTable &table) const override;

    std::string name() const override { return "usim"; }
    int iterations() const override { return iterations_; }

  private:
    int iterations_;
    int fetchWidth_;
};

} // namespace difftune::usim

#endif // DIFFTUNE_USIM_USIM_HH
