/**
 * @file
 * USim implementation.
 */

#include "usim/usim.hh"

#include <algorithm>
#include <array>

#include "base/interval_schedule.hh"

namespace difftune::usim
{

double
USim::timing(const isa::BasicBlock &block,
             const params::ParamTable &table) const
{
    if (block.empty())
        return 0.0;

    std::array<int64_t, isa::numRegs> reg_ready{};
    PortSchedule ports(params::numPorts);

    int64_t fetch_cycle = 0;
    int fetch_left = fetchWidth_;
    int64_t retire_frontier = 0;
    int64_t max_retire = 1;

    for (int iter = 0; iter < iterations_; ++iter) {
        if ((iter & 0xf) == 0)
            ports.prune(fetch_cycle);
        for (const auto &inst : block.insts) {
            const auto &op = inst.info();

            // ---- Frontend: decode the instruction's micro-ops at
            // fetchWidth_ per cycle. The micro-op count is the sum of
            // the PortMap (Table VII's semantics).
            int uops = 0;
            for (int p = 0; p < params::numPorts; ++p)
                uops += table.portCycles(inst.opcode, p);
            uops = std::max(1, uops);

            int remaining = uops;
            while (remaining > 0) {
                if (fetch_left == 0) {
                    ++fetch_cycle;
                    fetch_left = fetchWidth_;
                }
                const int take = std::min(remaining, fetch_left);
                remaining -= take;
                fetch_left -= take;
            }
            const int64_t decoded = fetch_cycle;

            // ---- Rename (unlimited physical registers): micro-ops
            // become dispatchable once operands are ready.
            int64_t ready = decoded;
            for (isa::RegId reg : inst.reads)
                ready = std::max(ready, reg_ready[reg]);

            // ---- Execute: each micro-op runs one cycle on its port;
            // micro-ops of one instruction issue independently.
            int64_t first_issue = -1;
            int64_t last_done = ready;
            for (int p = 0; p < params::numPorts; ++p) {
                const int count = table.portCycles(inst.opcode, p);
                for (int u = 0; u < count; ++u) {
                    const int64_t issue =
                        ports.acquireJoint({{p, 1}}, ready);
                    first_issue = first_issue < 0
                                      ? issue
                                      : std::min(first_issue, issue);
                    last_done = std::max(last_done, issue + 1);
                }
            }
            if (first_issue < 0)
                first_issue = ready; // no port usage: free micro-op

            // ---- Writeback: results readable WriteLatency cycles
            // after the instruction starts executing.
            const int latency = table.latency(inst.opcode);
            const int64_t result = first_issue + latency;
            for (isa::RegId reg : inst.writes)
                reg_ready[reg] = result;

            // ---- Retire in program order once all micro-ops done.
            const int64_t complete = std::max(result, last_done);
            retire_frontier = std::max(retire_frontier, complete);
            max_retire = std::max(max_retire, retire_frontier);
            (void)op;
        }
    }
    return double(max_retire) / double(iterations_);
}

} // namespace difftune::usim
