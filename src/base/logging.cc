/**
 * @file
 * Implementation of the logging helpers.
 */

#include "base/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace difftune
{

namespace
{
bool verboseFlag = true;
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    // Throwing (rather than exit(1)) keeps fatal() testable; main()
    // wrappers convert uncaught FatalError into exit(1).
    throw std::runtime_error("fatal: " + msg);
}

std::string
stripErrorPrefix(const std::string &msg)
{
    static const std::string prefix = "fatal: ";
    if (msg.rfind(prefix, 0) == 0)
        return msg.substr(prefix.size());
    return msg;
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::cerr << "info: " << msg << std::endl;
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

} // namespace difftune
