/**
 * @file
 * Deterministic fork-join parallel-for over index ranges.
 *
 * Work is partitioned into contiguous shards, one per worker, so that
 * the assignment of items to threads is a pure function of (n, number
 * of workers); combined with per-shard RNG forks this keeps parallel
 * runs bit-reproducible.
 */

#ifndef DIFFTUNE_BASE_PARALLEL_HH
#define DIFFTUNE_BASE_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace difftune
{

/**
 * Run @p body(begin, end, shard) over a deterministic partition of
 * [0, n) into at most @p max_workers contiguous shards. The calling
 * thread participates; shard 0 runs on the caller.
 *
 * @param n total number of items
 * @param max_workers upper bound on concurrency (<=0: use default)
 * @param body callable (size_t begin, size_t end, int shard)
 * @return the number of shards actually used
 */
int parallelShards(
    size_t n, int max_workers,
    const std::function<void(size_t, size_t, int)> &body);

/** parallelShards with per-item granularity body(i). */
void parallelFor(size_t n, int max_workers,
                 const std::function<void(size_t)> &body);

} // namespace difftune

#endif // DIFFTUNE_BASE_PARALLEL_HH
