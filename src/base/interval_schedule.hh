/**
 * @file
 * Interval-based execution-resource scheduling.
 *
 * Out-of-order cores let a younger ready instruction issue into an
 * idle execution-port cycle even when an older instruction is still
 * waiting on its operands. A simulator that walks instructions in
 * program order therefore cannot track ports as single "free after
 * cycle X" scalars — that would charge younger instructions for idle
 * windows that precede an older instruction's reservation. These
 * classes track per-unit busy *intervals* instead and satisfy
 * requests by gap-filling: a request reserves the earliest window at
 * or after its ready time that does not overlap existing
 * reservations. Because older instructions reserve first, age
 * priority is preserved.
 */

#ifndef DIFFTUNE_BASE_INTERVAL_SCHEDULE_HH
#define DIFFTUNE_BASE_INTERVAL_SCHEDULE_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace difftune
{

/** Busy-interval timeline of a single execution unit. */
class UnitSchedule
{
  public:
    /**
     * Earliest start >= @p ready where the unit is continuously free
     * for @p occupancy cycles. Does not reserve.
     */
    int64_t nextFree(int64_t ready, int occupancy) const;

    /** Reserve [start, start + occupancy). */
    void reserve(int64_t start, int occupancy);

    /** Drop intervals that end at or before @p horizon. */
    void prune(int64_t horizon);

    size_t numIntervals() const { return intervals_.size(); }

  private:
    /** Sorted, disjoint busy intervals (start, end). */
    std::vector<std::pair<int64_t, int64_t>> intervals_;
};

/** A pool of identical units (e.g. two load ports). */
class PoolSchedule
{
  public:
    explicit PoolSchedule(int units) : units_(units ? units : 1) {}

    /**
     * Reserve @p occupancy cycles on the unit that can start
     * earliest, no earlier than @p ready.
     * @return the reserved start cycle
     */
    int64_t acquire(int64_t ready, int occupancy);

    void prune(int64_t horizon);

  private:
    std::vector<UnitSchedule> units_;
};

/**
 * A set of individually-named units (XMca's 10 execution ports)
 * supporting joint acquisition: an instruction must hold all of its
 * required ports simultaneously (llvm-mca's issue rule).
 */
class PortSchedule
{
  public:
    explicit PortSchedule(int ports) : ports_(ports) {}

    /** One port requirement: (port index, occupancy cycles). */
    using Requirement = std::pair<int, int>;

    /**
     * Earliest start >= @p ready where every required port is free
     * for its occupancy; reserves all of them.
     * @return the reserved start cycle
     */
    int64_t acquireJoint(const std::vector<Requirement> &requirements,
                         int64_t ready);

    void prune(int64_t horizon);

  private:
    std::vector<UnitSchedule> ports_;
};

} // namespace difftune

#endif // DIFFTUNE_BASE_INTERVAL_SCHEDULE_HH
