/**
 * @file
 * Interval-schedule implementation.
 */

#include "base/interval_schedule.hh"

#include <algorithm>

namespace difftune
{

int64_t
UnitSchedule::nextFree(int64_t ready, int occupancy) const
{
    int64_t start = ready;
    // Intervals are sorted and disjoint; scan for the first gap that
    // fits. Starting from the first interval ending after `start`.
    for (const auto &[busy_start, busy_end] : intervals_) {
        if (busy_end <= start)
            continue;
        if (start + occupancy <= busy_start)
            return start; // fits in the gap before this interval
        start = std::max(start, busy_end);
    }
    return start;
}

void
UnitSchedule::reserve(int64_t start, int occupancy)
{
    if (occupancy <= 0)
        return;
    const std::pair<int64_t, int64_t> interval{start, start + occupancy};
    auto pos = std::lower_bound(intervals_.begin(), intervals_.end(),
                                interval);
    // Merge with neighbours when adjacent to keep the list small.
    if (pos != intervals_.begin()) {
        auto prev = pos - 1;
        if (prev->second == interval.first) {
            prev->second = interval.second;
            if (pos != intervals_.end() && pos->first == prev->second) {
                prev->second = pos->second;
                intervals_.erase(pos);
            }
            return;
        }
    }
    if (pos != intervals_.end() && pos->first == interval.second) {
        pos->first = interval.first;
        return;
    }
    intervals_.insert(pos, interval);
}

void
UnitSchedule::prune(int64_t horizon)
{
    auto keep = std::find_if(intervals_.begin(), intervals_.end(),
                             [horizon](const auto &interval) {
                                 return interval.second > horizon;
                             });
    intervals_.erase(intervals_.begin(), keep);
}

int64_t
PoolSchedule::acquire(int64_t ready, int occupancy)
{
    int best_unit = -1;
    int64_t best_start = 0;
    for (size_t u = 0; u < units_.size(); ++u) {
        const int64_t start = units_[u].nextFree(ready, occupancy);
        if (best_unit < 0 || start < best_start) {
            best_unit = int(u);
            best_start = start;
        }
    }
    units_[best_unit].reserve(best_start, occupancy);
    return best_start;
}

void
PoolSchedule::prune(int64_t horizon)
{
    for (auto &unit : units_)
        unit.prune(horizon);
}

int64_t
PortSchedule::acquireJoint(const std::vector<Requirement> &requirements,
                           int64_t ready)
{
    int64_t start = ready;
    if (requirements.empty())
        return start;
    // Fixpoint: raise `start` until every port can host its occupancy
    // at the common start cycle. Terminates because every iteration
    // strictly raises `start`, bounded by the last reservation end.
    bool stable = false;
    while (!stable) {
        stable = true;
        for (const auto &[port, occupancy] : requirements) {
            const int64_t t = ports_[port].nextFree(start, occupancy);
            if (t > start) {
                start = t;
                stable = false;
            }
        }
    }
    for (const auto &[port, occupancy] : requirements)
        ports_[port].reserve(start, occupancy);
    return start;
}

void
PortSchedule::prune(int64_t horizon)
{
    for (auto &port : ports_)
        port.prune(horizon);
}

} // namespace difftune
