/**
 * @file
 * Implementation of the fork-join helpers.
 */

#include "base/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "base/env.hh"

namespace difftune
{

namespace
{

/**
 * Set while the current thread is inside a parallel region (either
 * as a pool worker or as the caller of parallelShards). Nested
 * parallel calls from such threads run serially: a pool worker must
 * not wait on the pool, and a caller re-entering run() would
 * self-deadlock on the run mutex.
 */
thread_local bool inParallelRegion = false;

/**
 * Persistent fork-join worker pool. parallelShards() is called once
 * per minibatch during training, so thread reuse matters: spawning
 * threads per call costs more than a small batch's compute.
 */
class WorkerPool
{
  public:
    static WorkerPool &
    instance()
    {
        static WorkerPool pool(workerThreads());
        return pool;
    }

    /** Run job(shard) for shard in [1, shards); caller runs shard 0. */
    void
    run(int shards, const std::function<void(int)> &job)
    {
        // Serialize concurrent fork-joins from different caller
        // threads; shards of one job still run in parallel.
        std::lock_guard run_lock(runMutex_);
        std::unique_lock lock(mutex_);
        job_ = &job;
        pendingShards_ = shards - 1;
        remaining_ = shards - 1;
        nextShard_ = 1;
        ++generation_;
        lock.unlock();
        wake_.notify_all();

        job(0);

        std::unique_lock wait_lock(mutex_);
        done_.wait(wait_lock, [this] { return remaining_ == 0; });
        job_ = nullptr;
    }

    int size() const { return int(threads_.size()) + 1; }

  private:
    explicit WorkerPool(int workers)
    {
        const int helpers = std::max(0, workers - 1);
        threads_.reserve(helpers);
        for (int i = 0; i < helpers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &thread : threads_)
            thread.join();
    }

    void
    workerLoop()
    {
        inParallelRegion = true;
        uint64_t seen = 0;
        while (true) {
            std::unique_lock lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_ || (generation_ != seen && job_);
            });
            if (stop_)
                return;
            seen = generation_;
            while (nextShard_ <= pendingShards_) {
                const int shard = nextShard_++;
                lock.unlock();
                (*job_)(shard);
                lock.lock();
                if (--remaining_ == 0) {
                    lock.unlock();
                    done_.notify_all();
                    lock.lock();
                }
            }
        }
    }

    std::vector<std::thread> threads_;
    std::mutex runMutex_;
    std::mutex mutex_;
    std::condition_variable wake_, done_;
    const std::function<void(int)> *job_ = nullptr;
    uint64_t generation_ = 0;
    int pendingShards_ = 0;
    int nextShard_ = 1;
    int remaining_ = 0;
    bool stop_ = false;
};

} // namespace

int
parallelShards(size_t n, int max_workers,
               const std::function<void(size_t, size_t, int)> &body)
{
    if (n == 0)
        return 0;
    int workers = max_workers > 0 ? max_workers : workerThreads();
    workers = int(std::min<size_t>(workers, n));
    // Nested parallelism runs serially in the caller (see
    // inParallelRegion above).
    if (workers <= 1 || inParallelRegion) {
        body(0, n, 0);
        return 1;
    }

    WorkerPool &pool = WorkerPool::instance();
    workers = std::min(workers, pool.size());
    const size_t chunk = (n + workers - 1) / workers;
    const int shards = int((n + chunk - 1) / chunk);
    std::function<void(int)> job = [&body, chunk, n](int shard) {
        const size_t begin = size_t(shard) * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin < end)
            body(begin, end, shard);
    };
    inParallelRegion = true;
    pool.run(shards, job);
    inParallelRegion = false;
    return shards;
}

void
parallelFor(size_t n, int max_workers,
            const std::function<void(size_t)> &body)
{
    parallelShards(n, max_workers,
                   [&body](size_t begin, size_t end, int) {
                       for (size_t i = begin; i < end; ++i)
                           body(i);
                   });
}

} // namespace difftune
