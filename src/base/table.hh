/**
 * @file
 * Fixed-width text-table rendering for benchmark output.
 *
 * Every bench binary prints its reproduction of a paper table with
 * this helper so the output format is uniform and diffable.
 */

#ifndef DIFFTUNE_BASE_TABLE_HH
#define DIFFTUNE_BASE_TABLE_HH

#include <string>
#include <vector>

namespace difftune
{

/** A simple left-aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render to a string, including a trailing newline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double value, int decimals = 2);

/** Format a fraction as a percentage string, e.g. 0.254 -> "25.4%". */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace difftune

#endif // DIFFTUNE_BASE_TABLE_HH
