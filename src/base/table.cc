/**
 * @file
 * Implementation of text-table rendering.
 */

#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace difftune
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row has {} cells, table has {} columns", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &cells,
                         std::ostringstream &os) {
        os << "|";
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << ' ' << cell
               << std::string(widths[c] - cell.size(), ' ') << " |";
        }
        os << '\n';
    };
    auto renderSep = [&](std::ostringstream &os) {
        os << "+";
        for (size_t c = 0; c < headers_.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "+";
        os << '\n';
    };

    std::ostringstream os;
    renderSep(os);
    renderRow(headers_, os);
    renderSep(os);
    for (const auto &row : rows_) {
        if (row.empty())
            renderSep(os);
        else
            renderRow(row, os);
    }
    renderSep(os);
    return os.str();
}

std::string
fmtDouble(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
fmtPercent(double fraction, int decimals)
{
    return fmtDouble(fraction * 100.0, decimals) + "%";
}

} // namespace difftune
