/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * panic()/fatal() convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for unrecoverable
 * user-caused conditions (bad configuration, bad input files).
 */

#ifndef DIFFTUNE_BASE_LOGGING_HH
#define DIFFTUNE_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace difftune
{

namespace detail
{

inline void
fmtAppend(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

/**
 * Minimal "{}"-substitution formatter. Each "{}" in @p fmt is replaced
 * by the next argument, streamed with operator<<. Extra arguments are
 * appended at the end; extra "{}" are emitted literally.
 */
template <typename T, typename... Args>
void
fmtAppend(std::ostringstream &os, const char *fmt, const T &value,
          Args &&...args)
{
    for (const char *p = fmt; *p; ++p) {
        if (p[0] == '{' && p[1] == '}') {
            os << value;
            fmtAppend(os, p + 2, std::forward<Args>(args)...);
            return;
        }
        os << *p;
    }
    os << ' ' << value;
    fmtAppend(os, "", std::forward<Args>(args)...);
}

} // namespace detail

/** Format a string with "{}" placeholders. */
template <typename... Args>
std::string
fmtStr(const char *fmt, Args &&...args)
{
    std::ostringstream os;
    detail::fmtAppend(os, fmt, std::forward<Args>(args)...);
    return os.str();
}

/** Abort with a message: something that should never happen happened. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the user asked for something unsatisfiable. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; execution continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr; execution continues. */
void informImpl(const std::string &msg);

/**
 * Drop fatal()'s "fatal: " prefix from a caught exception's what()
 * so that re-raising with added context ("checkpoint 'x': {}") does
 * not stutter the prefix.
 */
std::string stripErrorPrefix(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

#define panic(...) \
    ::difftune::panicImpl(__FILE__, __LINE__, ::difftune::fmtStr(__VA_ARGS__))
#define fatal(...) \
    ::difftune::fatalImpl(__FILE__, __LINE__, ::difftune::fmtStr(__VA_ARGS__))
#define warn(...) ::difftune::warnImpl(::difftune::fmtStr(__VA_ARGS__))
#define inform(...) ::difftune::informImpl(::difftune::fmtStr(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

} // namespace difftune

#endif // DIFFTUNE_BASE_LOGGING_HH
