/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that datasets, training runs and benchmarks are fully
 * reproducible across machines (std::mt19937 distributions are not
 * guaranteed identical across standard libraries, so we implement the
 * generator and the distributions ourselves).
 */

#ifndef DIFFTUNE_BASE_RANDOM_HH
#define DIFFTUNE_BASE_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace difftune
{

/** SplitMix64: used for seeding and cheap hashing. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with library-owned distribution
 * implementations. Small, fast and reproducible.
 */
class Rng
{
  public:
    /** Seed the generator; distinct seeds give independent streams. */
    explicit Rng(uint64_t seed = 0)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
        // Multiply-shift bounded rejection-free mapping (Lemire);
        // bias is negligible for our span sizes.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * span;
        return lo + static_cast<int64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return lo + (hi - lo) * uniformReal();
    }

    /** Standard normal via Box-Muller (deterministic, stateless pairs). */
    double
    normal()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = uniformReal();
        double u2 = uniformReal();
        // Avoid log(0).
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spare_ = r * std::sin(theta);
        haveSpare_ = true;
        return r * std::cos(theta);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        return uniformReal() < p;
    }

    /** Uniformly choose an index given non-negative weights. */
    size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        double draw = uniformReal() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw < 0.0)
                return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, i - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Derive an independent child stream (for per-thread RNGs). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ULL);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace difftune

#endif // DIFFTUNE_BASE_RANDOM_HH
