/**
 * @file
 * Environment-variable configuration knobs.
 *
 * Benchmarks default to a reduced-but-faithful scale; DIFFTUNE_SCALE
 * multiplies dataset sizes and training epochs so the same binaries can
 * run paper-scale experiments.
 */

#ifndef DIFFTUNE_BASE_ENV_HH
#define DIFFTUNE_BASE_ENV_HH

#include <string>

namespace difftune
{

/** Read an environment variable as double, with a default. */
double envDouble(const char *name, double default_value);

/** Read an environment variable as long, with a default. */
long envLong(const char *name, long default_value);

/** Read an environment variable as string, with a default. */
std::string envString(const char *name, const std::string &default_value);

/** Global experiment scale factor (DIFFTUNE_SCALE, default 1.0). */
double experimentScale();

/** Scale a count by experimentScale(), with a floor of @p min_value. */
long scaledCount(long base, long min_value = 1);

/** Number of worker threads (DIFFTUNE_THREADS, default: hardware). */
int workerThreads();

} // namespace difftune

#endif // DIFFTUNE_BASE_ENV_HH
