/**
 * @file
 * Implementation of environment-variable configuration knobs.
 */

#include "base/env.hh"

#include <cstdlib>
#include <thread>

#include "base/logging.hh"

namespace difftune
{

double
envDouble(const char *name, double default_value)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return default_value;
    char *end = nullptr;
    double parsed = std::strtod(value, &end);
    fatal_if(end == value, "environment variable {} is not a number: {}",
             name, value);
    return parsed;
}

long
envLong(const char *name, long default_value)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return default_value;
    char *end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    fatal_if(end == value, "environment variable {} is not an integer: {}",
             name, value);
    return parsed;
}

std::string
envString(const char *name, const std::string &default_value)
{
    const char *value = std::getenv(name);
    return (value && *value) ? std::string(value) : default_value;
}

double
experimentScale()
{
    static const double scale = envDouble("DIFFTUNE_SCALE", 1.0);
    return scale;
}

long
scaledCount(long base, long min_value)
{
    long scaled = static_cast<long>(base * experimentScale());
    return scaled < min_value ? min_value : scaled;
}

int
workerThreads()
{
    static const int threads = [] {
        long requested = envLong("DIFFTUNE_THREADS", 0);
        if (requested > 0)
            return static_cast<int>(requested);
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }();
    return threads;
}

} // namespace difftune
