/**
 * @file
 * Black-box global optimization baseline in the style of
 * OpenTuner (Ansel et al.): a multi-armed bandit selects, per
 * iteration, among an ensemble of search techniques spanning convex
 * and non-convex optimization (random search, pattern hill climbing,
 * simulated annealing, differential evolution, genetic mutation).
 * Each iteration proposes a full parameter table, evaluates it with
 * the real simulator on a training subsample, and reports the result
 * back to the bandit.
 *
 * Budget parity with DiffTune is enforced in *simulator block
 * evaluations*, as in Section V-C of the paper.
 */

#ifndef DIFFTUNE_TUNER_OPENTUNER_HH
#define DIFFTUNE_TUNER_OPENTUNER_HH

#include "bhive/dataset.hh"
#include "io/checkpoint_hook.hh"
#include "params/sampling.hh"
#include "params/simulator.hh"

namespace difftune::tuner
{

/** Tuner configuration. */
struct TunerConfig
{
    params::SamplingDist dist = params::SamplingDist::full();
    /** Total simulator block-evaluation budget. */
    long evalBudget = 100000;
    /** Blocks evaluated per candidate (training subsample). */
    int blocksPerEval = 256;
    /** UCB exploration constant for the technique bandit. */
    double ucbC = 1.4;
    int workers = 0;
    uint64_t seed = 99;

    /**
     * Checkpointing: with a path set, run() saves the best table
     * (extracted + masked, as a table-only checkpoint) at the end,
     * and after every Nth new global best when `every` > 0.
     */
    io::CheckpointHook checkpoint;
};

/** Search techniques in the ensemble. */
enum class Technique : uint8_t
{
    RandomSearch,
    HillClimb,
    Anneal,
    DifferentialEvolution,
    GeneticMutation,
    NumTechniques,
};

/** @return printable technique name. */
const char *techniqueName(Technique technique);

/** Result of a tuning run. */
struct TunerResult
{
    params::ParamTable best;
    double bestTrainError = 0.0;
    long evalsUsed = 0;
    long iterations = 0;
    /** Bandit pick counts per technique. */
    std::array<long, size_t(Technique::NumTechniques)> picks{};
};

/** OpenTuner-style ensemble search. */
class OpenTuner
{
  public:
    OpenTuner(const params::Simulator &sim, const bhive::Dataset &dataset,
              params::ParamTable base, TunerConfig config);

    /** Run until the evaluation budget is exhausted. */
    TunerResult run();

  private:
    /** Mean error of @p table on a fresh training subsample. */
    double evaluateCandidate(const params::ParamTable &table);

    /** Propose a new candidate with the given technique. */
    params::ParamTable propose(Technique technique);

    // Technique-specific proposal helpers.
    params::ParamTable proposeHillClimb();
    params::ParamTable proposeAnneal();
    params::ParamTable proposeDiffEvo();
    params::ParamTable proposeGenetic();

    /** Mutate ~@p fraction of the flat entries within their ranges. */
    void mutate(params::ParamTable &table, double fraction, Rng &rng);

    const params::Simulator &sim_;
    const bhive::Dataset &dataset_;
    params::ParamTable base_;
    TunerConfig config_;
    Rng rng_;

    params::ParamTable best_;
    double bestError_ = 0.0;
    params::ParamTable current_; ///< hill-climb / annealing state
    double currentError_ = 0.0;
    double annealTemp_ = 0.3;
    std::vector<params::ParamTable> population_; ///< for DE / genetic
    std::vector<double> populationError_;
    long evalsUsed_ = 0;
};

} // namespace difftune::tuner

#endif // DIFFTUNE_TUNER_OPENTUNER_HH
