/**
 * @file
 * OpenTuner-style ensemble search implementation.
 */

#include "tuner/opentuner.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/parallel.hh"
#include "io/checkpoint.hh"

namespace difftune::tuner
{

const char *
techniqueName(Technique technique)
{
    switch (technique) {
      case Technique::RandomSearch: return "random";
      case Technique::HillClimb: return "hillclimb";
      case Technique::Anneal: return "anneal";
      case Technique::DifferentialEvolution: return "diffevo";
      case Technique::GeneticMutation: return "genetic";
      default: return "?";
    }
}

OpenTuner::OpenTuner(const params::Simulator &sim,
                     const bhive::Dataset &dataset,
                     params::ParamTable base, TunerConfig config)
    : sim_(sim), dataset_(dataset), base_(std::move(base)),
      config_(config), rng_(config.seed)
{
}

double
OpenTuner::evaluateCandidate(const params::ParamTable &table)
{
    const auto &train = dataset_.train();
    const int count =
        int(std::min<size_t>(config_.blocksPerEval, train.size()));
    std::vector<uint32_t> picks(count);
    for (int i = 0; i < count; ++i)
        picks[i] = uint32_t(rng_.uniformInt(0, train.size() - 1));

    std::vector<double> errors(count);
    parallelFor(count, config_.workers, [&](size_t i) {
        const auto &entry = train[picks[i]];
        const double pred = sim_.timing(dataset_.block(entry), table);
        errors[i] =
            std::fabs(pred - entry.timing) / std::max(entry.timing, 1e-9);
    });
    evalsUsed_ += count;
    double total = 0.0;
    for (double e : errors)
        total += e;
    return total / double(count);
}

void
OpenTuner::mutate(params::ParamTable &table, double fraction, Rng &rng)
{
    // Paper's search ranges: per-instruction values in [0, 5],
    // DispatchWidth in [1, 10], ReorderBufferSize in [50, 250].
    for (auto &inst : table.perOpcode) {
        if (config_.dist.mask.numMicroOps && rng.uniformReal() < fraction)
            inst.numMicroOps = double(rng.uniformInt(1, 5));
        if (config_.dist.mask.writeLatency &&
            rng.uniformReal() < fraction)
            inst.writeLatency = double(rng.uniformInt(0, 5));
        if (config_.dist.mask.readAdvance) {
            for (double &ra : inst.readAdvance)
                if (rng.uniformReal() < fraction)
                    ra = double(rng.uniformInt(0, 5));
        }
        if (config_.dist.mask.portMap) {
            for (double &pc : inst.portMap)
                if (rng.uniformReal() < fraction)
                    pc = double(rng.uniformInt(0, 5));
        }
    }
    if (config_.dist.mask.globals) {
        if (rng.uniformReal() < fraction)
            table.dispatchWidth = double(rng.uniformInt(1, 10));
        if (rng.uniformReal() < fraction)
            table.reorderBufferSize = double(rng.uniformInt(50, 250));
    }
}

params::ParamTable
OpenTuner::proposeHillClimb()
{
    params::ParamTable candidate(current_);
    mutate(candidate, 0.02, rng_);
    return candidate;
}

params::ParamTable
OpenTuner::proposeAnneal()
{
    params::ParamTable candidate(current_);
    mutate(candidate, 0.05, rng_);
    return candidate;
}

params::ParamTable
OpenTuner::proposeDiffEvo()
{
    const size_t n = population_.size();
    const auto &a = population_[rng_.uniformInt(0, n - 1)];
    const auto &b = population_[rng_.uniformInt(0, n - 1)];
    const auto &c = population_[rng_.uniformInt(0, n - 1)];
    std::vector<double> fa = a.flatten(), fb = b.flatten(),
                        fc = c.flatten();
    const double f = 0.6;
    for (size_t i = 0; i < fa.size(); ++i)
        fa[i] = std::round(fa[i] + f * (fb[i] - fc[i]));
    params::ParamTable candidate = params::ParamTable::unflatten(fa);
    // Clamp back into the search box.
    for (auto &inst : candidate.perOpcode) {
        inst.numMicroOps = std::clamp(inst.numMicroOps, 1.0, 5.0);
        inst.writeLatency = std::clamp(inst.writeLatency, 0.0, 5.0);
        for (double &ra : inst.readAdvance)
            ra = std::clamp(ra, 0.0, 5.0);
        for (double &pc : inst.portMap)
            pc = std::clamp(pc, 0.0, 5.0);
    }
    candidate.dispatchWidth =
        std::clamp(candidate.dispatchWidth, 1.0, 10.0);
    candidate.reorderBufferSize =
        std::clamp(candidate.reorderBufferSize, 50.0, 250.0);
    params::applyMask(candidate, base_, config_.dist.mask);
    return candidate;
}

params::ParamTable
OpenTuner::proposeGenetic()
{
    const size_t n = population_.size();
    const auto &a = population_[rng_.uniformInt(0, n - 1)];
    const auto &b = population_[rng_.uniformInt(0, n - 1)];
    params::ParamTable candidate(a);
    for (size_t op = 0; op < candidate.numOpcodes(); ++op)
        if (rng_.bernoulli(0.5))
            candidate.perOpcode[op] = b.perOpcode[op];
    if (rng_.bernoulli(0.5))
        candidate.dispatchWidth = b.dispatchWidth;
    if (rng_.bernoulli(0.5))
        candidate.reorderBufferSize = b.reorderBufferSize;
    mutate(candidate, 0.01, rng_);
    params::applyMask(candidate, base_, config_.dist.mask);
    return candidate;
}

params::ParamTable
OpenTuner::propose(Technique technique)
{
    switch (technique) {
      case Technique::RandomSearch:
        return config_.dist.sample(rng_, base_);
      case Technique::HillClimb:
        return proposeHillClimb();
      case Technique::Anneal:
        return proposeAnneal();
      case Technique::DifferentialEvolution:
        return proposeDiffEvo();
      case Technique::GeneticMutation:
        return proposeGenetic();
      default:
        panic("bad technique");
    }
}

TunerResult
OpenTuner::run()
{
    constexpr int num_techniques = int(Technique::NumTechniques);

    // Initialize state from the sampling distribution (Section V-C).
    current_ = config_.dist.sample(rng_, base_);
    currentError_ = evaluateCandidate(current_);
    best_ = current_;
    bestError_ = currentError_;
    for (int i = 0; i < 8; ++i) {
        population_.push_back(config_.dist.sample(rng_, base_));
        populationError_.push_back(
            evaluateCandidate(population_.back()));
    }

    std::array<long, num_techniques> picks{};
    std::array<double, num_techniques> reward{};
    long total_picks = 0;
    int improvements = 0;
    bool checkpoint_fresh = false;

    TunerResult result;
    while (evalsUsed_ + config_.blocksPerEval <= config_.evalBudget) {
        // UCB1 technique selection.
        int technique = 0;
        double best_score = -1.0;
        for (int t = 0; t < num_techniques; ++t) {
            double score;
            if (picks[t] == 0) {
                score = 1e18 - t;
            } else {
                score = reward[t] / double(picks[t]) +
                        config_.ucbC *
                            std::sqrt(std::log(double(total_picks + 1)) /
                                      double(picks[t]));
            }
            if (score > best_score) {
                best_score = score;
                technique = t;
            }
        }

        params::ParamTable candidate = propose(Technique(technique));
        const double error = evaluateCandidate(candidate);
        ++picks[technique];
        ++total_picks;
        ++result.iterations;

        // Reward: found a new global best.
        if (error < bestError_) {
            bestError_ = error;
            best_ = candidate;
            reward[technique] += 1.0;
            ++improvements;
            checkpoint_fresh = false;
            if (config_.checkpoint.due(improvements)) {
                params::ParamTable snapshot = best_.extractToValid();
                params::applyMask(snapshot, base_, config_.dist.mask);
                io::saveTableCheckpoint(config_.checkpoint.path,
                                        snapshot);
                checkpoint_fresh = true;
                inform("checkpointed tuner best (error {}) to {}",
                       bestError_, config_.checkpoint.path);
            }
        }

        // Technique-local state updates.
        switch (Technique(technique)) {
          case Technique::HillClimb:
            if (error < currentError_) {
                current_ = candidate;
                currentError_ = error;
            }
            break;
          case Technique::Anneal: {
            const double delta = error - currentError_;
            if (delta < 0.0 ||
                rng_.uniformReal() < std::exp(-delta / annealTemp_)) {
                current_ = candidate;
                currentError_ = error;
            }
            annealTemp_ = std::max(0.01, annealTemp_ * 0.995);
            break;
          }
          case Technique::DifferentialEvolution:
          case Technique::GeneticMutation:
          case Technique::RandomSearch: {
            // Replace the worst population member when improving.
            auto worst = std::max_element(populationError_.begin(),
                                          populationError_.end());
            if (error < *worst) {
                const size_t idx = worst - populationError_.begin();
                population_[idx] = candidate;
                populationError_[idx] = error;
            }
            break;
          }
          default:
            break;
        }
    }

    result.best = best_.extractToValid();
    params::applyMask(result.best, base_, config_.dist.mask);
    result.bestTrainError = bestError_;
    result.evalsUsed = evalsUsed_;
    result.picks = picks;
    // The last improvement's periodic save already wrote this table.
    if (config_.checkpoint.enabled() && !checkpoint_fresh) {
        io::saveTableCheckpoint(config_.checkpoint.path, result.best);
        inform("saved tuner checkpoint {}", config_.checkpoint.path);
    }
    return result;
}

} // namespace difftune::tuner
