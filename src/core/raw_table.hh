/**
 * @file
 * The trainable parameter-table representation (DiffTune phase 4).
 *
 * During optimization all simulator parameters are unconstrained
 * reals ("raw" values). The mapping to actual parameter values is the
 * paper's reparameterization: actual = |raw| + lower_bound. The
 * surrogate always consumes lower-bound-subtracted values — i.e.
 * (actual - lb) during surrogate training and |raw| during table
 * training — scaled per-entry to roughly [0, 1] by the width of the
 * sampling distribution (a conditioning aid for the LSTM inputs).
 */

#ifndef DIFFTUNE_CORE_RAW_TABLE_HH
#define DIFFTUNE_CORE_RAW_TABLE_HH

#include <array>

#include "isa/instruction.hh"
#include "nn/modules.hh"
#include "params/sampling.hh"

namespace difftune::core
{

/** Per-entry input normalization derived from a sampling dist. */
struct ParamNormalizer
{
    /** Scales for one per-opcode record (params::perOpcodeParams). */
    std::vector<double> perOpcode;
    /** Scales for [DispatchWidth, ReorderBufferSize]. */
    std::array<double, 2> globals;

    explicit ParamNormalizer(const params::SamplingDist &dist);

    /** Input width the surrogate sees per instruction. */
    int
    paramDim() const
    {
        return int(perOpcode.size()) + 2;
    }
};

/**
 * Build constant (already-known-value) per-instruction parameter
 * input Vars for @p block from an actual-valued table — used when
 * training the surrogate (phase 3), where theta is a sampled input.
 */
std::vector<nn::Var>
constParamInputs(nn::Graph &graph, const params::ParamTable &table,
                 const isa::BasicBlock &block,
                 const ParamNormalizer &norm);

/**
 * The (paramDim x 1) surrogate input column for one opcode of an
 * actual-valued table — exactly the tensor constParamInputs feeds the
 * graph for an instruction of that opcode. Exposed so a frozen-table
 * consumer (the serving engine) can precompute one tensor per opcode
 * at load time and stay bit-identical to the training-time transform.
 */
nn::Tensor opcodeParamInput(const params::ParamTable &table,
                            isa::OpcodeId op,
                            const ParamNormalizer &norm);

/** The trainable raw table (phase 4's only trainable leaves). */
class RawTable
{
  public:
    /**
     * Initialize raw values from an actual-valued table:
     * raw = actual - lower_bound (so |raw| + lb == actual).
     */
    RawTable(const params::ParamTable &init, const ParamNormalizer &norm);

    /** Trainable parameters (a per-opcode matrix and a global pair). */
    nn::ParamSet &params() { return params_; }

    /**
     * Build per-instruction parameter input Vars for @p block whose
     * gradients flow into this table's ParamSet via @p sink.
     */
    std::vector<nn::Var> paramInputs(nn::Graph &graph,
                                     const isa::BasicBlock &block,
                                     nn::Grads *sink) const;

    /** Recover the actual-valued table: |raw| + lower bound. */
    params::ParamTable toParamTable() const;

    /**
     * Reset masked-off entries to the raw encoding of @p base (run
     * after every optimizer step when a ParamMask is in force).
     */
    void enforceMask(const params::ParamMask &mask,
                     const params::ParamTable &base);

    size_t numOpcodes() const { return numOpcodes_; }

  private:
    size_t numOpcodes_;
    ParamNormalizer norm_;
    nn::ParamSet params_;
    int perOpcodeIdx_; ///< (numOpcodes x perOpcodeParams) raw matrix
    int globalsIdx_;   ///< (2 x 1) raw globals
};

} // namespace difftune::core

#endif // DIFFTUNE_CORE_RAW_TABLE_HH
