/**
 * @file
 * Experiment-configuration implementation.
 */

#include "core/experiment.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "base/env.hh"
#include "base/logging.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "usim/usim.hh"

namespace difftune::core
{

ExperimentScale
ExperimentScale::fromEnv()
{
    const double scale = experimentScale();
    ExperimentScale s;
    s.corpusBlocks = size_t(scaledCount(3000, 600));
    s.simulatedMultiple = 8.0;
    // Training-loop counts shrink with the scale down to link-and-run
    // floors so the --smoke tier (DIFFTUNE_SCALE=0.05) stays cheap in
    // CI; from scale ~0.3 upward they saturate at the full values.
    s.surrogateLoops =
        scale >= 1.0 ? 10 : int(std::clamp(scaledCount(20, 2), 2L, 6L));
    s.tableEpochs = int(std::clamp(scaledCount(200, 10), 10L, 60L));
    s.refineRounds = scale < 0.1 ? 1 : 2;
    s.ithemalEpochs =
        scale >= 1.0 ? 10 : int(std::clamp(scaledCount(20, 2), 2L, 6L));
    s.hidden = 64;
    s.embed = 32;
    return s;
}

const bhive::Corpus &
sharedCorpus()
{
    static const bhive::Corpus corpus = bhive::Corpus::generate(
        ExperimentScale::fromEnv().corpusBlocks, 0xb41c5eed);
    return corpus;
}

const bhive::Dataset &
sharedDataset(hw::Uarch uarch)
{
    static std::map<int, bhive::Dataset> datasets;
    auto it = datasets.find(int(uarch));
    if (it == datasets.end()) {
        it = datasets
                 .emplace(int(uarch),
                          bhive::Dataset(sharedCorpus(), uarch))
                 .first;
    }
    return it->second;
}

DiffTuneConfig
standardConfig(uint64_t seed)
{
    const ExperimentScale s = ExperimentScale::fromEnv();
    DiffTuneConfig cfg;
    cfg.simulatedMultiple = s.simulatedMultiple;
    cfg.surrogateLoops = s.surrogateLoops;
    cfg.tableEpochs = s.tableEpochs;
    cfg.refineRounds = s.refineRounds;
    cfg.model.hidden = s.hidden;
    cfg.model.embedDim = s.embed;
    cfg.model.tokenLayers = 1;
    cfg.model.blockLayers = 2;
    cfg.seed = seed;
    return cfg;
}

IthemalConfig
standardIthemal(uint64_t seed)
{
    const ExperimentScale s = ExperimentScale::fromEnv();
    IthemalConfig cfg;
    cfg.epochs = s.ithemalEpochs;
    cfg.model.hidden = s.hidden;
    cfg.model.embedDim = s.embed;
    cfg.model.tokenLayers = 1;
    cfg.model.blockLayers = 2;
    cfg.seed = seed;
    return cfg;
}

std::string
cacheDir()
{
    const std::string dir = envString("DIFFTUNE_CACHE", "difftune_cache");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

params::ParamTable
learnedTable(hw::Uarch uarch, const std::string &variant, uint64_t seed)
{
    std::ostringstream name;
    name << cacheDir() << "/learned_" << hw::uarchName(uarch) << "_"
         << variant << "_s" << seed << "_x" << experimentScale()
         << ".params";
    const std::string path = name.str();

    {
        std::ifstream in(path);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            inform("loaded cached learned table {}", path);
            return params::ParamTable::load(buffer.str());
        }
    }

    const bhive::Dataset &dataset = sharedDataset(uarch);
    const params::ParamTable base = hw::defaultTable(uarch);
    DiffTuneConfig cfg = standardConfig(seed);

    params::ParamTable learned;
    if (variant == "full") {
        mca::XMca sim;
        DiffTune difftune(sim, dataset, base, cfg);
        learned = difftune.run().learned;
    } else if (variant == "wlonly") {
        // Section VI-B: WriteLatency only, uniform {0..10}, shorter
        // surrogate training (the paper loops 3x instead of 6x).
        cfg.dist = params::SamplingDist::writeLatencyOnly();
        cfg.surrogateLoops = std::max(2, cfg.surrogateLoops / 2);
        mca::XMca sim;
        DiffTune difftune(sim, dataset, base, cfg);
        learned = difftune.run().learned;
    } else if (variant == "usim") {
        // Appendix A: llvm_sim exposes WriteLatency + PortMap.
        cfg.dist = params::SamplingDist::usim();
        usim::USim sim;
        DiffTune difftune(sim, dataset, base, cfg);
        learned = difftune.run().learned;
    } else {
        fatal("unknown learned-table variant '{}'", variant);
    }

    std::ofstream out(path);
    out << learned.save();
    inform("cached learned table {}", path);
    return learned;
}

} // namespace difftune::core
