/**
 * @file
 * The DiffTune algorithm (Section III / Figure 1 of the paper):
 *
 *  1. collect the real dataset D of (block, measured timing) pairs
 *     (provided by the caller as a bhive::Dataset);
 *  2. collect a simulated dataset D^ of (theta, block, f(theta,
 *     block)) triples by sampling parameter tables from a sampling
 *     distribution and running the simulator;
 *  3. train a differentiable surrogate f^(theta, x) ~= f(theta, x)
 *     on D^ by SGD/Adam (Equation 2);
 *  4. freeze the surrogate and optimize the parameter table against
 *     D by gradient descent through the surrogate (Equation 3);
 *  5. extract the learned table (abs + lower bound, round to int)
 *     and plug it back into the original simulator.
 *
 * The implementation is generic over the params::Simulator interface,
 * so the same pipeline tunes both XMca (llvm-mca analog) and USim
 * (llvm_sim analog), with a ParamMask restricting which parameter
 * groups are learned.
 */

#ifndef DIFFTUNE_CORE_DIFFTUNE_HH
#define DIFFTUNE_CORE_DIFFTUNE_HH

#include <memory>

#include "bhive/dataset.hh"
#include "core/raw_table.hh"
#include "io/checkpoint_hook.hh"
#include "nn/optim.hh"
#include "params/sampling.hh"
#include "params/simulator.hh"
#include "surrogate/model.hh"

namespace difftune::core
{

/** Pipeline hyperparameters (paper values noted; defaults scaled). */
struct DiffTuneConfig
{
    params::SamplingDist dist = params::SamplingDist::full();
    surrogate::ModelConfig model{}; ///< paramDim is filled in by run()

    /** |D^| as a multiple of |train| (paper: 10). */
    double simulatedMultiple = 5.0;
    /** Loops over D^ when training the surrogate (paper: 6). */
    int surrogateLoops = 3;
    /**
     * Total epochs over D when training the table. The paper uses 1
     * epoch over a 230k-block train set (~900 Adam steps); smaller
     * datasets need proportionally more epochs to take as many steps.
     */
    int tableEpochs = 60;
    int batchSize = 256;        ///< paper: 256
    double surrogateLr = 1e-3;  ///< paper: 0.001
    double tableLr = 0.05;      ///< paper: 0.05
    double gradClip = 5.0;      ///< batch-gradient L2 clip (0 = off)

    /**
     * Surrogate-refinement rounds during table training. Gradient
     * descent can drive the table into regions the sampling
     * distribution never covered, where the surrogate extrapolates
     * poorly (Section VII of the paper; the local-surrogate fix is
     * due to Shirobokov et al.). After each round the pipeline
     * collects simulator samples in a neighbourhood of the current
     * table estimate and fine-tunes the surrogate on them. 0 disables
     * refinement (the paper's one-shot configuration).
     */
    int refineRounds = 2;
    /** Neighbourhood samples per round, as a multiple of |train|. */
    double refineMultiple = 2.0;
    /** Fine-tune loops over the refinement samples. */
    int refineLoops = 2;
    /** Fraction of neighbourhood samples resampled per opcode. */
    double refineResampleProb = 0.3;

    /**
     * Every this many table epochs, extract the table, evaluate it
     * with the real simulator on the validation split, and keep the
     * best snapshot (standard validation-based model selection;
     * evaluations are charged to the simulator budget).
     */
    int snapshotEvery = 10;

    int workers = 0;            ///< worker threads (0 = default)
    uint64_t seed = 1;

    /**
     * Checkpointing: with a path set, run() saves the trained
     * surrogate + sampling distribution + learned table (a complete
     * serving artifact, see serve/engine.hh); `every` > 0 also saves
     * after every Nth validation snapshot during table training.
     */
    io::CheckpointHook checkpoint;
};

/** Outcome of one DiffTune run. */
struct DiffTuneResult
{
    /** The extracted integer parameter table. */
    params::ParamTable learned;
    /** Mean surrogate training loss over the final loop. */
    double surrogateFinalLoss = 0.0;
    /** Surrogate-vs-simulator MAPE on held-out (theta, x) pairs. */
    double surrogateFidelity = 0.0;
    /** Simulator evaluations consumed (OpenTuner budget parity). */
    long simulatorEvals = 0;
};

/** The DiffTune optimizer. */
class DiffTune
{
  public:
    /**
     * @param sim simulator whose parameters are being learned
     * @param dataset ground-truth dataset (train split is used)
     * @param base table providing values for masked-off parameters
     * @param config hyperparameters
     */
    DiffTune(const params::Simulator &sim, const bhive::Dataset &dataset,
             params::ParamTable base, DiffTuneConfig config);

    ~DiffTune();

    /** Run all phases and return the learned table. */
    DiffTuneResult run();

    // ---- Individual phases, exposed for tests and ablations.

    /** Phase 2: build the simulated dataset. */
    void collectSimulatedDataset();

    /** Phase 3: train the surrogate on the simulated dataset. */
    double trainSurrogate();

    /** Surrogate-vs-simulator MAPE on fresh held-out samples. */
    double surrogateFidelity(int samples = 512);

    /** Phase 4 + extraction: optimize and extract the table. */
    params::ParamTable trainTable();

    /** The trained surrogate (valid after trainSurrogate()). */
    surrogate::Model &model() { return *model_; }

    /** Simulator evaluations consumed so far. */
    long simulatorEvals() const { return simulatorEvals_; }

  private:
    struct SimSample
    {
        uint32_t entryIdx;   ///< index into the train split
        int32_t snapshotId;  ///< -1: dist sample; else neighbourhood
        uint64_t tableSeed;  ///< regenerates theta deterministically
        double simTiming;    ///< f(theta, x)
    };

    /** Rebuild the theta for a simulated sample. */
    params::ParamTable sampleTable(const SimSample &sample) const;

    /** Draw a table near @p center (for refinement rounds). */
    params::ParamTable
    neighborhoodSample(Rng &rng, const params::ParamTable &center) const;

    /** Append @p count samples near @p center and fine-tune. */
    void refineSurrogate(const params::ParamTable &center);

    /** Evaluate an extracted candidate on the validation split. */
    double validError(const params::ParamTable &candidate);

    /** Inner loop of trainTable: @p epochs epochs of Adam. */
    void tableEpochs(class RawTable &raw, class BatchRunner &runner,
                     nn::Adam &adam, int epochs,
                     params::ParamTable &best, double &best_err);

    const params::Simulator &sim_;
    const bhive::Dataset &dataset_;
    params::ParamTable base_;
    DiffTuneConfig config_;
    ParamNormalizer norm_;

    std::vector<surrogate::EncodedBlock> encoded_; ///< per corpus block
    std::vector<SimSample> simulated_;
    std::vector<params::ParamTable> snapshots_; ///< refinement centers
    std::unique_ptr<surrogate::Model> model_;
    long simulatorEvals_ = 0;
    int snapshotCount_ = 0; ///< validation snapshots taken (hook cadence)
    /** On-disk checkpoint matches the current model + best table. */
    bool checkpointFresh_ = false;
    Rng rng_;
};

} // namespace difftune::core

#endif // DIFFTUNE_CORE_DIFFTUNE_HH
