/**
 * @file
 * BatchRunner implementation.
 */

#include "core/trainer.hh"

#include "base/env.hh"
#include "base/parallel.hh"

namespace difftune::core
{

BatchRunner::BatchRunner(const nn::ParamSet &trainable, int workers)
    : workers_(workers > 0 ? workers : workerThreads()), total_(trainable)
{
    graphs_.resize(workers_);
    shardGrads_.resize(workers_);
    for (int w = 0; w < workers_; ++w) {
        graphs_[w] = std::make_unique<nn::Graph>();
        shardGrads_[w] = std::make_unique<nn::Grads>(trainable);
    }
}

double
BatchRunner::runBatch(size_t begin, size_t end, const SampleFn &body)
{
    const size_t n = end - begin;
    if (n == 0)
        return 0.0;
    std::vector<double> shard_loss(workers_, 0.0);
    for (auto &grads : shardGrads_)
        grads->zero();

    parallelShards(n, workers_,
                   [&](size_t lo, size_t hi, int shard) {
                       nn::Graph &graph = *graphs_[shard];
                       nn::Grads &grads = *shardGrads_[shard];
                       double loss = 0.0;
                       for (size_t i = lo; i < hi; ++i) {
                           graph.clear();
                           loss += body(begin + i, graph, grads);
                       }
                       shard_loss[shard] = loss;
                   });

    total_.zero();
    double loss = 0.0;
    for (int w = 0; w < workers_; ++w) {
        total_.addFrom(*shardGrads_[w]);
        loss += shard_loss[w];
    }
    total_.scale(1.0 / double(n));
    return loss / double(n);
}

void
BatchRunner::apply(nn::ParamSet &params, nn::Optimizer &optimizer,
                   double clip)
{
    if (clip > 0.0)
        total_.clipL2(clip);
    optimizer.step(params, total_);
}

} // namespace difftune::core
