/**
 * @file
 * Shared evaluation: run a simulator over a dataset split and compute
 * the paper's metrics (MAPE and Kendall's tau).
 */

#ifndef DIFFTUNE_CORE_EVALUATE_HH
#define DIFFTUNE_CORE_EVALUATE_HH

#include <vector>

#include "bhive/dataset.hh"
#include "params/simulator.hh"

namespace difftune::core
{

/** Error metrics of one predictor over one dataset split. */
struct EvalResult
{
    double error = 0.0;      ///< mean absolute percentage error
    double kendallTau = 0.0; ///< rank correlation
    std::vector<double> predictions;
};

/** Evaluate @p sim with @p table on @p entries (in parallel). */
EvalResult evaluate(const params::Simulator &sim,
                    const params::ParamTable &table,
                    const bhive::Dataset &dataset,
                    const std::vector<bhive::Entry> &entries);

/** Evaluate precomputed predictions against entry timings. */
EvalResult evaluatePredictions(std::vector<double> predictions,
                               const std::vector<bhive::Entry> &entries);

} // namespace difftune::core

#endif // DIFFTUNE_CORE_EVALUATE_HH
