/**
 * @file
 * DiffTune pipeline implementation.
 */

#include "core/difftune.hh"

#include <algorithm>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/parallel.hh"
#include "core/evaluate.hh"
#include "core/trainer.hh"
#include "io/checkpoint.hh"

namespace difftune::core
{

DiffTune::DiffTune(const params::Simulator &sim,
                   const bhive::Dataset &dataset, params::ParamTable base,
                   DiffTuneConfig config)
    : sim_(sim), dataset_(dataset), base_(std::move(base)),
      config_(config), norm_(config.dist), rng_(config.seed)
{
    panic_if(base_.numOpcodes() != isa::theIsa().numOpcodes(),
             "base table has {} opcodes, ISA has {}", base_.numOpcodes(),
             isa::theIsa().numOpcodes());
    config_.model.paramDim = norm_.paramDim();

    // Token-encode every corpus block once.
    const auto &corpus = dataset_.corpus();
    encoded_.resize(corpus.size());
    parallelFor(corpus.size(), config_.workers, [&](size_t i) {
        encoded_[i] = surrogate::encodeBlock(corpus[i].block);
    });
}

DiffTune::~DiffTune() = default;

params::ParamTable
DiffTune::sampleTable(const SimSample &sample) const
{
    Rng rng(sample.tableSeed);
    if (sample.snapshotId < 0)
        return config_.dist.sample(rng, base_);
    return neighborhoodSample(rng, snapshots_[sample.snapshotId]);
}

params::ParamTable
DiffTune::neighborhoodSample(Rng &rng,
                             const params::ParamTable &center) const
{
    // Resample a fraction of the per-opcode records (and, with the
    // same probability, the globals) from the sampling distribution;
    // keep the rest at the current estimate. The result covers the
    // surrounding region of parameter space that further gradient
    // steps are likely to visit.
    params::ParamTable randomized = config_.dist.sample(rng, base_);
    params::ParamTable result(center);
    for (size_t op = 0; op < result.numOpcodes(); ++op) {
        if (rng.uniformReal() < config_.refineResampleProb)
            result.perOpcode[op] = randomized.perOpcode[op];
    }
    if (config_.dist.mask.globals &&
        rng.uniformReal() < config_.refineResampleProb) {
        result.dispatchWidth = randomized.dispatchWidth;
        result.reorderBufferSize = randomized.reorderBufferSize;
    }
    return result;
}

void
DiffTune::collectSimulatedDataset()
{
    const auto &train = dataset_.train();
    panic_if(train.empty(), "cannot run DiffTune with an empty train set");
    const size_t count =
        size_t(config_.simulatedMultiple * double(train.size()));

    simulated_.clear();
    simulated_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        SimSample sample;
        sample.entryIdx = uint32_t(rng_.uniformInt(0, train.size() - 1));
        sample.snapshotId = -1;
        sample.tableSeed = rng_.next();
        sample.simTiming = 0.0;
        simulated_.push_back(sample);
    }
    parallelFor(simulated_.size(), config_.workers, [&](size_t i) {
        auto &sample = simulated_[i];
        const auto &entry = train[sample.entryIdx];
        const params::ParamTable theta = sampleTable(sample);
        sample.simTiming = sim_.timing(dataset_.block(entry), theta);
    });
    simulatorEvals_ += long(simulated_.size());
    inform("collected simulated dataset: {} samples", simulated_.size());
}

namespace
{

/** One shuffled pass over a sample range with minibatch Adam. */
template <typename SampleBody>
double
runEpoch(Rng &rng, size_t count, int batch_size, BatchRunner &runner,
         nn::ParamSet &params, nn::Adam &adam, double clip,
         const SampleBody &body)
{
    std::vector<uint32_t> order(count);
    for (size_t i = 0; i < count; ++i)
        order[i] = uint32_t(i);
    rng.shuffle(order);

    double total = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < count; start += batch_size) {
        const size_t end = std::min(count, start + size_t(batch_size));
        total += runner.runBatch(
            start, end,
            [&](size_t idx, nn::Graph &graph, nn::Grads &grads) {
                return body(order[idx], graph, grads);
            });
        runner.apply(params, adam, clip);
        ++batches;
    }
    return total / double(std::max<size_t>(1, batches));
}

} // namespace

double
DiffTune::trainSurrogate()
{
    panic_if(simulated_.empty(),
             "collectSimulatedDataset() must run before trainSurrogate()");
    model_ = std::make_unique<surrogate::Model>(
        config_.model, isa::theVocab().size());

    nn::Adam adam(config_.surrogateLr);
    BatchRunner runner(model_->params(), config_.workers);

    auto sample_body = [&](size_t idx, nn::Graph &graph,
                           nn::Grads &grads) {
        const SimSample &sample = simulated_[idx];
        const auto &entry = dataset_.train()[sample.entryIdx];
        const params::ParamTable theta = sampleTable(sample);
        const auto &block = dataset_.block(entry);

        nn::Ctx ctx{graph, model_->params(), &grads};
        auto inputs = constParamInputs(graph, theta, block, norm_);
        nn::Var head =
            model_->forward(ctx, encoded_[entry.blockIdx], inputs);
        nn::Var pred = graph.exp(head);
        nn::Var loss_var = graph.lossMape(pred, sample.simTiming, 0.05);
        graph.backward(loss_var);
        return graph.scalarValue(loss_var);
    };

    double final_loss = 0.0;
    for (int loop = 0; loop < config_.surrogateLoops; ++loop) {
        final_loss =
            runEpoch(rng_, simulated_.size(), config_.batchSize, runner,
                     model_->params(), adam, config_.gradClip,
                     sample_body);
        inform("surrogate loop {}/{}: loss {} (lr {})", loop + 1,
               config_.surrogateLoops, final_loss, adam.lr());
        if (loop >= config_.surrogateLoops / 3)
            adam.setLr(adam.lr() * 0.75);
    }
    return final_loss;
}

void
DiffTune::refineSurrogate(const params::ParamTable &center)
{
    // Fine-tuning changes the surrogate weights, so any checkpoint on
    // disk no longer matches the in-memory model.
    checkpointFresh_ = false;
    const auto &train = dataset_.train();
    const size_t count =
        size_t(config_.refineMultiple * double(train.size()));
    if (count == 0)
        return;

    snapshots_.push_back(center);
    const int32_t snapshot_id = int32_t(snapshots_.size()) - 1;

    const size_t first_new = simulated_.size();
    for (size_t i = 0; i < count; ++i) {
        SimSample sample;
        sample.entryIdx = uint32_t(rng_.uniformInt(0, train.size() - 1));
        // Keep a quarter of the new samples fully random so the
        // surrogate does not forget the global picture.
        sample.snapshotId =
            rng_.uniformReal() < 0.25 ? -1 : snapshot_id;
        sample.tableSeed = rng_.next();
        sample.simTiming = 0.0;
        simulated_.push_back(sample);
    }
    parallelFor(count, config_.workers, [&](size_t i) {
        auto &sample = simulated_[first_new + i];
        const auto &entry = train[sample.entryIdx];
        const params::ParamTable theta = sampleTable(sample);
        sample.simTiming = sim_.timing(dataset_.block(entry), theta);
    });
    simulatorEvals_ += long(count);

    // Fine-tune on a mix weighted toward the new neighbourhood
    // samples: each fine-tune epoch runs over the new samples plus an
    // equal-sized random slice of the old ones.
    nn::Adam adam(config_.surrogateLr * 0.3);
    BatchRunner runner(model_->params(), config_.workers);
    std::vector<uint32_t> pool;
    pool.reserve(2 * count);
    for (size_t i = first_new; i < simulated_.size(); ++i)
        pool.push_back(uint32_t(i));
    for (size_t i = 0; i < count; ++i)
        pool.push_back(uint32_t(rng_.uniformInt(0, first_new - 1)));

    auto sample_body = [&](size_t idx, nn::Graph &graph,
                           nn::Grads &grads) {
        const SimSample &sample = simulated_[pool[idx]];
        const auto &entry = dataset_.train()[sample.entryIdx];
        const params::ParamTable theta = sampleTable(sample);
        const auto &block = dataset_.block(entry);
        nn::Ctx ctx{graph, model_->params(), &grads};
        auto inputs = constParamInputs(graph, theta, block, norm_);
        nn::Var pred = graph.exp(
            model_->forward(ctx, encoded_[entry.blockIdx], inputs));
        nn::Var loss_var = graph.lossMape(pred, sample.simTiming, 0.05);
        graph.backward(loss_var);
        return graph.scalarValue(loss_var);
    };

    for (int loop = 0; loop < config_.refineLoops; ++loop) {
        const double loss =
            runEpoch(rng_, pool.size(), config_.batchSize, runner,
                     model_->params(), adam, config_.gradClip,
                     sample_body);
        inform("refine loop {}/{}: loss {}", loop + 1,
               config_.refineLoops, loss);
    }
}

double
DiffTune::surrogateFidelity(int samples)
{
    panic_if(!model_, "trainSurrogate() must run before fidelity check");
    const auto &valid =
        dataset_.valid().empty() ? dataset_.train() : dataset_.valid();
    std::vector<double> errors(samples, 0.0);
    Rng rng(rng_.next());
    std::vector<SimSample> picks(samples);
    for (int i = 0; i < samples; ++i) {
        picks[i].entryIdx = uint32_t(rng.uniformInt(0, valid.size() - 1));
        picks[i].snapshotId = -1;
        picks[i].tableSeed = rng.next();
    }

    // One reusable graph per shard (same idiom as BatchRunner): the
    // arena reset makes the per-sample surrogate forward
    // allocation-free.
    parallelShards(size_t(samples), config_.workers,
                   [&](size_t lo, size_t hi, int) {
                       nn::Graph graph;
                       for (size_t i = lo; i < hi; ++i) {
                           const auto &entry =
                               valid[picks[i].entryIdx];
                           const params::ParamTable theta =
                               sampleTable(picks[i]);
                           const auto &block = dataset_.block(entry);
                           const double sim_timing =
                               sim_.timing(block, theta);

                           graph.clear();
                           nn::Ctx ctx{graph, model_->params(),
                                       nullptr};
                           auto inputs = constParamInputs(
                               graph, theta, block, norm_);
                           nn::Var pred = graph.exp(model_->forward(
                               ctx, encoded_[entry.blockIdx],
                               inputs));
                           errors[i] =
                               std::fabs(graph.scalarValue(pred) -
                                         sim_timing) /
                               std::max(sim_timing, 0.05);
                       }
                   });
    simulatorEvals_ += samples;
    double total = 0.0;
    for (double e : errors)
        total += e;
    return total / double(std::max(1, samples));
}

double
DiffTune::validError(const params::ParamTable &candidate)
{
    const auto &valid =
        dataset_.valid().empty() ? dataset_.train() : dataset_.valid();
    EvalResult result = evaluate(sim_, candidate, dataset_, valid);
    simulatorEvals_ += long(valid.size());
    return result.error;
}

void
DiffTune::tableEpochs(RawTable &raw, BatchRunner &runner, nn::Adam &adam,
                      int epochs, params::ParamTable &best,
                      double &best_err)
{
    const auto &train = dataset_.train();
    auto sample_body = [&](size_t idx, nn::Graph &graph,
                           nn::Grads &grads) {
        const auto &entry = train[idx];
        const auto &block = dataset_.block(entry);
        auto inputs = raw.paramInputs(graph, block, &grads);
        nn::Ctx ctx{graph, model_->params(), nullptr};
        nn::Var pred = graph.exp(
            model_->forward(ctx, encoded_[entry.blockIdx], inputs));
        nn::Var loss_var = graph.lossMape(pred, entry.timing, 0.05);
        graph.backward(loss_var);
        return graph.scalarValue(loss_var);
    };

    for (int epoch = 0; epoch < epochs; ++epoch) {
        double loss = 0.0;
        {
            // One epoch with the mask re-applied after every step.
            std::vector<uint32_t> order(train.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = uint32_t(i);
            rng_.shuffle(order);
            size_t batches = 0;
            for (size_t start = 0; start < order.size();
                 start += config_.batchSize) {
                const size_t end = std::min(order.size(),
                                            start + config_.batchSize);
                loss += runner.runBatch(
                    start, end,
                    [&](size_t idx, nn::Graph &graph,
                        nn::Grads &grads) {
                        return sample_body(order[idx], graph, grads);
                    });
                runner.apply(raw.params(), adam, config_.gradClip);
                raw.enforceMask(config_.dist.mask, base_);
                ++batches;
            }
            loss /= double(std::max<size_t>(1, batches));
        }

        const bool snapshot =
            config_.snapshotEvery > 0 &&
            ((epoch + 1) % config_.snapshotEvery == 0 ||
             epoch + 1 == epochs);
        if (snapshot) {
            params::ParamTable candidate =
                raw.toParamTable().extractToValid();
            params::applyMask(candidate, base_, config_.dist.mask);
            const double err = validError(candidate);
            inform("table epoch {}: loss {} valid-err {}", epoch + 1,
                   loss, err);
            if (err < best_err) {
                best_err = err;
                best = candidate;
                checkpointFresh_ = false;
            }
            ++snapshotCount_;
            if (config_.checkpoint.due(snapshotCount_) &&
                !checkpointFresh_) {
                io::saveCheckpoint(config_.checkpoint.path,
                                   model_.get(), &config_.dist, &best);
                checkpointFresh_ = true;
                inform("checkpointed best-so-far table to {}",
                       config_.checkpoint.path);
            }
        }
    }
}

params::ParamTable
DiffTune::trainTable()
{
    panic_if(!model_, "trainSurrogate() must run before trainTable()");

    // Initialize the table to a random sample from the sampling
    // distribution (paper, Section IV).
    SimSample init_pick{0, -1, rng_.next(), 0.0};
    params::ParamTable init = sampleTable(init_pick);
    RawTable raw(init, norm_);
    raw.enforceMask(config_.dist.mask, base_);

    nn::Adam adam(config_.tableLr);
    BatchRunner runner(raw.params(), config_.workers);

    params::ParamTable best = raw.toParamTable().extractToValid();
    params::applyMask(best, base_, config_.dist.mask);
    double best_err = validError(best);
    inform("table init: valid-err {}", best_err);

    const int segments = config_.refineRounds + 1;
    const int per_segment =
        std::max(1, config_.tableEpochs / segments);
    for (int segment = 0; segment < segments; ++segment) {
        tableEpochs(raw, runner, adam, per_segment, best, best_err);
        if (segment < config_.refineRounds) {
            params::ParamTable center = raw.toParamTable();
            params::applyMask(center, base_, config_.dist.mask);
            refineSurrogate(center);
            // Later segments fine-tune around the refined region
            // rather than wander: decay the table learning rate.
            adam.setLr(adam.lr() * 0.5);
        }
    }
    inform("table training done: best valid-err {}", best_err);
    return best;
}

DiffTuneResult
DiffTune::run()
{
    DiffTuneResult result;
    collectSimulatedDataset();
    result.surrogateFinalLoss = trainSurrogate();
    result.surrogateFidelity = surrogateFidelity();
    result.learned = trainTable();
    result.simulatorEvals = simulatorEvals_;
    // checkpointFresh_ means the file already holds exactly this
    // model + best table (the last periodic save was not superseded).
    if (config_.checkpoint.enabled() && !checkpointFresh_) {
        io::saveCheckpoint(config_.checkpoint.path, model_.get(),
                           &config_.dist, &result.learned);
        inform("saved checkpoint {}", config_.checkpoint.path);
    }
    return result;
}

} // namespace difftune::core
