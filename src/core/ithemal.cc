/**
 * @file
 * Ithemal baseline implementation.
 */

#include "core/ithemal.hh"

#include <algorithm>

#include "base/parallel.hh"
#include "core/trainer.hh"
#include "io/checkpoint.hh"
#include "nn/optim.hh"

namespace difftune::core
{

Ithemal::Ithemal(const bhive::Dataset &dataset, IthemalConfig config)
    : dataset_(dataset), config_(config), rng_(config.seed)
{
    config_.model.paramDim = 0;
    const auto &corpus = dataset_.corpus();
    encoded_.resize(corpus.size());
    parallelFor(corpus.size(), config_.workers, [&](size_t i) {
        encoded_[i] = surrogate::encodeBlock(corpus[i].block);
    });
    model_ = std::make_unique<surrogate::Model>(config_.model,
                                                isa::theVocab().size());
}

double
Ithemal::train()
{
    const auto &train = dataset_.train();
    nn::Adam adam(config_.lr);
    BatchRunner runner(model_->params(), config_.workers);

    std::vector<uint32_t> order(train.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = uint32_t(i);

    double final_loss = 0.0;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng_.shuffle(order);
        double epoch_loss = 0.0;
        size_t batches = 0;
        for (size_t start = 0; start < order.size();
             start += config_.batchSize) {
            const size_t end =
                std::min(order.size(), start + config_.batchSize);
            const double loss = runner.runBatch(
                start, end,
                [&](size_t idx, nn::Graph &graph, nn::Grads &grads) {
                    const auto &entry = train[order[idx]];
                    nn::Ctx ctx{graph, model_->params(), &grads};
                    nn::Var pred = graph.exp(model_->forward(
                        ctx, encoded_[entry.blockIdx], {}));
                    nn::Var loss_var =
                        graph.lossMape(pred, entry.timing, 0.05);
                    graph.backward(loss_var);
                    return graph.scalarValue(loss_var);
                });
            runner.apply(model_->params(), adam, config_.gradClip);
            epoch_loss += loss;
            ++batches;
        }
        final_loss = epoch_loss / double(std::max<size_t>(1, batches));
        inform("ithemal epoch {}/{}: loss {}", epoch + 1,
               config_.epochs, final_loss);
        if (config_.checkpoint.due(epoch + 1))
            io::saveCheckpoint(config_.checkpoint.path, model_.get(),
                               nullptr, nullptr);
    }
    // The final state is already on disk when the last epoch's
    // periodic save fired.
    const bool already_saved =
        config_.epochs > 0 && config_.checkpoint.due(config_.epochs);
    if (config_.checkpoint.enabled() && !already_saved) {
        io::saveCheckpoint(config_.checkpoint.path, model_.get(),
                           nullptr, nullptr);
        inform("saved checkpoint {}", config_.checkpoint.path);
    }
    return final_loss;
}

std::vector<double>
Ithemal::predictAll(const std::vector<bhive::Entry> &entries) const
{
    std::vector<double> predictions(entries.size());
    // One reusable graph per shard: clearing an arena-backed tape is
    // a pointer reset, so per-entry graph construction is free after
    // the first block of each shape.
    parallelShards(entries.size(), config_.workers,
                   [&](size_t lo, size_t hi, int) {
                       nn::Graph graph;
                       for (size_t i = lo; i < hi; ++i) {
                           graph.clear();
                           nn::Ctx ctx{graph, model_->params(),
                                       nullptr};
                           nn::Var pred = graph.exp(model_->forward(
                               ctx, encoded_[entries[i].blockIdx],
                               {}));
                           predictions[i] = graph.scalarValue(pred);
                       }
                   });
    return predictions;
}

EvalResult
Ithemal::evaluate(const std::vector<bhive::Entry> &entries) const
{
    return evaluatePredictions(predictAll(entries), entries);
}

} // namespace difftune::core
