/**
 * @file
 * The Ithemal baseline (Mendis et al.): the same sequence model as
 * the surrogate but without parameter inputs, trained directly on the
 * ground-truth dataset. In Table IV it is the most accurate
 * (unconstrained) predictor and lower-bounds the achievable error.
 */

#ifndef DIFFTUNE_CORE_ITHEMAL_HH
#define DIFFTUNE_CORE_ITHEMAL_HH

#include <memory>

#include "bhive/dataset.hh"
#include "core/evaluate.hh"
#include "io/checkpoint_hook.hh"
#include "surrogate/model.hh"

namespace difftune::core
{

/** Ithemal training hyperparameters. */
struct IthemalConfig
{
    surrogate::ModelConfig model{}; ///< paramDim forced to 0
    int epochs = 6;
    int batchSize = 256;
    double lr = 1e-3;
    double gradClip = 5.0;
    int workers = 0;
    uint64_t seed = 7;

    /**
     * Checkpointing: with a path set, train() saves the model after
     * the final epoch, and after every Nth epoch when `every` > 0.
     */
    io::CheckpointHook checkpoint;
};

/** A trained Ithemal predictor. */
class Ithemal
{
  public:
    Ithemal(const bhive::Dataset &dataset, IthemalConfig config);

    /** Train on the dataset's train split; returns final epoch loss. */
    double train();

    /** Predict timings for a split (parallel). */
    std::vector<double>
    predictAll(const std::vector<bhive::Entry> &entries) const;

    /** Evaluate on a split. */
    EvalResult evaluate(const std::vector<bhive::Entry> &entries) const;

    surrogate::Model &model() { return *model_; }

  private:
    const bhive::Dataset &dataset_;
    IthemalConfig config_;
    std::vector<surrogate::EncodedBlock> encoded_;
    std::unique_ptr<surrogate::Model> model_;
    Rng rng_;
};

} // namespace difftune::core

#endif // DIFFTUNE_CORE_ITHEMAL_HH
