/**
 * @file
 * Evaluation implementation.
 */

#include "core/evaluate.hh"

#include "base/parallel.hh"
#include "stats/metrics.hh"

namespace difftune::core
{

EvalResult
evaluate(const params::Simulator &sim, const params::ParamTable &table,
         const bhive::Dataset &dataset,
         const std::vector<bhive::Entry> &entries)
{
    std::vector<double> predictions(entries.size());
    parallelFor(entries.size(), 0, [&](size_t i) {
        predictions[i] = sim.timing(dataset.block(entries[i]), table);
    });
    return evaluatePredictions(std::move(predictions), entries);
}

EvalResult
evaluatePredictions(std::vector<double> predictions,
                    const std::vector<bhive::Entry> &entries)
{
    std::vector<double> truths(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        truths[i] = entries[i].timing;

    EvalResult result;
    result.error = stats::mape(predictions, truths);
    result.kendallTau = stats::kendallTau(predictions, truths);
    result.predictions = std::move(predictions);
    return result;
}

} // namespace difftune::core
