/**
 * @file
 * RawTable implementation.
 */

#include "core/raw_table.hh"

#include <cmath>

namespace difftune::core
{

/**
 * Saturation point (in normalized units) of the parameter-input soft
 * clamp; see RawTable::paramInputs.
 */
constexpr double softClampCap = 1.25;

namespace
{

/** Flatten one opcode's actual values minus lower bounds. */
std::array<double, params::perOpcodeParams>
opcodeRecord(const params::ParamTable &table, size_t op)
{
    const auto &inst = table.perOpcode[op];
    std::array<double, params::perOpcodeParams> rec{};
    size_t i = 0;
    rec[i++] = inst.numMicroOps - 1.0; // lb 1
    rec[i++] = inst.writeLatency;      // lb 0
    for (double ra : inst.readAdvance)
        rec[i++] = ra;
    for (double pc : inst.portMap)
        rec[i++] = pc;
    return rec;
}

/**
 * The soft clamp the trainable path applies (see
 * RawTable::paramInputs) so the surrogate sees one consistent input
 * transform in every phase, including frozen-table serving.
 */
double
softClamp(double x)
{
    return softClampCap * std::tanh(x / softClampCap);
}

/** Assemble one opcode's input column given precomputed globals. */
nn::Tensor
opcodeTensor(const std::array<double, params::perOpcodeParams> &rec,
             double dw, double rob, const ParamNormalizer &norm)
{
    nn::Tensor t(norm.paramDim(), 1);
    for (int i = 0; i < params::perOpcodeParams; ++i)
        t.data[i] = softClamp(rec[i] * norm.perOpcode[i]);
    t.data[params::perOpcodeParams + 0] = dw;
    t.data[params::perOpcodeParams + 1] = rob;
    return t;
}

} // namespace

ParamNormalizer::ParamNormalizer(const params::SamplingDist &dist)
{
    auto inv = [](double width) { return 1.0 / std::max(1.0, width); };
    perOpcode.reserve(params::perOpcodeParams);
    perOpcode.push_back(inv(dist.uopsMax - dist.uopsMin));
    perOpcode.push_back(inv(dist.writeLatencyMax));
    for (int i = 0; i < params::numReadAdvance; ++i)
        perOpcode.push_back(inv(dist.readAdvanceMax));
    for (int i = 0; i < params::numPorts; ++i)
        perOpcode.push_back(inv(dist.portMaxCycles));
    globals[0] = inv(dist.dispatchMax - dist.dispatchMin);
    globals[1] = inv(dist.robMax - dist.robMin);
}

std::vector<nn::Var>
constParamInputs(nn::Graph &graph, const params::ParamTable &table,
                 const isa::BasicBlock &block, const ParamNormalizer &norm)
{
    // Globals are shared by every instruction of the block.
    const double dw =
        softClamp((table.dispatchWidth - 1.0) * norm.globals[0]);
    const double rob =
        softClamp((table.reorderBufferSize - 1.0) * norm.globals[1]);

    std::vector<nn::Var> result;
    result.reserve(block.size());
    for (const auto &inst : block.insts) {
        result.push_back(graph.input(opcodeTensor(
            opcodeRecord(table, inst.opcode), dw, rob, norm)));
    }
    return result;
}

nn::Tensor
opcodeParamInput(const params::ParamTable &table, isa::OpcodeId op,
                 const ParamNormalizer &norm)
{
    const double dw =
        softClamp((table.dispatchWidth - 1.0) * norm.globals[0]);
    const double rob =
        softClamp((table.reorderBufferSize - 1.0) * norm.globals[1]);
    return opcodeTensor(opcodeRecord(table, op), dw, rob, norm);
}

RawTable::RawTable(const params::ParamTable &init,
                   const ParamNormalizer &norm)
    : numOpcodes_(init.numOpcodes()), norm_(norm)
{
    perOpcodeIdx_ =
        params_.add(int(numOpcodes_), params::perOpcodeParams);
    globalsIdx_ = params_.add(2, 1);

    nn::Tensor &raw = params_[perOpcodeIdx_];
    for (size_t op = 0; op < numOpcodes_; ++op) {
        const auto rec = opcodeRecord(init, op);
        for (int i = 0; i < params::perOpcodeParams; ++i)
            raw.at(int(op), i) = rec[i];
    }
    nn::Tensor &glob = params_[globalsIdx_];
    glob.data[0] = init.dispatchWidth - 1.0;
    glob.data[1] = init.reorderBufferSize - 1.0;
}

std::vector<nn::Var>
RawTable::paramInputs(nn::Graph &graph, const isa::BasicBlock &block,
                      nn::Grads *sink) const
{
    // The surrogate is only trained on parameters drawn from the
    // sampling distribution (normalized inputs in [0, 1]); outside
    // that range it extrapolates arbitrarily (Section VII). A tanh
    // soft clamp keeps the optimized table inside the trusted region
    // while staying differentiable: cap * tanh(x / cap) is identity
    // near 0 and saturates smoothly at `cap`. The fused
    // scaledSoftClamp op is bit-identical to the primitive chain
    // scale(tanh(scale(scaleByVec(abs(x), s), 1/cap)), cap).
    constexpr double cap = softClampCap;

    // |raw globals|, normalized, shared across instructions.
    nn::Var glob = graph.param(params_, globalsIdx_, sink);
    nn::Var glob_n = graph.scaledSoftClamp(
        glob, {norm_.globals[0], norm_.globals[1]}, cap);

    std::vector<double> scales(norm_.perOpcode);
    std::vector<nn::Var> result;
    result.reserve(block.size());
    for (const auto &inst : block.insts) {
        nn::Var row = graph.paramRow(params_, perOpcodeIdx_,
                                     int(inst.opcode), sink);
        nn::Var row_n = graph.scaledSoftClamp(row, scales, cap);
        result.push_back(graph.concat({row_n, glob_n}));
    }
    return result;
}

params::ParamTable
RawTable::toParamTable() const
{
    params::ParamTable table(numOpcodes_);
    const nn::Tensor &raw = params_[perOpcodeIdx_];
    for (size_t op = 0; op < numOpcodes_; ++op) {
        auto &inst = table.perOpcode[op];
        int i = 0;
        inst.numMicroOps = std::fabs(raw.at(int(op), i++)) + 1.0;
        inst.writeLatency = std::fabs(raw.at(int(op), i++));
        for (double &ra : inst.readAdvance)
            ra = std::fabs(raw.at(int(op), i++));
        for (double &pc : inst.portMap)
            pc = std::fabs(raw.at(int(op), i++));
    }
    const nn::Tensor &glob = params_[globalsIdx_];
    table.dispatchWidth = std::fabs(glob.data[0]) + 1.0;
    table.reorderBufferSize = std::fabs(glob.data[1]) + 1.0;
    return table;
}

void
RawTable::enforceMask(const params::ParamMask &mask,
                      const params::ParamTable &base)
{
    nn::Tensor &raw = params_[perOpcodeIdx_];
    for (size_t op = 0; op < numOpcodes_; ++op) {
        const auto rec = opcodeRecord(base, op);
        int i = 0;
        if (!mask.numMicroOps)
            raw.at(int(op), 0) = rec[0];
        i = 1;
        if (!mask.writeLatency)
            raw.at(int(op), 1) = rec[1];
        i = 2;
        if (!mask.readAdvance)
            for (int k = 0; k < params::numReadAdvance; ++k)
                raw.at(int(op), i + k) = rec[i + k];
        i += params::numReadAdvance;
        if (!mask.portMap)
            for (int k = 0; k < params::numPorts; ++k)
                raw.at(int(op), i + k) = rec[i + k];
    }
    if (!mask.globals) {
        params_[globalsIdx_].data[0] = base.dispatchWidth - 1.0;
        params_[globalsIdx_].data[1] = base.reorderBufferSize - 1.0;
    }
}

} // namespace difftune::core
