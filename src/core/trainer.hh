/**
 * @file
 * Data-parallel minibatch machinery shared by surrogate training,
 * parameter-table training and the Ithemal baseline.
 *
 * Each worker shard owns a reusable Graph and Grads buffer; a batch
 * maps sample indices over the shards, then gradients are reduced in
 * shard order and averaged — bit-reproducible regardless of thread
 * scheduling because shard boundaries are a pure function of the
 * batch size and worker count.
 */

#ifndef DIFFTUNE_CORE_TRAINER_HH
#define DIFFTUNE_CORE_TRAINER_HH

#include <functional>
#include <memory>

#include "nn/optim.hh"

namespace difftune::core
{

/** Reusable per-shard training state for one trainable ParamSet. */
class BatchRunner
{
  public:
    /**
     * @param trainable the ParamSet receiving gradients
     * @param workers max worker threads (<= 0: library default)
     */
    BatchRunner(const nn::ParamSet &trainable, int workers);

    /**
     * One sample's forward+backward. Must build the loss in @p graph,
     * call backward, and return the scalar loss. Gradients for the
     * trainable set must be accumulated into @p grads.
     */
    using SampleFn =
        std::function<double(size_t index, nn::Graph &graph,
                             nn::Grads &grads)>;

    /**
     * Run @p body for sample indices [begin, end) in parallel,
     * average the gradients into an internal buffer, and return the
     * mean loss. Call apply() afterwards to take an optimizer step.
     */
    double runBatch(size_t begin, size_t end, const SampleFn &body);

    /** Clip the averaged batch gradient and step the optimizer. */
    void apply(nn::ParamSet &params, nn::Optimizer &optimizer,
               double clip = 0.0);

    const nn::Grads &batchGrads() const { return total_; }

  private:
    int workers_;
    std::vector<std::unique_ptr<nn::Graph>> graphs_;
    std::vector<std::unique_ptr<nn::Grads>> shardGrads_;
    nn::Grads total_;
};

} // namespace difftune::core

#endif // DIFFTUNE_CORE_TRAINER_HH
