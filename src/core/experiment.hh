/**
 * @file
 * Canonical experiment configurations shared by the benchmark
 * harness, plus a small on-disk artifact cache so the per-table
 * bench binaries can share expensive trained artifacts (learned
 * parameter tables, Ithemal models) in whatever order they run.
 *
 * Every size here scales with DIFFTUNE_SCALE (default 1.0): the
 * defaults reproduce the paper's qualitative results in minutes on a
 * multicore CPU; larger scales sharpen the numbers.
 */

#ifndef DIFFTUNE_CORE_EXPERIMENT_HH
#define DIFFTUNE_CORE_EXPERIMENT_HH

#include <string>

#include "core/difftune.hh"
#include "core/ithemal.hh"

namespace difftune::core
{

/** Scaled experiment sizes. */
struct ExperimentScale
{
    size_t corpusBlocks;     ///< synthetic BHive corpus size
    double simulatedMultiple; ///< |D^| / |train|
    int surrogateLoops;
    int tableEpochs;
    int refineRounds;
    int ithemalEpochs;
    int hidden;
    int embed;

    /** Read DIFFTUNE_SCALE and derive all sizes. */
    static ExperimentScale fromEnv();
};

/** The corpus shared by every experiment (generated once). */
const bhive::Corpus &sharedCorpus();

/** The measured dataset for @p uarch (built once per uarch). */
const bhive::Dataset &sharedDataset(hw::Uarch uarch);

/** Standard DiffTune configuration at the current scale. */
DiffTuneConfig standardConfig(uint64_t seed);

/** Standard Ithemal configuration at the current scale. */
IthemalConfig standardIthemal(uint64_t seed);

/**
 * Learned-table artifact cache. Runs DiffTune for (@p uarch,
 * @p variant) unless a cached result exists under the cache
 * directory (DIFFTUNE_CACHE, default "difftune_cache/").
 *
 * @param variant "full" (Table IV), "wlonly" (Section VI-B) or
 *        "usim" (Table VIII)
 * @param seed run seed (varies across the paper's 3 repetitions)
 */
params::ParamTable learnedTable(hw::Uarch uarch,
                                const std::string &variant,
                                uint64_t seed);

/** Cache directory path (created on demand). */
std::string cacheDir();

} // namespace difftune::core

#endif // DIFFTUNE_CORE_EXPERIMENT_HH
