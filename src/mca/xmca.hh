/**
 * @file
 * XMca: an out-of-order superscalar basic-block CPU simulator modeled
 * on llvm-mca's Intel x86 simulation model (Section II-A).
 *
 * The simulator makes llvm-mca's two core modeling assumptions: the
 * frontend is never the bottleneck (instruction decode is ignored) and
 * all memory accesses hit the L1 cache (the memory hierarchy is
 * ignored). Execution is modeled in four stages:
 *
 *  - dispatch: up to DispatchWidth micro-ops enter per cycle, in
 *    program order, each reserving reorder-buffer slots; dispatch
 *    stalls while the reorder buffer is full;
 *  - issue: an instruction waits until its register operands are
 *    ready (producer issue time + WriteLatency, accelerated by the
 *    consumer's ReadAdvanceCycles, clipped at zero) and until every
 *    execution port in its PortMap is free;
 *  - execute: the instruction occupies each port for the number of
 *    cycles its PortMap specifies;
 *  - retire: instructions retire in program order, freeing their
 *    reorder-buffer slots.
 *
 * The load/store unit enforces store->store program ordering but does
 * not track addresses, so (like llvm-mca) XMca cannot model
 * store-to-load dependence chains — the ADD32mr case study.
 */

#ifndef DIFFTUNE_MCA_XMCA_HH
#define DIFFTUNE_MCA_XMCA_HH

#include <cstdint>
#include <vector>

#include "params/simulator.hh"

namespace difftune::mca
{

/** Per-stream-instruction event times (for tests and case studies). */
struct TraceEntry
{
    int64_t dispatched; ///< cycle the last micro-op entered the ROB
    int64_t issued;     ///< cycle execution started
    int64_t retired;    ///< cycle the instruction left the ROB
};

/** Optional detailed result of one simulation. */
struct Trace
{
    std::vector<TraceEntry> entries;
    int64_t totalCycles = 0;
};

/** llvm-mca-analog simulator. */
class XMca : public params::Simulator
{
  public:
    /** @param iterations block repetitions per run (paper: 100). */
    explicit XMca(int iterations = 100) : iterations_(iterations) {}

    double timing(const isa::BasicBlock &block,
                  const params::ParamTable &table) const override;

    std::string name() const override { return "xmca"; }
    int iterations() const override { return iterations_; }

    /**
     * Simulate and also record per-instruction event times.
     * @param trace filled with one entry per stream instruction
     *        (block.size() * iterations() entries)
     * @return the timing (cycles / iterations)
     */
    double timingWithTrace(const isa::BasicBlock &block,
                           const params::ParamTable &table,
                           Trace &trace) const;

  private:
    int iterations_;
};

} // namespace difftune::mca

#endif // DIFFTUNE_MCA_XMCA_HH
