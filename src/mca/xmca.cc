/**
 * @file
 * XMca implementation.
 *
 * The simulation walks the unrolled instruction stream once, in
 * program order. Dispatch is tracked cycle-accurately (bandwidth and
 * reorder-buffer occupancy); issue, execute and retire times are
 * computed per instruction from dependence and port-availability
 * state. Because resources are allocated in program order and all
 * event times of older instructions are final when a younger
 * instruction dispatches, a single pass is exact for this model.
 */

#include "mca/xmca.hh"

#include <algorithm>
#include <array>
#include <deque>

#include "base/interval_schedule.hh"
#include "base/logging.hh"

namespace difftune::mca
{

namespace
{

/** Producer bookkeeping for one architectural register. */
struct RegState
{
    int64_t issueCycle = -1; ///< issue cycle of the last writer
    int writeLatency = 0;    ///< WriteLatency of the last writer
};

/** An in-flight reorder-buffer allocation. */
struct RobEntry
{
    int64_t retireCycle;
    int uops;
};

} // namespace

double
XMca::timing(const isa::BasicBlock &block,
             const params::ParamTable &table) const
{
    Trace trace;
    return timingWithTrace(block, table, trace);
}

double
XMca::timingWithTrace(const isa::BasicBlock &block,
                      const params::ParamTable &table, Trace &trace) const
{
    if (block.empty()) {
        trace.totalCycles = 0;
        return 0.0;
    }

    const int dispatch_width = table.dispatch();
    const int rob_size = table.robSize();

    std::array<RegState, isa::numRegs> regs{};
    PortSchedule ports(params::numPorts);
    std::vector<PortSchedule::Requirement> port_reqs;
    std::deque<RobEntry> rob;
    int rob_used = 0;

    int64_t cycle = 0;          // current dispatch cycle
    int bandwidth_left = dispatch_width;
    int64_t last_retire = 0;    // in-order retire frontier
    int64_t last_store_issue = -1; // store->store ordering
    int64_t max_retire = 0;

    trace.entries.clear();
    trace.entries.reserve(block.size() * iterations_);

    auto retireUpTo = [&](int64_t now) {
        while (!rob.empty() && rob.front().retireCycle <= now) {
            rob_used -= rob.front().uops;
            rob.pop_front();
        }
    };

    for (int iter = 0; iter < iterations_; ++iter) {
        for (const auto &inst : block.insts) {
            const auto &op = inst.info();
            const int uops = table.uops(inst.opcode);
            const int latency = table.latency(inst.opcode);

            // ---- Dispatch: reserve ROB space, then stream uops
            // through the dispatch stage at dispatch_width per cycle.
            retireUpTo(cycle);
            // An instruction wider than the whole ROB dispatches into
            // an empty ROB (llvm-mca likewise never deadlocks here).
            while (rob_used + uops > rob_size && !rob.empty()) {
                int64_t next = rob.front().retireCycle;
                cycle = std::max(cycle + 1, next);
                bandwidth_left = dispatch_width;
                retireUpTo(cycle);
            }
            rob_used += uops;

            int remaining = uops;
            while (remaining > 0) {
                if (bandwidth_left == 0) {
                    ++cycle;
                    bandwidth_left = dispatch_width;
                }
                int take = std::min(remaining, bandwidth_left);
                remaining -= take;
                bandwidth_left -= take;
            }
            const int64_t dispatched = cycle;

            // ---- Issue: wait for operands and for every port in the
            // instruction's PortMap to be simultaneously free.
            int64_t ready = dispatched;
            for (size_t k = 0; k < inst.reads.size(); ++k) {
                const auto &producer = regs[inst.reads[k]];
                if (producer.issueCycle < 0)
                    continue;
                const int ra_idx =
                    std::min<size_t>(k, params::numReadAdvance - 1);
                const int advance =
                    table.readAdvanceCycles(inst.opcode, ra_idx);
                const int chain =
                    std::max(0, producer.writeLatency - advance);
                ready = std::max(ready, producer.issueCycle + chain);
            }

            port_reqs.clear();
            int max_port_cycles = 0;
            for (int p = 0; p < params::numPorts; ++p) {
                const int occupancy = table.portCycles(inst.opcode, p);
                if (occupancy > 0) {
                    port_reqs.emplace_back(p, occupancy);
                    max_port_cycles = std::max(max_port_cycles, occupancy);
                }
            }

            // Load/store unit: stores may not issue out of program
            // order with respect to older stores.
            const bool is_store = op.mem == isa::MemMode::Store ||
                                  op.mem == isa::MemMode::LoadStore;
            if (is_store)
                ready = std::max(ready, last_store_issue);

            const int64_t issue = ports.acquireJoint(port_reqs, ready);
            if (is_store)
                last_store_issue = issue;
            if ((iter & 0xf) == 0)
                ports.prune(cycle);

            // ---- Writeback: publish the new producer for each
            // written register.
            for (isa::RegId reg : inst.writes) {
                regs[reg].issueCycle = issue;
                regs[reg].writeLatency = latency;
            }

            // ---- Retire: in program order once execution completes.
            const int64_t complete =
                issue + std::max(latency, max_port_cycles);
            last_retire = std::max(last_retire, complete);
            const int64_t retired = last_retire;
            rob.push_back({retired, uops});
            max_retire = std::max(max_retire, retired);

            trace.entries.push_back({dispatched, issue, retired});
        }
    }

    trace.totalCycles = std::max<int64_t>(max_retire, 1);
    return double(trace.totalCycles) / double(iterations_);
}

} // namespace difftune::mca
