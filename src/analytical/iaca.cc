/**
 * @file
 * XIaca implementation.
 */

#include "analytical/iaca.hh"

#include <algorithm>
#include <array>

#include "base/logging.hh"
#include "hw/inst_model.hh"

namespace difftune::analytical
{

XIaca::XIaca(hw::Uarch uarch) : config_(hw::uarchConfig(uarch))
{
    fatal_if(!supports(uarch),
             "XIaca only analyzes Intel microarchitectures (got {})",
             hw::uarchName(uarch));
}

bool
XIaca::supports(hw::Uarch uarch)
{
    return hw::isIntel(uarch);
}

double
XIaca::timing(const isa::BasicBlock &block) const
{
    using isa::MemMode;
    using isa::OpClass;
    if (block.empty())
        return 0.0;

    // ---- Frontend bound: renamed micro-ops per iteration.
    double uops = 0.0;
    // ---- Resource pressure per functional-class pool.
    std::array<double, size_t(OpClass::NumOpClasses)> pressure{};
    double load_uops = 0.0, store_uops = 0.0;

    for (const auto &inst : block.insts) {
        const auto &op = inst.info();
        const hw::InstTiming timing = hw::instTiming(config_, inst.opcode);
        const bool eliminated =
            inst.isZeroIdiom() || timing.eliminable;
        uops += eliminated ? 1.0 : double(timing.uops);
        if (eliminated)
            continue;
        if (op.mem == MemMode::Load || op.mem == MemMode::LoadStore)
            load_uops += 1.0;
        if (op.mem == MemMode::Store || op.mem == MemMode::LoadStore)
            store_uops += 1.0;
        if (op.opClass != OpClass::Nop && op.opClass != OpClass::Load &&
            op.opClass != OpClass::Store) {
            const auto &cls = config_.classTiming[size_t(op.opClass)];
            pressure[size_t(op.opClass)] +=
                double(timing.occupancy) / double(std::max(1, cls.units));
        }
    }

    double bound = uops / double(config_.renameWidth);
    for (size_t cls = 0; cls < pressure.size(); ++cls)
        bound = std::max(bound, pressure[cls]);
    bound = std::max(bound, load_uops / 2.0);
    bound = std::max(bound, store_uops);

    // ---- Dependence bound: steady-state slope of the latency-only
    // recurrence (registers + store-to-load forwarding), measured
    // over unrolled iterations.
    constexpr int warm = 8, span = 16;
    std::array<double, isa::numRegs> ready{};
    std::vector<std::pair<uint32_t, double>> mem_ready;
    double warm_finish = 0.0, finish = 0.0;
    for (int iter = 0; iter < warm + span; ++iter) {
        for (const auto &inst : block.insts) {
            const auto &op = inst.info();
            const hw::InstTiming timing =
                hw::instTiming(config_, inst.opcode);
            const bool eliminated =
                inst.isZeroIdiom() || timing.eliminable;

            double start = 0.0;
            for (isa::RegId reg : inst.reads) {
                if (op.stackOp && reg == isa::stackPointer)
                    continue;
                start = std::max(start, ready[reg]);
            }
            double result = start;
            if (!eliminated) {
                const bool has_load = op.mem == MemMode::Load ||
                                      op.mem == MemMode::LoadStore;
                const bool has_store = op.mem == MemMode::Store ||
                                       op.mem == MemMode::LoadStore;
                const uint32_t key = inst.mem.addressKey();
                if (has_load && !op.stackOp) {
                    double data = start + config_.l1Latency;
                    for (const auto &[mem_key, t] : mem_ready)
                        if (mem_key == key)
                            data = std::max(data, t);
                    result = data;
                }
                if (op.opClass != OpClass::Load &&
                    op.opClass != OpClass::Store &&
                    op.opClass != OpClass::Nop)
                    result += timing.execLatency;
                if (has_store && !op.stackOp) {
                    const double fwd =
                        result + config_.storeForwardDelay;
                    bool found = false;
                    for (auto &[mem_key, t] : mem_ready) {
                        if (mem_key == key) {
                            t = fwd;
                            found = true;
                        }
                    }
                    if (!found)
                        mem_ready.emplace_back(key, fwd);
                }
            }
            for (isa::RegId reg : inst.writes) {
                if (op.stackOp && reg == isa::stackPointer)
                    continue;
                ready[reg] = result;
            }
            finish = std::max(finish, result);
        }
        if (iter + 1 == warm)
            warm_finish = finish;
    }
    const double chain = (finish - warm_finish) / double(span);
    return std::max(bound, chain);
}

} // namespace difftune::analytical
