/**
 * @file
 * XIaca: an IACA-style analytical throughput model.
 *
 * IACA is Intel's closed-source static analyzer; in Table IV it is
 * the most accurate *analytical* baseline, Intel-only. Our stand-in
 * follows the same recipe analytical models use: predicted timing is
 * the maximum of (a) the frontend bound (micro-ops / dispatch width),
 * (b) the per-resource port-pressure bound, and (c) the dependence-
 * chain bound across loop iterations (critical cycle through
 * registers and memory). Its internal tables are tuned per Intel
 * microarchitecture with knowledge llvm-mca's model lacks (zero
 * idioms, move elimination, store forwarding), which is why it sits
 * between Ithemal and llvm-mca in accuracy — and, like IACA, it
 * refuses to predict AMD (Zen 2) targets.
 */

#ifndef DIFFTUNE_ANALYTICAL_IACA_HH
#define DIFFTUNE_ANALYTICAL_IACA_HH

#include "hw/uarch.hh"
#include "isa/instruction.hh"

namespace difftune::analytical
{

/** Analytical throughput model, Intel microarchitectures only. */
class XIaca
{
  public:
    /**
     * @param uarch target microarchitecture; must be Intel
     *        (supports() reports false for Zen 2, and predictions
     *        are unavailable there, matching Table IV's "N/A")
     */
    explicit XIaca(hw::Uarch uarch);

    /** @return whether the model covers @p uarch. */
    static bool supports(hw::Uarch uarch);

    /** Predicted steady-state timing (cycles per block iteration). */
    double timing(const isa::BasicBlock &block) const;

  private:
    const hw::UarchConfig &config_;
};

} // namespace difftune::analytical

#endif // DIFFTUNE_ANALYTICAL_IACA_HH
