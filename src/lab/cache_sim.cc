#include "lab/cache_sim.hh"

#include <cstdio>

#include "base/logging.hh"
#include "obs/stage_timer.hh"

namespace difftune::lab
{

std::string
simTableHeader()
{
    return "policy    requests      hits   hit-rate  evictions "
           " rejected   p50(ns)   p99(ns)";
}

std::string
SimResult::row() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%-8s %9llu %9llu   %6.2f%% %10llu %9llu %9llu "
                  "%9llu",
                  policy.c_str(),
                  (unsigned long long)requests,
                  (unsigned long long)counters.hits, 100.0 * hitRate,
                  (unsigned long long)counters.evictions,
                  (unsigned long long)counters.rejections,
                  (unsigned long long)probeP50Ns,
                  (unsigned long long)probeP99Ns);
    return buf;
}

SimResult
simulatePolicy(const TraceWorkload &trace,
               const std::string &policy_name, size_t capacity,
               obs::MetricRegistry &registry)
{
    PolicyCache<uint32_t, double> cache(
        capacity, policyFactory(policy_name)(capacity));
    obs::LatencyHistogram &probe =
        registry.histogram("lab." + policy_name + ".probe_ns");

    for (const TraceRequest &req : trace.requests()) {
        obs::StageTimer timer(&probe);
        // The simulated "prediction" only has to be a pure function
        // of the key so a later hit returns the same value.
        if (!cache.get(req.block))
            cache.put(req.block, double(req.block));
    }

    SimResult result;
    result.policy = policy_name;
    result.requests = trace.requests().size();
    result.counters = cache.counters();
    result.hitRate =
        result.requests == 0
            ? 0.0
            : double(result.counters.hits) / double(result.requests);
    const obs::HistogramSnapshot snap = probe.snapshot();
    result.probeP50Ns = uint64_t(snap.percentile(0.50));
    result.probeP99Ns = uint64_t(snap.percentile(0.99));
    return result;
}

std::vector<SimResult>
sweepPolicies(const TraceWorkload &trace, size_t capacity,
              obs::MetricRegistry &registry)
{
    std::vector<SimResult> results;
    for (const std::string &name : policyNames())
        results.push_back(
            simulatePolicy(trace, name, capacity, registry));
    return results;
}

} // namespace difftune::lab
