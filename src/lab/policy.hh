/**
 * @file
 * Pluggable cache replacement/admission policies (the traffic lab).
 *
 * A CachePolicy owns the *ordering* decisions of a bounded cache —
 * which resident entry to evict next, and whether a new key is worth
 * admitting at all — while the owning cache (lab::PolicyCache, and
 * through it serve::ShardedLruCache) owns the storage. The split
 * keeps policies storage-agnostic: they see dense slot handles
 * (0..capacity-1, assigned by the cache) plus an opaque 64-bit key
 * hash for frequency sketches, never keys or values.
 *
 * Contract (enforced by tests/test_lab.cc property tests):
 *  - touch(slot) is only called on a resident slot (a lookup hit).
 *  - onMiss(hash) is called on every lookup miss, before any put.
 *  - admit(hash) is only called when the cache is full; returning
 *    false rejects the insert (the caller serves uncached) and must
 *    not change residency.
 *  - victim() is only called after admit() returned true and must
 *    return a currently resident slot.
 *  - inserted()/erased() bracket residency; a slot is never double-
 *    inserted or double-erased.
 *
 * Policies are deliberately single-threaded: every stripe of a
 * sharded cache owns one policy instance behind that stripe's mutex.
 *
 * By the serving determinism contract (docs/SERVING.md) a policy can
 * only ever change *speed*, never results: predictions are pure per
 * canonical block, so eviction and admission choices only decide
 * whether a forward pass re-runs. See docs/TRAFFIC_LAB.md.
 */

#ifndef DIFFTUNE_LAB_POLICY_HH
#define DIFFTUNE_LAB_POLICY_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace difftune::lab
{

/** Replacement + admission policy over dense slot handles. */
class CachePolicy
{
  public:
    virtual ~CachePolicy() = default;

    /** Stable identifier ("lru", "slru", "tinylfu"). */
    virtual const char *name() const = 0;

    /** Lookup hit: refresh recency/frequency of a resident slot. */
    virtual void touch(uint32_t slot) = 0;

    /** Lookup miss: admission sketches may record demand. */
    virtual void onMiss(uint64_t key_hash) { (void)key_hash; }

    /**
     * The cache is full and @p key_hash wants in: admit (an evict
     * of victim() follows) or reject (caller serves uncached)?
     */
    virtual bool admit(uint64_t key_hash) = 0;

    /** The key hashing to @p key_hash now resides in @p slot. */
    virtual void inserted(uint32_t slot, uint64_t key_hash) = 0;

    /** The resident slot to evict next. */
    virtual uint32_t victim() = 0;

    /** @p slot was removed from the cache. */
    virtual void erased(uint32_t slot) = 0;
};

/**
 * Builds one policy instance per cache stripe. Factories must be
 * pure (no shared state between the instances they return): stripes
 * run concurrently, each policy behind its own stripe mutex.
 */
using PolicyFactory =
    std::function<std::unique_ptr<CachePolicy>(size_t capacity)>;

/** Classic LRU: evict the least-recently-used slot, admit always.
 *  Byte-matches the legacy serve::LruCache decision sequence. */
std::unique_ptr<CachePolicy> makeLruPolicy(size_t capacity);

/**
 * Segmented LRU (2Q-style): new entries land in a probationary
 * segment; a second hit promotes to a protected segment capped at
 * @p protected_fraction of capacity (protected overflow demotes back
 * to probation). Scans wash through probation without displacing the
 * protected working set. Victim: probation LRU, else protected LRU.
 */
std::unique_ptr<CachePolicy>
makeSegmentedLruPolicy(size_t capacity,
                       double protected_fraction = 0.8);

/**
 * TinyLFU-style admission over an LRU backbone: a doorkeeper bloom
 * bit absorbs first sightings, a 4-row count-min sketch estimates
 * access frequency beyond it, and a full cache only admits a new key
 * when its estimate strictly beats the current victim's (one-hit
 * wonders and scans are rejected outright). Counters halve every
 * 8 x capacity recorded accesses so the sketch tracks the recent
 * popularity distribution rather than all of history.
 */
std::unique_ptr<CachePolicy> makeTinyLfuPolicy(size_t capacity);

/** Factory for a named policy; fatal() on an unknown name. */
PolicyFactory policyFactory(std::string_view name);

/** The registered policy names, sweep order: lru, slru, tinylfu. */
const std::vector<std::string> &policyNames();

/**
 * Finalize an std::hash value for sketch/stripe use. std::hash is
 * identity for integers on common library implementations, so raw
 * values of dense ids (isa::BlockId) would correlate with whatever
 * bits a consumer reduces by; the full splitmix64 finalizer
 * decorrelates them. (ShardedLruCache::stripeFor applies the same
 * mix before picking a stripe — see the stripe-balance test.)
 */
inline uint64_t
finalizeHash(uint64_t h)
{
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

} // namespace difftune::lab

#endif // DIFFTUNE_LAB_POLICY_HH
