#include "lab/policy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace difftune::lab
{

namespace
{

constexpr uint32_t kNil = 0xffffffffu;

/**
 * Intrusive doubly-linked list over dense slot indices, front = most
 * recently used. All links live in two flat vectors sized once at
 * construction, so touch/insert/remove are pointer-free O(1) with no
 * allocation after setup (policies sit on the serving hot path
 * behind stripe mutexes).
 */
class SlotList
{
  public:
    explicit SlotList(size_t capacity)
        : next_(capacity, kNil), prev_(capacity, kNil)
    {
    }

    bool empty() const { return head_ == kNil; }
    size_t size() const { return size_; }
    uint32_t front() const { return head_; }
    uint32_t back() const { return tail_; }

    void
    pushFront(uint32_t slot)
    {
        prev_[slot] = kNil;
        next_[slot] = head_;
        if (head_ != kNil)
            prev_[head_] = slot;
        head_ = slot;
        if (tail_ == kNil)
            tail_ = slot;
        ++size_;
    }

    void
    remove(uint32_t slot)
    {
        const uint32_t p = prev_[slot];
        const uint32_t n = next_[slot];
        if (p != kNil)
            next_[p] = n;
        else
            head_ = n;
        if (n != kNil)
            prev_[n] = p;
        else
            tail_ = p;
        prev_[slot] = next_[slot] = kNil;
        --size_;
    }

    void
    moveToFront(uint32_t slot)
    {
        if (head_ == slot)
            return;
        remove(slot);
        pushFront(slot);
    }

  private:
    std::vector<uint32_t> next_;
    std::vector<uint32_t> prev_;
    uint32_t head_ = kNil;
    uint32_t tail_ = kNil;
    size_t size_ = 0;
};

/** Classic LRU; decision-sequence-identical to serve::LruCache. */
class LruPolicy final : public CachePolicy
{
  public:
    explicit LruPolicy(size_t capacity) : order_(capacity) {}

    const char *name() const override { return "lru"; }
    void touch(uint32_t slot) override { order_.moveToFront(slot); }
    bool admit(uint64_t) override { return true; }
    void inserted(uint32_t slot, uint64_t) override
    {
        order_.pushFront(slot);
    }
    uint32_t victim() override { return order_.back(); }
    void erased(uint32_t slot) override { order_.remove(slot); }

  private:
    SlotList order_;
};

/** Segmented LRU: probation + protected, promote on second hit. */
class SegmentedLruPolicy final : public CachePolicy
{
  public:
    SegmentedLruPolicy(size_t capacity, double protected_fraction)
        : probation_(capacity), protected_(capacity),
          segment_(capacity, kNone)
    {
        const double f = std::clamp(protected_fraction, 0.0, 1.0);
        // Probation must be able to hold at least one entry or no
        // key could ever be admitted past a full protected segment.
        protectedCap_ = std::min(capacity - 1,
                                 size_t(double(capacity) * f));
    }

    const char *name() const override { return "slru"; }

    void
    touch(uint32_t slot) override
    {
        if (segment_[slot] == kProtected) {
            protected_.moveToFront(slot);
            return;
        }
        // Second hit: promote out of probation; the protected
        // segment sheds its own LRU back to probation MRU when over
        // its cap, so scans can never displace more than the
        // probationary share.
        probation_.remove(slot);
        protected_.pushFront(slot);
        segment_[slot] = kProtected;
        if (protected_.size() > protectedCap_) {
            const uint32_t demoted = protected_.back();
            protected_.remove(demoted);
            probation_.pushFront(demoted);
            segment_[demoted] = kProbation;
        }
    }

    bool admit(uint64_t) override { return true; }

    void
    inserted(uint32_t slot, uint64_t) override
    {
        probation_.pushFront(slot);
        segment_[slot] = kProbation;
    }

    uint32_t
    victim() override
    {
        return probation_.empty() ? protected_.back()
                                  : probation_.back();
    }

    void
    erased(uint32_t slot) override
    {
        (segment_[slot] == kProtected ? protected_ : probation_)
            .remove(slot);
        segment_[slot] = kNone;
    }

  private:
    enum Segment : uint8_t { kNone, kProbation, kProtected };

    SlotList probation_;
    SlotList protected_;
    std::vector<uint8_t> segment_;
    size_t protectedCap_;
};

/** TinyLFU-style doorkeeper + count-min admission over LRU. */
class TinyLfuPolicy final : public CachePolicy
{
  public:
    explicit TinyLfuPolicy(size_t capacity)
        : order_(capacity), slotHash_(capacity, 0),
          resetPeriod_(8 * std::max<size_t>(capacity, 1))
    {
        size_t width = 64;
        while (width < capacity * 4)
            width <<= 1;
        mask_ = width - 1;
        for (auto &row : sketch_)
            row.assign(width, 0);
        doorkeeper_.assign(width, 0); // 8 bloom bits per byte
        dkMask_ = width * 8 - 1;
    }

    const char *name() const override { return "tinylfu"; }

    void
    touch(uint32_t slot) override
    {
        order_.moveToFront(slot);
        record(slotHash_[slot]);
    }

    void onMiss(uint64_t key_hash) override { record(key_hash); }

    bool
    admit(uint64_t key_hash) override
    {
        // Strictly beat the victim or stay out: ties go to the
        // resident entry, so one-hit wonders and scans (estimate
        // <= 1 after the doorkeeper absorbed the first sighting)
        // never displace a proven key.
        return estimate(key_hash) > estimate(slotHash_[order_.back()]);
    }

    void
    inserted(uint32_t slot, uint64_t key_hash) override
    {
        order_.pushFront(slot);
        slotHash_[slot] = key_hash;
    }

    uint32_t victim() override { return order_.back(); }
    void erased(uint32_t slot) override { order_.remove(slot); }

  private:
    void
    record(uint64_t h)
    {
        if (++ops_ >= resetPeriod_)
            age();
        if (!dkTest(h)) {
            dkSet(h);
            return; // first sighting lives in the doorkeeper bit
        }
        for (int row = 0; row < kRows; ++row) {
            uint8_t &c = sketch_[row][index(h, row)];
            if (c < kMaxCount)
                ++c;
        }
    }

    uint32_t
    estimate(uint64_t h) const
    {
        uint8_t est = kMaxCount;
        for (int row = 0; row < kRows; ++row)
            est = std::min(est, sketch_[row][index(h, row)]);
        return uint32_t(est) + (dkTest(h) ? 1u : 0u);
    }

    /** Halve every counter and drop the doorkeeper: the sketch
     *  tracks recent popularity, not all of history. */
    void
    age()
    {
        ops_ = 0;
        for (auto &row : sketch_)
            for (uint8_t &c : row)
                c >>= 1;
        std::fill(doorkeeper_.begin(), doorkeeper_.end(), 0);
    }

    /** Row index: disjoint 16-bit lanes of the finalized hash. */
    size_t
    index(uint64_t h, int row) const
    {
        return size_t((h >> (16 * row)) ^ (h >> 7)) & mask_;
    }

    bool
    dkTest(uint64_t h) const
    {
        const uint64_t bit = (h ^ (h >> 21)) & dkMask_;
        return doorkeeper_[bit >> 3] & (1u << (bit & 7));
    }

    void
    dkSet(uint64_t h)
    {
        const uint64_t bit = (h ^ (h >> 21)) & dkMask_;
        doorkeeper_[bit >> 3] |= uint8_t(1u << (bit & 7));
    }

    static constexpr int kRows = 4;
    static constexpr uint8_t kMaxCount = 15; // 4-bit, halved by age()

    SlotList order_;
    std::vector<uint64_t> slotHash_;
    std::vector<uint8_t> sketch_[kRows];
    std::vector<uint8_t> doorkeeper_;
    size_t mask_ = 0;
    uint64_t dkMask_ = 0;
    size_t ops_ = 0;
    const size_t resetPeriod_;
};

} // namespace

std::unique_ptr<CachePolicy>
makeLruPolicy(size_t capacity)
{
    return std::make_unique<LruPolicy>(capacity);
}

std::unique_ptr<CachePolicy>
makeSegmentedLruPolicy(size_t capacity, double protected_fraction)
{
    return std::make_unique<SegmentedLruPolicy>(capacity,
                                                protected_fraction);
}

std::unique_ptr<CachePolicy>
makeTinyLfuPolicy(size_t capacity)
{
    return std::make_unique<TinyLfuPolicy>(capacity);
}

PolicyFactory
policyFactory(std::string_view name)
{
    if (name == "lru")
        return [](size_t cap) { return makeLruPolicy(cap); };
    if (name == "slru")
        return [](size_t cap) { return makeSegmentedLruPolicy(cap); };
    if (name == "tinylfu")
        return [](size_t cap) { return makeTinyLfuPolicy(cap); };
    fatal("unknown cache policy '{}' (expected lru|slru|tinylfu)",
          std::string(name));
}

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names = {"lru", "slru",
                                                   "tinylfu"};
    return names;
}

} // namespace difftune::lab
