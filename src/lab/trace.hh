/**
 * @file
 * Deterministic trace-driven load generation (the traffic lab).
 *
 * TraceWorkload produces the repeated-query request streams the
 * serving stack actually faces once a surrogate is trained and
 * deployed (DiffTune's serve-many regime): block popularity is
 * Zipfian with configurable skew, arrivals come in on/off bursts,
 * a fraction of requests arrive respelled (whitespace near-misses
 * that exercise the interner path), and requests can fan out over a
 * multi-model mix for registry traffic.
 *
 * Everything is derived from explicit seeds through base/random.hh,
 * so the same TraceConfig always yields the same trace, and a trace
 * serializes to a compact little-endian artifact (block *ranks*, not
 * texts — the corpus regenerates from its recorded seed) that
 * replays byte-identically: two cache policies, two engines, or an
 * engine and a daemon all see the exact same request sequence. See
 * docs/TRAFFIC_LAB.md for the file format.
 */

#ifndef DIFFTUNE_LAB_TRACE_HH
#define DIFFTUNE_LAB_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace difftune::lab
{

/** Knobs for TraceWorkload::generate (all defaults are sane). */
struct TraceConfig
{
    uint64_t seed = 1;         ///< request-stream seed
    uint64_t corpusSeed = 7;   ///< bhive::Corpus::generate seed
    uint64_t corpusTarget = 256; ///< ~distinct blocks (pre-dedup)
    uint64_t requests = 4096;  ///< trace length

    /**
     * Zipf exponent s: popularity of the r-th most popular block is
     * proportional to 1 / r^s. 0 degenerates to uniform; >= 1.0 is
     * the heavily skewed serving regime the cache sweep targets.
     */
    double zipfSkew = 1.1;

    /** Fraction of requests whose raw text arrives respelled. */
    double respellProb = 0.25;

    // On/off burst arrival model: dwell in a burst for a
    // geometric(1/meanBurst) number of requests with exponential
    // inter-arrivals at burstHz, then idle one exponential gap at
    // idleHz. meanBurst <= 1 degenerates to Poisson at idleHz.
    double burstHz = 200000.0; ///< arrival rate inside a burst
    double idleHz = 10000.0;   ///< rate of burst starts when idle
    double meanBurst = 64.0;   ///< mean requests per burst

    /** Model-mix size (registry traffic); 1 = single model. */
    uint32_t models = 1;

    /** Optional mix weights (size == models; empty = uniform). */
    std::vector<double> modelWeights;
};

/** One trace record; texts are materialized on demand. */
struct TraceRequest
{
    uint32_t block = 0;    ///< popularity rank into the corpus
    uint8_t model = 0;     ///< model-mix index
    uint8_t respell = 0;   ///< 0 = canonical text, else variant id
    uint64_t arrivalNs = 0; ///< offset from trace start
};

/** A generated (or loaded) trace plus its materialization. */
class TraceWorkload
{
  public:
    /** Deterministically generate a trace from @p config. */
    static TraceWorkload generate(const TraceConfig &config);

    const TraceConfig &config() const { return config_; }
    const std::vector<TraceRequest> &requests() const
    {
        return requests_;
    }

    /** Distinct canonical block texts, indexed by popularity rank
     *  (rank 0 = hottest). Regenerated, never stored. */
    const std::vector<std::string> &corpusTexts() const
    {
        return corpus_;
    }

    /** The raw text request @p i submits (respelling applied). */
    std::string requestText(size_t i) const;

    /** All request texts, aligned with requests(). */
    std::vector<std::string> requestTexts() const;

    // ---- compact serialized form (docs/TRAFFIC_LAB.md) ----

    /** CRC-guarded little-endian bytes; bit-exact round trip. */
    std::string serialize() const;

    /** Decode serialize() output (fatal() on corruption). */
    static TraceWorkload deserialize(std::string_view data);

    /** serialize() to @p path (fatal() on I/O errors). */
    void save(const std::string &path) const;

    /** Load and deserialize @p path (fatal() on I/O errors). */
    static TraceWorkload load(const std::string &path);

  private:
    TraceWorkload() = default;

    /** Regenerate corpus_ from the config's corpus seed. */
    void materializeCorpus();

    TraceConfig config_;
    std::vector<TraceRequest> requests_;
    std::vector<std::string> corpus_;
};

/**
 * Apply deterministic whitespace respelling @p variant (> 0) to a
 * canonical block text: extra tabs/spaces that parse back to the
 * same canonical form, so the raw-text cache misses but the interner
 * and every canonical-keyed cache hit. Variant 0 is the identity.
 */
std::string respellText(std::string_view canonical, uint32_t variant);

} // namespace difftune::lab

#endif // DIFFTUNE_LAB_TRACE_HH
