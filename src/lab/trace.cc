#include "lab/trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "base/logging.hh"
#include "base/random.hh"
#include "bhive/corpus.hh"
#include "io/serialize.hh"
#include "isa/instruction.hh"

namespace difftune::lab
{

namespace
{

constexpr uint32_t kTraceMagic = 0x424c5444u; // "DTLB" little-endian
constexpr uint32_t kTraceVersion = 1;

/** Exponential draw with mean @p mean (>= 0). */
double
expDraw(Rng &rng, double mean)
{
    if (mean <= 0.0)
        return 0.0;
    double u = rng.uniformReal();
    if (u > 1.0 - 1e-12)
        u = 1.0 - 1e-12; // avoid log(0)
    return -std::log(1.0 - u) * mean;
}

/** Exponential inter-arrival draw, mean 1/rate, in nanoseconds. */
uint64_t
expGapNs(Rng &rng, double rate_hz)
{
    if (rate_hz <= 0.0)
        return 0;
    return uint64_t(expDraw(rng, 1e9 / rate_hz));
}

} // namespace

std::string
respellText(std::string_view canonical, uint32_t variant)
{
    if (variant == 0)
        return std::string(canonical);
    // Cheap per-variant bit stream: the respelling of (text,
    // variant) must be a pure function so replays are byte-stable.
    uint64_t state = 0x9e3779b97f4a7c15ULL * (variant + 1);
    const auto bits = [&state] { return splitMix64(state); };
    std::string out;
    out.reserve(canonical.size() + canonical.size() / 2);
    const auto pad = [&] {
        const uint64_t b = bits();
        out.append(1 + size_t(b & 1), (b & 2) ? ' ' : '\t');
    };
    pad();
    for (const char c : canonical) {
        if (c == ',') {
            out += " ,"; // operand separators tolerate spacing
        } else if (c == '\n') {
            out += '\n';
            pad();
        } else {
            out += c;
        }
    }
    return out;
}

void
TraceWorkload::materializeCorpus()
{
    const bhive::Corpus corpus = bhive::Corpus::generate(
        size_t(config_.corpusTarget), config_.corpusSeed);
    panic_if(corpus.size() == 0, "trace corpus came up empty");
    corpus_.clear();
    corpus_.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i)
        corpus_.push_back(isa::toString(corpus[i].block));
}

TraceWorkload
TraceWorkload::generate(const TraceConfig &config)
{
    fatal_if(config.models == 0, "trace: models must be >= 1");
    fatal_if(!config.modelWeights.empty() &&
                 config.modelWeights.size() != config.models,
             "trace: {} model weights for {} models",
             config.modelWeights.size(), config.models);
    fatal_if(config.zipfSkew < 0.0, "trace: negative zipf skew");

    TraceWorkload trace;
    trace.config_ = config;
    trace.materializeCorpus();
    const size_t ranks = trace.corpus_.size();

    // Zipf CDF over popularity ranks: weight(r) = 1 / (r+1)^s.
    std::vector<double> cdf(ranks);
    double total = 0.0;
    for (size_t r = 0; r < ranks; ++r) {
        total +=
            std::exp(-config.zipfSkew * std::log(double(r) + 1.0));
        cdf[r] = total;
    }

    Rng rng(config.seed);
    uint64_t arrival_ns = 0;
    uint64_t burst_left = 0;
    trace.requests_.reserve(size_t(config.requests));
    for (uint64_t i = 0; i < config.requests; ++i) {
        TraceRequest req;

        // Draw order is part of the format: block, model, respell,
        // then the arrival gap. Reordering would silently change
        // every seeded trace.
        const double u = rng.uniformReal() * total;
        req.block = uint32_t(
            std::lower_bound(cdf.begin(), cdf.end(), u) -
            cdf.begin());
        if (req.block >= ranks)
            req.block = uint32_t(ranks - 1);

        req.model = uint8_t(
            config.modelWeights.empty()
                ? rng.uniformInt(0, int64_t(config.models) - 1)
                : int64_t(rng.weightedIndex(config.modelWeights)));

        if (config.respellProb > 0.0 &&
            rng.bernoulli(config.respellProb))
            req.respell = uint8_t(rng.uniformInt(1, 255));

        // On/off arrivals: exponential gaps at burstHz inside a
        // burst; an idleHz gap (plus a fresh burst length) between.
        if (burst_left == 0) {
            arrival_ns += expGapNs(rng, config.idleHz);
            burst_left =
                1 + uint64_t(expDraw(rng, config.meanBurst - 1.0));
        } else {
            arrival_ns += expGapNs(rng, config.burstHz);
        }
        --burst_left;
        req.arrivalNs = arrival_ns;

        trace.requests_.push_back(req);
    }
    return trace;
}

std::string
TraceWorkload::requestText(size_t i) const
{
    panic_if(i >= requests_.size(), "trace request {} of {}", i,
             requests_.size());
    const TraceRequest &req = requests_[i];
    return respellText(corpus_[req.block], req.respell);
}

std::vector<std::string>
TraceWorkload::requestTexts() const
{
    std::vector<std::string> texts;
    texts.reserve(requests_.size());
    for (size_t i = 0; i < requests_.size(); ++i)
        texts.push_back(requestText(i));
    return texts;
}

std::string
TraceWorkload::serialize() const
{
    io::ByteWriter w;
    w.u32(kTraceMagic);
    w.u32(kTraceVersion);
    w.u64(config_.seed);
    w.u64(config_.corpusSeed);
    w.u64(config_.corpusTarget);
    w.f64(config_.zipfSkew);
    w.f64(config_.respellProb);
    w.f64(config_.burstHz);
    w.f64(config_.idleHz);
    w.f64(config_.meanBurst);
    w.u32(config_.models);
    w.u32(uint32_t(config_.modelWeights.size()));
    for (const double weight : config_.modelWeights)
        w.f64(weight);
    w.u64(requests_.size());
    for (const TraceRequest &req : requests_) {
        w.u32(req.block);
        w.u8(req.model);
        w.u8(req.respell);
        w.u64(req.arrivalNs);
    }
    const uint32_t crc = io::crc32(w.data());
    w.u32(crc);
    return w.take();
}

TraceWorkload
TraceWorkload::deserialize(std::string_view data)
{
    fatal_if(data.size() < 4, "truncated trace ({} bytes)",
             data.size());
    const uint32_t stored_crc =
        io::ByteReader(data.substr(data.size() - 4), "trace crc")
            .u32();
    const std::string_view payload = data.substr(0, data.size() - 4);
    fatal_if(io::crc32(payload) != stored_crc,
             "trace CRC mismatch (corrupt or truncated file)");

    io::ByteReader r(payload, "trace");
    fatal_if(r.u32() != kTraceMagic, "not a trace file (bad magic)");
    const uint32_t version = r.u32();
    fatal_if(version != kTraceVersion,
             "unsupported trace version {} (expected {})", version,
             kTraceVersion);

    TraceWorkload trace;
    trace.config_.seed = r.u64();
    trace.config_.corpusSeed = r.u64();
    trace.config_.corpusTarget = r.u64();
    trace.config_.zipfSkew = r.f64();
    trace.config_.respellProb = r.f64();
    trace.config_.burstHz = r.f64();
    trace.config_.idleHz = r.f64();
    trace.config_.meanBurst = r.f64();
    trace.config_.models = r.u32();
    const uint32_t weights = r.u32();
    trace.config_.modelWeights.reserve(weights);
    for (uint32_t i = 0; i < weights; ++i)
        trace.config_.modelWeights.push_back(r.f64());

    const uint64_t count = r.u64();
    trace.config_.requests = count;
    trace.requests_.reserve(size_t(count));
    for (uint64_t i = 0; i < count; ++i) {
        TraceRequest req;
        req.block = r.u32();
        req.model = r.u8();
        req.respell = r.u8();
        req.arrivalNs = r.u64();
        trace.requests_.push_back(req);
    }
    r.expectEnd();

    trace.materializeCorpus();
    for (const TraceRequest &req : trace.requests_)
        fatal_if(req.block >= trace.corpus_.size(),
                 "trace block rank {} outside the {}-block corpus",
                 req.block, trace.corpus_.size());
    return trace;
}

void
TraceWorkload::save(const std::string &path) const
{
    const std::string bytes = serialize();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open trace file '{}' for writing", path);
    out.write(bytes.data(), std::streamsize(bytes.size()));
    out.flush();
    fatal_if(!out, "short write to trace file '{}'", path);
}

TraceWorkload
TraceWorkload::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open trace file '{}'", path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return deserialize(bytes);
}

} // namespace difftune::lab
