/**
 * @file
 * Policy sweep harness: replay one trace against cache policies.
 *
 * CacheSim replays a TraceWorkload's BlockId-rank key stream against
 * a single unsharded lab::PolicyCache per policy — every policy sees
 * the byte-identical request sequence, so hit-rate and eviction
 * deltas are attributable to the policy alone, not to stripe hashing
 * or arrival jitter. Per-request probe cost lands in an obs::
 * LatencyHistogram (`lab.<policy>.probe_ns` in the given registry),
 * which is where the reported p50/p99 come from.
 *
 * The simulator deliberately does not run the neural engine: a miss
 * just "costs" an insert. Use AsyncEngine replay (difftune_lab
 * replay) for end-to-end latency; use CacheSim for policy A/Bs,
 * where determinism matters more than wall-clock fidelity.
 */

#ifndef DIFFTUNE_LAB_CACHE_SIM_HH
#define DIFFTUNE_LAB_CACHE_SIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lab/policy.hh"
#include "lab/policy_cache.hh"
#include "lab/trace.hh"
#include "obs/metrics.hh"

namespace difftune::lab
{

/** One policy's replay result. */
struct SimResult
{
    std::string policy;      ///< registered policy name
    uint64_t requests = 0;   ///< trace length replayed
    CacheCounters counters;  ///< hits/misses/evictions/rejections
    double hitRate = 0.0;    ///< hits / requests
    uint64_t probeP50Ns = 0; ///< median probe+insert cost
    uint64_t probeP99Ns = 0; ///< tail probe+insert cost

    /** One aligned text row (pairs with simTableHeader()). */
    std::string row() const;
};

/** Header line for SimResult::row() tables. */
std::string simTableHeader();

/**
 * Replay @p trace against @p policy_name with a cache of
 * @p capacity entries. Metrics land in @p registry (pass the
 * process registry or a scratch one).
 */
SimResult simulatePolicy(const TraceWorkload &trace,
                         const std::string &policy_name,
                         size_t capacity,
                         obs::MetricRegistry &registry);

/** simulatePolicy over every registered policy, sweep order. */
std::vector<SimResult> sweepPolicies(const TraceWorkload &trace,
                                     size_t capacity,
                                     obs::MetricRegistry &registry);

} // namespace difftune::lab

#endif // DIFFTUNE_LAB_CACHE_SIM_HH
