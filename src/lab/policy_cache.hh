/**
 * @file
 * Bounded map driven by a pluggable lab::CachePolicy.
 *
 * PolicyCache owns the storage — a flat slot table plus an index —
 * and delegates every ordering decision (eviction victim, admission
 * of new keys when full) to the policy through dense slot handles.
 * serve::ShardedLruCache builds one PolicyCache per stripe, which is
 * how AsyncEngine gets constructed with any policy; lab::CacheSim
 * replays traces against a single unsharded instance so two policies
 * see byte-identical request sequences.
 *
 * With the default LRU policy the hit/miss/eviction sequence is
 * byte-identical to the legacy serve::LruCache (asserted by a
 * test_lab property test), so swapping the engine's caches onto this
 * template changed no behavior.
 *
 * Not thread-safe; callers stripe and lock (see ShardedLruCache).
 */

#ifndef DIFFTUNE_LAB_POLICY_CACHE_HH
#define DIFFTUNE_LAB_POLICY_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "lab/policy.hh"

namespace difftune::lab
{

/** Counters a policy run exposes (monotonic, reset never). */
struct CacheCounters
{
    uint64_t hits = 0;       ///< get() found the key
    uint64_t misses = 0;     ///< get() did not
    uint64_t insertions = 0; ///< new keys admitted
    uint64_t evictions = 0;  ///< residents displaced by admissions
    uint64_t rejections = 0; ///< new keys the policy kept out

    CacheCounters &
    operator+=(const CacheCounters &o)
    {
        hits += o.hits;
        misses += o.misses;
        insertions += o.insertions;
        evictions += o.evictions;
        rejections += o.rejections;
        return *this;
    }
};

template <typename Key, typename Value>
class PolicyCache
{
  public:
    /** Takes ownership of @p policy (built for this capacity). */
    PolicyCache(size_t capacity, std::unique_ptr<CachePolicy> policy)
        : capacity_(capacity), policy_(std::move(policy))
    {
        panic_if(capacity == 0,
                 "PolicyCache capacity must be positive");
        panic_if(!policy_, "PolicyCache requires a policy");
        slots_.resize(capacity);
        index_.reserve(capacity);
    }

    /**
     * Look up @p key; a hit refreshes the policy and returns a
     * pointer valid until the next put(). A miss is reported to the
     * policy (admission sketches record demand) and returns nullptr.
     */
    const Value *
    get(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end()) {
            ++counters_.misses;
            policy_->onMiss(finalizeHash(uint64_t(hash_(key))));
            return nullptr;
        }
        ++counters_.hits;
        policy_->touch(it->second);
        return &slots_[it->second].value;
    }

    /**
     * Insert or refresh @p key. Returns false iff the cache was full
     * and the policy rejected admission (the entry is not stored;
     * serving correctness never depends on residency).
     */
    bool
    put(Key key, Value value)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            slots_[it->second].value = std::move(value);
            policy_->touch(it->second);
            return true;
        }
        const uint64_t key_hash = finalizeHash(uint64_t(hash_(key)));
        uint32_t slot;
        if (index_.size() < capacity_) {
            slot = uint32_t(index_.size());
        } else {
            if (!policy_->admit(key_hash)) {
                ++counters_.rejections;
                return false;
            }
            slot = policy_->victim();
            index_.erase(slots_[slot].key);
            policy_->erased(slot);
            ++counters_.evictions;
        }
        slots_[slot].key = key;
        slots_[slot].value = std::move(value);
        index_.emplace(std::move(key), slot);
        policy_->inserted(slot, key_hash);
        ++counters_.insertions;
        return true;
    }

    size_t size() const { return index_.size(); }
    size_t capacity() const { return capacity_; }
    const char *policyName() const { return policy_->name(); }
    const CacheCounters &counters() const { return counters_; }

  private:
    struct Slot
    {
        Key key{};
        Value value{};
    };

    size_t capacity_;
    std::unique_ptr<CachePolicy> policy_;
    std::vector<Slot> slots_;
    std::unordered_map<Key, uint32_t> index_;
    std::hash<Key> hash_;
    CacheCounters counters_;
};

} // namespace difftune::lab

#endif // DIFFTUNE_LAB_POLICY_CACHE_HH
