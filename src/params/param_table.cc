/**
 * @file
 * ParamTable implementation.
 */

#include "params/param_table.hh"

#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace difftune::params
{

namespace
{

int
clampInt(double value, int lower)
{
    int rounded = static_cast<int>(std::lround(value));
    return rounded < lower ? lower : rounded;
}

} // namespace

std::vector<double>
ParamTable::flatten() const
{
    std::vector<double> flat;
    flat.reserve(flatSize());
    flat.push_back(dispatchWidth);
    flat.push_back(reorderBufferSize);
    for (const auto &inst : perOpcode) {
        flat.push_back(inst.numMicroOps);
        flat.push_back(inst.writeLatency);
        for (double ra : inst.readAdvance)
            flat.push_back(ra);
        for (double pc : inst.portMap)
            flat.push_back(pc);
    }
    return flat;
}

ParamTable
ParamTable::unflatten(const std::vector<double> &flat)
{
    panic_if((flat.size() - numGlobalParams) % perOpcodeParams != 0,
             "bad flattened parameter vector length {}", flat.size());
    const size_t num_opcodes =
        (flat.size() - numGlobalParams) / perOpcodeParams;
    ParamTable table(num_opcodes);
    size_t i = 0;
    table.dispatchWidth = flat[i++];
    table.reorderBufferSize = flat[i++];
    for (auto &inst : table.perOpcode) {
        inst.numMicroOps = flat[i++];
        inst.writeLatency = flat[i++];
        for (double &ra : inst.readAdvance)
            ra = flat[i++];
        for (double &pc : inst.portMap)
            pc = flat[i++];
    }
    return table;
}

ParamTable
ParamTable::extractToValid() const
{
    auto extract = [](double value, double lower) {
        return std::max(lower, std::round(value));
    };
    ParamTable out(*this);
    out.dispatchWidth = extract(dispatchWidth, 1.0);
    out.reorderBufferSize = extract(reorderBufferSize, 1.0);
    for (auto &inst : out.perOpcode) {
        inst.numMicroOps = extract(inst.numMicroOps, 1.0);
        inst.writeLatency = extract(inst.writeLatency, 0.0);
        for (double &ra : inst.readAdvance)
            ra = extract(ra, 0.0);
        for (double &pc : inst.portMap)
            pc = extract(pc, 0.0);
    }
    return out;
}

int
ParamTable::uops(isa::OpcodeId op) const
{
    return clampInt(perOpcode[op].numMicroOps, 1);
}

int
ParamTable::latency(isa::OpcodeId op) const
{
    return clampInt(perOpcode[op].writeLatency, 0);
}

int
ParamTable::readAdvanceCycles(isa::OpcodeId op, int idx) const
{
    return clampInt(perOpcode[op].readAdvance[idx], 0);
}

int
ParamTable::portCycles(isa::OpcodeId op, int port) const
{
    return clampInt(perOpcode[op].portMap[port], 0);
}

int
ParamTable::dispatch() const
{
    return clampInt(dispatchWidth, 1);
}

int
ParamTable::robSize() const
{
    return clampInt(reorderBufferSize, 1);
}

std::string
ParamTable::save() const
{
    std::ostringstream os;
    os.precision(17);
    os << "difftune-params v1\n";
    os << "opcodes " << perOpcode.size() << "\n";
    os << "dispatch_width " << dispatchWidth << "\n";
    os << "reorder_buffer " << reorderBufferSize << "\n";
    for (size_t op = 0; op < perOpcode.size(); ++op) {
        const auto &inst = perOpcode[op];
        os << "op " << op << ' ' << inst.numMicroOps << ' '
           << inst.writeLatency;
        for (double ra : inst.readAdvance)
            os << ' ' << ra;
        for (double pc : inst.portMap)
            os << ' ' << pc;
        os << '\n';
    }
    return os.str();
}

ParamTable
ParamTable::load(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, version, key;
    is >> magic >> version;
    fatal_if(magic != "difftune-params", "bad parameter file header");
    size_t num_opcodes = 0;
    is >> key >> num_opcodes;
    fatal_if(key != "opcodes", "bad parameter file: expected 'opcodes'");
    ParamTable table(num_opcodes);
    is >> key >> table.dispatchWidth;
    is >> key >> table.reorderBufferSize;
    for (size_t i = 0; i < num_opcodes; ++i) {
        size_t op = 0;
        is >> key >> op;
        fatal_if(key != "op" || op >= num_opcodes,
                 "bad parameter file: op record {}", i);
        auto &inst = table.perOpcode[op];
        is >> inst.numMicroOps >> inst.writeLatency;
        for (double &ra : inst.readAdvance)
            is >> ra;
        for (double &pc : inst.portMap)
            is >> pc;
    }
    fatal_if(!is, "truncated parameter file");
    return table;
}

double
ParamTable::log10SpaceSize() const
{
    // Per the paper's footnote: the number of configurations bounded
    // above by the table's own values (each parameter independently
    // ranges over its valid integers up to its current value).
    double log10_size = 0.0;
    auto count = [](double value, int lower) {
        double v = std::max<double>(lower, std::round(value));
        return v - lower + 1.0;
    };
    log10_size += std::log10(count(dispatchWidth, 1));
    log10_size += std::log10(count(reorderBufferSize, 1));
    for (const auto &inst : perOpcode) {
        log10_size += std::log10(count(inst.numMicroOps, 1));
        log10_size += std::log10(count(inst.writeLatency, 0));
        for (double ra : inst.readAdvance)
            log10_size += std::log10(count(ra, 0));
        for (double pc : inst.portMap)
            log10_size += std::log10(count(pc, 0));
    }
    return log10_size;
}

std::vector<double>
flatLowerBounds(size_t num_opcodes)
{
    std::vector<double> bounds;
    bounds.reserve(numGlobalParams + num_opcodes * perOpcodeParams);
    bounds.push_back(1.0); // DispatchWidth
    bounds.push_back(1.0); // ReorderBufferSize
    for (size_t op = 0; op < num_opcodes; ++op) {
        bounds.push_back(1.0); // NumMicroOps
        bounds.push_back(0.0); // WriteLatency
        for (int i = 0; i < numReadAdvance; ++i)
            bounds.push_back(0.0);
        for (int i = 0; i < numPorts; ++i)
            bounds.push_back(0.0);
    }
    return bounds;
}

std::vector<bool>
ParamMask::flat(size_t num_opcodes) const
{
    std::vector<bool> mask;
    mask.reserve(numGlobalParams + num_opcodes * perOpcodeParams);
    mask.push_back(globals);
    mask.push_back(globals);
    for (size_t op = 0; op < num_opcodes; ++op) {
        mask.push_back(numMicroOps);
        mask.push_back(writeLatency);
        for (int i = 0; i < numReadAdvance; ++i)
            mask.push_back(readAdvance);
        for (int i = 0; i < numPorts; ++i)
            mask.push_back(portMap);
    }
    return mask;
}

void
applyMask(ParamTable &table, const ParamTable &base, const ParamMask &mask)
{
    panic_if(table.numOpcodes() != base.numOpcodes(),
             "mask base has {} opcodes, table has {}", base.numOpcodes(),
             table.numOpcodes());
    if (!mask.globals) {
        table.dispatchWidth = base.dispatchWidth;
        table.reorderBufferSize = base.reorderBufferSize;
    }
    for (size_t op = 0; op < table.numOpcodes(); ++op) {
        auto &dst = table.perOpcode[op];
        const auto &src = base.perOpcode[op];
        if (!mask.numMicroOps)
            dst.numMicroOps = src.numMicroOps;
        if (!mask.writeLatency)
            dst.writeLatency = src.writeLatency;
        if (!mask.readAdvance)
            dst.readAdvance = src.readAdvance;
        if (!mask.portMap)
            dst.portMap = src.portMap;
    }
}

} // namespace difftune::params
