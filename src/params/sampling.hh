/**
 * @file
 * Parameter-table sampling distributions (Section V-A).
 *
 * Surrogate training draws random parameter tables from these
 * distributions; the parameter-table optimization is initialized from
 * the same distribution. The defaults are the paper's: WriteLatency
 * uniform on {0..5}, PortMap 0-2 cycles on 0-2 randomly chosen ports,
 * ReadAdvanceCycles on {0..5}, NumMicroOps on {1..10}, DispatchWidth
 * on {1..10}, ReorderBufferSize on {50..250}.
 */

#ifndef DIFFTUNE_PARAMS_SAMPLING_HH
#define DIFFTUNE_PARAMS_SAMPLING_HH

#include "base/random.hh"
#include "params/param_table.hh"

namespace difftune::params
{

/** Sampling distribution over parameter tables. */
struct SamplingDist
{
    int writeLatencyMin = 0, writeLatencyMax = 5;
    int readAdvanceMax = 5;
    int uopsMin = 1, uopsMax = 10;
    int portMaxPorts = 2;   ///< up to this many ports per instruction
    int portMaxCycles = 2;  ///< up to this many cycles per chosen port
    int dispatchMin = 1, dispatchMax = 10;
    int robMin = 50, robMax = 250;

    /** Groups not covered by the mask keep the base table's values. */
    ParamMask mask = ParamMask::all();

    /** Draw a table; masked-off groups are copied from @p base. */
    ParamTable sample(Rng &rng, const ParamTable &base) const;

    /** Paper defaults for the full-table experiment (Section V-A). */
    static SamplingDist full();

    /**
     * The WriteLatency-only experiment of Section VI-B: WriteLatency
     * uniform on {0..10}; everything else fixed at the base table.
     */
    static SamplingDist writeLatencyOnly();

    /** llvm_sim experiments: WriteLatency + PortMap only. */
    static SamplingDist usim();
};

} // namespace difftune::params

#endif // DIFFTUNE_PARAMS_SAMPLING_HH
