/**
 * @file
 * The abstract simulator interface: the paper's f(theta, x).
 *
 * DiffTune treats a simulator as an opaque parameterized function from
 * a parameter table and a basic block to a predicted timing (cycles
 * per block iteration). Both XMca (llvm-mca analog) and USim
 * (llvm_sim analog) implement this interface, and the DiffTune core
 * is generic over it.
 */

#ifndef DIFFTUNE_PARAMS_SIMULATOR_HH
#define DIFFTUNE_PARAMS_SIMULATOR_HH

#include <string>

#include "isa/instruction.hh"
#include "params/param_table.hh"

namespace difftune::params
{

/** Abstract parameterized basic-block timing simulator. */
class Simulator
{
  public:
    virtual ~Simulator() = default;

    /**
     * Predict the timing of @p block under @p table: the number of
     * cycles to execute `iterations()` back-to-back repetitions of
     * the block, divided by the iteration count (the dataset's
     * definition of timing, Section V-A).
     */
    virtual double timing(const isa::BasicBlock &block,
                          const ParamTable &table) const = 0;

    /** Human-readable simulator name. */
    virtual std::string name() const = 0;

    /** Number of unrolled block repetitions simulated (paper: 100). */
    virtual int iterations() const { return 100; }
};

} // namespace difftune::params

#endif // DIFFTUNE_PARAMS_SIMULATOR_HH
