/**
 * @file
 * Sampling-distribution implementation.
 */

#include "params/sampling.hh"

#include <algorithm>

namespace difftune::params
{

ParamTable
SamplingDist::sample(Rng &rng, const ParamTable &base) const
{
    ParamTable table(base);
    if (mask.globals) {
        table.dispatchWidth = double(rng.uniformInt(dispatchMin,
                                                    dispatchMax));
        table.reorderBufferSize = double(rng.uniformInt(robMin, robMax));
    }
    for (auto &inst : table.perOpcode) {
        if (mask.numMicroOps)
            inst.numMicroOps = double(rng.uniformInt(uopsMin, uopsMax));
        if (mask.writeLatency) {
            inst.writeLatency =
                double(rng.uniformInt(writeLatencyMin, writeLatencyMax));
        }
        if (mask.readAdvance) {
            for (double &ra : inst.readAdvance)
                ra = double(rng.uniformInt(0, readAdvanceMax));
        }
        if (mask.portMap) {
            inst.portMap.fill(0.0);
            int chosen = int(rng.uniformInt(0, portMaxPorts));
            for (int i = 0; i < chosen; ++i) {
                int port = int(rng.uniformInt(0, numPorts - 1));
                inst.portMap[port] =
                    double(rng.uniformInt(0, portMaxCycles));
            }
        }
    }
    return table;
}

SamplingDist
SamplingDist::full()
{
    return SamplingDist{};
}

SamplingDist
SamplingDist::writeLatencyOnly()
{
    SamplingDist dist;
    dist.writeLatencyMax = 10;
    dist.mask = ParamMask::writeLatencyOnly();
    return dist;
}

SamplingDist
SamplingDist::usim()
{
    SamplingDist dist;
    dist.mask = ParamMask::usim();
    return dist;
}

} // namespace difftune::params
