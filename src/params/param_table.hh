/**
 * @file
 * The simulator parameter table (Table II of the paper).
 *
 * Per-opcode parameters: NumMicroOps, WriteLatency, 3 ReadAdvanceCycles
 * entries and a 10-port PortMap. Global parameters: DispatchWidth and
 * ReorderBufferSize. During optimization all parameters are
 * represented as floating point; extraction applies the constraint
 * transform (absolute value + lower bound) and rounds to integers.
 */

#ifndef DIFFTUNE_PARAMS_PARAM_TABLE_HH
#define DIFFTUNE_PARAMS_PARAM_TABLE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace difftune::params
{

/** Number of execution ports (llvm-mca's Haswell default). */
constexpr int numPorts = 10;
/** Number of ReadAdvanceCycles entries per instruction. */
constexpr int numReadAdvance = 3;
/** Flattened parameter count per opcode. */
constexpr int perOpcodeParams = 2 + numReadAdvance + numPorts;
/** Number of global parameters. */
constexpr int numGlobalParams = 2;

/** Per-opcode parameter record. */
struct InstParams
{
    double numMicroOps = 1.0;
    double writeLatency = 1.0;
    std::array<double, numReadAdvance> readAdvance{};
    std::array<double, numPorts> portMap{};
};

/** The full parameter table for one simulator instantiation. */
struct ParamTable
{
    std::vector<InstParams> perOpcode;
    double dispatchWidth = 4.0;
    double reorderBufferSize = 192.0;

    ParamTable() = default;

    /** Create a table sized for @p num_opcodes, all defaults. */
    explicit ParamTable(size_t num_opcodes) : perOpcode(num_opcodes) {}

    size_t numOpcodes() const { return perOpcode.size(); }

    /** Flattened length: numGlobalParams + perOpcodeParams per opcode. */
    size_t
    flatSize() const
    {
        return numGlobalParams + perOpcode.size() * perOpcodeParams;
    }

    /** Flatten to a vector (globals first, then per-opcode records). */
    std::vector<double> flatten() const;

    /** Rebuild from a flattened vector. */
    static ParamTable unflatten(const std::vector<double> &flat);

    /**
     * Round every parameter to the nearest integer and clamp to its
     * constraint lower bound, yielding a valid Table II configuration.
     * (The paper's abs + lower-bound reparameterization of raw
     * optimization variables lives in core/raw_params.hh; this is the
     * final integer extraction step applied to actual values.)
     */
    ParamTable extractToValid() const;

    // ---- Integer views used by the simulators. The simulators are
    // defined on integer parameters; these accessors clamp to the
    // constraint lower bounds so any table is safely interpretable.

    /** NumMicroOps of @p op: integer, >= 1. */
    int uops(isa::OpcodeId op) const;
    /** WriteLatency of @p op: integer, >= 0. */
    int latency(isa::OpcodeId op) const;
    /** ReadAdvanceCycles entry @p idx of @p op: integer, >= 0. */
    int readAdvanceCycles(isa::OpcodeId op, int idx) const;
    /** PortMap cycles of @p op on @p port: integer, >= 0. */
    int portCycles(isa::OpcodeId op, int port) const;
    /** DispatchWidth: integer, >= 1. */
    int dispatch() const;
    /** ReorderBufferSize: integer, >= 1. */
    int robSize() const;

    /** Text serialization (round-trips with load()). */
    std::string save() const;
    /** Parse a table saved by save(). */
    static ParamTable load(const std::string &text);

    /**
     * log10 of the size of the induced valid-configuration space,
     * counting, per the paper's footnote 2, configurations bounded by
     * each parameter's current value (used to reproduce the
     * "10^19336 possible configurations" style headline).
     */
    double log10SpaceSize() const;
};

/** Lower bounds for the flattened layout (constraints of Table II). */
std::vector<double> flatLowerBounds(size_t num_opcodes);

/**
 * Which parameter groups are trainable. Masked-off groups keep the
 * values of the base table during optimization (used by the
 * WriteLatency-only experiment of Section VI-B and by the llvm_sim
 * experiments, which only expose WriteLatency + PortMap).
 */
struct ParamMask
{
    bool numMicroOps = true;
    bool writeLatency = true;
    bool readAdvance = true;
    bool portMap = true;
    bool globals = true;

    /** All groups trainable. */
    static ParamMask all() { return ParamMask{}; }

    /** Only WriteLatency trainable (Section VI-B). */
    static ParamMask
    writeLatencyOnly()
    {
        return ParamMask{false, true, false, false, false};
    }

    /** WriteLatency + PortMap (llvm_sim, Table VII). */
    static ParamMask
    usim()
    {
        return ParamMask{false, true, false, true, false};
    }

    /** Per-flat-index trainability. */
    std::vector<bool> flat(size_t num_opcodes) const;
};

/**
 * Overwrite the masked-off entries of @p table with the values from
 * @p base, enforcing the mask after an optimization step.
 */
void applyMask(ParamTable &table, const ParamTable &base,
               const ParamMask &mask);

} // namespace difftune::params

#endif // DIFFTUNE_PARAMS_PARAM_TABLE_HH
