/**
 * @file
 * Per-opcode "physical" characteristics, derived from the hidden
 * microarchitecture tables plus a handful of opcode-level special
 * cases (integer-vector latencies, slow VPMULLD, division uop counts).
 */

#ifndef DIFFTUNE_HW_INST_MODEL_HH
#define DIFFTUNE_HW_INST_MODEL_HH

#include "hw/uarch.hh"
#include "isa/instruction.hh"

namespace difftune::hw
{

/** Resolved physical characteristics of one opcode on one uarch. */
struct InstTiming
{
    int execLatency = 1;  ///< compute latency, excluding load latency
    int uops = 1;         ///< micro-ops through rename
    int units = 1;        ///< execution-unit pool size
    int occupancy = 1;    ///< unit busy cycles per operation
    bool eliminable = false; ///< removable at rename (mov rr)
};

/** @return physical timing of @p op under @p config. */
InstTiming instTiming(const UarchConfig &config, isa::OpcodeId op);

} // namespace difftune::hw

#endif // DIFFTUNE_HW_INST_MODEL_HH
