/**
 * @file
 * The hidden microarchitecture tables.
 *
 * Values are loosely calibrated to public measurements (Agner Fog's
 * tables, uops.info) so that cross-uarch differences have the right
 * sign and rough magnitude: Skylake's higher FP-add latency but
 * faster divider, Ivy Bridge's narrower vector units and lack of
 * native FMA, Zen 2's wider rename and different latency profile.
 */

#include "hw/uarch.hh"

#include "base/logging.hh"

namespace difftune::hw
{

const std::vector<Uarch> &
allUarches()
{
    static const std::vector<Uarch> all = {
        Uarch::IvyBridge, Uarch::Haswell, Uarch::Skylake, Uarch::Zen2};
    return all;
}

const char *
uarchName(Uarch uarch)
{
    switch (uarch) {
      case Uarch::IvyBridge: return "IvyBridge";
      case Uarch::Haswell: return "Haswell";
      case Uarch::Skylake: return "Skylake";
      case Uarch::Zen2: return "Zen2";
      default: return "?";
    }
}

bool
isIntel(Uarch uarch)
{
    return uarch != Uarch::Zen2;
}

namespace
{

using isa::OpClass;

void
setClass(UarchConfig &config, OpClass cls, int latency, int units,
         int occupancy = 1)
{
    config.classTiming[size_t(cls)] = {latency, units, occupancy};
}

UarchConfig
makeIvyBridge()
{
    UarchConfig c;
    c.uarch = Uarch::IvyBridge;
    c.name = "IvyBridge";
    c.renameWidth = 4;
    c.robSize = 168;
    c.elimPerCycle = 2.8;
    c.moveElimination = true;
    c.l1Latency = 4;
    c.storeForwardDelay = 6;
    c.noiseStd = 0.025;
    c.measurementSeed = 0x10b0001;
    setClass(c, OpClass::IntAlu, 1, 3);
    setClass(c, OpClass::IntMul, 3, 1);
    setClass(c, OpClass::IntDiv, 26, 1, 12);
    setClass(c, OpClass::Shift, 1, 2);
    setClass(c, OpClass::Lea, 1, 2);
    setClass(c, OpClass::Mov, 1, 3);
    setClass(c, OpClass::Load, 0, 2);   // latency comes from l1Latency
    setClass(c, OpClass::Store, 1, 1);
    setClass(c, OpClass::Setcc, 1, 2);
    setClass(c, OpClass::Cmov, 2, 2);
    setClass(c, OpClass::VecAlu, 3, 1);
    setClass(c, OpClass::VecMul, 5, 1);
    setClass(c, OpClass::VecDiv, 14, 1, 14);
    setClass(c, OpClass::VecFma, 8, 1, 2); // no native FMA: mul + add
    setClass(c, OpClass::VecMov, 1, 2);
    setClass(c, OpClass::VecShuf, 1, 1);
    setClass(c, OpClass::Nop, 0, 4);
    c.vec256OccupancyMul = 2; // 256-bit ops split across halves
    c.vec256ExtraUops = 1;
    return c;
}

UarchConfig
makeHaswell()
{
    UarchConfig c;
    c.uarch = Uarch::Haswell;
    c.name = "Haswell";
    c.renameWidth = 4;
    c.robSize = 192;
    c.elimPerCycle = 3.2;
    c.moveElimination = true;
    c.l1Latency = 4;
    c.storeForwardDelay = 5;
    c.noiseStd = 0.02;
    c.measurementSeed = 0x45570001;
    setClass(c, OpClass::IntAlu, 1, 4);
    setClass(c, OpClass::IntMul, 3, 1);
    setClass(c, OpClass::IntDiv, 25, 1, 10);
    setClass(c, OpClass::Shift, 1, 2);
    setClass(c, OpClass::Lea, 1, 2);
    setClass(c, OpClass::Mov, 1, 4);
    setClass(c, OpClass::Load, 0, 2);
    setClass(c, OpClass::Store, 1, 1);
    setClass(c, OpClass::Setcc, 1, 2);
    setClass(c, OpClass::Cmov, 2, 2);
    setClass(c, OpClass::VecAlu, 3, 2);
    setClass(c, OpClass::VecMul, 5, 2);
    setClass(c, OpClass::VecDiv, 13, 1, 8);
    setClass(c, OpClass::VecFma, 5, 2);
    setClass(c, OpClass::VecMov, 1, 3);
    setClass(c, OpClass::VecShuf, 1, 1);
    setClass(c, OpClass::Nop, 0, 4);
    return c;
}

UarchConfig
makeSkylake()
{
    UarchConfig c;
    c.uarch = Uarch::Skylake;
    c.name = "Skylake";
    c.renameWidth = 4;
    c.robSize = 224;
    c.elimPerCycle = 3.5;
    c.moveElimination = true;
    c.l1Latency = 4;
    c.storeForwardDelay = 5;
    c.noiseStd = 0.02;
    c.measurementSeed = 0x534b0001;
    setClass(c, OpClass::IntAlu, 1, 4);
    setClass(c, OpClass::IntMul, 3, 1);
    setClass(c, OpClass::IntDiv, 21, 1, 6);
    setClass(c, OpClass::Shift, 1, 2);
    setClass(c, OpClass::Lea, 1, 2);
    setClass(c, OpClass::Mov, 1, 4);
    setClass(c, OpClass::Load, 0, 2);
    setClass(c, OpClass::Store, 1, 1);
    setClass(c, OpClass::Setcc, 1, 2);
    setClass(c, OpClass::Cmov, 1, 2);
    setClass(c, OpClass::VecAlu, 4, 2);
    setClass(c, OpClass::VecMul, 4, 2);
    setClass(c, OpClass::VecDiv, 11, 1, 5);
    setClass(c, OpClass::VecFma, 4, 2);
    setClass(c, OpClass::VecMov, 1, 3);
    setClass(c, OpClass::VecShuf, 1, 1);
    setClass(c, OpClass::Nop, 0, 4);
    return c;
}

UarchConfig
makeZen2()
{
    UarchConfig c;
    c.uarch = Uarch::Zen2;
    c.name = "Zen2";
    c.renameWidth = 5;
    c.robSize = 224;
    c.elimPerCycle = 4.0;
    c.moveElimination = true;
    c.l1Latency = 4;
    c.storeForwardDelay = 7;
    c.noiseStd = 0.03;
    c.measurementSeed = 0x5a450002;
    setClass(c, OpClass::IntAlu, 1, 4);
    setClass(c, OpClass::IntMul, 3, 1);
    setClass(c, OpClass::IntDiv, 17, 1, 6);
    setClass(c, OpClass::Shift, 1, 3);
    setClass(c, OpClass::Lea, 1, 3);
    setClass(c, OpClass::Mov, 1, 4);
    setClass(c, OpClass::Load, 0, 2);
    setClass(c, OpClass::Store, 1, 1);
    setClass(c, OpClass::Setcc, 1, 3);
    setClass(c, OpClass::Cmov, 1, 3);
    setClass(c, OpClass::VecAlu, 3, 2);
    setClass(c, OpClass::VecMul, 3, 2);
    setClass(c, OpClass::VecDiv, 10, 1, 5);
    setClass(c, OpClass::VecFma, 5, 2);
    setClass(c, OpClass::VecMov, 1, 4);
    setClass(c, OpClass::VecShuf, 1, 2);
    setClass(c, OpClass::Nop, 0, 5);
    return c;
}

} // namespace

const UarchConfig &
uarchConfig(Uarch uarch)
{
    static const UarchConfig ivb = makeIvyBridge();
    static const UarchConfig hsw = makeHaswell();
    static const UarchConfig skl = makeSkylake();
    static const UarchConfig zen = makeZen2();
    switch (uarch) {
      case Uarch::IvyBridge: return ivb;
      case Uarch::Haswell: return hsw;
      case Uarch::Skylake: return skl;
      case Uarch::Zen2: return zen;
      default: panic("bad uarch {}", int(uarch));
    }
}

} // namespace difftune::hw
