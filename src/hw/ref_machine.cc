/**
 * @file
 * RefMachine implementation.
 */

#include "hw/ref_machine.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>

#include "base/interval_schedule.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "hw/inst_model.hh"

namespace difftune::hw
{

RefMachine::RefMachine(Uarch uarch, int iterations)
    : config_(uarchConfig(uarch)), iterations_(iterations)
{
}

namespace
{

using isa::MemMode;
using isa::OpClass;

/** Store-forwarding table entry. */
struct StoreRecord
{
    uint32_t addrKey;
    int64_t forwardReady;
};

} // namespace

double
RefMachine::idealTiming(const isa::BasicBlock &block) const
{
    if (block.empty())
        return 0.0;

    const UarchConfig &cfg = config_;

    std::array<int64_t, isa::numRegs> reg_ready{};
    std::vector<PoolSchedule> pools;
    pools.reserve(size_t(OpClass::NumOpClasses));
    for (size_t cls = 0; cls < size_t(OpClass::NumOpClasses); ++cls)
        pools.emplace_back(cfg.classTiming[cls].units);

    std::vector<StoreRecord> stores;
    stores.reserve(block.size());
    auto findStore = [&stores](uint32_t key) -> StoreRecord * {
        for (auto &record : stores)
            if (record.addrKey == key)
                return &record;
        return nullptr;
    };

    std::deque<std::pair<int64_t, int>> rob; // (retire cycle, uops)
    int rob_used = 0;

    int64_t cycle = 0;
    int bandwidth_left = cfg.renameWidth;
    double elim_credit = cfg.elimPerCycle;
    int64_t retire_frontier = 0;
    int64_t max_retire = 1;

    auto retireUpTo = [&](int64_t now) {
        while (!rob.empty() && rob.front().first <= now) {
            rob_used -= rob.front().second;
            rob.pop_front();
        }
    };
    auto newCycle = [&](int64_t next) {
        cycle = next;
        bandwidth_left = cfg.renameWidth;
        elim_credit = std::min(elim_credit + cfg.elimPerCycle,
                               2.0 * cfg.elimPerCycle);
        retireUpTo(cycle);
    };

    for (int iter = 0; iter < iterations_; ++iter) {
        if ((iter & 0xf) == 0) {
            for (auto &pool : pools)
                pool.prune(cycle);
        }
        for (const auto &inst : block.insts) {
            const auto &op = inst.info();
            const InstTiming timing = instTiming(cfg, inst.opcode);
            const bool zero_idiom = inst.isZeroIdiom();
            const bool eliminated = zero_idiom || timing.eliminable;
            const int uops = eliminated ? 1 : timing.uops;

            // ---- Rename/dispatch.
            retireUpTo(cycle);
            while (rob_used + uops > cfg.robSize && !rob.empty())
                newCycle(std::max(cycle + 1, rob.front().first));
            rob_used += uops;

            if (eliminated) {
                // Eliminations consume rename bandwidth plus a slot of
                // the elimination budget.
                while (bandwidth_left == 0 || elim_credit < 1.0)
                    newCycle(cycle + 1);
                --bandwidth_left;
                elim_credit -= 1.0;
                for (isa::RegId reg : inst.writes)
                    reg_ready[reg] = cycle;
                retire_frontier = std::max(retire_frontier, cycle);
                rob.push_back({retire_frontier, uops});
                max_retire = std::max(max_retire, retire_frontier);
                continue;
            }

            int remaining = uops;
            while (remaining > 0) {
                if (bandwidth_left == 0)
                    newCycle(cycle + 1);
                int take = std::min(remaining, bandwidth_left);
                remaining -= take;
                bandwidth_left -= take;
            }
            const int64_t renamed = cycle;

            // ---- Register dependences. The stack engine provides rsp
            // updates at rename, so stack ops do not chain on rsp.
            int64_t reg_deps = renamed;
            for (isa::RegId reg : inst.reads) {
                if (op.stackOp && reg == isa::stackPointer)
                    continue;
                reg_deps = std::max(reg_deps, reg_ready[reg]);
            }

            const bool has_load = op.mem == MemMode::Load ||
                                  op.mem == MemMode::LoadStore;
            const bool has_store = op.mem == MemMode::Store ||
                                   op.mem == MemMode::LoadStore;
            const uint32_t addr_key = inst.mem.addressKey();

            // ---- Load micro-op.
            int64_t data_ready = reg_deps;
            if (has_load) {
                int64_t addr_ready = renamed;
                if (!op.stackOp)
                    addr_ready = std::max(addr_ready,
                                          reg_ready[inst.mem.base]);
                int64_t load_issue =
                    pools[size_t(OpClass::Load)].acquire(addr_ready, 1);
                int64_t load_data = load_issue + cfg.l1Latency;
                if (!op.stackOp) {
                    if (const StoreRecord *rec = findStore(addr_key)) {
                        load_data =
                            std::max(load_data, rec->forwardReady);
                    }
                }
                data_ready = std::max(data_ready, load_data);
            }

            // ---- Execute micro-op. Pure loads complete when their
            // data arrives; pure stores are handled by the store
            // micro-op below; everything else runs through its
            // class's execution-unit pool.
            int64_t result = data_ready;
            const bool has_exec = op.opClass != OpClass::Nop &&
                                  op.opClass != OpClass::Load &&
                                  op.opClass != OpClass::Store;
            if (has_exec) {
                int64_t exec_issue = pools[size_t(op.opClass)].acquire(
                    std::max(data_ready, renamed), timing.occupancy);
                result = exec_issue + timing.execLatency;
            }

            // ---- Store micro-op.
            int64_t store_done = 0;
            if (has_store) {
                int64_t store_issue = pools[size_t(OpClass::Store)]
                                          .acquire(result, 1);
                store_done = store_issue + cfg.storeCommitDelay;
                if (!op.stackOp) {
                    int64_t fwd = store_issue + cfg.storeForwardDelay;
                    if (StoreRecord *rec = findStore(addr_key))
                        rec->forwardReady = fwd;
                    else
                        stores.push_back({addr_key, fwd});
                }
            }

            // ---- Writeback.
            for (isa::RegId reg : inst.writes) {
                if (op.stackOp && reg == isa::stackPointer) {
                    reg_ready[reg] = renamed;
                    continue;
                }
                reg_ready[reg] = result;
            }

            // ---- In-order retire.
            int64_t complete = std::max({result, store_done, renamed});
            retire_frontier = std::max(retire_frontier, complete);
            rob.push_back({retire_frontier, uops});
            max_retire = std::max(max_retire, retire_frontier);
        }
    }

    return double(max_retire) / double(iterations_);
}

double
RefMachine::measure(const isa::BasicBlock &block) const
{
    const double ideal = idealTiming(block);
    if (ideal == 0.0)
        return 0.0;
    Rng rng(block.hash() ^ config_.measurementSeed);
    const double noise = std::exp(rng.normal(0.0, config_.noiseStd));
    return ideal * noise;
}

} // namespace difftune::hw
