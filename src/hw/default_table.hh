/**
 * @file
 * The "expert-provided default" parameter tables.
 *
 * In the paper, llvm-mca ships per-uarch tables hand-written from
 * vendor documentation and measurement frameworks (Agner Fog,
 * uops.info). We reproduce that role: the default table is derived
 * from the hidden physical truth the way documentation is — compute
 * latencies are documented faithfully (with occasional off-by-one
 * publication errors), memory-operand latencies are documented as
 * sums of documented components (L1 + op + store), stack operations
 * get their documented-but-not-effective 2-cycle latency (the PUSH64r
 * case study), and the port map is a flattened single-port
 * simplification of the true unit pools (the paper likewise zeroes
 * llvm-mca's port groups).
 */

#ifndef DIFFTUNE_HW_DEFAULT_TABLE_HH
#define DIFFTUNE_HW_DEFAULT_TABLE_HH

#include "hw/uarch.hh"
#include "params/param_table.hh"

namespace difftune::hw
{

/** @return the expert default ParamTable for @p uarch. */
params::ParamTable defaultTable(Uarch uarch);

} // namespace difftune::hw

#endif // DIFFTUNE_HW_DEFAULT_TABLE_HH
