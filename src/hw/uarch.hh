/**
 * @file
 * Hidden microarchitecture configurations for the reference machine.
 *
 * These play the role of the four physical CPUs in the paper's
 * evaluation (Ivy Bridge, Haswell, Skylake, Zen 2). The values here
 * are the "physical truth" that the BHive-style measurement harness
 * observes end-to-end; they are deliberately richer than anything
 * XMca can express (execution-unit pools per functional class, zero
 * idiom elimination, move elimination, store-to-load forwarding),
 * which gives the simulator family an irreducible model error just as
 * real hardware does for llvm-mca.
 *
 * Nothing outside src/hw may read these tables to configure a
 * simulator: simulators only ever see ParamTables (either the
 * "documented" defaults derived in default_table.cc or learned ones).
 */

#ifndef DIFFTUNE_HW_UARCH_HH
#define DIFFTUNE_HW_UARCH_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace difftune::hw
{

/** The four evaluated microarchitectures. */
enum class Uarch : uint8_t
{
    IvyBridge,
    Haswell,
    Skylake,
    Zen2,
};

/** All microarchitectures, in the paper's table order. */
const std::vector<Uarch> &allUarches();

/** @return e.g. "Haswell". */
const char *uarchName(Uarch uarch);

/** @return true for the Intel microarchitectures (IACA coverage). */
bool isIntel(Uarch uarch);

/** Timing/resource description of one functional class. */
struct ClassTiming
{
    int latency = 1;   ///< result latency in cycles
    int units = 1;     ///< number of execution units in the pool
    int occupancy = 1; ///< cycles a unit stays busy per operation
};

/** Hidden "physical" configuration of one microarchitecture. */
struct UarchConfig
{
    Uarch uarch;
    std::string name;

    int renameWidth = 4;        ///< uops renamed/dispatched per cycle
    int robSize = 192;          ///< true reorder-buffer capacity
    double elimPerCycle = 3.2;  ///< zero-idiom/move eliminations per cycle
    bool moveElimination = true; ///< reg-reg moves eliminated at rename

    int l1Latency = 4;          ///< load-to-use latency, L1 hit
    int storeForwardDelay = 5;  ///< store -> dependent load delay
    int storeCommitDelay = 1;   ///< issue -> data available to forward

    /** Per-OpClass latency / unit-pool description. */
    std::array<ClassTiming,
               size_t(isa::OpClass::NumOpClasses)> classTiming{};

    /** Occupancy multiplier for 256-bit vector operations. */
    int vec256OccupancyMul = 1;
    /** Extra uops for 256-bit vector operations. */
    int vec256ExtraUops = 0;

    double noiseStd = 0.02;     ///< multiplicative measurement noise
    uint64_t measurementSeed = 1; ///< seeds per-block noise draws
};

/** @return the hidden configuration for @p uarch. */
const UarchConfig &uarchConfig(Uarch uarch);

} // namespace difftune::hw

#endif // DIFFTUNE_HW_UARCH_HH
