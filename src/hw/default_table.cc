/**
 * @file
 * Derivation of the expert default tables.
 */

#include "hw/default_table.hh"

#include <cmath>

#include "base/random.hh"
#include "hw/inst_model.hh"
#include "isa/isa.hh"

namespace difftune::hw
{

namespace
{

using isa::MemMode;
using isa::OpClass;

/** Deterministic per-(opcode, uarch) hash for documentation jitter. */
uint64_t
docHash(isa::OpcodeId op, Uarch uarch)
{
    uint64_t state = (uint64_t(op) << 8) ^ uint64_t(uarch) ^
                     0xd0c5eed5ULL;
    return splitMix64(state);
}

/** Documented WriteLatency for one opcode. */
int
documentedLatency(const UarchConfig &cfg, isa::OpcodeId op_id)
{
    const auto &op = isa::theIsa().info(op_id);
    const InstTiming timing = instTiming(cfg, op_id);

    int doc;
    if (op.stackOp) {
        // Push/pop documented as 2 cycles (address generation +
        // store), though the stack engine makes the rsp chain free.
        doc = 2;
    } else if (op.mem == MemMode::LoadStore) {
        // RMW documented as load + op + store commit.
        doc = cfg.l1Latency + timing.execLatency + 2;
    } else if (op.mem == MemMode::Load && op.opClass != OpClass::Load) {
        // Load-op documented as load + op.
        doc = cfg.l1Latency + timing.execLatency;
    } else if (op.opClass == OpClass::Load) {
        doc = cfg.l1Latency;
    } else if (op.opClass == OpClass::Store) {
        doc = 2;
    } else if (op.opClass == OpClass::Nop) {
        doc = 0;
    } else {
        doc = timing.execLatency;
    }

    // Occasional publication errors; the AMD tables (documented via
    // the znver1 model in the paper) carry more of them.
    const uint64_t h = docHash(op_id, cfg.uarch);
    const int jitter_mod = cfg.uarch == Uarch::Zen2 ? 4 : 8;
    if (h % jitter_mod == 0)
        doc += 1;
    else if (h % jitter_mod == 1 && doc > 1)
        doc -= 1;
    return doc;
}

/**
 * Default port assignment, mirroring the paper's llvm-mca
 * configuration. llvm-mca expresses multi-port capability through
 * port *groups*, and the paper zeroes all port-group parameters
 * ("removing that component of the simulation"); only instructions
 * bound to a single physical resource keep a PortMap entry. We
 * reproduce that: classes whose true unit pool has several units get
 * an all-zero PortMap (throughput then bounded by DispatchWidth, as
 * in the paper's llvm-mca), and single-unit classes keep their
 * dedicated port (the store port 4 of the PUSH64r case study, the
 * divider on port 0, the shuffle unit on port 5).
 */
int
classPort(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 0;
      case OpClass::Mov: return 0;
      case OpClass::Shift: return 6;
      case OpClass::IntMul: return 1;
      case OpClass::IntDiv: return 0;
      case OpClass::Lea: return 5;
      case OpClass::Load: return 2;
      case OpClass::Store: return 4;
      case OpClass::Setcc: return 6;
      case OpClass::Cmov: return 6;
      case OpClass::VecAlu: return 1;
      case OpClass::VecMul: return 0;
      case OpClass::VecFma: return 0;
      case OpClass::VecDiv: return 0;
      case OpClass::VecMov: return 5;
      case OpClass::VecShuf: return 5;
      case OpClass::Nop: return -1;
      default: return 0;
    }
}

} // namespace

params::ParamTable
defaultTable(Uarch uarch)
{
    const UarchConfig &cfg = uarchConfig(uarch);
    const isa::Isa &isa = isa::theIsa();
    params::ParamTable table(isa.numOpcodes());

    table.dispatchWidth = 4.0; // documented dispatch width, all uarches
    switch (uarch) {
      case Uarch::IvyBridge: table.reorderBufferSize = 168.0; break;
      case Uarch::Haswell: table.reorderBufferSize = 192.0; break;
      case Uarch::Skylake: table.reorderBufferSize = 224.0; break;
      case Uarch::Zen2: table.reorderBufferSize = 192.0; break;
    }

    for (isa::OpcodeId op_id = 0; op_id < isa.numOpcodes(); ++op_id) {
        const auto &op = isa.info(op_id);
        const InstTiming timing = instTiming(cfg, op_id);
        const uint64_t h = docHash(op_id, uarch);
        auto &inst = table.perOpcode[op_id];

        inst.writeLatency = documentedLatency(cfg, op_id);

        inst.numMicroOps = timing.uops;
        if (h % 13 == 2)
            inst.numMicroOps += 1; // occasional uop-count doc error

        // ReadAdvanceCycles: for folded-load instructions the register
        // value operands are consumed only after the load completes,
        // so their producers' latency is advanced by the L1 latency —
        // LLVM's ReadAfterLd entries. Address operands (which come
        // after the value slots in read order) are never advanced.
        // Everything else is 0, with a small extra population of 5s
        // and 7s matching the default distribution of Figure 4c.
        inst.readAdvance.fill(0.0);
        if ((op.mem == MemMode::Load || op.mem == MemMode::LoadStore) &&
            op.opClass != OpClass::Load && !op.stackOp) {
            int value_reads = 0;
            for (isa::OperandRole role : op.regOps)
                if (role != isa::OperandRole::Dst)
                    ++value_reads;
            for (int k = 0;
                 k < std::min(value_reads, params::numReadAdvance); ++k)
                inst.readAdvance[k] = cfg.l1Latency;
        }

        // PortMap: multi-unit classes are port groups -> zeroed (see
        // classPort); single-unit classes keep their dedicated port.
        // Loads ride the 2-ported load group (zeroed); stores always
        // occupy the single store port 4 for a cycle.
        inst.portMap.fill(0.0);
        const ClassTiming &cls = cfg.classTiming[size_t(op.opClass)];
        const int port = classPort(op.opClass);
        if (port >= 0 && cls.units == 1)
            inst.portMap[port] = timing.occupancy;
        // Non-Store-class instructions that write memory (RMW forms)
        // additionally occupy the store port; pure stores already got
        // port 4 from their class assignment above.
        if ((op.mem == MemMode::Store || op.mem == MemMode::LoadStore) &&
            op.opClass != OpClass::Store)
            inst.portMap[4] += 1.0;
    }

    return table;
}

} // namespace difftune::hw
