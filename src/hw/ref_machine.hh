/**
 * @file
 * RefMachine: the hidden-parameter reference machine that plays the
 * role of the physical CPUs in the paper's evaluation.
 *
 * RefMachine is deliberately richer than the simulators under study.
 * It models:
 *  - a rename/dispatch frontend with per-cycle width and a separate
 *    elimination budget for zero idioms and register-register moves
 *    (which execute in zero cycles and break dependences);
 *  - a stack engine (push/pop update rsp at rename, for free);
 *  - per-functional-class execution-unit pools with occupancy
 *    (non-pipelined dividers), rather than a flat port map;
 *  - L1 load latency and store-to-load forwarding chains through
 *    symbolic addresses — the effect llvm-mca structurally cannot
 *    express (the ADD32mr case study of Section VI-C);
 *  - deterministic multiplicative measurement noise per block,
 *    standing in for the BHive harness's residual variance.
 *
 * Simulators never see any of this; they only consume ParamTables.
 */

#ifndef DIFFTUNE_HW_REF_MACHINE_HH
#define DIFFTUNE_HW_REF_MACHINE_HH

#include "hw/uarch.hh"
#include "isa/instruction.hh"

namespace difftune::hw
{

/** Ground-truth basic-block timing "hardware". */
class RefMachine
{
  public:
    /**
     * @param uarch which hidden microarchitecture to emulate
     * @param iterations unrolled repetitions per measurement
     */
    explicit RefMachine(Uarch uarch, int iterations = 100);

    /**
     * Measured timing: cycles for iterations() repetitions divided by
     * the iteration count, with deterministic per-block measurement
     * noise applied (the same block always measures the same value).
     */
    double measure(const isa::BasicBlock &block) const;

    /** Noise-free timing (for tests and case-study analysis). */
    double idealTiming(const isa::BasicBlock &block) const;

    Uarch uarch() const { return config_.uarch; }
    int iterations() const { return iterations_; }
    const UarchConfig &config() const { return config_; }

  private:
    const UarchConfig &config_;
    int iterations_;
};

} // namespace difftune::hw

#endif // DIFFTUNE_HW_REF_MACHINE_HH
