/**
 * @file
 * Opcode-level physical timing derivation.
 */

#include "hw/inst_model.hh"

namespace difftune::hw
{

namespace
{

using isa::MemMode;
using isa::OpClass;

/** Opcode-level latency special cases on top of the class tables. */
int
specialLatency(const UarchConfig &config, const isa::OpcodeInfo &op,
               int class_latency)
{
    const std::string &name = op.name;
    auto startsWith = [&name](const char *prefix) {
        return name.rfind(prefix, 0) == 0;
    };

    // Integer-vector ALU ops are single-cycle even where FP adds are
    // multi-cycle.
    if (op.opClass == OpClass::VecAlu && startsWith("VP"))
        return 1;
    // Bitwise FP logicals are single-cycle too.
    if (op.opClass == OpClass::VecAlu &&
        (startsWith("VANDPS") || startsWith("VORPS") ||
         startsWith("VXORPS")))
        return 1;
    // VPMULLD is notoriously slow on Intel.
    if (startsWith("VPMULLD"))
        return config.uarch == Uarch::Zen2 ? 4 : 10;
    // 64-bit multiply/divide pays an extra cycle.
    if (op.opClass == OpClass::IntMul && op.width == 64)
        return class_latency + 1;
    if (op.opClass == OpClass::IntDiv && op.width == 64)
        return class_latency + 12;
    return class_latency;
}

} // namespace

InstTiming
instTiming(const UarchConfig &config, isa::OpcodeId op_id)
{
    const isa::OpcodeInfo &op = isa::theIsa().info(op_id);
    const ClassTiming &cls = config.classTiming[size_t(op.opClass)];

    InstTiming t;
    t.execLatency = specialLatency(config, op, cls.latency);
    t.units = cls.units;
    t.occupancy = cls.occupancy;

    // Micro-op count: base 1, plus the memory micro-ops.
    switch (op.mem) {
      case MemMode::None:
      case MemMode::AddrOnly:
        t.uops = 1;
        break;
      case MemMode::Load:
        t.uops = op.opClass == OpClass::Load ? 1 : 2;
        break;
      case MemMode::Store:
        t.uops = 1; // fused store-address + store-data
        break;
      case MemMode::LoadStore:
        t.uops = 4; // load + op + store-address + store-data
        break;
    }
    if (op.opClass == OpClass::IntDiv)
        t.uops += config.uarch == Uarch::Zen2 ? 1 : 9;
    if (op.opClass == OpClass::VecFma && config.uarch == Uarch::IvyBridge)
        t.uops += 1; // mul + add on pre-FMA hardware

    // 256-bit penalty (half-width vector datapaths).
    if (op.isVector && op.width >= 256) {
        t.occupancy *= config.vec256OccupancyMul;
        t.uops += config.vec256ExtraUops;
    }

    // Plain register-register copies are eliminable at rename;
    // extending moves (movsx/movzx) still execute.
    t.eliminable = config.moveElimination && op.pureMove;

    return t;
}

} // namespace difftune::hw
