/**
 * @file
 * Register-name tables.
 */

#include "isa/registers.hh"

#include <array>

#include "base/logging.hh"

namespace difftune::isa
{

namespace
{

const std::array<const char *, numGprRegs> gpr64Names = {
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
};

const std::array<const char *, numGprRegs> gpr32Names = {
    "eax",  "ebx",  "ecx",  "edx",  "esi",  "edi",  "ebp",  "esp",
    "r8d",  "r9d",  "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
};

} // namespace

RegClass
regClass(RegId reg)
{
    if (isGpr(reg))
        return RegClass::Gpr;
    if (isVec(reg))
        return RegClass::Vec;
    panic_if(reg != flagsReg, "bad register id {}", int(reg));
    return RegClass::Flags;
}

std::string
regName(RegId reg, int width)
{
    if (isGpr(reg))
        return width <= 32 ? gpr32Names[reg] : gpr64Names[reg];
    if (isVec(reg)) {
        const int idx = reg - firstVec;
        return (width >= 256 ? "ymm" : "xmm") + std::to_string(idx);
    }
    if (reg == flagsReg)
        return "flags";
    return "reg?" + std::to_string(reg);
}

RegId
regFromName(const std::string &name)
{
    for (RegId i = 0; i < numGprRegs; ++i) {
        if (name == gpr64Names[i] || name == gpr32Names[i])
            return i;
    }
    if (name.size() >= 4 &&
        (name.compare(0, 3, "xmm") == 0 || name.compare(0, 3, "ymm") == 0)) {
        int idx = std::atoi(name.c_str() + 3);
        if (idx >= 0 && idx < numVecRegs)
            return firstVec + static_cast<RegId>(idx);
    }
    if (name == "flags")
        return flagsReg;
    return invalidReg;
}

} // namespace difftune::isa
