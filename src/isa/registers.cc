/**
 * @file
 * Register-name tables.
 */

#include "isa/registers.hh"

#include <array>
#include <unordered_map>

#include "base/logging.hh"

namespace difftune::isa
{

namespace
{

const std::array<const char *, numGprRegs> gpr64Names = {
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
};

const std::array<const char *, numGprRegs> gpr32Names = {
    "eax",  "ebx",  "ecx",  "edx",  "esi",  "edi",  "ebp",  "esp",
    "r8d",  "r9d",  "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
};

} // namespace

RegClass
regClass(RegId reg)
{
    if (isGpr(reg))
        return RegClass::Gpr;
    if (isVec(reg))
        return RegClass::Vec;
    panic_if(reg != flagsReg, "bad register id {}", int(reg));
    return RegClass::Flags;
}

std::string
regName(RegId reg, int width)
{
    if (isGpr(reg))
        return width <= 32 ? gpr32Names[reg] : gpr64Names[reg];
    if (isVec(reg)) {
        const int idx = reg - firstVec;
        return (width >= 256 ? "ymm" : "xmm") + std::to_string(idx);
    }
    if (reg == flagsReg)
        return "flags";
    return "reg?" + std::to_string(reg);
}

namespace
{

/**
 * Interned fixed-name table (GPRs at both widths, flags), built once
 * per process: the zero-copy parser resolves register slices with
 * one hash probe instead of a linear scan, and never materializes a
 * std::string. Vector registers are handled by prefix below (their
 * name space is parameterized by an index).
 */
const std::unordered_map<std::string_view, RegId> &
fixedRegNames()
{
    static const std::unordered_map<std::string_view, RegId> table =
        [] {
            std::unordered_map<std::string_view, RegId> t;
            t.reserve(2 * numGprRegs + 1);
            for (RegId i = 0; i < numGprRegs; ++i) {
                t.emplace(gpr64Names[i], i);
                t.emplace(gpr32Names[i], i);
            }
            t.emplace("flags", flagsReg);
            return t;
        }();
    return table;
}

/**
 * atoi-compatible index parse (optional sign, leading digits,
 * trailing garbage ignored) so "xmm07" keeps resolving exactly as
 * the legacy strtol-based parser resolved it.
 */
int
parseIndexPrefix(std::string_view text)
{
    size_t pos = 0;
    bool negative = false;
    if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
        negative = text[pos] == '-';
        ++pos;
    }
    int value = 0;
    for (; pos < text.size() && text[pos] >= '0' && text[pos] <= '9';
         ++pos) {
        if (value <= numVecRegs) // saturate; only 0..15 are valid
            value = value * 10 + (text[pos] - '0');
    }
    return negative ? -value : value;
}

} // namespace

RegId
regFromName(std::string_view name)
{
    const auto &fixed = fixedRegNames();
    auto it = fixed.find(name);
    if (it != fixed.end())
        return it->second;
    if (name.size() >= 4 && (name.substr(0, 3) == "xmm" ||
                             name.substr(0, 3) == "ymm")) {
        int idx = parseIndexPrefix(name.substr(3));
        if (idx >= 0 && idx < numVecRegs)
            return firstVec + static_cast<RegId>(idx);
    }
    return invalidReg;
}

} // namespace difftune::isa
