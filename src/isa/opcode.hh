/**
 * @file
 * Opcode metadata for the synthetic x86-like ISA.
 *
 * Each opcode carries enough static information to (a) instantiate a
 * well-formed Instruction given a register assignment, (b) drive the
 * reference-hardware timing model, and (c) classify blocks into the
 * BHive-style categories (Scalar / Vec / Ld / St / ...).
 */

#ifndef DIFFTUNE_ISA_OPCODE_HH
#define DIFFTUNE_ISA_OPCODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace difftune::isa
{

/** Dense opcode identifier, an index into the Isa opcode table. */
using OpcodeId = uint16_t;

/** Sentinel meaning "no opcode". */
constexpr OpcodeId invalidOpcode = 0xffff;

/** Functional class of an opcode; drives hardware latency/port tables. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< add/sub/and/or/xor/cmp/test/inc/dec/neg/not
    IntMul,   ///< imul
    IntDiv,   ///< div/idiv
    Shift,    ///< shl/shr/sar
    Lea,      ///< address computation
    Mov,      ///< register/immediate moves
    Load,     ///< pure loads (mov r, m; pop)
    Store,    ///< pure stores (mov m, r/i; push)
    Setcc,    ///< flag consumers producing a register
    Cmov,     ///< conditional move
    VecAlu,   ///< packed fp/int add/sub/logic/min/max
    VecMul,   ///< packed multiply
    VecDiv,   ///< packed divide
    VecFma,   ///< fused multiply-add
    VecMov,   ///< vector register moves / loads / stores / broadcast
    VecShuf,  ///< shuffles / permutes
    Nop,      ///< no operation
    NumOpClasses,
};

/** @return a short printable name for an OpClass. */
const char *opClassName(OpClass cls);

/** Memory behaviour of an opcode. */
enum class MemMode : uint8_t
{
    None,      ///< no memory operand
    Load,      ///< reads memory
    Store,     ///< writes memory
    LoadStore, ///< read-modify-write on memory
    AddrOnly,  ///< computes an address but does not access memory (lea)
};

/** Role of one explicit register operand slot. */
enum class OperandRole : uint8_t
{
    Dst, ///< written only
    Src, ///< read only
    Rmw, ///< read and written (destructive destination)
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    std::string name;                 ///< e.g. "ADD32rr"
    OpClass opClass = OpClass::IntAlu;
    uint16_t width = 64;              ///< operation width in bits
    MemMode mem = MemMode::None;
    std::vector<OperandRole> regOps;  ///< explicit register slots
    bool readsFlags = false;
    bool writesFlags = false;
    bool hasImm = false;
    bool stackOp = false;             ///< implicit rsp read-modify-write
    bool usesRaxRdx = false;          ///< implicit rax/rdx rmw (div)
    bool zeroIdiom = false;           ///< xor r,r-style zeroing capable
    bool pureMove = false;            ///< plain reg-reg copy (mov rr)
    bool isVector = false;

    /** @return number of explicit register operand slots. */
    size_t numRegOps() const { return regOps.size(); }
};

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_OPCODE_HH
