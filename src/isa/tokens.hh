/**
 * @file
 * Token encoding of instructions for the neural surrogate.
 *
 * Follows Ithemal's canonicalization (Fig. 3 of the paper): each
 * instruction becomes the token sequence
 *
 *     [opcode, <S>, source tokens..., <D>, destination tokens..., <E>]
 *
 * where register operands map to per-register tokens and memory /
 * immediate operands map to the MEM / CONST tokens.
 */

#ifndef DIFFTUNE_ISA_TOKENS_HH
#define DIFFTUNE_ISA_TOKENS_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace difftune::isa
{

/** Token id in the surrogate vocabulary. */
using TokenId = int32_t;

/** Token vocabulary layout for a given Isa. */
class TokenVocab
{
  public:
    explicit TokenVocab(const Isa &isa);

    /** @return the total vocabulary size. */
    size_t size() const { return size_; }

    /** @return the token for opcode @p op. */
    TokenId opcodeToken(OpcodeId op) const { return TokenId(op); }

    /** @return the token for register @p reg. */
    TokenId
    regToken(RegId reg) const
    {
        return TokenId(numOpcodes_) + TokenId(reg);
    }

    TokenId srcMarker() const { return markerBase_ + 0; } ///< <S>
    TokenId dstMarker() const { return markerBase_ + 1; } ///< <D>
    TokenId endMarker() const { return markerBase_ + 2; } ///< <E>
    TokenId memToken() const { return markerBase_ + 3; }  ///< MEM
    TokenId constToken() const { return markerBase_ + 4; } ///< CONST

    /** Encode one instruction into its token sequence. */
    std::vector<TokenId> encode(const Instruction &inst) const;

    /** Encode a block: one token sequence per instruction. */
    std::vector<std::vector<TokenId>>
    encode(const BasicBlock &block) const;

  private:
    size_t numOpcodes_;
    TokenId markerBase_;
    size_t size_;
};

/** @return the shared vocabulary for theIsa(). */
const TokenVocab &theVocab();

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_TOKENS_HH
