/**
 * @file
 * Construction of the synthetic x86-like opcode table.
 *
 * The table is modeled on the subset of x86-64 that dominates the
 * BHive dataset: scalar ALU ops in register/immediate/memory forms,
 * moves, shifts, multiplies/divides, lea, stack ops, flag consumers,
 * and SSE/AVX-style packed operations at 128 and 256 bits. The result
 * is ~200 opcodes, each instantiable into well-formed instructions.
 */

#include "isa/isa.hh"

#include "base/logging.hh"
#include "isa/registers.hh"

namespace difftune::isa
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::IntDiv: return "IntDiv";
      case OpClass::Shift: return "Shift";
      case OpClass::Lea: return "Lea";
      case OpClass::Mov: return "Mov";
      case OpClass::Load: return "Load";
      case OpClass::Store: return "Store";
      case OpClass::Setcc: return "Setcc";
      case OpClass::Cmov: return "Cmov";
      case OpClass::VecAlu: return "VecAlu";
      case OpClass::VecMul: return "VecMul";
      case OpClass::VecDiv: return "VecDiv";
      case OpClass::VecFma: return "VecFma";
      case OpClass::VecMov: return "VecMov";
      case OpClass::VecShuf: return "VecShuf";
      case OpClass::Nop: return "Nop";
      default: return "?";
    }
}

Isa::Isa()
{
    buildTable();
}

OpcodeId
Isa::add(OpcodeInfo info)
{
    panic_if(byName_.count(info.name), "duplicate opcode {}", info.name);
    OpcodeId id = static_cast<OpcodeId>(opcodes_.size());
    byName_[info.name] = id;
    opcodes_.push_back(std::move(info));
    return id;
}

OpcodeId
Isa::opcodeByName(std::string_view name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? invalidOpcode : it->second;
}

std::vector<OpcodeId>
Isa::opcodesOfClass(OpClass cls) const
{
    std::vector<OpcodeId> result;
    for (size_t i = 0; i < opcodes_.size(); ++i)
        if (opcodes_[i].opClass == cls)
            result.push_back(static_cast<OpcodeId>(i));
    return result;
}

std::vector<OpcodeId>
Isa::opcodesWithMem(MemMode mem) const
{
    std::vector<OpcodeId> result;
    for (size_t i = 0; i < opcodes_.size(); ++i)
        if (opcodes_[i].mem == mem)
            result.push_back(static_cast<OpcodeId>(i));
    return result;
}

namespace
{

using Roles = std::vector<OperandRole>;

OpcodeInfo
makeInfo(std::string name, OpClass cls, uint16_t width, MemMode mem,
         Roles roles)
{
    OpcodeInfo info;
    info.name = std::move(name);
    info.opClass = cls;
    info.width = width;
    info.mem = mem;
    info.regOps = std::move(roles);
    return info;
}

} // namespace

void
Isa::buildTable()
{
    const Roles rmwSrc = {OperandRole::Rmw, OperandRole::Src};
    const Roles rmwOnly = {OperandRole::Rmw};
    const Roles srcOnly = {OperandRole::Src};
    const Roles srcSrc = {OperandRole::Src, OperandRole::Src};
    const Roles dstSrc = {OperandRole::Dst, OperandRole::Src};
    const Roles dstOnly = {OperandRole::Dst};
    const Roles none = {};

    // --- Scalar binary ALU: ADD/SUB/AND/OR/XOR/CMP in rr/ri/rm/mr/mi
    struct BinSpec { const char *base; bool writesReg; bool zeroIdiom; };
    const BinSpec bins[] = {
        {"ADD", true, false}, {"SUB", true, true}, {"AND", true, false},
        {"OR", true, false},  {"XOR", true, true}, {"CMP", false, false},
    };
    for (const auto &bin : bins) {
        for (uint16_t width : {32, 64}) {
            const std::string stem =
                std::string(bin.base) + std::to_string(width);
            // rr: dst op= src (or compare-only for CMP)
            {
                auto info = makeInfo(stem + "rr", OpClass::IntAlu, width,
                                     MemMode::None,
                                     bin.writesReg ? rmwSrc : srcSrc);
                info.writesFlags = true;
                info.zeroIdiom = bin.zeroIdiom;
                add(std::move(info));
            }
            // ri: dst op= imm
            {
                auto info = makeInfo(stem + "ri", OpClass::IntAlu, width,
                                     MemMode::None,
                                     bin.writesReg ? rmwOnly : srcOnly);
                info.writesFlags = true;
                info.hasImm = true;
                add(std::move(info));
            }
            // rm: dst op= [mem]
            {
                auto info = makeInfo(stem + "rm", OpClass::IntAlu, width,
                                     MemMode::Load,
                                     bin.writesReg ? rmwOnly : srcOnly);
                info.writesFlags = true;
                add(std::move(info));
            }
            // mr: [mem] op= src (RMW on memory; CMP only reads)
            {
                auto info = makeInfo(
                    stem + "mr", OpClass::IntAlu, width,
                    bin.writesReg ? MemMode::LoadStore : MemMode::Load,
                    srcOnly);
                info.writesFlags = true;
                add(std::move(info));
            }
            // mi: [mem] op= imm
            {
                auto info = makeInfo(
                    stem + "mi", OpClass::IntAlu, width,
                    bin.writesReg ? MemMode::LoadStore : MemMode::Load,
                    none);
                info.writesFlags = true;
                info.hasImm = true;
                add(std::move(info));
            }
        }
    }

    // --- TEST (read-only, writes flags)
    for (uint16_t width : {32, 64}) {
        const std::string stem = "TEST" + std::to_string(width);
        {
            auto info = makeInfo(stem + "rr", OpClass::IntAlu, width,
                                 MemMode::None, srcSrc);
            info.writesFlags = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo(stem + "ri", OpClass::IntAlu, width,
                                 MemMode::None, srcOnly);
            info.writesFlags = true;
            info.hasImm = true;
            add(std::move(info));
        }
    }

    // --- MOV family
    for (uint16_t width : {32, 64}) {
        const std::string stem = "MOV" + std::to_string(width);
        {
            auto info = makeInfo(stem + "rr", OpClass::Mov, width,
                                 MemMode::None, dstSrc);
            info.pureMove = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo(stem + "ri", OpClass::Mov, width,
                                 MemMode::None, dstOnly);
            info.hasImm = true;
            add(std::move(info));
        }
        add(makeInfo(stem + "rm", OpClass::Load, width, MemMode::Load,
                     dstOnly));
        add(makeInfo(stem + "mr", OpClass::Store, width, MemMode::Store,
                     srcOnly));
        {
            auto info = makeInfo(stem + "mi", OpClass::Store, width,
                                 MemMode::Store, none);
            info.hasImm = true;
            add(std::move(info));
        }
    }
    // Sign/zero extensions.
    add(makeInfo("MOVSX64rr32", OpClass::Mov, 64, MemMode::None, dstSrc));
    add(makeInfo("MOVZX64rr32", OpClass::Mov, 64, MemMode::None, dstSrc));
    add(makeInfo("MOVSX64rm32", OpClass::Load, 64, MemMode::Load, dstOnly));
    add(makeInfo("MOVZX64rm32", OpClass::Load, 64, MemMode::Load, dstOnly));

    // --- Shifts: SHL/SHR/SAR in ri and mi forms
    for (const char *base : {"SHL", "SHR", "SAR"}) {
        for (uint16_t width : {32, 64}) {
            const std::string stem =
                std::string(base) + std::to_string(width);
            {
                auto info = makeInfo(stem + "ri", OpClass::Shift, width,
                                     MemMode::None, rmwOnly);
                info.writesFlags = true;
                info.hasImm = true;
                add(std::move(info));
            }
            {
                // e.g. SHR64mi: shrq $5, 16(%rsp) — the Figure 2 block.
                auto info = makeInfo(stem + "mi", OpClass::Shift, width,
                                     MemMode::LoadStore, none);
                info.writesFlags = true;
                info.hasImm = true;
                add(std::move(info));
            }
        }
    }

    // --- Multiplies and divides
    for (uint16_t width : {32, 64}) {
        const std::string w = std::to_string(width);
        {
            auto info = makeInfo("IMUL" + w + "rr", OpClass::IntMul, width,
                                 MemMode::None, rmwSrc);
            info.writesFlags = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("IMUL" + w + "rm", OpClass::IntMul, width,
                                 MemMode::Load, rmwOnly);
            info.writesFlags = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("IMUL" + w + "rri", OpClass::IntMul, width,
                                 MemMode::None, dstSrc);
            info.writesFlags = true;
            info.hasImm = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("DIV" + w + "r", OpClass::IntDiv, width,
                                 MemMode::None, srcOnly);
            info.writesFlags = true;
            info.usesRaxRdx = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("IDIV" + w + "r", OpClass::IntDiv, width,
                                 MemMode::None, srcOnly);
            info.writesFlags = true;
            info.usesRaxRdx = true;
            add(std::move(info));
        }
    }

    // --- LEA (one- and two-register address forms)
    add(makeInfo("LEA64r", OpClass::Lea, 64, MemMode::AddrOnly, dstOnly));
    {
        // lea with base+index: reads one extra register.
        auto info = makeInfo("LEA64rr", OpClass::Lea, 64, MemMode::AddrOnly,
                             {OperandRole::Dst, OperandRole::Src});
        add(std::move(info));
    }

    // --- Unary RMW ops
    for (const char *base : {"INC", "DEC", "NEG", "NOT"}) {
        for (uint16_t width : {32, 64}) {
            const std::string stem =
                std::string(base) + std::to_string(width);
            {
                auto info = makeInfo(stem + "r", OpClass::IntAlu, width,
                                     MemMode::None, rmwOnly);
                info.writesFlags = std::string(base) != "NOT";
                add(std::move(info));
            }
            {
                auto info = makeInfo(stem + "m", OpClass::IntAlu, width,
                                     MemMode::LoadStore, none);
                info.writesFlags = std::string(base) != "NOT";
                add(std::move(info));
            }
        }
    }

    // --- Stack operations (implicit rsp read-modify-write)
    {
        auto info = makeInfo("PUSH64r", OpClass::Store, 64, MemMode::Store,
                             srcOnly);
        info.stackOp = true;
        add(std::move(info));
    }
    {
        auto info = makeInfo("PUSH64i", OpClass::Store, 64, MemMode::Store,
                             none);
        info.stackOp = true;
        info.hasImm = true;
        add(std::move(info));
    }
    {
        auto info = makeInfo("POP64r", OpClass::Load, 64, MemMode::Load,
                             dstOnly);
        info.stackOp = true;
        add(std::move(info));
    }

    // --- Flag consumers
    {
        auto info = makeInfo("SETCC8r", OpClass::Setcc, 8, MemMode::None,
                             dstOnly);
        info.readsFlags = true;
        add(std::move(info));
    }
    for (uint16_t width : {32, 64}) {
        auto info = makeInfo("CMOV" + std::to_string(width) + "rr",
                             OpClass::Cmov, width, MemMode::None, rmwSrc);
        info.readsFlags = true;
        add(std::move(info));
    }

    // --- NOP
    add(makeInfo("NOP", OpClass::Nop, 64, MemMode::None, none));

    // --- Vector ops (AVX-style three-operand forms, 128/256 bit)
    struct VecSpec { const char *base; OpClass cls; bool zeroIdiom; };
    const VecSpec vecs[] = {
        {"VADDPS", OpClass::VecAlu, false},
        {"VSUBPS", OpClass::VecAlu, false},
        {"VMINPS", OpClass::VecAlu, false},
        {"VMAXPS", OpClass::VecAlu, false},
        {"VANDPS", OpClass::VecAlu, false},
        {"VORPS", OpClass::VecAlu, false},
        {"VXORPS", OpClass::VecAlu, true},
        {"VMULPS", OpClass::VecMul, false},
        {"VDIVPS", OpClass::VecDiv, false},
        {"VPADDD", OpClass::VecAlu, false},
        {"VPSUBD", OpClass::VecAlu, false},
        {"VPAND", OpClass::VecAlu, false},
        {"VPOR", OpClass::VecAlu, false},
        {"VPXOR", OpClass::VecAlu, true},
        {"VPMULLD", OpClass::VecMul, false},
    };
    const Roles vecRrr = {OperandRole::Dst, OperandRole::Src,
                          OperandRole::Src};
    for (const auto &vec : vecs) {
        for (uint16_t width : {128, 256}) {
            const std::string stem =
                std::string(vec.base) + std::to_string(width);
            {
                auto info = makeInfo(stem + "rr", vec.cls, width,
                                     MemMode::None, vecRrr);
                info.isVector = true;
                info.zeroIdiom = vec.zeroIdiom;
                add(std::move(info));
            }
            {
                auto info = makeInfo(stem + "rm", vec.cls, width,
                                     MemMode::Load, dstSrc);
                info.isVector = true;
                add(std::move(info));
            }
        }
    }

    // --- FMA (destructive accumulator)
    for (uint16_t width : {128, 256}) {
        const std::string w = std::to_string(width);
        {
            auto info = makeInfo("VFMADD" + w + "rr", OpClass::VecFma, width,
                                 MemMode::None,
                                 {OperandRole::Rmw, OperandRole::Src,
                                  OperandRole::Src});
            info.isVector = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VFMADD" + w + "rm", OpClass::VecFma, width,
                                 MemMode::Load, rmwSrc);
            info.isVector = true;
            add(std::move(info));
        }
    }

    // --- Vector moves, loads, stores, broadcasts, shuffles
    for (uint16_t width : {128, 256}) {
        const std::string w = std::to_string(width);
        {
            auto info = makeInfo("VMOVAPS" + w + "rr", OpClass::VecMov,
                                 width, MemMode::None, dstSrc);
            info.isVector = true;
            info.pureMove = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VMOVAPS" + w + "rm", OpClass::VecMov,
                                 width, MemMode::Load, dstOnly);
            info.isVector = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VMOVAPS" + w + "mr", OpClass::VecMov,
                                 width, MemMode::Store, srcOnly);
            info.isVector = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VBROADCASTSS" + w + "rm", OpClass::VecMov,
                                 width, MemMode::Load, dstOnly);
            info.isVector = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VSHUFPS" + w + "rr", OpClass::VecShuf,
                                 width, MemMode::None, vecRrr);
            info.isVector = true;
            info.hasImm = true;
            add(std::move(info));
        }
        {
            auto info = makeInfo("VPSHUFB" + w + "rr", OpClass::VecShuf,
                                 width, MemMode::None, vecRrr);
            info.isVector = true;
            add(std::move(info));
        }
    }
}

const Isa &
theIsa()
{
    static const Isa isa;
    return isa;
}

} // namespace difftune::isa
