/**
 * @file
 * Instruction and BasicBlock representations.
 *
 * An Instruction stores its opcode plus fully-resolved dependence
 * information: the canonical registers it reads and writes (including
 * implicit operands such as flags and the stack pointer) and its
 * memory reference. Blocks are straight-line sequences, mirroring
 * llvm-mca's input domain (no branches, jumps or loops).
 */

#ifndef DIFFTUNE_ISA_INSTRUCTION_HH
#define DIFFTUNE_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "isa/registers.hh"

namespace difftune::isa
{

/** Memory reference: base register + displacement (no index scale). */
struct MemRef
{
    RegId base = invalidReg;
    int32_t disp = 0;

    /** Symbolic address key used for alias analysis in RefMachine. */
    uint32_t
    addressKey() const
    {
        return (uint32_t(base) << 24) ^ uint32_t(disp & 0xffffff);
    }
};

/** One decoded instruction with resolved operands. */
struct Instruction
{
    OpcodeId opcode = invalidOpcode;

    /** Explicit register operands in slot order (for printing). */
    std::vector<RegId> slots;

    /** Canonical registers read (explicit + implicit). */
    std::vector<RegId> reads;
    /** Canonical registers written (explicit + implicit). */
    std::vector<RegId> writes;

    MemRef mem;        ///< valid when the opcode has a memory operand
    int64_t imm = 0;   ///< valid when the opcode has an immediate

    /** @return opcode metadata from the shared Isa. */
    const OpcodeInfo &info() const { return theIsa().info(opcode); }

    /**
     * @return true when this instance is a zero idiom: a
     * zero-idiom-capable opcode whose two read slots name the same
     * register (e.g. xor %eax, %eax).
     */
    bool isZeroIdiom() const;
};

/** A straight-line sequence of instructions. */
struct BasicBlock
{
    std::vector<Instruction> insts;

    size_t size() const { return insts.size(); }
    bool empty() const { return insts.empty(); }

    /** Stable content hash (used for dataset deduplication). */
    uint64_t hash() const;
};

/**
 * Build a well-formed Instruction for @p opcode.
 *
 * @param opcode opcode to instantiate
 * @param slot_regs registers for the explicit operand slots, in order
 *        (size must equal the opcode's numRegOps())
 * @param mem memory reference (required iff the opcode accesses
 *        memory or is AddrOnly)
 * @param imm immediate value (meaningful iff the opcode hasImm)
 * @return the instruction with reads/writes fully resolved
 */
Instruction makeInstruction(OpcodeId opcode,
                            const std::vector<RegId> &slot_regs,
                            MemRef mem = MemRef{}, int64_t imm = 0);

/** Render one instruction in AT&T-flavored assembly. */
std::string toString(const Instruction &inst);

/** Render a block, one instruction per line. */
std::string toString(const BasicBlock &block);

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_INSTRUCTION_HH
