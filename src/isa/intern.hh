/**
 * @file
 * Append-only, thread-safe interning of canonical instructions and
 * blocks.
 *
 * The serving front end sees heavy near-miss traffic: the same
 * canonical block arriving under different raw spellings (extra
 * whitespace, reordered blanks, trailing comments). Pre-intern, every
 * such request re-canonicalized to a std::string key (isa::toString)
 * just to probe a cache. The Interner maps a parsed Instruction /
 * BasicBlock to a small dense id instead:
 *
 *   raw text --parse--> BasicBlock --intern--> BlockId
 *
 * Two inputs get the same BlockId iff they print to the same
 * canonical text (toString): the instruction key is normalized
 * exactly like makeInstruction + toString normalize an instruction
 * (an immediate on an opcode that takes none is dropped, stack-op
 * memory refs are collapsed), so a BlockId is 1:1 with a canonical
 * form. Interned ids then key the serving LRUs and the
 * instruction-hidden memo (surrogate::InstHiddenCache) — a uint32
 * compare instead of a string compare on the hot path.
 *
 * # Storage, lifetime and thread safety
 *
 * Both tables are append-only CAS hash buckets, the same publication
 * scheme as nn::WeightSnapshot's projection cache: insert-if-absent
 * retries re-walk the newly-prepended prefix for a duplicate before
 * re-CASing, and the loser of a genuine race discards its node — so
 * exactly one id ever exists per canonical form. All operations are
 * thread-safe and lock-free; entries are never evicted or mutated,
 * so a returned id or reference stays valid for the Interner's
 * lifetime. Ids are private to one Interner — never mix ids from
 * two instances.
 *
 * # Capacity
 *
 * Bounded like InstHiddenCache: at capacity the tables stop
 * interning and return invalidInstId / invalidBlockId, and callers
 * fall back to their uninterned path (the serving engine serves such
 * blocks without canonical-level caching — results are unchanged,
 * only speed). Each instruction's token sequence is encoded once at
 * intern time, so an interned block also carries its model-ready
 * token lanes.
 */

#ifndef DIFFTUNE_ISA_INTERN_HH
#define DIFFTUNE_ISA_INTERN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hh"
#include "isa/tokens.hh"

namespace difftune::isa
{

/** Dense id of an interned canonical instruction. */
using InstId = uint32_t;
/** Dense id of an interned canonical block shape. */
using BlockId = uint32_t;

/** Sentinel: instruction could not be interned (table full). */
constexpr InstId invalidInstId = 0xffffffffu;
/** Sentinel: block could not be interned (table full). */
constexpr BlockId invalidBlockId = 0xffffffffu;

/** Append-only id tables for canonical instructions and blocks. */
class Interner
{
  public:
    /**
     * @param max_insts instruction-table capacity (stop-interning
     *        bound, like InstHiddenCache)
     * @param max_blocks block-table capacity
     */
    explicit Interner(size_t max_insts = size_t(1) << 17,
                      size_t max_blocks = size_t(1) << 16);
    ~Interner();

    Interner(const Interner &) = delete;
    Interner &operator=(const Interner &) = delete;

    /**
     * Id of @p inst's canonical form, interning it if new. Returns
     * invalidInstId when the table is full. Thread-safe.
     */
    InstId internInst(const Instruction &inst);

    /**
     * Id of @p block's canonical shape (interning every instruction
     * too), or invalidBlockId when a table is full. Thread-safe.
     */
    BlockId internBlock(const BasicBlock &block);

    /**
     * As above; @p known is set to whether the block was already
     * interned — the serving engine's intern-hit counter (a loser of
     * a concurrent first-intern race counts as known).
     */
    BlockId internBlock(const BasicBlock &block, bool &known);

    /**
     * The token sequence of instruction @p id, encoded once at
     * intern time (theVocab().encode). Valid for the Interner's
     * lifetime.
     */
    const std::vector<TokenId> &tokens(InstId id) const;

    /** The interned instructions of block @p id, in order. */
    const std::vector<InstId> &instIds(BlockId id) const;

    /** Interned instruction count (published entries). */
    size_t numInsts() const;
    /** Interned block count (published entries). */
    size_t numBlocks() const;
    /** Approximate heap footprint of both tables, in bytes. */
    size_t bytes() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_INTERN_HH
