/**
 * @file
 * Token-vocabulary implementation.
 */

#include "isa/tokens.hh"

namespace difftune::isa
{

TokenVocab::TokenVocab(const Isa &isa)
    : numOpcodes_(isa.numOpcodes()),
      markerBase_(TokenId(numOpcodes_ + numRegs)),
      size_(numOpcodes_ + numRegs + 5)
{
}

std::vector<TokenId>
TokenVocab::encode(const Instruction &inst) const
{
    const OpcodeInfo &op = inst.info();
    std::vector<TokenId> tokens;
    tokens.reserve(inst.reads.size() + inst.writes.size() + 6);

    tokens.push_back(opcodeToken(inst.opcode));
    tokens.push_back(srcMarker());
    if (op.hasImm)
        tokens.push_back(constToken());
    for (RegId reg : inst.reads)
        tokens.push_back(regToken(reg));
    if (op.mem == MemMode::Load || op.mem == MemMode::LoadStore)
        tokens.push_back(memToken());
    tokens.push_back(dstMarker());
    for (RegId reg : inst.writes)
        tokens.push_back(regToken(reg));
    if (op.mem == MemMode::Store || op.mem == MemMode::LoadStore)
        tokens.push_back(memToken());
    tokens.push_back(endMarker());
    return tokens;
}

std::vector<std::vector<TokenId>>
TokenVocab::encode(const BasicBlock &block) const
{
    std::vector<std::vector<TokenId>> result;
    result.reserve(block.size());
    for (const auto &inst : block.insts)
        result.push_back(encode(inst));
    return result;
}

const TokenVocab &
theVocab()
{
    static const TokenVocab vocab(theIsa());
    return vocab;
}

} // namespace difftune::isa
