/**
 * @file
 * Parser for the library's canonical assembly syntax.
 *
 * The grammar is exactly what toString() prints: one instruction per
 * line, `OPCODE operand, operand, ...`, with `%reg` register
 * operands, `$imm` immediates and `disp(%base)` memory references.
 * Lines that are empty or start with '#' are ignored.
 *
 * The front end is a single-pass zero-copy tokenizer: every lexical
 * item is a std::string_view slice of the caller's buffer, so the
 * hot serving path (parse → intern → predict) allocates no per-token
 * std::string. The input buffer must stay alive for the duration of
 * the call only — parsed Instructions own their operands by value.
 */

#ifndef DIFFTUNE_ISA_PARSE_HH
#define DIFFTUNE_ISA_PARSE_HH

#include <string>
#include <string_view>
#include <vector>

#include "isa/instruction.hh"

namespace difftune::isa
{

/**
 * One lexical item of the canonical grammar — a mnemonic or one
 * comma-separated operand — as a zero-copy slice of the input text
 * (trimmed of surrounding whitespace, never allocated). Slices
 * borrow the caller's buffer: they are valid only while it lives.
 */
struct Lexeme
{
    std::string_view text; ///< trimmed slice of the input
    uint32_t line = 0;     ///< 0-based source line in the block text
    bool mnemonic = false; ///< first lexeme of its instruction line
    /**
     * The slice still carries interior whitespace ("%r ax"); the
     * parser compacts such operands on a cold fallback path, keeping
     * the legacy parser's elide-all-whitespace semantics without
     * giving up zero-copy slices for well-formed input.
     */
    bool spaced = false;
};

/**
 * Single-pass zero-copy scan of @p text: append one Lexeme per
 * mnemonic/operand to @p out (cleared first). Blank and '#' comment
 * lines are skipped exactly as parseBlock() skips them. Never
 * throws — structural errors (empty operands, unknown names) are
 * the parser's to report. @return the number of instruction lines.
 */
size_t lexBlock(std::string_view text, std::vector<Lexeme> &out);

/**
 * Parse a single instruction.
 * @throws std::runtime_error (via fatal()) on malformed input.
 */
Instruction parseInstruction(std::string_view line);

/** Parse a multi-line block. */
BasicBlock parseBlock(std::string_view text);

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_PARSE_HH
