/**
 * @file
 * Parser for the library's canonical assembly syntax.
 *
 * The grammar is exactly what toString() prints: one instruction per
 * line, `OPCODE operand, operand, ...`, with `%reg` register
 * operands, `$imm` immediates and `disp(%base)` memory references.
 * Lines that are empty or start with '#' are ignored.
 */

#ifndef DIFFTUNE_ISA_PARSE_HH
#define DIFFTUNE_ISA_PARSE_HH

#include <string>

#include "isa/instruction.hh"

namespace difftune::isa
{

/**
 * Parse a single instruction.
 * @throws std::runtime_error (via fatal()) on malformed input.
 */
Instruction parseInstruction(const std::string &line);

/** Parse a multi-line block. */
BasicBlock parseBlock(const std::string &text);

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_PARSE_HH
