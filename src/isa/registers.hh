/**
 * @file
 * Architectural register description for the synthetic x86-like ISA.
 *
 * Registers are identified by a flat canonical id so that dependence
 * tracking in the simulators is a simple array lookup. Sub-register
 * aliasing (eax vs rax) is modeled by mapping every width of a logical
 * register to the same canonical id, which matches how llvm-mca's
 * register file resolves read-after-write dependences at the
 * granularity this library needs.
 */

#ifndef DIFFTUNE_ISA_REGISTERS_HH
#define DIFFTUNE_ISA_REGISTERS_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace difftune::isa
{

/** Canonical register id; see the layout constants below. */
using RegId = uint8_t;

/** Number of general-purpose registers (rax..r15). */
constexpr RegId numGprRegs = 16;
/** Number of vector registers (xmm0..xmm15, aliased by ymm). */
constexpr RegId numVecRegs = 16;

/** Id of the first GPR. */
constexpr RegId firstGpr = 0;
/** Id of the first vector register. */
constexpr RegId firstVec = numGprRegs;
/** Canonical id of the flags register. */
constexpr RegId flagsReg = numGprRegs + numVecRegs;
/** Total number of canonical registers. */
constexpr RegId numRegs = numGprRegs + numVecRegs + 1;
/** Sentinel meaning "no register". */
constexpr RegId invalidReg = 0xff;

/** Canonical id of the stack pointer (rsp). */
constexpr RegId stackPointer = 7;

/** Register class of a canonical id. */
enum class RegClass : uint8_t { Gpr, Vec, Flags };

/** @return the class of register @p reg. */
RegClass regClass(RegId reg);

/** @return the AT&T-style name of @p reg at the given bit width. */
std::string regName(RegId reg, int width = 64);

/**
 * @return the canonical id for a register name, or invalidReg.
 * Accepts a zero-copy slice; the GPR/flags names resolve through an
 * interned name table built once per process.
 */
RegId regFromName(std::string_view name);

/** @return true if @p reg names a GPR. */
inline bool
isGpr(RegId reg)
{
    return reg < numGprRegs;
}

/** @return true if @p reg names a vector register. */
inline bool
isVec(RegId reg)
{
    return reg >= firstVec && reg < firstVec + numVecRegs;
}

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_REGISTERS_HH
