/**
 * @file
 * Instruction construction, dependence resolution and printing.
 */

#include "isa/instruction.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace difftune::isa
{

bool
Instruction::isZeroIdiom() const
{
    const OpcodeInfo &op = info();
    if (!op.zeroIdiom)
        return false;
    // Destructive scalar form: slot0 rmw, slot1 src — zero idiom when
    // both name the same register. Non-destructive vector form: dst,
    // src, src — zero idiom when the two sources match.
    if (op.regOps.size() == 2)
        return slots[0] == slots[1];
    if (op.regOps.size() == 3)
        return slots[1] == slots[2];
    return false;
}

uint64_t
BasicBlock::hash() const
{
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t value) {
        h ^= value + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    for (const auto &inst : insts) {
        mix(inst.opcode);
        for (RegId reg : inst.slots)
            mix(reg);
        mix(uint64_t(inst.mem.base) << 32 | uint32_t(inst.mem.disp));
        mix(uint64_t(inst.imm));
    }
    return h;
}

Instruction
makeInstruction(OpcodeId opcode, const std::vector<RegId> &slot_regs,
                MemRef mem, int64_t imm)
{
    const OpcodeInfo &op = theIsa().info(opcode);
    panic_if(slot_regs.size() != op.numRegOps(),
             "opcode {} takes {} register operands, got {}", op.name,
             op.numRegOps(), slot_regs.size());

    Instruction inst;
    inst.opcode = opcode;
    inst.slots = slot_regs;
    inst.imm = imm;

    auto addUnique = [](std::vector<RegId> &list, RegId reg) {
        if (reg == invalidReg)
            return;
        if (std::find(list.begin(), list.end(), reg) == list.end())
            list.push_back(reg);
    };

    for (size_t i = 0; i < op.regOps.size(); ++i) {
        switch (op.regOps[i]) {
          case OperandRole::Dst:
            addUnique(inst.writes, slot_regs[i]);
            break;
          case OperandRole::Src:
            addUnique(inst.reads, slot_regs[i]);
            break;
          case OperandRole::Rmw:
            addUnique(inst.reads, slot_regs[i]);
            addUnique(inst.writes, slot_regs[i]);
            break;
        }
    }

    if (op.mem != MemMode::None && !op.stackOp) {
        panic_if(mem.base == invalidReg,
                 "opcode {} requires a memory operand", op.name);
        inst.mem = mem;
        addUnique(inst.reads, mem.base);
    }

    if (op.stackOp) {
        addUnique(inst.reads, stackPointer);
        addUnique(inst.writes, stackPointer);
        // Stack accesses are rsp-relative regardless of the slot regs.
        inst.mem.base = stackPointer;
    }

    if (op.usesRaxRdx) {
        addUnique(inst.reads, RegId(0));  // rax
        addUnique(inst.reads, RegId(3));  // rdx
        addUnique(inst.writes, RegId(0));
        addUnique(inst.writes, RegId(3));
    }

    if (op.readsFlags)
        addUnique(inst.reads, flagsReg);
    if (op.writesFlags)
        addUnique(inst.writes, flagsReg);

    // Note: zero idioms (xor %r, %r) keep their register reads here.
    // Real hardware breaks the dependence at rename, but llvm-mca's
    // Intel model does not (the XOR32rr case study in Section VI-C);
    // only the reference-hardware model consults isZeroIdiom().

    return inst;
}

namespace
{

std::string
memString(const MemRef &mem)
{
    std::ostringstream os;
    if (mem.disp != 0)
        os << mem.disp;
    os << "(%" << regName(mem.base) << ")";
    return os.str();
}

} // namespace

std::string
toString(const Instruction &inst)
{
    const OpcodeInfo &op = inst.info();
    std::ostringstream os;
    os << op.name;

    std::vector<std::string> operands;
    if (op.hasImm)
        operands.push_back("$" + std::to_string(inst.imm));
    size_t slot = 0;
    // Print slots in source order; the memory operand takes the
    // position implied by the name suffix (rm: mem last; mr/mi: mem
    // first in AT&T source order).
    bool memFirst = op.mem == MemMode::Store ||
                    op.mem == MemMode::LoadStore;
    if ((op.mem == MemMode::Load || op.mem == MemMode::AddrOnly) &&
        !op.stackOp) {
        operands.push_back(memString(inst.mem));
    }
    for (; slot < inst.slots.size(); ++slot)
        operands.push_back("%" + regName(inst.slots[slot], op.width));
    if (memFirst && !op.stackOp)
        operands.push_back(memString(inst.mem));

    for (size_t i = 0; i < operands.size(); ++i)
        os << (i == 0 ? " " : ", ") << operands[i];
    return os.str();
}

std::string
toString(const BasicBlock &block)
{
    std::ostringstream os;
    for (const auto &inst : block.insts)
        os << toString(inst) << '\n';
    return os.str();
}

} // namespace difftune::isa
