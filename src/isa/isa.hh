/**
 * @file
 * The Isa registry: the full opcode table of the synthetic x86-like
 * ISA, built once and shared by every component (simulators, dataset
 * generator, parameter tables, token encoding).
 */

#ifndef DIFFTUNE_ISA_ISA_HH
#define DIFFTUNE_ISA_ISA_HH

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "isa/opcode.hh"

namespace difftune::isa
{

/**
 * Immutable opcode registry. Construct via theIsa() — the table is
 * deterministic, so a single shared instance serves the whole process.
 */
class Isa
{
  public:
    Isa();

    /** @return number of opcodes in the table. */
    size_t numOpcodes() const { return opcodes_.size(); }

    /** @return metadata for opcode @p id. */
    const OpcodeInfo &
    info(OpcodeId id) const
    {
        return opcodes_[id];
    }

    /**
     * @return the opcode id for @p name, or invalidOpcode. Accepts a
     * zero-copy slice: the lookup is heterogeneous, so the tokenizer
     * never materializes a std::string for the mnemonic.
     */
    OpcodeId opcodeByName(std::string_view name) const;

    /** @return all opcode ids of the given class. */
    std::vector<OpcodeId> opcodesOfClass(OpClass cls) const;

    /** @return all opcode ids with the given memory mode. */
    std::vector<OpcodeId> opcodesWithMem(MemMode mem) const;

  private:
    /** Append an opcode; returns its id. */
    OpcodeId add(OpcodeInfo info);

    /** Build the full opcode table (called from the constructor). */
    void buildTable();

    /** Transparent hash: string_view lookups without a temporary. */
    struct NameHash
    {
        using is_transparent = void;

        size_t
        operator()(std::string_view name) const
        {
            return std::hash<std::string_view>{}(name);
        }
    };

    std::vector<OpcodeInfo> opcodes_;
    std::unordered_map<std::string, OpcodeId, NameHash,
                       std::equal_to<>>
        byName_;
};

/** @return the process-wide shared Isa instance. */
const Isa &theIsa();

} // namespace difftune::isa

#endif // DIFFTUNE_ISA_ISA_HH
