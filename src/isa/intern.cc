/**
 * @file
 * Interner implementation: two append-only CAS hash tables (one for
 * instructions, one for block shapes) with dense-id side tables.
 */

#include "isa/intern.hh"

#include <algorithm>
#include <atomic>

#include "base/logging.hh"

namespace difftune::isa
{

namespace
{

/**
 * The canonical identity of an instruction: exactly the fields
 * toString() prints. Fields an opcode does not print are normalized
 * away (immediates of a !hasImm opcode, memory refs of a no-mem or
 * stack opcode), so key equality == canonical-text equality.
 */
struct InstKey
{
    OpcodeId opcode = invalidOpcode;
    uint8_t nslots = 0;
    RegId slots[3] = {invalidReg, invalidReg, invalidReg};
    RegId base = invalidReg;
    int32_t disp = 0;
    int64_t imm = 0;

    bool
    operator==(const InstKey &other) const
    {
        return opcode == other.opcode && nslots == other.nslots &&
               slots[0] == other.slots[0] &&
               slots[1] == other.slots[1] &&
               slots[2] == other.slots[2] && base == other.base &&
               disp == other.disp && imm == other.imm;
    }
};

InstKey
canonicalKey(const Instruction &inst)
{
    const OpcodeInfo &op = inst.info();
    InstKey key;
    key.opcode = inst.opcode;
    key.nslots = uint8_t(inst.slots.size());
    panic_if(inst.slots.size() > 3, "instruction with {} slots",
             inst.slots.size());
    for (size_t i = 0; i < inst.slots.size(); ++i)
        key.slots[i] = inst.slots[i];
    if (op.mem != MemMode::None && !op.stackOp) {
        key.base = inst.mem.base;
        key.disp = inst.mem.disp;
    }
    if (op.hasImm)
        key.imm = inst.imm;
    return key;
}

constexpr uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t fnvPrime = 0x100000001b3ULL;

inline uint64_t
fnvMix(uint64_t hash, uint64_t value)
{
    return (hash ^ value) * fnvPrime;
}

uint64_t
hashKey(const InstKey &key)
{
    uint64_t h = fnvOffset;
    h = fnvMix(h, key.opcode);
    h = fnvMix(h, key.nslots);
    h = fnvMix(h, key.slots[0]);
    h = fnvMix(h, key.slots[1]);
    h = fnvMix(h, key.slots[2]);
    h = fnvMix(h, key.base);
    h = fnvMix(h, uint32_t(key.disp));
    h = fnvMix(h, uint64_t(key.imm));
    return h;
}

uint64_t
hashKey(const std::vector<InstId> &ids)
{
    uint64_t h = fnvOffset;
    for (InstId id : ids)
        h = fnvMix(h, id);
    return h;
}

/**
 * One append-only CAS table: hash buckets of immutable nodes plus a
 * dense id -> node side table. Same publication scheme as the
 * WeightSnapshot projection cache: a node's fields are made visible
 * by the release CAS that links it into its bucket, and the byId
 * store precedes that CAS, so any thread that can observe an id can
 * also dereference it.
 */
template <typename Node>
struct Table
{
    explicit Table(size_t capacity_in)
        : capacity(capacity_in), mask(bucketCount(capacity_in) - 1),
          buckets(new std::atomic<Node *>[mask + 1]),
          byId(new std::atomic<Node *>[capacity_in])
    {
        for (size_t i = 0; i <= mask; ++i)
            buckets[i].store(nullptr, std::memory_order_relaxed);
        for (size_t i = 0; i < capacity; ++i)
            byId[i].store(nullptr, std::memory_order_relaxed);
    }

    ~Table()
    {
        for (size_t i = 0; i <= mask; ++i) {
            Node *node = buckets[i].load(std::memory_order_relaxed);
            while (node) {
                Node *next = node->next;
                delete node;
                node = next;
            }
        }
    }

    static size_t
    bucketCount(size_t capacity)
    {
        // Power-of-two buckets at load factor <= 2.
        size_t want = std::max<size_t>(capacity / 2, 64);
        size_t count = 64;
        while (count < want)
            count <<= 1;
        return count;
    }

    size_t
    fixedBytes() const
    {
        return (mask + 1 + capacity) * sizeof(std::atomic<Node *>);
    }

    const size_t capacity;
    const size_t mask;
    std::unique_ptr<std::atomic<Node *>[]> buckets;
    std::unique_ptr<std::atomic<Node *>[]> byId;
    std::atomic<uint32_t> nextId{0};
    std::atomic<uint32_t> published{0};
    std::atomic<size_t> heapBytes{0};
};

/**
 * Insert-if-absent: find @p key in @p table, else publish a node
 * built by @p make (which must fill every field but id/next).
 * Retries after a lost CAS re-walk only the newly-prepended prefix
 * for a duplicate; the loser of a genuine same-key race deletes its
 * node, so exactly one id per key ever escapes. @p known is false
 * only for the thread whose node won publication. Returns the
 * sentinel ~0u when the table is at capacity.
 */
template <typename Node, typename Key, typename Make>
uint32_t
findOrInsert(Table<Node> &table, const Key &key, uint64_t hash,
             bool &known, Make &&make)
{
    std::atomic<Node *> &bucket = table.buckets[hash & table.mask];
    Node *head = bucket.load(std::memory_order_acquire);
    for (Node *node = head; node; node = node->next) {
        if (node->key == key) {
            known = true;
            return node->id;
        }
    }
    known = false;
    if (table.nextId.load(std::memory_order_relaxed) >=
        table.capacity)
        return 0xffffffffu;
    const uint32_t id =
        table.nextId.fetch_add(1, std::memory_order_relaxed);
    if (id >= table.capacity)
        return 0xffffffffu;

    Node *node = make();
    node->id = id;
    node->next = head;
    // byId before the bucket CAS: the release CAS is what makes the
    // id observable, so byId[id] is visible to anyone who sees it.
    table.byId[id].store(node, std::memory_order_relaxed);
    while (!bucket.compare_exchange_weak(head, node,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
        // Lost the race: someone prepended. Check only the new
        // prefix (new head .. our recorded next) for our key —
        // compared via node->key, since make() may have moved the
        // caller's key into the node.
        for (Node *walk = head; walk != node->next;
             walk = walk->next) {
            if (walk->key == node->key) {
                table.byId[id].store(nullptr,
                                     std::memory_order_relaxed);
                delete node;
                known = true;
                return walk->id;
            }
        }
        node->next = head;
    }
    table.published.fetch_add(1, std::memory_order_relaxed);
    table.heapBytes.fetch_add(sizeof(Node) + node->dynamicBytes(),
                              std::memory_order_relaxed);
    return id;
}

} // namespace

struct Interner::Impl
{
    struct InstNode
    {
        InstKey key;
        std::vector<TokenId> tokens;
        uint32_t id = 0;
        InstNode *next = nullptr;

        size_t
        dynamicBytes() const
        {
            return tokens.capacity() * sizeof(TokenId);
        }
    };

    struct BlockNode
    {
        std::vector<InstId> key;
        uint32_t id = 0;
        BlockNode *next = nullptr;

        size_t
        dynamicBytes() const
        {
            return key.capacity() * sizeof(InstId);
        }
    };

    Impl(size_t max_insts, size_t max_blocks)
        : insts(max_insts), blocks(max_blocks)
    {
    }

    Table<InstNode> insts;
    Table<BlockNode> blocks;
};

Interner::Interner(size_t max_insts, size_t max_blocks)
    : impl_(std::make_unique<Impl>(max_insts, max_blocks))
{
    fatal_if(max_insts == 0 || max_blocks == 0,
             "Interner capacities must be positive");
    fatal_if(max_insts >= invalidInstId ||
                 max_blocks >= invalidBlockId,
             "Interner capacity collides with the invalid-id "
             "sentinel");
}

Interner::~Interner() = default;

InstId
Interner::internInst(const Instruction &inst)
{
    const InstKey key = canonicalKey(inst);
    bool known = false;
    return findOrInsert(impl_->insts, key, hashKey(key), known, [&] {
        auto *node = new Impl::InstNode;
        node->key = key;
        node->tokens = theVocab().encode(inst);
        return node;
    });
}

BlockId
Interner::internBlock(const BasicBlock &block)
{
    bool known = false;
    return internBlock(block, known);
}

BlockId
Interner::internBlock(const BasicBlock &block, bool &known)
{
    known = false;
    std::vector<InstId> ids;
    ids.reserve(block.size());
    for (const Instruction &inst : block.insts) {
        const InstId id = internInst(inst);
        if (id == invalidInstId)
            return invalidBlockId;
        ids.push_back(id);
    }
    return findOrInsert(impl_->blocks, ids, hashKey(ids), known,
                        [&] {
                            auto *node = new Impl::BlockNode;
                            node->key = std::move(ids);
                            return node;
                        });
}

const std::vector<TokenId> &
Interner::tokens(InstId id) const
{
    panic_if(id >= impl_->insts.capacity, "bad InstId {}", id);
    const Impl::InstNode *node =
        impl_->insts.byId[id].load(std::memory_order_acquire);
    panic_if(!node, "unpublished InstId {}", id);
    return node->tokens;
}

const std::vector<InstId> &
Interner::instIds(BlockId id) const
{
    panic_if(id >= impl_->blocks.capacity, "bad BlockId {}", id);
    const Impl::BlockNode *node =
        impl_->blocks.byId[id].load(std::memory_order_acquire);
    panic_if(!node, "unpublished BlockId {}", id);
    return node->key;
}

size_t
Interner::numInsts() const
{
    return impl_->insts.published.load(std::memory_order_relaxed);
}

size_t
Interner::numBlocks() const
{
    return impl_->blocks.published.load(std::memory_order_relaxed);
}

size_t
Interner::bytes() const
{
    return impl_->insts.fixedBytes() + impl_->blocks.fixedBytes() +
           impl_->insts.heapBytes.load(std::memory_order_relaxed) +
           impl_->blocks.heapBytes.load(std::memory_order_relaxed);
}

} // namespace difftune::isa
