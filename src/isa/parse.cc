/**
 * @file
 * Implementation of the canonical-assembly parser.
 */

#include "isa/parse.hh"

#include <cctype>
#include <sstream>

#include "base/logging.hh"

namespace difftune::isa
{

namespace
{

/** Split "OP a, b, c" into the opcode name and operand strings. */
void
splitLine(const std::string &line, std::string &op_name,
          std::vector<std::string> &operands)
{
    size_t pos = 0;
    while (pos < line.size() && std::isspace(line[pos]))
        ++pos;
    size_t start = pos;
    while (pos < line.size() && !std::isspace(line[pos]))
        ++pos;
    op_name = line.substr(start, pos - start);

    std::string rest = line.substr(pos);
    std::string current;
    for (char c : rest) {
        if (c == ',') {
            operands.push_back(current);
            current.clear();
        } else if (!std::isspace(c)) {
            current += c;
        }
    }
    if (!current.empty())
        operands.push_back(current);
}

} // namespace

Instruction
parseInstruction(const std::string &line)
{
    std::string op_name;
    std::vector<std::string> operand_strs;
    splitLine(line, op_name, operand_strs);

    OpcodeId opcode = theIsa().opcodeByName(op_name);
    fatal_if(opcode == invalidOpcode, "unknown opcode '{}' in '{}'",
             op_name, line);
    const OpcodeInfo &op = theIsa().info(opcode);

    std::vector<RegId> slots;
    MemRef mem;
    int64_t imm = 0;
    bool saw_imm = false, saw_mem = false;

    for (const std::string &operand : operand_strs) {
        fatal_if(operand.empty(), "empty operand in '{}'", line);
        if (operand[0] == '$') {
            imm = std::strtoll(operand.c_str() + 1, nullptr, 10);
            saw_imm = true;
        } else if (operand[0] == '%') {
            RegId reg = regFromName(operand.substr(1));
            fatal_if(reg == invalidReg, "unknown register '{}' in '{}'",
                     operand, line);
            slots.push_back(reg);
        } else {
            // disp(%base)
            char *end = nullptr;
            long disp = std::strtol(operand.c_str(), &end, 10);
            fatal_if(!end || *end != '(',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            std::string base_str(end + 1);
            fatal_if(base_str.empty() || base_str[0] != '%' ||
                     base_str.back() != ')',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            base_str = base_str.substr(1, base_str.size() - 2);
            RegId base = regFromName(base_str);
            fatal_if(base == invalidReg, "unknown base register in '{}'",
                     operand);
            mem.base = base;
            mem.disp = static_cast<int32_t>(disp);
            saw_mem = true;
        }
    }

    fatal_if(slots.size() != op.numRegOps(),
             "opcode {} takes {} register operands, got {} in '{}'",
             op.name, op.numRegOps(), slots.size(), line);
    fatal_if(op.hasImm && !saw_imm, "opcode {} requires an immediate",
             op.name);
    fatal_if(op.mem != MemMode::None && !op.stackOp && !saw_mem,
             "opcode {} requires a memory operand", op.name);

    return makeInstruction(opcode, slots, mem, imm);
}

BasicBlock
parseBlock(const std::string &text)
{
    BasicBlock block;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        block.insts.push_back(parseInstruction(line));
    }
    return block;
}

} // namespace difftune::isa
