/**
 * @file
 * Implementation of the canonical-assembly parser.
 *
 * The scanner works directly on std::string_view slices and mimics
 * the legacy splitLine()/strtoll() parser bit-for-bit: whitespace is
 * elided anywhere inside an operand, numeric prefixes follow
 * strtoll's base-10 semantics (optional sign, clamp on overflow,
 * trailing garbage ignored), and a trailing comma is tolerated.
 * tests/test_frontend.cc locks this equivalence in with an A/B run
 * against a copy of the legacy parser.
 */

#include "isa/parse.hh"

#include <cctype>
#include <cstdint>
#include <limits>

#include "base/logging.hh"

namespace difftune::isa
{

namespace
{

inline bool
isBlank(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

inline bool
allBlank(std::string_view text)
{
    for (char c : text) {
        if (!isBlank(c))
            return false;
    }
    return true;
}

/** Trim surrounding whitespace from @p text (zero-copy). */
inline std::string_view
trimmed(std::string_view text)
{
    size_t begin = 0, end = text.size();
    while (begin < end && isBlank(text[begin]))
        ++begin;
    while (end > begin && isBlank(text[end - 1]))
        --end;
    return text.substr(begin, end - begin);
}

inline bool
hasInteriorBlank(std::string_view text)
{
    for (char c : text) {
        if (isBlank(c))
            return true;
    }
    return false;
}

/**
 * strtoll-compatible base-10 prefix parse: skip leading whitespace,
 * optional sign, greedy digits, clamp to the int64 range on
 * overflow. @p consumed is the number of characters consumed — 0
 * when no digit was found (strtoll's "no conversion" contract),
 * matching the legacy parser's use of the end pointer.
 */
int64_t
parseIntPrefix(std::string_view text, size_t &consumed)
{
    size_t pos = 0;
    while (pos < text.size() && isBlank(text[pos]))
        ++pos;
    bool negative = false;
    if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
        negative = text[pos] == '-';
        ++pos;
    }
    const uint64_t limit =
        negative ? uint64_t(1) << 63
                 : uint64_t(std::numeric_limits<int64_t>::max());
    uint64_t magnitude = 0;
    bool overflow = false;
    size_t digits = 0;
    for (; pos < text.size() && text[pos] >= '0' && text[pos] <= '9';
         ++pos, ++digits) {
        const uint64_t digit = uint64_t(text[pos] - '0');
        if (magnitude > (limit - digit) / 10)
            overflow = true;
        else
            magnitude = magnitude * 10 + digit;
    }
    if (digits == 0) {
        consumed = 0;
        return 0;
    }
    consumed = pos;
    if (overflow)
        magnitude = limit;
    // uint64 -> int64 wraps modulo 2^64 (well-defined since C++20),
    // so the negative limit 2^63 lands exactly on INT64_MIN.
    return negative ? -int64_t(magnitude) : int64_t(magnitude);
}

/** The mnemonic slice of @p line; @p pos ends just past it. */
inline std::string_view
scanMnemonic(std::string_view line, size_t &pos)
{
    pos = 0;
    while (pos < line.size() && isBlank(line[pos]))
        ++pos;
    const size_t start = pos;
    while (pos < line.size() && !isBlank(line[pos]))
        ++pos;
    return line.substr(start, pos - start);
}

/**
 * Call @p fn for each operand segment of @p rest (the line past its
 * mnemonic): segments split on ',', each trimmed; the final segment
 * is dropped when blank (a trailing comma is legal, as in the
 * legacy parser; an empty segment *between* commas is still handed
 * to @p fn, which rejects it as an empty operand).
 */
template <typename Fn>
inline void
forEachOperand(std::string_view rest, Fn &&fn)
{
    size_t begin = 0;
    while (true) {
        const size_t comma = rest.find(',', begin);
        if (comma == std::string_view::npos) {
            const std::string_view tail = rest.substr(begin);
            if (!allBlank(tail))
                fn(tail);
            return;
        }
        fn(rest.substr(begin, comma - begin));
        begin = comma + 1;
    }
}

/**
 * One '\n'-delimited line of @p text starting at @p pos (getline
 * semantics: the final unterminated segment is a line; @p pos ends
 * past the delimiter).
 */
inline std::string_view
nextLine(std::string_view text, size_t &pos)
{
    const size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
        const std::string_view line = text.substr(pos);
        pos = text.size();
        return line;
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    return line;
}

/** Blank or '#'-comment line (parseBlock's skip set, " \t\r"). */
inline bool
skippedLine(std::string_view line)
{
    const size_t first = line.find_first_not_of(" \t\r");
    return first == std::string_view::npos || line[first] == '#';
}

} // namespace

size_t
lexBlock(std::string_view text, std::vector<Lexeme> &out)
{
    out.clear();
    size_t inst_lines = 0;
    uint32_t line_no = 0;
    size_t pos = 0;
    while (pos < text.size()) {
        const std::string_view line = nextLine(text, pos);
        const uint32_t here = line_no++;
        if (skippedLine(line))
            continue;
        ++inst_lines;
        size_t after = 0;
        const std::string_view mnemonic = scanMnemonic(line, after);
        out.push_back(Lexeme{mnemonic, here, true, false});
        forEachOperand(line.substr(after), [&](std::string_view raw) {
            const std::string_view operand = trimmed(raw);
            out.push_back(Lexeme{operand, here, false,
                                 hasInteriorBlank(operand)});
        });
    }
    return inst_lines;
}

Instruction
parseInstruction(std::string_view line)
{
    size_t after = 0;
    const std::string_view op_name = scanMnemonic(line, after);

    OpcodeId opcode = theIsa().opcodeByName(op_name);
    fatal_if(opcode == invalidOpcode, "unknown opcode '{}' in '{}'",
             op_name, line);
    const OpcodeInfo &op = theIsa().info(opcode);

    std::vector<RegId> slots;
    MemRef mem;
    int64_t imm = 0;
    bool saw_imm = false, saw_mem = false;

    forEachOperand(line.substr(after), [&](std::string_view raw) {
        std::string_view operand = trimmed(raw);
        // Cold fallback: the legacy parser elided whitespace
        // *anywhere* in an operand ("%r ax" == "%rax"); compact into
        // a local buffer only when interior blanks actually occur.
        std::string compacted;
        if (hasInteriorBlank(operand)) {
            compacted.reserve(operand.size());
            for (char c : operand) {
                if (!isBlank(c))
                    compacted += c;
            }
            operand = compacted;
        }
        fatal_if(operand.empty(), "empty operand in '{}'", line);
        if (operand[0] == '$') {
            size_t consumed = 0;
            imm = parseIntPrefix(operand.substr(1), consumed);
            saw_imm = true;
        } else if (operand[0] == '%') {
            RegId reg = regFromName(operand.substr(1));
            fatal_if(reg == invalidReg, "unknown register '{}' in '{}'",
                     operand, line);
            slots.push_back(reg);
        } else {
            // disp(%base)
            size_t consumed = 0;
            const int64_t disp = parseIntPrefix(operand, consumed);
            fatal_if(consumed >= operand.size() ||
                         operand[consumed] != '(',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            std::string_view base_str = operand.substr(consumed + 1);
            fatal_if(base_str.empty() || base_str.front() != '%' ||
                         base_str.back() != ')',
                     "malformed memory operand '{}' in '{}'", operand,
                     line);
            base_str = base_str.substr(1, base_str.size() - 2);
            RegId base = regFromName(base_str);
            fatal_if(base == invalidReg,
                     "unknown base register in '{}'", operand);
            mem.base = base;
            mem.disp = static_cast<int32_t>(disp);
            saw_mem = true;
        }
    });

    fatal_if(slots.size() != op.numRegOps(),
             "opcode {} takes {} register operands, got {} in '{}'",
             op.name, op.numRegOps(), slots.size(), line);
    fatal_if(op.hasImm && !saw_imm, "opcode {} requires an immediate",
             op.name);
    fatal_if(op.mem != MemMode::None && !op.stackOp && !saw_mem,
             "opcode {} requires a memory operand", op.name);

    return makeInstruction(opcode, slots, mem, imm);
}

BasicBlock
parseBlock(std::string_view text)
{
    BasicBlock block;
    size_t pos = 0;
    while (pos < text.size()) {
        const std::string_view line = nextLine(text, pos);
        if (skippedLine(line))
            continue;
        block.insts.push_back(parseInstruction(line));
    }
    return block;
}

} // namespace difftune::isa
