/**
 * @file
 * The Ithemal-style basic-block model and its DiffTune-surrogate
 * variant (Figure 3 of the paper).
 *
 * Architecture: a token embedding table maps each instruction's
 * canonicalized tokens to vectors; a stacked token-level LSTM folds
 * each instruction's tokens into an instruction vector; a stacked
 * block-level LSTM folds the instruction vectors into a block vector;
 * a final linear layer produces the timing prediction.
 *
 * With paramDim > 0 the model is the DiffTune surrogate: a
 * per-instruction parameter vector (the instruction's simulator
 * parameters concatenated with the global parameters) is appended to
 * each instruction vector before the block LSTM — the paper's "‖"
 * concatenation. With paramDim == 0 it is the plain Ithemal baseline.
 */

#ifndef DIFFTUNE_SURROGATE_MODEL_HH
#define DIFFTUNE_SURROGATE_MODEL_HH

#include <memory>
#include <unordered_map>

#include "isa/intern.hh"
#include "isa/tokens.hh"
#include "nn/modules.hh"

namespace difftune::surrogate
{

/** Token sequences of one block, precomputed once per block. */
using EncodedBlock = std::vector<std::vector<isa::TokenId>>;

/**
 * Memo table from an instruction's interned id (isa::InstId) to its
 * token-level LSTM hidden state, for batched inference over *frozen*
 * weights (Model::predictBatch): with the weights fixed, that hidden
 * state is a pure function of the token sequence, and an InstId
 * names exactly one canonical token sequence (isa/intern.hh), so
 * instructions shared across blocks — pervasive in real block
 * corpora — skip the token LSTM entirely on every reuse at the cost
 * of one u32 hash probe instead of a token-vector hash. Reuse is
 * bit-exact: the stored vector is the exact value the executor
 * produced (f32 hiddens round-trip through double losslessly).
 *
 * Bounded: at @p capacity entries the cache stops inserting (no
 * eviction — the instruction vocabulary of a serving workload is
 * small and stable). A cache is tied to one executor precision; the
 * first use pins it. Not thread-safe: give each serving shard its
 * own (caches only affect speed, never results, so sharding them
 * preserves determinism).
 */
class InstHiddenCache
{
  public:
    explicit InstHiddenCache(size_t capacity = size_t(1) << 16)
        : capacity_(capacity)
    {
    }

    size_t size() const { return map_.size(); }

  private:
    friend class Model;

    struct TokenSeqHash
    {
        size_t
        operator()(const std::vector<isa::TokenId> &tokens) const
        {
            // FNV-1a over the token ids.
            uint64_t hash = 0xcbf29ce484222325ULL;
            for (isa::TokenId token : tokens) {
                hash ^= uint64_t(uint32_t(token));
                hash *= 0x100000001b3ULL;
            }
            return size_t(hash);
        }
    };

    size_t capacity_;
    bool precisionPinned_ = false;
    nn::Precision precision_ = nn::Precision::kF64;
    std::unordered_map<isa::InstId, std::vector<double>> map_;
};

/** Model hyperparameters. */
struct ModelConfig
{
    int embedDim = 32;   ///< token embedding width
    int hidden = 40;     ///< LSTM hidden width (both levels)
    int tokenLayers = 2; ///< stacked LSTMs at the token level
    int blockLayers = 2; ///< stacked LSTMs at the block level
    int paramDim = 0;    ///< per-instruction parameter input width
    uint64_t seed = 0x5eedface;
};

/** The Ithemal / DiffTune-surrogate model. */
class Model
{
  public:
    Model(const ModelConfig &config, size_t vocab_size);

    /**
     * Forward pass for one block.
     *
     * @param ctx graph/params/sink context (sink null = frozen)
     * @param block precomputed token sequences
     * @param inst_params one (paramDim x 1) Var per instruction; must
     *        be empty iff the config's paramDim is 0
     * @return a scalar Var: the timing prediction
     */
    nn::Var forward(nn::Ctx &ctx, const EncodedBlock &block,
                    const std::vector<nn::Var> &inst_params) const;

    /** Inference without parameter inputs (Ithemal mode). */
    double predict(const EncodedBlock &block) const;

    /**
     * Batched forward for many blocks on @p bf (see nn/batched.hh):
     * the token-level LSTM runs over all instructions of all blocks
     * in lockstep, then the block-level LSTM over all blocks, with
     * one set of weight reads per step. Writes the raw head outputs
     * (the same pre-exp value forward() produces) to @p out, aligned
     * with @p blocks.
     *
     * In double precision the results are bit-identical to running
     * forward() per block; in kF32 they are accuracy-gated instead
     * (see the serving tests).
     *
     * Identical instructions are deduplicated within the batch (one
     * token-level lane serves every occurrence), and, when
     * @p inst_cache is given, across batches too — valid whenever
     * the weights are frozen between calls, as in serving.
     *
     * Cross-batch caching is keyed by interned instruction ids:
     * when @p inst_cache is given, @p inst_ids must be given too
     * (one id sequence per block, aligned with its instructions,
     * from the same isa::Interner for the cache's whole lifetime).
     * Instructions carrying isa::invalidInstId — the interner's
     * table was full — still deduplicate within the batch by token
     * sequence; they just never enter the cross-batch cache.
     *
     * @param inst_params per-block, per-instruction parameter-input
     *        columns (each paramDim x 1); must be empty iff the
     *        config's paramDim is 0
     * @param inst_cache optional cross-batch instruction-hidden
     *        memo table (see InstHiddenCache)
     * @param inst_ids per-block interned instruction ids (null
     *        entries allowed per block); required with @p inst_cache
     */
    void predictBatch(
        nn::BatchedForward &bf,
        const std::vector<const EncodedBlock *> &blocks,
        const std::vector<std::vector<const nn::Tensor *>>
            &inst_params,
        std::vector<double> &out,
        InstHiddenCache *inst_cache = nullptr,
        const std::vector<const std::vector<isa::InstId> *>
            *inst_ids = nullptr) const;

    const ModelConfig &config() const { return config_; }
    nn::ParamSet &params() { return params_; }
    const nn::ParamSet &params() const { return params_; }

  private:
    ModelConfig config_;
    nn::ParamSet params_;
    std::unique_ptr<nn::Embedding> embed_;
    std::unique_ptr<nn::LstmStack> tokenLstm_;
    std::unique_ptr<nn::LstmStack> blockLstm_;
    std::unique_ptr<nn::Linear> head_;
};

/** Encode a block with the shared vocabulary. */
EncodedBlock encodeBlock(const isa::BasicBlock &block);

/**
 * Freeze @p model's weights into a shareable nn::WeightSnapshot
 * that keeps the model alive (the snapshot borrows the ParamSet
 * storage in place and holds the model as its owner). Every
 * nn::BatchedForward bound to the snapshot — across any number of
 * serving shards or engines — shares one copy of the derived f32
 * panels and input-projection tables. The model must not be trained
 * further while the snapshot exists.
 */
std::shared_ptr<nn::WeightSnapshot>
makeWeightSnapshot(std::shared_ptr<const Model> model);

} // namespace difftune::surrogate

#endif // DIFFTUNE_SURROGATE_MODEL_HH
