/**
 * @file
 * The Ithemal-style basic-block model and its DiffTune-surrogate
 * variant (Figure 3 of the paper).
 *
 * Architecture: a token embedding table maps each instruction's
 * canonicalized tokens to vectors; a stacked token-level LSTM folds
 * each instruction's tokens into an instruction vector; a stacked
 * block-level LSTM folds the instruction vectors into a block vector;
 * a final linear layer produces the timing prediction.
 *
 * With paramDim > 0 the model is the DiffTune surrogate: a
 * per-instruction parameter vector (the instruction's simulator
 * parameters concatenated with the global parameters) is appended to
 * each instruction vector before the block LSTM — the paper's "‖"
 * concatenation. With paramDim == 0 it is the plain Ithemal baseline.
 */

#ifndef DIFFTUNE_SURROGATE_MODEL_HH
#define DIFFTUNE_SURROGATE_MODEL_HH

#include <memory>

#include "isa/tokens.hh"
#include "nn/modules.hh"

namespace difftune::surrogate
{

/** Token sequences of one block, precomputed once per block. */
using EncodedBlock = std::vector<std::vector<isa::TokenId>>;

/** Model hyperparameters. */
struct ModelConfig
{
    int embedDim = 32;   ///< token embedding width
    int hidden = 40;     ///< LSTM hidden width (both levels)
    int tokenLayers = 2; ///< stacked LSTMs at the token level
    int blockLayers = 2; ///< stacked LSTMs at the block level
    int paramDim = 0;    ///< per-instruction parameter input width
    uint64_t seed = 0x5eedface;
};

/** The Ithemal / DiffTune-surrogate model. */
class Model
{
  public:
    Model(const ModelConfig &config, size_t vocab_size);

    /**
     * Forward pass for one block.
     *
     * @param ctx graph/params/sink context (sink null = frozen)
     * @param block precomputed token sequences
     * @param inst_params one (paramDim x 1) Var per instruction; must
     *        be empty iff the config's paramDim is 0
     * @return a scalar Var: the timing prediction
     */
    nn::Var forward(nn::Ctx &ctx, const EncodedBlock &block,
                    const std::vector<nn::Var> &inst_params) const;

    /** Inference without parameter inputs (Ithemal mode). */
    double predict(const EncodedBlock &block) const;

    const ModelConfig &config() const { return config_; }
    nn::ParamSet &params() { return params_; }
    const nn::ParamSet &params() const { return params_; }

  private:
    ModelConfig config_;
    nn::ParamSet params_;
    std::unique_ptr<nn::Embedding> embed_;
    std::unique_ptr<nn::LstmStack> tokenLstm_;
    std::unique_ptr<nn::LstmStack> blockLstm_;
    std::unique_ptr<nn::Linear> head_;
};

/** Encode a block with the shared vocabulary. */
EncodedBlock encodeBlock(const isa::BasicBlock &block);

} // namespace difftune::surrogate

#endif // DIFFTUNE_SURROGATE_MODEL_HH
