/**
 * @file
 * Model implementation.
 */

#include "surrogate/model.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace difftune::surrogate
{

namespace
{

/**
 * Process-wide batched-forward telemetry, resolved from the global
 * registry on the first batched call (per obs's contract that
 * instrumentation samples the kill switch when constructed). All
 * pointers stay null when observability was disabled at that point;
 * enabled() is still consulted per call so a setEnabled(false) run
 * measured against an earlier-enabled process stays quiet.
 */
struct PredictBatchMetrics
{
    obs::Counter *calls = nullptr;
    obs::Counter *blocks = nullptr;
    obs::Counter *instCacheHits = nullptr;
    obs::Counter *tokenLanes = nullptr;
    obs::LatencyHistogram *width = nullptr;
};

const PredictBatchMetrics &
predictBatchMetrics()
{
    static const PredictBatchMetrics metrics = [] {
        PredictBatchMetrics m;
        if (!obs::enabled())
            return m;
        obs::MetricRegistry &reg = obs::MetricRegistry::global();
        m.calls = &reg.counter("surrogate.predict_batch.calls");
        m.blocks = &reg.counter("surrogate.predict_batch.blocks");
        m.instCacheHits =
            &reg.counter("surrogate.predict_batch.inst_cache_hits");
        m.tokenLanes =
            &reg.counter("surrogate.predict_batch.token_lanes");
        m.width =
            &reg.histogram("surrogate.predict_batch.width");
        return m;
    }();
    return metrics;
}

} // namespace

Model::Model(const ModelConfig &config, size_t vocab_size)
    : config_(config)
{
    Rng rng(config.seed);
    embed_ = std::make_unique<nn::Embedding>(params_, int(vocab_size),
                                             config.embedDim, rng);
    tokenLstm_ = std::make_unique<nn::LstmStack>(
        params_, config.embedDim, config.hidden, config.tokenLayers, rng);
    blockLstm_ = std::make_unique<nn::LstmStack>(
        params_, config.hidden + config.paramDim, config.hidden,
        config.blockLayers, rng);
    head_ = std::make_unique<nn::Linear>(params_, config.hidden, 1, rng);
}

nn::Var
Model::forward(nn::Ctx &ctx, const EncodedBlock &block,
               const std::vector<nn::Var> &inst_params) const
{
    panic_if(block.empty(), "surrogate forward on an empty block");
    panic_if(config_.paramDim == 0 ? !inst_params.empty()
                                   : inst_params.size() != block.size(),
             "got {} parameter vectors for {} instructions "
             "(paramDim {})",
             inst_params.size(), block.size(), config_.paramDim);

    std::vector<nn::Var> inst_vecs;
    inst_vecs.reserve(block.size());
    for (size_t i = 0; i < block.size(); ++i) {
        std::vector<nn::Var> token_vecs;
        token_vecs.reserve(block[i].size());
        for (isa::TokenId token : block[i])
            token_vecs.push_back(embed_->forward(ctx, int(token)));
        nn::Var inst_vec = tokenLstm_->runSequence(ctx, token_vecs);
        if (config_.paramDim > 0)
            inst_vec = ctx.graph.concat({inst_vec, inst_params[i]});
        inst_vecs.push_back(inst_vec);
    }
    nn::Var block_vec = blockLstm_->runSequence(ctx, inst_vecs);
    return head_->forward(ctx, block_vec);
}

void
Model::predictBatch(
    nn::BatchedForward &bf,
    const std::vector<const EncodedBlock *> &blocks,
    const std::vector<std::vector<const nn::Tensor *>> &inst_params,
    std::vector<double> &out, InstHiddenCache *inst_cache,
    const std::vector<const std::vector<isa::InstId> *> *inst_ids)
    const
{
    const bool has_params = config_.paramDim > 0;
    panic_if(has_params ? inst_params.size() != blocks.size()
                        : !inst_params.empty(),
             "predictBatch: {} parameter-input blocks for {} blocks "
             "(paramDim {})",
             inst_params.size(), blocks.size(), config_.paramDim);
    panic_if(inst_cache && !inst_ids,
             "predictBatch: the cross-batch cache is keyed by "
             "interned ids; pass inst_ids alongside inst_cache");
    panic_if(inst_ids && inst_ids->size() != blocks.size(),
             "predictBatch: {} id sequences for {} blocks",
             inst_ids->size(), blocks.size());
    out.resize(blocks.size());
    if (blocks.empty())
        return;
    if (inst_cache) {
        panic_if(inst_cache->precisionPinned_ &&
                     inst_cache->precision_ != bf.precision(),
                 "predictBatch: instruction cache holds {} hiddens, "
                 "executor runs {}",
                 nn::precisionName(inst_cache->precision_),
                 nn::precisionName(bf.precision()));
        inst_cache->precisionPinned_ = true;
        inst_cache->precision_ = bf.precision();
    }

    // Token level: one lane per *distinct* instruction across the
    // whole batch (embedding rows gathered straight from the table).
    // Instructions found in inst_cache skip the LSTM entirely.
    // Distinctness is a u32 probe when the caller interned the
    // instruction; only invalid-id instructions (interner full) pay
    // the token-vector hash, and those never enter the cross-batch
    // cache.
    struct InstSrc
    {
        int lane = -1; ///< token lane in this batch, or -1
        const std::vector<double> *cached = nullptr;
    };
    std::vector<InstSrc> sources;
    std::unordered_map<isa::InstId, int> id_lanes;
    std::unordered_map<std::vector<isa::TokenId>, int,
                       InstHiddenCache::TokenSeqHash>
        token_lanes;
    auto addTokenLane = [&](const std::vector<isa::TokenId> &tokens,
                            int &lane) {
        if (lane >= 0)
            return;
        lane = bf.addLane(int(tokens.size()));
        for (size_t t = 0; t < tokens.size(); ++t)
            bf.setInputParamRow(lane, int(t), 0,
                                embed_->tableIndex(),
                                int(tokens[t]));
    };
    bf.begin(config_.embedDim);
    for (size_t b = 0; b < blocks.size(); ++b) {
        const EncodedBlock *block = blocks[b];
        panic_if(block->empty(), "predictBatch on an empty block");
        const std::vector<isa::InstId> *ids =
            inst_ids ? (*inst_ids)[b] : nullptr;
        panic_if(ids && ids->size() != block->size(),
                 "predictBatch: block {} has {} interned ids for "
                 "{} instructions",
                 b, ids->size(), block->size());
        for (size_t i = 0; i < block->size(); ++i) {
            const std::vector<isa::TokenId> &tokens = (*block)[i];
            const isa::InstId id =
                ids ? (*ids)[i] : isa::invalidInstId;
            InstSrc src;
            if (id != isa::invalidInstId) {
                if (inst_cache) {
                    auto hit = inst_cache->map_.find(id);
                    if (hit != inst_cache->map_.end()) {
                        src.cached = &hit->second;
                        sources.push_back(src);
                        continue;
                    }
                }
                auto [slot, fresh] = id_lanes.try_emplace(id, -1);
                if (fresh)
                    addTokenLane(tokens, slot->second);
                src.lane = slot->second;
            } else {
                auto [slot, fresh] =
                    token_lanes.try_emplace(tokens, -1);
                if (fresh)
                    addTokenLane(tokens, slot->second);
                src.lane = slot->second;
            }
            sources.push_back(src);
        }
    }
    bf.run(tokenLstm_->batchedRef());
    if (inst_cache) {
        for (auto &[id, lane] : id_lanes) {
            if (inst_cache->map_.size() >= inst_cache->capacity_)
                break;
            std::vector<double> hidden(size_t(config_.hidden));
            bf.finalHidden(lane, hidden.data());
            inst_cache->map_.emplace(id, std::move(hidden));
        }
    }

    // Block level: one lane per block; each step's input is the
    // instruction's token-level hidden state, with the parameter
    // column appended for a paramDim > 0 surrogate (the paper's "‖"
    // concatenation).
    bf.begin(config_.hidden + config_.paramDim);
    size_t inst = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
        const EncodedBlock &block = *blocks[b];
        panic_if(has_params &&
                     inst_params[b].size() != block.size(),
                 "predictBatch: block {} has {} parameter columns "
                 "for {} instructions",
                 b, inst_params[b].size(), block.size());
        const int lane = bf.addLane(int(block.size()));
        for (size_t i = 0; i < block.size(); ++i, ++inst) {
            const InstSrc &src = sources[inst];
            if (src.cached)
                bf.setInput(lane, int(i), 0, src.cached->data(),
                            config_.hidden);
            else
                bf.setInputPrevHidden(lane, int(i), 0, src.lane);
            if (has_params) {
                const nn::Tensor &col = *inst_params[b][i];
                panic_if(col.rows != config_.paramDim ||
                             col.cols != 1,
                         "predictBatch: parameter column is "
                         "{}x{}, expected {}x1",
                         col.rows, col.cols, config_.paramDim);
                bf.setInput(lane, int(i), config_.hidden,
                            col.data.data(), config_.paramDim);
            }
        }
    }
    bf.run(blockLstm_->batchedRef());
    bf.headAll(head_->batchedRef(), out.data());

    // A handful of relaxed atomic bumps per *batch* (not per block):
    // negligible next to the two LSTM sweeps above. Thread-safe —
    // concurrent shard executors land on the same counters.
    const PredictBatchMetrics &m = predictBatchMetrics();
    if (m.calls != nullptr && obs::enabled()) {
        m.calls->inc();
        m.blocks->inc(blocks.size());
        m.instCacheHits->inc(uint64_t(std::count_if(
            sources.begin(), sources.end(),
            [](const InstSrc &src) { return src.cached != nullptr; })));
        m.tokenLanes->inc(id_lanes.size() + token_lanes.size());
        m.width->record(blocks.size());
    }
}

double
Model::predict(const EncodedBlock &block) const
{
    // One reusable arena-backed graph per thread: predict() runs in
    // tight per-block loops (evaluation, benches), where clear()
    // reuse makes tape construction allocation-free.
    static thread_local nn::Graph graph;
    graph.clear();
    nn::Ctx ctx{graph, params_, nullptr};
    nn::Var pred = forward(ctx, block, {});
    return graph.scalarValue(pred);
}

EncodedBlock
encodeBlock(const isa::BasicBlock &block)
{
    return isa::theVocab().encode(block);
}

std::shared_ptr<nn::WeightSnapshot>
makeWeightSnapshot(std::shared_ptr<const Model> model)
{
    panic_if(!model, "makeWeightSnapshot: null model");
    const nn::ParamSet &params = model->params();
    return std::make_shared<nn::WeightSnapshot>(params,
                                                std::move(model));
}

} // namespace difftune::surrogate
