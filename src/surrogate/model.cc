/**
 * @file
 * Model implementation.
 */

#include "surrogate/model.hh"

namespace difftune::surrogate
{

Model::Model(const ModelConfig &config, size_t vocab_size)
    : config_(config)
{
    Rng rng(config.seed);
    embed_ = std::make_unique<nn::Embedding>(params_, int(vocab_size),
                                             config.embedDim, rng);
    tokenLstm_ = std::make_unique<nn::LstmStack>(
        params_, config.embedDim, config.hidden, config.tokenLayers, rng);
    blockLstm_ = std::make_unique<nn::LstmStack>(
        params_, config.hidden + config.paramDim, config.hidden,
        config.blockLayers, rng);
    head_ = std::make_unique<nn::Linear>(params_, config.hidden, 1, rng);
}

nn::Var
Model::forward(nn::Ctx &ctx, const EncodedBlock &block,
               const std::vector<nn::Var> &inst_params) const
{
    panic_if(block.empty(), "surrogate forward on an empty block");
    panic_if(config_.paramDim == 0 ? !inst_params.empty()
                                   : inst_params.size() != block.size(),
             "got {} parameter vectors for {} instructions "
             "(paramDim {})",
             inst_params.size(), block.size(), config_.paramDim);

    std::vector<nn::Var> inst_vecs;
    inst_vecs.reserve(block.size());
    for (size_t i = 0; i < block.size(); ++i) {
        std::vector<nn::Var> token_vecs;
        token_vecs.reserve(block[i].size());
        for (isa::TokenId token : block[i])
            token_vecs.push_back(embed_->forward(ctx, int(token)));
        nn::Var inst_vec = tokenLstm_->runSequence(ctx, token_vecs);
        if (config_.paramDim > 0)
            inst_vec = ctx.graph.concat({inst_vec, inst_params[i]});
        inst_vecs.push_back(inst_vec);
    }
    nn::Var block_vec = blockLstm_->runSequence(ctx, inst_vecs);
    return head_->forward(ctx, block_vec);
}

double
Model::predict(const EncodedBlock &block) const
{
    // One reusable arena-backed graph per thread: predict() runs in
    // tight per-block loops (evaluation, benches), where clear()
    // reuse makes tape construction allocation-free.
    static thread_local nn::Graph graph;
    graph.clear();
    nn::Ctx ctx{graph, params_, nullptr};
    nn::Var pred = forward(ctx, block, {});
    return graph.scalarValue(pred);
}

EncodedBlock
encodeBlock(const isa::BasicBlock &block)
{
    return isa::theVocab().encode(block);
}

} // namespace difftune::surrogate
