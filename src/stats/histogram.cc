/**
 * @file
 * Histogram implementation.
 */

#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace difftune::stats
{

void
IntHistogram::add(double value)
{
    int bucket = int(std::lround(value));
    bucket = std::clamp(bucket, 0, int(counts_.size()) - 1);
    ++counts_[bucket];
}

long
IntHistogram::total() const
{
    long sum = 0;
    for (long c : counts_)
        sum += c;
    return sum;
}

std::string
IntHistogram::renderVersus(const IntHistogram &other,
                           const std::string &self_label,
                           const std::string &other_label) const
{
    const int buckets = std::max(numBuckets(), other.numBuckets());
    long max_count = 1;
    for (int b = 0; b < buckets; ++b) {
        if (b < numBuckets())
            max_count = std::max(max_count, count(b));
        if (b < other.numBuckets())
            max_count = std::max(max_count, other.count(b));
    }
    const int bar_width = 40;
    std::ostringstream os;
    for (int b = 0; b < buckets; ++b) {
        const long self = b < numBuckets() ? count(b) : 0;
        const long them = b < other.numBuckets() ? other.count(b) : 0;
        auto bar = [&](long c) {
            return std::string(size_t(c * bar_width / max_count), '#');
        };
        os << "  " << b << " | " << self_label << " " << bar(self) << " ("
           << self << ")\n";
        os << "    | " << other_label << " " << bar(them) << " (" << them
           << ")\n";
    }
    return os.str();
}

} // namespace difftune::stats
