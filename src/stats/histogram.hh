/**
 * @file
 * Integer-bucket histograms for the Figure 4 parameter-distribution
 * plots.
 */

#ifndef DIFFTUNE_STATS_HISTOGRAM_HH
#define DIFFTUNE_STATS_HISTOGRAM_HH

#include <string>
#include <vector>

namespace difftune::stats
{

/** Histogram over integer buckets [0, maxBucket]; values clamp. */
class IntHistogram
{
  public:
    explicit IntHistogram(int max_bucket) : counts_(max_bucket + 1, 0) {}

    /** Add one observation (rounded, clamped into range). */
    void add(double value);

    /** Count in bucket @p bucket. */
    long count(int bucket) const { return counts_[bucket]; }

    int numBuckets() const { return int(counts_.size()); }

    /** Total observations. */
    long total() const;

    /** Render as an ASCII bar chart alongside @p other. */
    std::string renderVersus(const IntHistogram &other,
                             const std::string &self_label,
                             const std::string &other_label) const;

  private:
    std::vector<long> counts_;
};

} // namespace difftune::stats

#endif // DIFFTUNE_STATS_HISTOGRAM_HH
