/**
 * @file
 * Evaluation metrics: mean absolute percentage error (the paper's
 * error definition, Section V-A) and Kendall's tau rank correlation
 * (the paper's ordering metric, Table IV).
 */

#ifndef DIFFTUNE_STATS_METRICS_HH
#define DIFFTUNE_STATS_METRICS_HH

#include <cstddef>
#include <vector>

namespace difftune::stats
{

/**
 * Error = mean over the dataset of |pred - truth| / truth.
 * Entries with truth == 0 are skipped.
 */
double mape(const std::vector<double> &predictions,
            const std::vector<double> &truths);

/**
 * Kendall's tau-b rank correlation coefficient, with tie correction,
 * computed in O(n log n) via merge-sort inversion counting (matching
 * scipy.stats.kendalltau, which the BHive evaluation uses).
 */
double kendallTau(const std::vector<double> &x,
                  const std::vector<double> &y);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Sample standard deviation (n - 1 denominator; 0 for n < 2). */
double stddev(const std::vector<double> &values);

/** Median (by copy + nth_element). */
double median(std::vector<double> values);

} // namespace difftune::stats

#endif // DIFFTUNE_STATS_METRICS_HH
