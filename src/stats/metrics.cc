/**
 * @file
 * Metric implementations.
 */

#include "stats/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "base/logging.hh"

namespace difftune::stats
{

double
mape(const std::vector<double> &predictions,
     const std::vector<double> &truths)
{
    panic_if(predictions.size() != truths.size(),
             "mape: {} predictions vs {} truths", predictions.size(),
             truths.size());
    double total = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < truths.size(); ++i) {
        if (truths[i] == 0.0)
            continue;
        total += std::fabs(predictions[i] - truths[i]) / truths[i];
        ++count;
    }
    return count == 0 ? 0.0 : total / double(count);
}

namespace
{

/**
 * Count inversions (strict descents) in @p values via merge sort.
 * Equal elements are not inversions.
 */
uint64_t
countInversions(std::vector<double> &values, size_t lo, size_t hi,
                std::vector<double> &scratch)
{
    if (hi - lo <= 1)
        return 0;
    const size_t mid = lo + (hi - lo) / 2;
    uint64_t count = countInversions(values, lo, mid, scratch) +
                     countInversions(values, mid, hi, scratch);
    size_t i = lo, j = mid, k = lo;
    while (i < mid && j < hi) {
        if (values[j] < values[i]) {
            count += mid - i;
            scratch[k++] = values[j++];
        } else {
            scratch[k++] = values[i++];
        }
    }
    while (i < mid)
        scratch[k++] = values[i++];
    while (j < hi)
        scratch[k++] = values[j++];
    std::copy(scratch.begin() + lo, scratch.begin() + hi,
              values.begin() + lo);
    return count;
}

/** Sum over tie groups of t * (t - 1) / 2 in a sorted range. */
uint64_t
tiePairs(const std::vector<double> &sorted)
{
    uint64_t pairs = 0;
    size_t i = 0;
    while (i < sorted.size()) {
        size_t j = i;
        while (j < sorted.size() && sorted[j] == sorted[i])
            ++j;
        const uint64_t t = j - i;
        pairs += t * (t - 1) / 2;
        i = j;
    }
    return pairs;
}

} // namespace

double
kendallTau(const std::vector<double> &x, const std::vector<double> &y)
{
    panic_if(x.size() != y.size(), "kendallTau: {} xs vs {} ys",
             x.size(), y.size());
    const size_t n = x.size();
    if (n < 2)
        return 0.0;

    // Sort pairs by (x, y).
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (x[a] != x[b])
            return x[a] < x[b];
        return y[a] < y[b];
    });

    // Tie counts: xtie, ytie, and joint ties.
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
        xs[i] = x[order[i]];
        ys[i] = y[order[i]];
    }
    uint64_t xtie = tiePairs(xs);

    uint64_t ntie = 0;
    {
        size_t i = 0;
        while (i < n) {
            size_t j = i;
            while (j < n && xs[j] == xs[i] && ys[j] == ys[i])
                ++j;
            const uint64_t t = j - i;
            ntie += t * (t - 1) / 2;
            i = j;
        }
    }

    std::vector<double> ys_sorted(ys);
    std::sort(ys_sorted.begin(), ys_sorted.end());
    uint64_t ytie = tiePairs(ys_sorted);

    // Discordant pairs: inversions of y in x-order (ties excluded).
    std::vector<double> seq(ys);
    std::vector<double> scratch(n);
    const uint64_t discordant = countInversions(seq, 0, n, scratch);

    const uint64_t total = uint64_t(n) * (n - 1) / 2;
    const double con_minus_dis =
        double(total) - double(xtie) - double(ytie) + double(ntie) -
        2.0 * double(discordant);
    const double denom = std::sqrt(double(total - xtie)) *
                         std::sqrt(double(total - ytie));
    if (denom == 0.0)
        return 0.0;
    return con_minus_dis / denom;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / double(values.size());
}

double
stddev(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double total = 0.0;
    for (double v : values)
        total += (v - m) * (v - m);
    return std::sqrt(total / double(values.size() - 1));
}

double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    const size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    double hi = values[mid];
    if (values.size() % 2 == 1)
        return hi;
    std::nth_element(values.begin(), values.begin() + mid - 1,
                     values.begin() + mid);
    return 0.5 * (hi + values[mid - 1]);
}

} // namespace difftune::stats
