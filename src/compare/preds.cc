#include "compare/preds.hh"

#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "base/logging.hh"
#include "bhive/corpus.hh"
#include "isa/instruction.hh"
#include "isa/parse.hh"
#include "nn/matvec_dispatch.hh"
#include "serve/daemon.hh"
#include "serve/engine.hh"

namespace difftune::compare
{

uint64_t
corpusDigest(const std::vector<std::string> &texts)
{
    // Order-sensitive FNV-1a over text bytes, with a length prefix
    // per text so ("ab","c") and ("a","bc") digest differently.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t byte) {
        h ^= byte;
        h *= 0x100000001b3ull;
    };
    for (const std::string &text : texts)
    {
        uint64_t n = text.size();
        for (int shift = 0; shift < 64; shift += 8)
            mix((n >> shift) & 0xff);
        for (unsigned char c : text)
            mix(c);
    }
    return h;
}

std::string
encodePreds(const PredsArtifact &artifact)
{
    io::ByteWriter meta;
    meta.u64(artifact.corpusDigest);
    meta.u64(artifact.blocks.size());
    meta.str(artifact.engine.source);
    meta.str(artifact.engine.precision);
    meta.str(artifact.engine.kernel);
    meta.i32(artifact.engine.workers);

    io::ByteWriter blocks;
    blocks.u64(artifact.blocks.size());
    for (const BlockPreds &block : artifact.blocks)
    {
        blocks.str(block.text);
        blocks.u64(block.bits);
    }

    io::ChunkWriter writer(predsContainer);
    writer.add(tagPredsMeta, meta.take());
    writer.add(tagPredsBlocks, blocks.take());
    return writer.serialize();
}

PredsArtifact
decodePreds(std::string bytes, std::string source)
{
    io::ChunkReader reader(std::move(bytes), std::move(source),
                           predsContainer);
    const std::string &name = reader.source();

    PredsArtifact artifact;
    io::ByteReader meta(reader.payload(tagPredsMeta),
                        "predictions metadata");
    artifact.corpusDigest = meta.u64();
    uint64_t declared = meta.u64();
    artifact.engine.source = meta.str();
    artifact.engine.precision = meta.str();
    artifact.engine.kernel = meta.str();
    artifact.engine.workers = meta.i32();
    meta.expectEnd();

    io::ByteReader blocks(reader.payload(tagPredsBlocks),
                          "predictions blocks");
    uint64_t count = blocks.u64();
    if (count != declared)
        fatal("{}: block count mismatch (metadata says {}, "
              "block chunk says {})",
              name, declared, count);
    artifact.blocks.reserve(count);
    std::unordered_set<std::string> seen;
    seen.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
    {
        BlockPreds block;
        block.text = blocks.str();
        block.bits = blocks.u64();
        if (!seen.insert(block.text).second)
            fatal("{}: duplicate block text at index {}", name, i);
        artifact.blocks.push_back(std::move(block));
    }
    blocks.expectEnd();
    return artifact;
}

void
savePreds(const std::string &path, const PredsArtifact &artifact)
{
    std::string bytes = encodePreds(artifact);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open {} for writing", path);
    os.write(bytes.data(), std::streamsize(bytes.size()));
    os.flush();
    if (!os)
        fatal("write to {} failed", path);
}

PredsArtifact
loadPreds(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open predictions artifact {}", path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!is)
        fatal("read of predictions artifact {} failed", path);
    return decodePreds(std::move(buffer).str(), path);
}

namespace
{

/** Append @p text if its canonical form is new; first wins. */
void
addUnique(std::vector<std::string> &texts,
          std::unordered_set<std::string> &seen, std::string text)
{
    if (seen.insert(text).second)
        texts.push_back(std::move(text));
}

std::vector<std::string>
generatedCorpus(size_t count, uint64_t seed)
{
    bhive::Corpus corpus = bhive::Corpus::generate(count, seed);
    std::vector<std::string> texts;
    texts.reserve(corpus.size());
    std::unordered_set<std::string> seen;
    for (const bhive::BlockInfo &info : corpus.blocks())
        addUnique(texts, seen, isa::toString(info.block));
    return texts;
}

std::vector<std::string>
fileCorpus(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open corpus file {}", path);
    std::vector<std::string> texts;
    std::unordered_set<std::string> seen;
    std::string line;
    std::string pending;
    auto flush = [&]() {
        if (pending.empty())
            return;
        addUnique(texts, seen,
                  isa::toString(isa::parseBlock(pending)));
        pending.clear();
    };
    while (std::getline(is, line))
    {
        if (line.empty())
            flush();
        else
        {
            pending += line;
            pending += '\n';
        }
    }
    flush();
    if (texts.empty())
        fatal("corpus file {} contains no blocks", path);
    return texts;
}

} // namespace

std::vector<std::string>
resolveCorpus(const std::string &spec)
{
    if (spec.rfind("file:", 0) == 0)
        return fileCorpus(spec.substr(5));
    if (spec.rfind("gen:", 0) == 0)
    {
        size_t colon = spec.find(':', 4);
        if (colon != std::string::npos)
        {
            size_t count = 0;
            uint64_t seed = 0;
            try
            {
                count = std::stoull(spec.substr(4, colon - 4));
                seed = std::stoull(spec.substr(colon + 1), nullptr, 0);
            }
            catch (const std::exception &)
            {
                fatal("bad corpus spec '{}' (want gen:<count>:<seed> "
                      "or file:<path>)",
                      spec);
            }
            if (count == 0)
                fatal("corpus spec '{}' asks for zero blocks", spec);
            return generatedCorpus(count, seed);
        }
    }
    fatal("bad corpus spec '{}' (want gen:<count>:<seed> or "
          "file:<path>)",
          spec);
}

PredsArtifact
snapshotCheckpoint(const std::string &checkpoint_path,
                   const std::vector<std::string> &texts,
                   SnapshotOptions options)
{
    serve::ServeConfig config;
    config.workers = options.workers;
    config.precision = options.precision;
    serve::PredictionEngine engine =
        serve::PredictionEngine::fromFile(checkpoint_path, config);

    PredsArtifact artifact;
    artifact.engine.source = checkpoint_path;
    artifact.engine.precision = nn::precisionName(engine.precision());
    artifact.engine.kernel = nn::matvecPathName();
    artifact.engine.workers = engine.workers();
    artifact.corpusDigest = corpusDigest(texts);

    std::vector<double> values = engine.predictAll(texts);
    artifact.blocks.reserve(texts.size());
    for (size_t i = 0; i < texts.size(); ++i)
    {
        BlockPreds block;
        block.text = texts[i];
        block.bits = std::bit_cast<uint64_t>(values[i]);
        artifact.blocks.push_back(std::move(block));
    }
    return artifact;
}

PredsArtifact
snapshotDaemon(const std::string &host, uint16_t port,
               const std::string &model,
               const std::vector<std::string> &texts)
{
    serve::DaemonClient client(host, port);
    PredsArtifact artifact;
    artifact.engine.source =
        "daemon " + host + ":" + std::to_string(port) + "/" + model;
    artifact.engine.precision = "daemon";
    artifact.engine.kernel = "daemon";
    artifact.engine.workers = 0;
    artifact.corpusDigest = corpusDigest(texts);
    artifact.blocks.reserve(texts.size());
    for (const std::string &text : texts)
    {
        BlockPreds block;
        block.text = text;
        block.bits =
            std::bit_cast<uint64_t>(client.predict(model, text));
        artifact.blocks.push_back(std::move(block));
    }
    return artifact;
}

} // namespace difftune::compare
