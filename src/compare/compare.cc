#include "compare/compare.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "base/logging.hh"
#include "base/table.hh"

namespace difftune::compare
{

const char *
diffClassName(DiffClass cls)
{
    switch (cls)
    {
    case DiffClass::kBitExact:
        return "bit-exact";
    case DiffClass::kWithinTolerance:
        return "within-tolerance";
    case DiffClass::kDiverged:
        return "diverged";
    case DiffClass::kOnlyInA:
        return "only-in-a";
    case DiffClass::kOnlyInB:
        return "only-in-b";
    case DiffClass::kNumClasses:
        break;
    }
    fatal("bad DiffClass {}", int(cls));
}

DiffClass
classifyPair(uint64_t bits_a, uint64_t bits_b, double tolerance,
             double *rel_error)
{
    if (bits_a == bits_b)
    {
        if (rel_error)
            *rel_error = 0.0;
        return DiffClass::kBitExact;
    }
    const double a = std::bit_cast<double>(bits_a);
    const double b = std::bit_cast<double>(bits_b);
    // A non-finite prediction that is not bit-identical is always a
    // divergence: NaN has no meaningful relative error, and an Inf
    // of either sign is unbounded error against any finite value.
    if (!std::isfinite(a) || !std::isfinite(b))
        return DiffClass::kDiverged;
    const double denom = std::max(std::fabs(a), std::fabs(b));
    // denom == 0 only for the +0.0 / -0.0 pair (equal bits returned
    // above): numerically identical, so relative error 0.
    const double rel =
        denom == 0.0 ? 0.0 : std::fabs(a - b) / denom;
    if (rel_error)
        *rel_error = rel;
    return rel <= tolerance ? DiffClass::kWithinTolerance
                            : DiffClass::kDiverged;
}

uint64_t
ClassCounts::total() const
{
    uint64_t sum = 0;
    for (uint64_t c : counts)
        sum += c;
    return sum;
}

int
CompareReport::exitCode() const
{
    if (counts[DiffClass::kDiverged] || counts[DiffClass::kOnlyInA] ||
        counts[DiffClass::kOnlyInB])
        return 2;
    if (counts[DiffClass::kWithinTolerance])
        return 1;
    return 0;
}

std::vector<std::string>
distinctOpcodes(const std::string &text)
{
    std::set<std::string> opcodes;
    size_t pos = 0;
    while (pos < text.size())
    {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        size_t start = line.find_first_not_of(" \t");
        if (start == std::string_view::npos || line[start] == '#')
            continue;
        size_t end = line.find_first_of(" \t", start);
        if (end == std::string_view::npos)
            end = line.size();
        opcodes.emplace(line.substr(start, end - start));
    }
    return {opcodes.begin(), opcodes.end()};
}

size_t
instructionCount(const std::string &text)
{
    size_t count = 0;
    size_t pos = 0;
    while (pos < text.size())
    {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        size_t start = line.find_first_not_of(" \t");
        if (start != std::string_view::npos && line[start] != '#')
            ++count;
    }
    return count;
}

namespace
{

/** Fold one classified block into the report's breakdowns. */
void
account(CompareReport &report, const BlockDiff &diff)
{
    report.counts[diff.cls]++;
    for (const std::string &opcode : distinctOpcodes(diff.text))
        report.byOpcode[opcode][diff.cls]++;
    report.byLength[instructionCount(diff.text)][diff.cls]++;
}

} // namespace

CompareReport
compare(const PredsArtifact &a, const PredsArtifact &b,
        CompareConfig config)
{
    CompareReport report;
    report.engineA = a.engine;
    report.engineB = b.engine;
    report.config = config;
    report.digestMatch = a.corpusDigest == b.corpusDigest;

    std::unordered_map<std::string_view, size_t> indexB;
    indexB.reserve(b.blocks.size());
    for (size_t i = 0; i < b.blocks.size(); ++i)
        indexB.emplace(b.blocks[i].text, i);

    std::vector<bool> matchedB(b.blocks.size(), false);
    report.blocks.reserve(a.blocks.size() + b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i)
    {
        const BlockPreds &blockA = a.blocks[i];
        BlockDiff diff;
        diff.text = blockA.text;
        diff.indexA = int64_t(i);
        diff.bitsA = blockA.bits;
        auto it = indexB.find(blockA.text);
        if (it == indexB.end())
            diff.cls = DiffClass::kOnlyInA;
        else
        {
            matchedB[it->second] = true;
            diff.indexB = int64_t(it->second);
            diff.bitsB = b.blocks[it->second].bits;
            diff.cls = classifyPair(diff.bitsA, diff.bitsB,
                                    config.tolerance, &diff.relError);
        }
        account(report, diff);
        report.blocks.push_back(std::move(diff));
    }
    for (size_t i = 0; i < b.blocks.size(); ++i)
    {
        if (matchedB[i])
            continue;
        BlockDiff diff;
        diff.text = b.blocks[i].text;
        diff.indexB = int64_t(i);
        diff.bitsB = b.blocks[i].bits;
        diff.cls = DiffClass::kOnlyInB;
        account(report, diff);
        report.blocks.push_back(std::move(diff));
    }
    return report;
}

namespace
{

std::string
fmtRel(double rel)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", rel);
    return buf;
}

std::string
fmtBits(uint64_t bits)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

std::string
describeEngine(const EngineInfo &engine)
{
    return engine.source + " (" + engine.precision + ", " +
           engine.kernel + ", " + std::to_string(engine.workers) +
           " workers)";
}

/** The class columns shared by both breakdown tables. */
std::vector<std::string>
countCells(const ClassCounts &counts)
{
    std::vector<std::string> cells;
    cells.push_back(std::to_string(counts.total()));
    for (int c = 0; c < numDiffClasses; ++c)
        cells.push_back(std::to_string(counts[DiffClass(c)]));
    return cells;
}

std::vector<std::string>
breakdownHeaders(const std::string &key)
{
    std::vector<std::string> headers{key, "total"};
    for (int c = 0; c < numDiffClasses; ++c)
        headers.emplace_back(diffClassName(DiffClass(c)));
    return headers;
}

/** Identify a block in a diff line: A index, or B index if absent
 *  from A (the `b#` prefix keeps the two index spaces distinct). */
std::string
diffId(const BlockDiff &diff)
{
    if (diff.indexA >= 0)
        return "#" + std::to_string(diff.indexA);
    return "b#" + std::to_string(diff.indexB);
}

} // namespace

std::string
renderTable(const CompareReport &report)
{
    std::string out;
    out += "compare: A = " + describeEngine(report.engineA) + "\n";
    out += "         B = " + describeEngine(report.engineB) + "\n";
    out += "corpus digest: ";
    out += report.digestMatch ? "match" : "MISMATCH";
    out += "\ntolerance: " + fmtRel(report.config.tolerance) + "\n";

    out += "summary: total " + std::to_string(report.counts.total());
    for (int c = 0; c < numDiffClasses; ++c)
    {
        const DiffClass cls = DiffClass(c);
        out += std::string(" ") + diffClassName(cls) + " " +
               std::to_string(report.counts[cls]);
    }
    out += "\nexit: " + std::to_string(report.exitCode()) + "\n\n";

    TextTable byOpcode(breakdownHeaders("opcode"));
    for (const auto &[opcode, counts] : report.byOpcode)
    {
        std::vector<std::string> cells{opcode};
        for (std::string &cell : countCells(counts))
            cells.push_back(std::move(cell));
        byOpcode.addRow(std::move(cells));
    }
    out += byOpcode.render() + "\n";

    TextTable byLength(breakdownHeaders("length"));
    for (const auto &[length, counts] : report.byLength)
    {
        std::vector<std::string> cells{std::to_string(length)};
        for (std::string &cell : countCells(counts))
            cells.push_back(std::move(cell));
        byLength.addRow(std::move(cells));
    }
    out += byLength.render();

    bool anyDiff = false;
    for (const BlockDiff &diff : report.blocks)
    {
        if (diff.cls == DiffClass::kBitExact)
            continue;
        if (!anyDiff)
        {
            out += "\n";
            anyDiff = true;
        }
        out += std::string("diff ") + diffClassName(diff.cls) + " " +
               diffId(diff);
        if (diff.cls == DiffClass::kWithinTolerance ||
            diff.cls == DiffClass::kDiverged)
            out += " rel " + fmtRel(diff.relError) + " a " +
                   fmtBits(diff.bitsA) + " b " + fmtBits(diff.bitsB);
        out += "\n";
    }
    return out;
}

namespace
{

std::string
jsonString(const std::string &value)
{
    std::string out = "\"";
    for (char c : value)
    {
        switch (c)
        {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            }
            else
                out += c;
        }
    }
    return out + "\"";
}

std::string
jsonEngine(const EngineInfo &engine)
{
    return "{\"source\":" + jsonString(engine.source) +
           ",\"precision\":" + jsonString(engine.precision) +
           ",\"kernel\":" + jsonString(engine.kernel) +
           ",\"workers\":" + std::to_string(engine.workers) + "}";
}

std::string
jsonCounts(const ClassCounts &counts)
{
    std::string out = "{";
    for (int c = 0; c < numDiffClasses; ++c)
    {
        if (c)
            out += ",";
        out += jsonString(diffClassName(DiffClass(c))) + ":" +
               std::to_string(counts[DiffClass(c)]);
    }
    return out + ",\"total\":" + std::to_string(counts.total()) + "}";
}

} // namespace

std::string
renderJson(const CompareReport &report)
{
    // Hand-rendered like obs/export.cc: insertion order is sorted
    // (std::map breakdowns), floats print via snprintf, so the
    // render is deterministic and golden-testable.
    std::string out = "{\"engineA\":" + jsonEngine(report.engineA) +
                      ",\"engineB\":" + jsonEngine(report.engineB);
    out += ",\"digestMatch\":";
    out += report.digestMatch ? "true" : "false";
    out += ",\"tolerance\":" + fmtRel(report.config.tolerance);
    out += ",\"exit\":" + std::to_string(report.exitCode());
    out += ",\"counts\":" + jsonCounts(report.counts);

    out += ",\"byOpcode\":{";
    bool first = true;
    for (const auto &[opcode, counts] : report.byOpcode)
    {
        if (!first)
            out += ",";
        first = false;
        out += jsonString(opcode) + ":" + jsonCounts(counts);
    }
    out += "},\"byLength\":{";
    first = true;
    for (const auto &[length, counts] : report.byLength)
    {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + std::to_string(length) +
               "\":" + jsonCounts(counts);
    }
    out += "},\"diffs\":[";
    first = true;
    for (const BlockDiff &diff : report.blocks)
    {
        if (diff.cls == DiffClass::kBitExact)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "{\"class\":" +
               jsonString(diffClassName(diff.cls)) +
               ",\"indexA\":" + std::to_string(diff.indexA) +
               ",\"indexB\":" + std::to_string(diff.indexB) +
               ",\"relError\":" + fmtRel(diff.relError) +
               ",\"bitsA\":" + jsonString(fmtBits(diff.bitsA)) +
               ",\"bitsB\":" + jsonString(fmtBits(diff.bitsB)) + "}";
    }
    out += "]}";
    return out;
}

} // namespace difftune::compare
