/**
 * @file
 * The .preds prediction artifact: a snapshot of what one version of
 * this repo (a checkpoint served by this build, or a live difftuned
 * daemon) predicts for every block of a declared corpus.
 *
 * A .preds file is the unit of the `difftune compare` workflow
 * (docs/COMPARE.md): snapshot two versions over the same corpus,
 * then diff the artifacts — cross-version prediction equivalence is
 * the correctness contract every refactor must preserve (golden
 * files pin one trajectory; a .preds artifact pins a whole corpus).
 *
 * # File format
 *
 * A .preds file reuses the checkpoint container machinery
 * (io::ChunkWriter / io::ChunkReader — magic header, version gate,
 * CRC-32-guarded chunks, strict truncation/corruption rejection)
 * under its own magic "DTPREDS\0", so the two file types can never
 * be confused. Chunks:
 *
 *   "PMET"  artifact metadata: corpus digest, block count, engine
 *           info (source, precision, matvec kernel path, workers)
 *   "PBLK"  per block, in corpus order: canonical text (the block's
 *           identity) + the prediction as its raw IEEE-754 f64 bit
 *           pattern (bit-exact round trips, including NaN payloads)
 *
 * Canonical texts are unique within an artifact (snapshots dedup
 * their corpus; loads reject duplicates as corruption), so the
 * comparison side can match blocks across artifacts by text.
 */

#ifndef DIFFTUNE_COMPARE_PREDS_HH
#define DIFFTUNE_COMPARE_PREDS_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "io/checkpoint.hh"
#include "nn/batched.hh"

namespace difftune::compare
{

/** The .preds container type (io::ChunkWriter/ChunkReader kind). */
inline constexpr char predsMagic[8] = {'D', 'T', 'P', 'R',
                                       'E', 'D', 'S', '\0'};
inline constexpr uint32_t predsVersion = 1;
inline constexpr io::ContainerKind predsContainer{
    predsMagic, predsVersion, "predictions artifact"};

/** Chunk tags. */
inline constexpr const char *tagPredsMeta = "PMET";
inline constexpr const char *tagPredsBlocks = "PBLK";

/** The engine configuration a snapshot ran under (metadata only —
 *  compare reports it so a diff names both configurations, but block
 *  matching never depends on it). */
struct EngineInfo
{
    std::string source;    ///< checkpoint path / "daemon host:port"
    std::string precision; ///< "f64" or "f32"
    std::string kernel;    ///< nn::matvecPathName() or "daemon"
    int32_t workers = 0;   ///< shard count (0: remote/unknown)
};

/** One block's snapshot: canonical identity + prediction bits. */
struct BlockPreds
{
    std::string text; ///< canonical block text (isa::toString form)
    uint64_t bits = 0; ///< IEEE-754 bit pattern of the prediction

    double value() const { return std::bit_cast<double>(bits); }
};

/** A full prediction snapshot over one corpus. */
struct PredsArtifact
{
    EngineInfo engine;
    uint64_t corpusDigest = 0; ///< corpusDigest() of the texts
    std::vector<BlockPreds> blocks; ///< corpus order, texts unique
};

/**
 * Order-sensitive FNV-1a digest of a corpus's canonical texts. Two
 * artifacts with equal digests snapshotted the same declared corpus
 * in the same order; compare() reports a mismatch (and classifies
 * the asymmetric blocks) rather than refusing.
 */
uint64_t corpusDigest(const std::vector<std::string> &texts);

/** Encode @p artifact as .preds bytes (exposed for tests). */
std::string encodePreds(const PredsArtifact &artifact);

/**
 * Decode .preds bytes; fatal on any structural defect (bad magic,
 * truncation, CRC mismatch, duplicate block text, digest drift).
 * @p source names the artifact in error messages.
 */
PredsArtifact decodePreds(std::string bytes, std::string source = "");

/** encodePreds to @p path (fatal on I/O failure). */
void savePreds(const std::string &path, const PredsArtifact &artifact);

/** Load and validate a .preds file (errors name the path). */
PredsArtifact loadPreds(const std::string &path);

// ---- Corpus declaration.

/**
 * Resolve a corpus spec into canonical block texts:
 *
 *   "gen:<count>:<seed>"  deterministic bhive::Corpus::generate
 *   "file:<path>"         blocks separated by blank lines, each
 *                         parsed and re-rendered canonically
 *
 * Duplicate canonical texts are dropped (first occurrence wins), so
 * the result is directly snapshotable.
 */
std::vector<std::string> resolveCorpus(const std::string &spec);

/** The default corpus spec (tools/compare_smoke.sh and the CI
 *  reference artifact both use it). */
inline constexpr const char *defaultCorpusSpec = "gen:48:0xbe7c";

// ---- Snapshotting.

/** Engine knobs for a local snapshot run. */
struct SnapshotOptions
{
    int workers = 0; ///< shard count (<= 0: library default)
    nn::Precision precision = nn::Precision::kF64;
};

/**
 * Serve @p checkpoint_path over @p texts with a fresh local engine
 * and capture every prediction's bit pattern. The artifact's engine
 * info records the checkpoint path, precision, selected matvec
 * kernel and worker count.
 */
PredsArtifact snapshotCheckpoint(const std::string &checkpoint_path,
                                 const std::vector<std::string> &texts,
                                 SnapshotOptions options = {});

/**
 * Snapshot a live difftuned daemon over loopback: one predict per
 * text through serve::DaemonClient, whose wire format carries raw
 * f64 bit patterns — a daemon snapshot is bit-exact against the
 * daemon's in-process engine. Throws serve::DaemonError on
 * connection or protocol failures.
 */
PredsArtifact snapshotDaemon(const std::string &host, uint16_t port,
                             const std::string &model,
                             const std::vector<std::string> &texts);

} // namespace difftune::compare

#endif // DIFFTUNE_COMPARE_PREDS_HH
