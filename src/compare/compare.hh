/**
 * @file
 * Semantic diff over .preds prediction artifacts.
 *
 * compare() matches blocks across two artifacts by canonical text
 * and classifies every block (see DiffClass). Classification is the
 * heart of the `difftune compare` contract (docs/COMPARE.md):
 *
 *   bit-exact         identical IEEE-754 bit patterns
 *   within-tolerance  both finite, symmetric relative error
 *                     |a-b| / max(|a|,|b|) <= tolerance (default
 *                     1e-5 — the repo's f32 accuracy gate); the
 *                     +0.0 / -0.0 pair lands here (rel error 0)
 *   diverged          relative error above tolerance, or either
 *                     value NaN/Inf with differing bits (a
 *                     non-finite value never gets tolerance credit)
 *   only-in-a/b       block text present in one artifact only
 *
 * The report carries per-opcode and per-block-length breakdowns so
 * a divergence localizes to the kernel that caused it, and renders
 * as a human table or machine-readable JSON. Exit-code contract
 * (CI-gateable): 0 all bit-exact, 1 within-tolerance only, 2 any
 * divergence or missing block.
 */

#ifndef DIFFTUNE_COMPARE_COMPARE_HH
#define DIFFTUNE_COMPARE_COMPARE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compare/preds.hh"

namespace difftune::compare
{

/** Classification of one block across two artifacts. */
enum class DiffClass : uint8_t
{
    kBitExact,
    kWithinTolerance,
    kDiverged,
    kOnlyInA, ///< block text missing from artifact B
    kOnlyInB, ///< block text missing from artifact A
    kNumClasses,
};

inline constexpr int numDiffClasses = int(DiffClass::kNumClasses);

/** @return e.g. "bit-exact" (stable; scripts and JSON key on it). */
const char *diffClassName(DiffClass cls);

/** Comparison knobs. */
struct CompareConfig
{
    /** Symmetric relative-error bound for within-tolerance; the
     *  default is the repo's 1e-5 f32 accuracy gate. The boundary
     *  is inclusive: rel == tolerance classifies as within. */
    double tolerance = 1e-5;
};

/**
 * Classify one prediction pair. @p rel_error (optional) receives
 * the symmetric relative error when both values are finite (0 when
 * bit-exact; untouched otherwise).
 */
DiffClass classifyPair(uint64_t bits_a, uint64_t bits_b,
                       double tolerance, double *rel_error = nullptr);

/** Per-class block counters. */
struct ClassCounts
{
    std::array<uint64_t, numDiffClasses> counts{};

    uint64_t &operator[](DiffClass cls)
    {
        return counts[size_t(cls)];
    }
    uint64_t operator[](DiffClass cls) const
    {
        return counts[size_t(cls)];
    }

    uint64_t total() const;
};

/** One classified block. */
struct BlockDiff
{
    std::string text;    ///< canonical block text
    int64_t indexA = -1; ///< position in artifact A (-1: absent)
    int64_t indexB = -1; ///< position in artifact B (-1: absent)
    uint64_t bitsA = 0;  ///< prediction bits in A (if present)
    uint64_t bitsB = 0;  ///< prediction bits in B (if present)
    DiffClass cls = DiffClass::kBitExact;
    double relError = 0.0; ///< symmetric rel error (matched finite)
};

/** The full result of comparing two artifacts. */
struct CompareReport
{
    EngineInfo engineA, engineB;
    CompareConfig config;
    bool digestMatch = true; ///< corpus digests were equal
    ClassCounts counts;
    /** Every block: A's in order, then B-only blocks in B order. */
    std::vector<BlockDiff> blocks;
    /** Per distinct opcode occurring in a block (sorted by name). */
    std::map<std::string, ClassCounts> byOpcode;
    /** Per block length in instructions. */
    std::map<size_t, ClassCounts> byLength;

    /** 0 all bit-exact; 1 within-tolerance only; 2 any diverged or
     *  missing block. */
    int exitCode() const;
};

/** Diff @p a against @p b (block matching is by canonical text). */
CompareReport compare(const PredsArtifact &a, const PredsArtifact &b,
                      CompareConfig config = {});

/**
 * Human-readable report: engine configs, a script-parseable
 * `summary:` line, per-opcode and per-length breakdown tables, and
 * one `diff <class> ...` line per non-bit-exact block.
 */
std::string renderTable(const CompareReport &report);

/** Machine-readable report (obs JSON style: hand-rendered, sorted
 *  keys, deterministic float formatting). Non-bit-exact blocks only
 *  appear in the "diffs" array. */
std::string renderJson(const CompareReport &report);

// ---- Text introspection helpers (shared with the CLI dump verb).

/** Distinct opcode mnemonics of a canonical block text, sorted. */
std::vector<std::string> distinctOpcodes(const std::string &text);

/** Number of instruction lines in a canonical block text. */
size_t instructionCount(const std::string &text);

} // namespace difftune::compare

#endif // DIFFTUNE_COMPARE_COMPARE_HH
