/**
 * @file
 * Checkpoint perturbation test hooks for the compare harness.
 *
 * tools/compare_smoke.sh proves the end-to-end contract of
 * `difftune compare` by snapshotting a checkpoint, flipping exactly
 * one weight, and asserting the diff classifies exactly the blocks
 * that weight can influence. The sharpest such weight is an
 * opcode-token embedding row: it feeds the model if and only if the
 * block contains that opcode, so the expected diverged set is
 * computable from block texts alone.
 *
 * These are test hooks, not a tuning API — they rewrite a
 * checkpoint file in place of its semantics on purpose.
 */

#ifndef DIFFTUNE_COMPARE_PERTURB_HH
#define DIFFTUNE_COMPARE_PERTURB_HH

#include <cstddef>
#include <string>

namespace difftune::compare
{

/** What perturbOpcodeEmbedding changed. */
struct PerturbInfo
{
    size_t tensorIndex = 0; ///< position in the model's ParamSet
    int row = 0;
    int col = 0;
    double before = 0.0;
    double after = 0.0;
};

/**
 * Load the checkpoint at @p in_path, add @p delta to element
 * (@p row, @p col) of parameter tensor @p tensor_index, and save to
 * @p out_path (same sections and weight precision). Fatal on a
 * missing model section or out-of-range coordinates.
 */
PerturbInfo perturbWeight(const std::string &in_path,
                          const std::string &out_path,
                          size_t tensor_index, int row, int col,
                          double delta);

/**
 * Perturb column 0 of the embedding row of @p opcode's token: the
 * embedding tensor is the unique parameter with vocabSize rows, and
 * the row feeds predictions exactly for blocks containing the
 * opcode. Fatal if @p opcode is unknown or no embedding-shaped
 * tensor exists.
 */
PerturbInfo perturbOpcodeEmbedding(const std::string &in_path,
                                   const std::string &out_path,
                                   const std::string &opcode,
                                   double delta = 0.5);

} // namespace difftune::compare

#endif // DIFFTUNE_COMPARE_PERTURB_HH
