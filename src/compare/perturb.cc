#include "compare/perturb.hh"

#include "base/logging.hh"
#include "io/checkpoint.hh"
#include "isa/isa.hh"
#include "nn/graph.hh"

namespace difftune::compare
{

namespace
{

PerturbInfo
perturbLoaded(io::Checkpoint &checkpoint, const std::string &in_path,
              const std::string &out_path, size_t tensor_index,
              int row, int col, double delta)
{
    if (!checkpoint.model)
        fatal("{}: checkpoint has no model section to perturb",
              in_path);
    nn::ParamSet &params = checkpoint.model->params();
    if (tensor_index >= params.count())
        fatal("{}: tensor index {} out of range (model has {} "
              "parameter tensors)",
              in_path, tensor_index, params.count());
    nn::Tensor &tensor = params[int(tensor_index)];
    if (row < 0 || row >= tensor.rows || col < 0 ||
        col >= tensor.cols)
        fatal("{}: element ({}, {}) out of range for {}x{} tensor "
              "{}",
              in_path, row, col, tensor.rows, tensor.cols,
              tensor_index);

    PerturbInfo info;
    info.tensorIndex = tensor_index;
    info.row = row;
    info.col = col;
    info.before = tensor.at(row, col);
    tensor.at(row, col) += delta;
    info.after = tensor.at(row, col);

    io::saveCheckpoint(out_path, checkpoint.model.get(),
                       checkpoint.dist ? &*checkpoint.dist : nullptr,
                       checkpoint.table ? &*checkpoint.table
                                        : nullptr,
                       checkpoint.weightPrecision);
    return info;
}

} // namespace

PerturbInfo
perturbWeight(const std::string &in_path, const std::string &out_path,
              size_t tensor_index, int row, int col, double delta)
{
    io::Checkpoint checkpoint = io::loadCheckpoint(in_path);
    return perturbLoaded(checkpoint, in_path, out_path, tensor_index,
                         row, col, delta);
}

PerturbInfo
perturbOpcodeEmbedding(const std::string &in_path,
                       const std::string &out_path,
                       const std::string &opcode, double delta)
{
    const isa::OpcodeId op = isa::theIsa().opcodeByName(opcode);
    if (op == isa::invalidOpcode)
        fatal("unknown opcode '{}'", opcode);

    io::Checkpoint checkpoint = io::loadCheckpoint(in_path);
    if (!checkpoint.model)
        fatal("{}: checkpoint has no model section to perturb",
              in_path);
    const nn::ParamSet &params = checkpoint.model->params();
    // The embedding is the unique tensor with one row per
    // vocabulary token; opcode tokens are the first vocab rows
    // (TokenVocab::opcodeToken(op) == op).
    size_t embedding = params.count();
    for (size_t i = 0; i < params.count(); ++i)
    {
        if (params[int(i)].rows != int(checkpoint.vocabSize))
            continue;
        if (embedding != params.count())
            fatal("{}: several {}-row tensors; cannot identify the "
                  "embedding",
                  in_path, checkpoint.vocabSize);
        embedding = i;
    }
    if (embedding == params.count())
        fatal("{}: no tensor with {} (vocabSize) rows; cannot "
              "identify the embedding",
              in_path, checkpoint.vocabSize);
    return perturbLoaded(checkpoint, in_path, out_path, embedding,
                         int(op), 0, delta);
}

} // namespace difftune::compare
