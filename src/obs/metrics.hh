/**
 * @file
 * Serving telemetry core: a process-wide registry of named,
 * label-free metrics — monotonic Counter, Gauge, and a lock-free
 * log-bucketed LatencyHistogram — cheap enough to leave compiled in
 * on every serving hot path.
 *
 * # Design
 *
 * - **Hot path is wait-free.** Counter::inc, Gauge::set and
 *   LatencyHistogram::record are a handful of relaxed atomic
 *   operations on cache-resident state; no locks, no allocation.
 *   Callers resolve a metric by name once (engine construction) and
 *   keep the reference — name lookup itself takes the registry
 *   mutex, but only at registration/render time, never per record.
 *
 * - **Metrics are immortal.** A reference returned by
 *   MetricRegistry::counter/gauge/histogram stays valid for the
 *   registry's whole lifetime (slots are never destroyed), so hot
 *   paths need no lifetime handshake. The one exception is
 *   *linked* counters — external atomics mirrored into the registry
 *   by linkCounter (the ServeStats contract, see
 *   serve/async_engine.hh) — whose owner must unlinkCounters before
 *   the storage dies.
 *
 * - **Kill switch.** obs::enabled() is false when DIFFTUNE_OBS_OFF
 *   is set (to anything but "0"/empty); instrumented subsystems
 *   check it once at construction and degrade to no-ops (null
 *   metric pointers — see obs/stage_timer.hh).
 *
 * # Histogram error bound
 *
 * LatencyHistogram buckets are log-spaced with 8 sub-buckets per
 * octave (bound ratio between 16/15 and 9/8, geometric mean ~1.08)
 * over [0 ns, ~137 s], with exact unit buckets below 16 ns; larger
 * values clamp into the top bucket. percentile() returns the
 * arithmetic midpoint of the bucket holding the nearest-rank
 * sample, so any percentile estimate is within
 * kMaxRelativeError = 1/16 = 6.25% of the exact order statistic
 * (exact below 16 ns) — asserted against a sorted-vector reference
 * in tests/test_obs.cc. See docs/OBSERVABILITY.md.
 */

#ifndef DIFFTUNE_OBS_METRICS_HH
#define DIFFTUNE_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace difftune::obs
{

/**
 * Global telemetry switch: true unless the DIFFTUNE_OBS_OFF
 * environment variable is set (read once, on first call).
 * Subsystems sample it at construction; flipping it later only
 * affects instrumentation constructed afterwards.
 */
bool enabled();

/** Override the switch (tests, benches measuring their own overhead). */
void setEnabled(bool on);

/** Re-read DIFFTUNE_OBS_OFF, discarding any override (tests). */
void reloadEnabledFromEnv();

/** Monotonic counter. All operations are wait-free and relaxed. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous level (queue depth, resident entries). Wait-free. */
class Gauge
{
  public:
    void
    set(int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t d) noexcept
    {
        value_.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

class LatencyHistogram;

/**
 * A consistent-enough copy of a histogram's state: counts read
 * individually (relaxed) while writers may still be recording, so a
 * snapshot taken concurrently is approximate; quiesce writers first
 * when exact totals matter. Snapshots merge associatively and
 * commutatively (pure element-wise addition).
 */
struct HistogramSnapshot
{
    std::vector<uint64_t> counts; ///< per-bucket observation counts
    uint64_t sum = 0;             ///< sum of recorded values

    /** Total observations (sum over buckets). */
    uint64_t count() const;

    /** Element-wise accumulate @p other into this snapshot. */
    void merge(const HistogramSnapshot &other);

    /**
     * Estimate of the p-quantile (p in [0, 1]) by nearest rank:
     * the midpoint of the bucket holding sample
     * ceil(p * count()), within LatencyHistogram::kMaxRelativeError
     * of the exact order statistic. 0 when empty.
     */
    double percentile(double p) const;

    /** Mean of the recorded values (exact; sum/count). 0 if empty. */
    double mean() const;

    /** Midpoint of the highest non-empty bucket. 0 when empty. */
    double maxEstimate() const;
};

/**
 * Lock-free log-bucketed histogram for nanosecond latencies (or any
 * non-negative integer quantity). record() is wait-free: one bucket
 * index computation from the bit pattern plus two relaxed
 * fetch_adds. See the file comment for the bucket layout and the
 * 1/16 relative-error bound on percentile estimates.
 */
class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits buckets per octave. */
    static constexpr int kSubBits = 3;
    static constexpr uint64_t kSub = uint64_t(1) << kSubBits;
    /** Values at or above 2^37 ns (~137 s) clamp into the top. */
    static constexpr int kClampExp = 36;
    /** Bucket count: 2*kSub exact unit buckets + 8 per octave. */
    static constexpr size_t kNumBuckets =
        2 * kSub + size_t(kClampExp - kSubBits) * kSub;
    /** Percentile estimates are within this of the exact sample. */
    static constexpr double kMaxRelativeError = 1.0 / 16.0;

    /** Bucket index of @p value (clamped into range). */
    static size_t
    bucketIndex(uint64_t value) noexcept
    {
        const uint64_t clamp = (uint64_t(1) << (kClampExp + 1)) - 1;
        const uint64_t v = value > clamp ? clamp : value;
        if (v < 2 * kSub)
            return size_t(v); // exact unit buckets
        const int exp = std::bit_width(v) - 1; // v in [2^exp, 2^exp+1)
        const uint64_t sub = (v >> (exp - kSubBits)) & (kSub - 1);
        return (size_t(exp) - kSubBits + 1) * kSub + size_t(sub);
    }

    /** Inclusive lower bound of bucket @p index. */
    static uint64_t
    bucketLowerBound(size_t index) noexcept
    {
        if (index < 2 * kSub)
            return index;
        const size_t block = index >> kSubBits;
        const uint64_t sub = index & (kSub - 1);
        return (kSub + sub) << (block - 1);
    }

    /**
     * The representative value percentile() reports for bucket
     * @p index: the exact value for unit buckets, the arithmetic
     * midpoint otherwise.
     */
    static double
    bucketMidpoint(size_t index) noexcept
    {
        if (index < 2 * kSub)
            return double(index);
        const uint64_t lo = bucketLowerBound(index);
        const uint64_t width = uint64_t(1) << ((index >> kSubBits) - 1);
        return double(lo) + 0.5 * double(width);
    }

    /** Record one observation. Wait-free; any thread. */
    void
    record(uint64_t value) noexcept
    {
        counts_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    /** Record a duration given in seconds (negative clamps to 0). */
    void
    recordSeconds(double seconds) noexcept
    {
        record(seconds > 0.0 ? uint64_t(seconds * 1e9) : 0);
    }

    /** Copy out the current state (see HistogramSnapshot). */
    HistogramSnapshot snapshot() const;

  private:
    std::atomic<uint64_t> counts_[kNumBuckets] = {};
    std::atomic<uint64_t> sum_{0};
};

/** What a registry slot holds. */
enum class MetricKind
{
    kCounter,
    kGauge,
    kHistogram,
    kLinkedCounter, ///< external atomic mirrored by linkCounter
};

/**
 * A named collection of metrics. One process-wide instance
 * (global()) backs the /statsz exporters (obs/export.hh); tests and
 * embedders may construct private registries (e.g. through
 * serve::AsyncConfig::registry).
 *
 * Names are restricted to [A-Za-z0-9._-] so the statsz line format
 * stays trivially parseable. Re-requesting a name with the same
 * kind returns the same object (two engines sharing a prefix share
 * counters); requesting it with a different kind is fatal().
 *
 * Registration and sampling serialize on one mutex; recording on a
 * resolved metric never takes it.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /** The process-wide registry. */
    static MetricRegistry &global();

    /** Find-or-create. References stay valid for the registry's
     *  lifetime; fatal() on a kind collision or invalid name. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    /**
     * Mirror an externally-owned monotonic counter (e.g. a
     * serve::ServeStats field) into the registry: renders read
     * @p source live. fatal() if @p name is taken — a second engine
     * must use a distinct metric prefix. The owner MUST call
     * unlinkCounters(prefix) before @p source is destroyed.
     */
    void linkCounter(const std::string &name,
                     const std::atomic<uint64_t> *source);

    /**
     * Remove every *linked* counter whose name starts with
     * @p prefix. Owned metrics are never removed (their references
     * are immortal); after the owner of a linked counter dies, its
     * remaining owned histograms simply stop updating.
     */
    void unlinkCounters(const std::string &prefix);

    /**
     * Remove exactly the linked counter @p name (no-op if absent or
     * not a linked counter). For rolling back a partially-applied
     * link batch without touching another owner's links under the
     * same prefix.
     */
    void unlinkCounter(const std::string &name);

    /** One rendered metric (see samples()). */
    struct Sample
    {
        std::string name;
        MetricKind kind;
        uint64_t counterValue = 0; ///< kCounter / kLinkedCounter
        int64_t gaugeValue = 0;    ///< kGauge
        HistogramSnapshot hist;    ///< kHistogram
    };

    /** Snapshot every metric, sorted by name (exporter input). */
    std::vector<Sample> samples() const;

    size_t size() const;

  private:
    struct Slot
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LatencyHistogram> histogram;
        const std::atomic<uint64_t> *linked = nullptr;
    };

    Slot &slot(const std::string &name, MetricKind kind);

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Slot> slots_;
};

} // namespace difftune::obs

#endif // DIFFTUNE_OBS_METRICS_HH
