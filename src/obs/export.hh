/**
 * @file
 * Metric exporters: the /statsz-style text dump and its
 * machine-readable JSON variant.
 *
 * # Text format (one metric per line, names sorted)
 *
 *   counter <name> <value>
 *   gauge <name> <value>
 *   histogram <name> count <n> sum <s> mean <m> p50 <v> p90 <v> \
 *       p95 <v> p99 <v> max <v>
 *
 * Histogram fields are in the histogram's recorded unit (the serving
 * pipeline records nanoseconds; such names end in "_ns"); mean/pXX/
 * max print with one decimal. Counter values mirrored from
 * serve::ServeStats reconcile exactly on a quiescent engine:
 * requests == text_hits + text_misses == hits + misses (see
 * docs/OBSERVABILITY.md; bench_serve asserts it on every run by
 * parsing its own dump with statszCounter()).
 *
 * # JSON variant
 *
 *   {"counters":{...},"gauges":{...},
 *    "histograms":{"<name>":{"count":...,"sum":...,"mean":...,
 *                            "p50":...,"p90":...,"p95":...,
 *                            "p99":...,"max":...}}}
 *
 * Keys are sorted; names never need escaping (the registry
 * restricts them to [A-Za-z0-9._-]). Both renders are pure
 * functions of the registry's current samples().
 */

#ifndef DIFFTUNE_OBS_EXPORT_HH
#define DIFFTUNE_OBS_EXPORT_HH

#include <optional>
#include <string>

#include "obs/metrics.hh"

namespace difftune::obs
{

/** Render @p registry as the /statsz text dump. */
std::string renderStatsz(
    const MetricRegistry &registry = MetricRegistry::global());

/** Render @p registry as the JSON variant. */
std::string renderStatszJson(
    const MetricRegistry &registry = MetricRegistry::global());

/**
 * Extract a counter's value back out of a renderStatsz() dump —
 * lets gates audit the dump itself rather than the registry behind
 * it (bench_serve's reconciliation check). nullopt when @p name has
 * no counter line in @p dump.
 */
std::optional<uint64_t> statszCounter(const std::string &dump,
                                      const std::string &name);

} // namespace difftune::obs

#endif // DIFFTUNE_OBS_EXPORT_HH
