/**
 * @file
 * Telemetry core implementation: the enabled switch, histogram
 * snapshots, and the metric registry.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "obs/stage_timer.hh"

#if defined(DIFFTUNE_OBS_HAS_TSC)
#include <cpuid.h>
#endif

namespace difftune::obs
{

namespace detail
{

FastClock
calibrateFastClock() noexcept
{
    FastClock clock;
#if defined(DIFFTUNE_OBS_HAS_TSC)
    if (std::getenv("DIFFTUNE_OBS_NO_TSC") != nullptr)
        return clock;
    // Invariant TSC (constant rate across P-states, never stops):
    // CPUID.80000007H:EDX[8]. Without it ticks are not a clock.
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) ||
        (edx & (1u << 8)) == 0)
        return clock;
    // Measure ticks-per-ns against steady_clock over ~1 ms — a
    // window long enough that the two boundary reads' jitter
    // (~100 ns) is below 0.1% of the span. Runs once, on the first
    // instrumented span.
    const uint64_t ns_a = steadyNowNs();
    const uint64_t tsc_a = __rdtsc();
    uint64_t ns_b, tsc_b;
    do {
        ns_b = steadyNowNs();
        tsc_b = __rdtsc();
    } while (ns_b - ns_a < 1000000);
    if (tsc_b <= tsc_a)
        return clock; // not usable as a forward clock here
    clock.nsPerTick = double(ns_b - ns_a) / double(tsc_b - tsc_a);
    clock.tsc0 = tsc_b;
    clock.ns0 = ns_b;
    clock.useTsc = clock.nsPerTick > 0.0;
#endif
    return clock;
}

} // namespace detail

namespace
{

/** -1 unset, 0 disabled, 1 enabled. */
std::atomic<int> enabledState{-1};

int
enabledFromEnv()
{
    const char *off = std::getenv("DIFFTUNE_OBS_OFF");
    const bool disabled =
        off && *off && !(off[0] == '0' && off[1] == '\0');
    return disabled ? 0 : 1;
}

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

bool
enabled()
{
    int state = enabledState.load(std::memory_order_acquire);
    if (state < 0) {
        state = enabledFromEnv();
        // Losing this race is harmless: both writers computed the
        // same value from the same environment.
        enabledState.store(state, std::memory_order_release);
    }
    return state != 0;
}

void
setEnabled(bool on)
{
    enabledState.store(on ? 1 : 0, std::memory_order_release);
}

void
reloadEnabledFromEnv()
{
    enabledState.store(enabledFromEnv(), std::memory_order_release);
}

// ---------------------------------------------------------- histogram

uint64_t
HistogramSnapshot::count() const
{
    uint64_t total = 0;
    for (const uint64_t c : counts)
        total += c;
    return total;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (counts.size() < other.counts.size())
        counts.resize(other.counts.size(), 0);
    for (size_t i = 0; i < other.counts.size(); ++i)
        counts[i] += other.counts[i];
    sum += other.sum;
}

double
HistogramSnapshot::percentile(double p) const
{
    const uint64_t total = count();
    if (total == 0)
        return 0.0;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    // Nearest rank: the smallest sample with cumulative count >=
    // ceil(p * total) (ranks are 1-based; p = 0 means rank 1).
    uint64_t rank = uint64_t(std::ceil(clamped * double(total)));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank)
            return LatencyHistogram::bucketMidpoint(i);
    }
    return 0.0; // unreachable: seen reaches total
}

double
HistogramSnapshot::mean() const
{
    const uint64_t total = count();
    return total == 0 ? 0.0 : double(sum) / double(total);
}

double
HistogramSnapshot::maxEstimate() const
{
    for (size_t i = counts.size(); i-- > 0;)
        if (counts[i] != 0)
            return LatencyHistogram::bucketMidpoint(i);
    return 0.0;
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.counts.resize(kNumBuckets);
    for (size_t i = 0; i < kNumBuckets; ++i)
        snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

// ----------------------------------------------------------- registry

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry registry;
    return registry;
}

MetricRegistry::Slot &
MetricRegistry::slot(const std::string &name, MetricKind kind)
{
    // Caller holds mutex_.
    fatal_if(!validMetricName(name),
             "invalid metric name '{}' (want [A-Za-z0-9._-]+)", name);
    auto [it, fresh] = slots_.try_emplace(name);
    if (!fresh) {
        fatal_if(it->second.kind != kind,
                 "metric '{}' already registered with a different "
                 "kind",
                 name);
        return it->second;
    }
    it->second.kind = kind;
    switch (kind) {
    case MetricKind::kCounter:
        it->second.counter = std::make_unique<Counter>();
        break;
    case MetricKind::kGauge:
        it->second.gauge = std::make_unique<Gauge>();
        break;
    case MetricKind::kHistogram:
        it->second.histogram = std::make_unique<LatencyHistogram>();
        break;
    case MetricKind::kLinkedCounter:
        break; // linkCounter fills in the source
    }
    return it->second;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard lock(mutex_);
    return *slot(name, MetricKind::kCounter).counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard lock(mutex_);
    return *slot(name, MetricKind::kGauge).gauge;
}

LatencyHistogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard lock(mutex_);
    return *slot(name, MetricKind::kHistogram).histogram;
}

void
MetricRegistry::linkCounter(const std::string &name,
                            const std::atomic<uint64_t> *source)
{
    fatal_if(!source, "linkCounter('{}'): null source", name);
    std::lock_guard lock(mutex_);
    fatal_if(slots_.count(name) != 0,
             "metric '{}' already registered (a second engine must "
             "use a distinct metric prefix)",
             name);
    slot(name, MetricKind::kLinkedCounter).linked = source;
}

void
MetricRegistry::unlinkCounters(const std::string &prefix)
{
    std::lock_guard lock(mutex_);
    for (auto it = slots_.begin(); it != slots_.end();) {
        const bool linked =
            it->second.kind == MetricKind::kLinkedCounter;
        if (linked && it->first.rfind(prefix, 0) == 0)
            it = slots_.erase(it);
        else
            ++it;
    }
}

void
MetricRegistry::unlinkCounter(const std::string &name)
{
    std::lock_guard lock(mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end() &&
        it->second.kind == MetricKind::kLinkedCounter)
        slots_.erase(it);
}

std::vector<MetricRegistry::Sample>
MetricRegistry::samples() const
{
    std::vector<Sample> out;
    {
        std::lock_guard lock(mutex_);
        out.reserve(slots_.size());
        for (const auto &[name, slot] : slots_) {
            Sample sample;
            sample.name = name;
            sample.kind = slot.kind;
            switch (slot.kind) {
            case MetricKind::kCounter:
                sample.counterValue = slot.counter->value();
                break;
            case MetricKind::kLinkedCounter:
                sample.counterValue =
                    slot.linked->load(std::memory_order_relaxed);
                break;
            case MetricKind::kGauge:
                sample.gaugeValue = slot.gauge->value();
                break;
            case MetricKind::kHistogram:
                sample.hist = slot.histogram->snapshot();
                break;
            }
            out.push_back(std::move(sample));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Sample &a, const Sample &b) {
                  return a.name < b.name;
              });
    return out;
}

size_t
MetricRegistry::size() const
{
    std::lock_guard lock(mutex_);
    return slots_.size();
}

} // namespace difftune::obs
