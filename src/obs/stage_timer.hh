/**
 * @file
 * RAII stage timers for pipeline instrumentation: one clock read at
 * each stage boundary plus one wait-free histogram record.
 *
 * Both helpers take *pointers* to their histograms and no-op on
 * null, so an instrumented subsystem that sampled obs::enabled() ==
 * false at construction (the DIFFTUNE_OBS_OFF kill switch) pays a
 * single branch per span — no clock read, no record.
 *
 * StageTimer spans one region; StageClock chains consecutive stages
 * so adjacent spans share their boundary clock read (N stages cost
 * N + 1 reads instead of 2N).
 *
 * # The clock
 *
 * nowNs() prefers a calibrated TSC read on x86-64 (~8 ns; the same
 * runtime-dispatch idiom as nn/matvec_dispatch.cc): rdtsc ticks are
 * mapped to steady_clock nanoseconds through a one-time ~1 ms
 * calibration on first use. clock_gettime's vDSO path costs ~30 ns
 * per read on our runners — too much to keep six per-block stage
 * boundaries inside bench_serve's 5% warm-path overhead gate. The
 * fallback (non-x86, no invariant TSC, or DIFFTUNE_OBS_NO_TSC set)
 * is steady_clock. TSC values across *threads* may be skewed by a
 * few ns, so all consumers subtract through elapsedNs(), which
 * clamps negative spans to 0 instead of wrapping. See
 * docs/OBSERVABILITY.md for measured per-span costs.
 */

#ifndef DIFFTUNE_OBS_STAGE_TIMER_HH
#define DIFFTUNE_OBS_STAGE_TIMER_HH

#include <chrono>

#include "obs/metrics.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <x86intrin.h>
#define DIFFTUNE_OBS_HAS_TSC 1
#endif

namespace difftune::obs
{

namespace detail
{

/** Calibration state mapping rdtsc ticks onto steady_clock ns. */
struct FastClock
{
    uint64_t tsc0 = 0;      ///< rdtsc at calibration
    uint64_t ns0 = 0;       ///< steady_clock ns at calibration
    double nsPerTick = 0.0; ///< measured over the ~1 ms window
    bool useTsc = false;    ///< invariant TSC present and allowed
};

/** One-time calibration (metrics.cc); pure fallback off x86-64. */
FastClock calibrateFastClock() noexcept;

/** steady_clock in integer nanoseconds (the fallback clock). */
inline uint64_t
steadyNowNs() noexcept
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count());
}

inline const FastClock &
fastClock() noexcept
{
    static const FastClock clock = calibrateFastClock();
    return clock;
}

} // namespace detail

/** Monotonic now() in integer nanoseconds (see file comment). */
inline uint64_t
nowNs() noexcept
{
#if defined(DIFFTUNE_OBS_HAS_TSC)
    const detail::FastClock &clock = detail::fastClock();
    if (clock.useTsc)
        return clock.ns0 +
               uint64_t(double(__rdtsc() - clock.tsc0) *
                        clock.nsPerTick);
#endif
    return detail::steadyNowNs();
}

/**
 * end - begin, clamped to 0 when the clock appears to run backwards
 * (cross-thread TSC skew) so a span can never wrap to a huge value.
 */
inline uint64_t
elapsedNs(uint64_t begin, uint64_t end) noexcept
{
    return end > begin ? end - begin : 0;
}

/**
 * Records the lifetime of the object into @p hist (nanoseconds).
 * Null @p hist makes construction and destruction no-ops.
 */
class StageTimer
{
  public:
    explicit StageTimer(LatencyHistogram *hist) noexcept
        : hist_(hist), begin_(hist ? nowNs() : 0)
    {
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

    ~StageTimer() { stop(); }

    /** End the span early (idempotent). @return elapsed ns (0 when
     *  disabled or already stopped). */
    uint64_t
    stop() noexcept
    {
        if (!hist_)
            return 0;
        const uint64_t elapsed = elapsedNs(begin_, nowNs());
        hist_->record(elapsed);
        hist_ = nullptr;
        return elapsed;
    }

  private:
    LatencyHistogram *hist_;
    uint64_t begin_;
};

/**
 * Chained stage laps: lap(hist) records the time since the previous
 * lap or restart() and starts the next stage at the same instant.
 * Construction reads no clock — callers MUST restart() before the
 * first lap of each chain (serveBatch restarts per block), which
 * keeps a clock constructed outside the hot loop free. Construct
 * disabled (enabled = false) for a full no-op. Individual null
 * hists skip the record but still advance the clock, keeping later
 * laps attributable.
 */
class StageClock
{
  public:
    explicit StageClock(bool enabled) noexcept : enabled_(enabled) {}

    /** Restart stage attribution at the current instant. */
    void
    restart() noexcept
    {
        if (enabled_)
            last_ = nowNs();
    }

    /** Close the current stage into @p hist; begin the next. */
    void
    lap(LatencyHistogram *hist) noexcept
    {
        if (!enabled_)
            return;
        const uint64_t now = nowNs();
        if (hist)
            hist->record(elapsedNs(last_, now));
        last_ = now;
    }

    bool on() const noexcept { return enabled_; }

  private:
    bool enabled_;
    uint64_t last_ = 0;
};

} // namespace difftune::obs

#endif // DIFFTUNE_OBS_STAGE_TIMER_HH
