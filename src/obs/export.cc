/**
 * @file
 * Implementation of the statsz text and JSON exporters.
 */

#include "obs/export.hh"

#include <cinttypes>
#include <cstdio>

namespace difftune::obs
{

namespace
{

/** One-decimal fixed formatting shared by both renders. */
std::string
fmt1(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

struct HistogramFields
{
    uint64_t count;
    uint64_t sum;
    double mean, p50, p90, p95, p99, max;
};

HistogramFields
fields(const HistogramSnapshot &hist)
{
    HistogramFields f;
    f.count = hist.count();
    f.sum = hist.sum;
    f.mean = hist.mean();
    f.p50 = hist.percentile(0.50);
    f.p90 = hist.percentile(0.90);
    f.p95 = hist.percentile(0.95);
    f.p99 = hist.percentile(0.99);
    f.max = hist.maxEstimate();
    return f;
}

} // namespace

std::string
renderStatsz(const MetricRegistry &registry)
{
    std::string out;
    for (const MetricRegistry::Sample &s : registry.samples()) {
        switch (s.kind) {
        case MetricKind::kCounter:
        case MetricKind::kLinkedCounter:
            out += "counter " + s.name + " " +
                   std::to_string(s.counterValue) + "\n";
            break;
        case MetricKind::kGauge:
            out += "gauge " + s.name + " " +
                   std::to_string(s.gaugeValue) + "\n";
            break;
        case MetricKind::kHistogram: {
            const HistogramFields f = fields(s.hist);
            out += "histogram " + s.name + " count " +
                   std::to_string(f.count) + " sum " +
                   std::to_string(f.sum) + " mean " + fmt1(f.mean) +
                   " p50 " + fmt1(f.p50) + " p90 " + fmt1(f.p90) +
                   " p95 " + fmt1(f.p95) + " p99 " + fmt1(f.p99) +
                   " max " + fmt1(f.max) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string
renderStatszJson(const MetricRegistry &registry)
{
    // samples() is sorted by name, and the three sections are each
    // emitted in that order, so the render is deterministic.
    std::string counters, gauges, histograms;
    for (const MetricRegistry::Sample &s : registry.samples()) {
        switch (s.kind) {
        case MetricKind::kCounter:
        case MetricKind::kLinkedCounter:
            if (!counters.empty())
                counters += ",";
            counters += "\"" + s.name +
                        "\":" + std::to_string(s.counterValue);
            break;
        case MetricKind::kGauge:
            if (!gauges.empty())
                gauges += ",";
            gauges +=
                "\"" + s.name + "\":" + std::to_string(s.gaugeValue);
            break;
        case MetricKind::kHistogram: {
            const HistogramFields f = fields(s.hist);
            if (!histograms.empty())
                histograms += ",";
            histograms += "\"" + s.name + "\":{\"count\":" +
                          std::to_string(f.count) + ",\"sum\":" +
                          std::to_string(f.sum) + ",\"mean\":" +
                          fmt1(f.mean) + ",\"p50\":" + fmt1(f.p50) +
                          ",\"p90\":" + fmt1(f.p90) + ",\"p95\":" +
                          fmt1(f.p95) + ",\"p99\":" + fmt1(f.p99) +
                          ",\"max\":" + fmt1(f.max) + "}";
            break;
        }
        }
    }
    return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
           "},\"histograms\":{" + histograms + "}}";
}

std::optional<uint64_t>
statszCounter(const std::string &dump, const std::string &name)
{
    const std::string needle = "counter " + name + " ";
    size_t at = 0;
    while (at < dump.size()) {
        const size_t hit = dump.find(needle, at);
        if (hit == std::string::npos)
            return std::nullopt;
        // Only accept line-anchored matches (a name that is a
        // suffix of another name cannot alias it: the "counter "
        // keyword must start the line).
        if (hit == 0 || dump[hit - 1] == '\n') {
            uint64_t value = 0;
            const char *text = dump.c_str() + hit + needle.size();
            if (std::sscanf(text, "%" SCNu64, &value) == 1)
                return value;
            return std::nullopt;
        }
        at = hit + 1;
    }
    return std::nullopt;
}

} // namespace difftune::obs
