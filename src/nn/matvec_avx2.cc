/**
 * @file
 * AVX2 forward matvec kernels, bit-identical to the scalar
 * reference.
 *
 * The vectorization is *across rows*: 4 f64 (8 f32) rows share one
 * 256-bit accumulator, one row per lane. Each step loads a square
 * block of the weight matrix, transposes it in registers to column
 * vectors, and accumulates column k against the broadcast x[k] with
 * separate mul and add intrinsics — so every lane performs exactly
 * the scalar kernel's operation sequence: products and sums rounded
 * individually, in k-ascending order, per row. No FMA is used and
 * the file is compiled with -ffp-contract=off, so the compiler
 * cannot fuse a mul+add into one rounding. Remainder columns gather
 * scalars into a vector (same arithmetic); remainder rows run the
 * plain scalar loop (a row's sum does not depend on the blocking).
 *
 * Built only when the compiler accepts -mavx2 (the dispatcher gets
 * a null provider otherwise) and *executed* only after cpuid
 * reports AVX2 (nn/matvec_dispatch.cc).
 */

#include "nn/matvec_dispatch.hh"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace difftune::nn
{

namespace
{

void
avx2F64(const double *w, const double *x, double *out, int rows,
        int cols)
{
    int r = 0;
    for (; r + 4 <= rows; r += 4) {
        const double *w0 = w + size_t(r) * cols;
        const double *w1 = w0 + cols;
        const double *w2 = w1 + cols;
        const double *w3 = w2 + cols;
        __m256d acc = _mm256_setzero_pd();
        int k = 0;
        for (; k + 4 <= cols; k += 4) {
            const __m256d a0 = _mm256_loadu_pd(w0 + k);
            const __m256d a1 = _mm256_loadu_pd(w1 + k);
            const __m256d a2 = _mm256_loadu_pd(w2 + k);
            const __m256d a3 = _mm256_loadu_pd(w3 + k);
            // 4x4 transpose: col[j][lane] = w_lane[k + j].
            const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
            const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
            const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
            const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
            const __m256d c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
            const __m256d c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
            const __m256d c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
            const __m256d c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
            // Separate mul/add per column, columns in k order: each
            // lane rounds exactly like the scalar accumulator.
            acc = _mm256_add_pd(
                acc, _mm256_mul_pd(c0, _mm256_set1_pd(x[k])));
            acc = _mm256_add_pd(
                acc, _mm256_mul_pd(c1, _mm256_set1_pd(x[k + 1])));
            acc = _mm256_add_pd(
                acc, _mm256_mul_pd(c2, _mm256_set1_pd(x[k + 2])));
            acc = _mm256_add_pd(
                acc, _mm256_mul_pd(c3, _mm256_set1_pd(x[k + 3])));
        }
        for (; k < cols; ++k) {
            const __m256d col =
                _mm256_set_pd(w3[k], w2[k], w1[k], w0[k]);
            acc = _mm256_add_pd(
                acc, _mm256_mul_pd(col, _mm256_set1_pd(x[k])));
        }
        _mm256_storeu_pd(out + r, acc);
    }
    for (; r < rows; ++r) {
        const double *wr = w + size_t(r) * cols;
        double sum = 0;
        for (int k = 0; k < cols; ++k)
            sum += wr[k] * x[k];
        out[r] = sum;
    }
}

void
avx2F32(const float *w, const float *x, float *out, int rows,
        int cols)
{
    int r = 0;
    for (; r + 8 <= rows; r += 8) {
        const float *wr[8];
        for (int i = 0; i < 8; ++i)
            wr[i] = w + size_t(r + i) * cols;
        __m256 acc = _mm256_setzero_ps();
        int k = 0;
        for (; k + 8 <= cols; k += 8) {
            const __m256 a0 = _mm256_loadu_ps(wr[0] + k);
            const __m256 a1 = _mm256_loadu_ps(wr[1] + k);
            const __m256 a2 = _mm256_loadu_ps(wr[2] + k);
            const __m256 a3 = _mm256_loadu_ps(wr[3] + k);
            const __m256 a4 = _mm256_loadu_ps(wr[4] + k);
            const __m256 a5 = _mm256_loadu_ps(wr[5] + k);
            const __m256 a6 = _mm256_loadu_ps(wr[6] + k);
            const __m256 a7 = _mm256_loadu_ps(wr[7] + k);
            // 8x8 transpose: col[j][lane] = w_lane[k + j].
            const __m256 t0 = _mm256_unpacklo_ps(a0, a1);
            const __m256 t1 = _mm256_unpackhi_ps(a0, a1);
            const __m256 t2 = _mm256_unpacklo_ps(a2, a3);
            const __m256 t3 = _mm256_unpackhi_ps(a2, a3);
            const __m256 t4 = _mm256_unpacklo_ps(a4, a5);
            const __m256 t5 = _mm256_unpackhi_ps(a4, a5);
            const __m256 t6 = _mm256_unpacklo_ps(a6, a7);
            const __m256 t7 = _mm256_unpackhi_ps(a6, a7);
            const __m256 u0 =
                _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
            const __m256 u1 =
                _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
            const __m256 u2 =
                _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
            const __m256 u3 =
                _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
            const __m256 u4 =
                _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
            const __m256 u5 =
                _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
            const __m256 u6 =
                _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
            const __m256 u7 =
                _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
            const __m256 cols8[8] = {
                _mm256_permute2f128_ps(u0, u4, 0x20),
                _mm256_permute2f128_ps(u1, u5, 0x20),
                _mm256_permute2f128_ps(u2, u6, 0x20),
                _mm256_permute2f128_ps(u3, u7, 0x20),
                _mm256_permute2f128_ps(u0, u4, 0x31),
                _mm256_permute2f128_ps(u1, u5, 0x31),
                _mm256_permute2f128_ps(u2, u6, 0x31),
                _mm256_permute2f128_ps(u3, u7, 0x31),
            };
            for (int j = 0; j < 8; ++j)
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(cols8[j],
                                       _mm256_set1_ps(x[k + j])));
        }
        for (; k < cols; ++k) {
            const __m256 col = _mm256_set_ps(
                wr[7][k], wr[6][k], wr[5][k], wr[4][k], wr[3][k],
                wr[2][k], wr[1][k], wr[0][k]);
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(col, _mm256_set1_ps(x[k])));
        }
        _mm256_storeu_ps(out + r, acc);
    }
    for (; r < rows; ++r) {
        const float *row = w + size_t(r) * cols;
        float sum = 0;
        for (int k = 0; k < cols; ++k)
            sum += row[k] * x[k];
        out[r] = sum;
    }
}

const MatvecKernels avx2Kernels{avx2F64, avx2F32, "avx2"};

} // namespace

const MatvecKernels *
matvecAvx2Kernels()
{
    return &avx2Kernels;
}

} // namespace difftune::nn

#else // !__AVX2__

namespace difftune::nn
{

const MatvecKernels *
matvecAvx2Kernels()
{
    return nullptr;
}

} // namespace difftune::nn

#endif // __AVX2__
