/**
 * @file
 * Batched forward-only execution kernels.
 *
 * Bit-stability contract (kF64): every per-lane expression below
 * replicates graph.cc's fused kernels exactly — each gate
 * pre-activation is (wx_r . x + wh_r . h) + b_r with both dot
 * products accumulated in ascending k order, and the cell update is
 * the per-element chain of lstmStep. Lanes are arithmetically
 * independent, so lockstep batching and the lane-blocked inner loops
 * (independent accumulator chains, k order preserved) cannot change
 * any lane's bits. When touching a kernel, keep the expression
 * associativity exactly as written.
 */

#include "nn/batched.hh"

#include "nn/matvec_inl.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <type_traits>

namespace difftune::nn
{

const char *
precisionName(Precision precision)
{
    return precision == Precision::kF64 ? "f64" : "f32";
}

template <> BatchedForward::Lanes<double> &
BatchedForward::lanes()
{
    return f64_;
}

template <> BatchedForward::Lanes<float> &
BatchedForward::lanes()
{
    return f32_;
}

template <> const BatchedForward::Lanes<double> &
BatchedForward::lanes() const
{
    return f64_;
}

template <> const BatchedForward::Lanes<float> &
BatchedForward::lanes() const
{
    return f32_;
}

template <> const double *
BatchedForward::weight(int index) const
{
    // kF64 reads the ParamSet storage in place (the zero-copy
    // argument from Graph::param: weights are never written during a
    // forward pass).
    return params_[index].data.data();
}

template <> const float *
BatchedForward::weight(int index) const
{
    return snapshot_->weightF32(index);
}

BatchedForward::BatchedForward(
    std::shared_ptr<const WeightSnapshot> snapshot,
    Precision precision)
    : snapshot_(std::move(snapshot)), params_(snapshot_->params()),
      precision_(precision)
{
    // The f32 panels live in the snapshot: the first kF32 bind pays
    // the one-time conversion, every later bind reuses it.
    if (precision_ == Precision::kF32)
        snapshot_->ensureF32();
}

BatchedForward::BatchedForward(const ParamSet &params,
                               Precision precision)
    : BatchedForward(std::make_shared<WeightSnapshot>(params),
                     precision)
{
}

void
BatchedForward::begin(int dim)
{
    panic_if(dim <= 0, "BatchedForward::begin: dim {} <= 0", dim);
    dim_ = dim;
    lanes_.clear();
    rowTab_.clear();
    rowIdx_.clear();
    if (precision_ == Precision::kF64)
        f64_.in.clear();
    else
        f32_.in.clear();
}

int
BatchedForward::addLane(int steps)
{
    panic_if(dim_ == 0, "addLane before begin()");
    panic_if(steps <= 0, "addLane: lane needs >= 1 steps, got {}",
             steps);
    Lane lane;
    lane.len = steps;
    const size_t doubles = size_t(steps) * dim_;
    if (precision_ == Precision::kF64) {
        lane.off = f64_.in.size();
        f64_.in.resize(lane.off + doubles);
    } else {
        lane.off = f32_.in.size();
        f32_.in.resize(lane.off + doubles);
    }
    lane.step0 = int32_t(lane.off / size_t(dim_));
    rowTab_.resize(size_t(lane.step0) + size_t(steps), -1);
    rowIdx_.resize(size_t(lane.step0) + size_t(steps), -1);
    lanes_.push_back(lane);
    return int(lanes_.size()) - 1;
}

void
BatchedForward::setInput(int lane, int step, int offset,
                         const double *x, int n)
{
    panic_if(lane < 0 || size_t(lane) >= lanes_.size(),
             "setInput: lane {} of {}", lane, lanes_.size());
    panic_if(step < 0 || step >= lanes_[size_t(lane)].len,
             "setInput: step {} of {}", step,
             lanes_[size_t(lane)].len);
    panic_if(offset < 0 || offset + n > dim_,
             "setInput: [{}, {}) out of dim {}", offset, offset + n,
             dim_);
    const size_t at =
        lanes_[size_t(lane)].off + size_t(step) * dim_ + offset;
    // A raw write makes the step's value no longer a pure table row.
    rowTab_[size_t(lanes_[size_t(lane)].step0) + size_t(step)] = -1;
    if (precision_ == Precision::kF64) {
        std::copy(x, x + n, f64_.in.begin() + long(at));
    } else {
        for (int i = 0; i < n; ++i)
            f32_.in[at + i] = float(x[i]);
    }
}

void
BatchedForward::setInputParamRow(int lane, int step, int offset,
                                 int table_index, int row)
{
    const Tensor &table = params_[table_index];
    panic_if(row < 0 || row >= table.rows,
             "setInputParamRow: row {} of {}", row, table.rows);
    if (precision_ == Precision::kF64) {
        setInput(lane, step, offset, table.row(row), table.cols);
    } else {
        panic_if(lane < 0 || size_t(lane) >= lanes_.size(),
                 "setInputParamRow: lane {} of {}", lane,
                 lanes_.size());
        panic_if(step < 0 || step >= lanes_[size_t(lane)].len,
                 "setInputParamRow: step {} of {}", step,
                 lanes_[size_t(lane)].len);
        panic_if(offset < 0 || offset + table.cols > dim_,
                 "setInputParamRow: [{}, {}) out of dim {}", offset,
                 offset + table.cols, dim_);
        // Gather from the converted weights — identical bits to
        // converting the double row here (float(double) is a pure
        // function), but no per-use conversion cost.
        const float *src = weight<float>(table_index) +
                           size_t(row) * table.cols;
        const size_t at =
            lanes_[size_t(lane)].off + size_t(step) * dim_ + offset;
        std::copy(src, src + table.cols, f32_.in.begin() + long(at));
    }
    // A step whose whole input is one table row is marked with its
    // provenance so run() can use the precomputed Wx projection of
    // that row (an embedding gather skips its layer-0 input matvec).
    const size_t mark =
        size_t(lanes_[size_t(lane)].step0) + size_t(step);
    if (offset == 0 && table.cols == dim_) {
        rowTab_[mark] = int32_t(table_index);
        rowIdx_[mark] = int32_t(row);
    } else {
        rowTab_[mark] = -1;
    }
}

void
BatchedForward::setInputPrevHidden(int lane, int step, int offset,
                                   int src_lane)
{
    panic_if(lastHidden_ == 0,
             "setInputPrevHidden: no previous run()");
    panic_if(lane < 0 || size_t(lane) >= lanes_.size(),
             "setInputPrevHidden: lane {} of {}", lane, lanes_.size());
    panic_if(step < 0 || step >= lanes_[size_t(lane)].len,
             "setInputPrevHidden: step {} of {}", step,
             lanes_[size_t(lane)].len);
    panic_if(offset < 0 || offset + lastHidden_ > dim_,
             "setInputPrevHidden: [{}, {}) out of dim {}", offset,
             offset + lastHidden_, dim_);
    const size_t at =
        lanes_[size_t(lane)].off + size_t(step) * dim_ + offset;
    rowTab_[size_t(lanes_[size_t(lane)].step0) + size_t(step)] = -1;
    if (precision_ == Precision::kF64) {
        panic_if(src_lane < 0 ||
                     size_t(src_lane + 1) * lastHidden_ >
                         f64_.finalH.size(),
                 "setInputPrevHidden: bad source lane {}", src_lane);
        const double *src =
            f64_.finalH.data() + size_t(src_lane) * lastHidden_;
        std::copy(src, src + lastHidden_, f64_.in.begin() + long(at));
    } else {
        panic_if(src_lane < 0 ||
                     size_t(src_lane + 1) * lastHidden_ >
                         f32_.finalH.size(),
                 "setInputPrevHidden: bad source lane {}", src_lane);
        const float *src =
            f32_.finalH.data() + size_t(src_lane) * lastHidden_;
        std::copy(src, src + lastHidden_, f32_.in.begin() + long(at));
    }
}

namespace
{

/**
 * The gate pre-activations of one lane at one step:
 *
 *     z = (Wx x + Wh h) + b
 *
 * computed exactly as graph.cc's fused lstmStep computes them — two
 * runs of the shared ILP-blocked matvec kernel and one combining
 * pass — so the kF64 batched forward is bit-identical to the
 * sequential engine by construction.
 *
 * The one divergence is an *exact* shortcut: at a lane's first step
 * the incoming hidden state is all zero, so the (4H x H) recurrent
 * matvec is skipped. Its degenerate per-row sum is always +0.0 —
 * the kernel's accumulators start at +0.0 and IEEE-754
 * round-to-nearest gives (+0.0) + (±0.0) = +0.0 for every
 * wh * 0.0 term — so adding a literal +0.0 reproduces the skipped
 * matvec bit for bit at one third fewer multiplies per first step.
 */
/** wxx may alias z (in-place combine), so neither is restrict. */
template <typename T>
inline void
laneGatesCombine(const T *wxx, const T *__restrict wh,
                 const T *__restrict bias, const T *__restrict h,
                 T *z, T *__restrict scratch, int rows, int hidden)
{
    if (h) {
        matvecForwardT(wh, h, scratch, rows, hidden);
        for (int r = 0; r < rows; ++r)
            z[r] = (wxx[r] + scratch[r]) + bias[r];
    } else {
        for (int r = 0; r < rows; ++r)
            z[r] = (wxx[r] + T(0)) + bias[r];
    }
}

template <typename T>
inline void
laneGates(const T *__restrict wx, const T *__restrict wh,
          const T *__restrict bias, const T *__restrict x,
          const T *__restrict h, T *__restrict z,
          T *__restrict scratch, int rows, int in_dim, int hidden)
{
    matvecForwardT(wx, x, z, rows, in_dim);
    laneGatesCombine(z, wh, bias, h, z, scratch, rows, hidden);
}

/**
 * Fast float e^x for the kF32 serving mode: Cephes-style range
 * reduction (x = n ln2 + r with the round-to-nearest magic-number
 * trick, so no floor() call blocks vectorization on baseline SSE2)
 * plus a degree-6 polynomial for e^r, scaled by 2^n through the
 * exponent bits. Pure float mul/add/convert — deterministic, inlines
 * into the cell-update loop and auto-vectorizes. Relative error is
 * ~1 ulp (~1e-7), far inside the serving mode's 1e-5 gate; inputs
 * are clamped to +-87, past which the true sigmoid/tanh saturate
 * anyway.
 *
 * kF64 never touches this: the double path calls libm so it stays
 * bit-identical to the graph engine.
 */
inline float
fastExpF32(float x)
{
    x = std::min(87.0f, std::max(-87.0f, x));
    // Round x/ln2 to the nearest integer without floor(): adding
    // 1.5 * 2^23 forces the mantissa to integer granularity.
    const float t = x * 1.44269504088896341f;
    const float magic = 12582912.0f; // 1.5 * 2^23
    const float fn = (t + magic) - magic;
    // r = x - n ln2 in two steps (hi/lo split of ln2) keeps r exact.
    const float r = (x - fn * 0.693359375f) - fn * -2.12194440e-4f;
    // e^r on [-ln2/2, ln2/2]: Cephes expf polynomial.
    float p = 1.9875691500e-4f;
    p = p * r + 1.3981999507e-3f;
    p = p * r + 8.3334519073e-3f;
    p = p * r + 4.1665795894e-2f;
    p = p * r + 1.6666665459e-1f;
    p = p * r + 5.0000001201e-1f;
    const float er = (p * r) * r + r + 1.0f;
    // 2^n via the exponent field (n is in [-126, 126] after the
    // input clamp).
    const int32_t n = int32_t(fn);
    const float scale =
        std::bit_cast<float>(uint32_t(n + 127) << 23);
    return er * scale;
}

inline float
fastSigmoidF32(float z)
{
    return 1.0f / (1.0f + fastExpF32(-z));
}

inline float
fastTanhF32(float x)
{
    // (u - 1) / (u + 1) with u = e^{2x}: branchless, saturates
    // correctly in both directions under fastExpF32's input clamp.
    const float u = fastExpF32(2.0f * x);
    return (u - 1.0f) / (u + 1.0f);
}

/**
 * The per-element LSTM cell update of one lane, gate order
 * [i f g o]. In double this is the exact expression chain of
 * graph.cc's lstmStep forward (libm exp/tanh included); in float
 * the transcendentals go through the polynomial kernels above —
 * straight-line arithmetic, the dominant cost of the forward pass
 * at serving widths, and a big part of why the f32 mode is
 * accuracy-gated instead of bit-gated.
 */
template <typename T>
inline void
laneCellUpdate(const T *__restrict z, T *__restrict h,
               T *__restrict c, int hidden)
{
    for (int i = 0; i < hidden; ++i) {
        T gi, gf, gg, go;
        if constexpr (std::is_same_v<T, float>) {
            gi = fastSigmoidF32(z[i]);
            gf = fastSigmoidF32(z[hidden + i]);
            gg = fastTanhF32(z[2 * hidden + i]);
            go = fastSigmoidF32(z[3 * hidden + i]);
        } else {
            gi = T(1) / (T(1) + std::exp(-z[i]));
            gf = T(1) / (T(1) + std::exp(-z[hidden + i]));
            gg = std::tanh(z[2 * hidden + i]);
            go = T(1) / (T(1) + std::exp(-z[3 * hidden + i]));
        }
        const T cnew = (gf * c[i]) + (gi * gg);
        T tc;
        if constexpr (std::is_same_v<T, float>)
            tc = fastTanhF32(cnew);
        else
            tc = std::tanh(cnew);
        h[i] = go * tc;
        c[i] = cnew;
    }
}

} // namespace

template <typename T>
void
BatchedForward::runImpl(const LstmStackRef &stack)
{
    Lanes<T> &ws = lanes<T>();
    const int hidden = stack.hidden;
    const int layers = int(stack.layers.size());
    const int count = int(lanes_.size());
    panic_if(stack.inDim != dim_,
             "run: stack expects {}-wide inputs, batch was built "
             "with {}",
             stack.inDim, dim_);
    panic_if(layers == 0 || hidden == 0, "run: empty stack ref");

    lastHidden_ = hidden;
    ws.finalH.resize(size_t(count) * hidden);
    if (count == 0)
        return;

    // Sort lanes by descending length (stable): at step t the lanes
    // still running are the prefix [0, active) of the sorted order —
    // masking by exclusion, which cannot perturb the surviving
    // lanes' numerics.
    order_.resize(size_t(count));
    for (int i = 0; i < count; ++i)
        order_[size_t(i)] = i;
    std::stable_sort(order_.begin(), order_.end(),
                     [this](int a, int b) {
                         return lanes_[size_t(a)].len >
                                lanes_[size_t(b)].len;
                     });

    // Lane-major state: h/c of sorted lane s, layer l, at
    // [l * count + s] * hidden. The zero fill of c is load-bearing:
    // laneCellUpdate reads c at every lane's first step (gf * c[i]),
    // and the sequential engine's initial cell state is exactly
    // zero. h's zero fill is only defensive — the t = 0 shortcut in
    // laneGates never reads the initial hidden state.
    const size_t per_layer = size_t(count) * hidden;
    ws.h.assign(size_t(layers) * per_layer, T(0));
    ws.c.assign(size_t(layers) * per_layer, T(0));
    ws.gates.resize(size_t(8) * hidden); // z (4H) + wh scratch (4H)
    T *z = ws.gates.data();
    T *scratch = z + size_t(4) * hidden;

    const int max_len = lanes_[size_t(order_[0])].len;
    int active = count;
    for (int t = 0; t < max_len; ++t) {
        while (active > 0 &&
               lanes_[size_t(order_[size_t(active) - 1])].len <= t)
            --active;
        // Layer outer, lane inner: one layer's (Wx, Wh) panel is
        // streamed over every active lane back to back — the weight
        // reads stay cache-hot across the whole batch instead of
        // being re-fetched per block as in the sequential engine.
        // Lanes are arithmetically independent, so this order
        // change is invisible to the results.
        for (int l = 0; l < layers; ++l) {
            const LstmLayerRef &layer = stack.layers[size_t(l)];
            const int in_dim = l == 0 ? dim_ : hidden;
            const T *wx = weight<T>(layer.wx);
            const T *wh = weight<T>(layer.wh);
            const T *bias = weight<T>(layer.bias);
            T *hl = ws.h.data() + size_t(l) * per_layer;
            T *cl = ws.c.data() + size_t(l) * per_layer;
            for (int s = 0; s < active; ++s) {
                const Lane &lane =
                    lanes_[size_t(order_[size_t(s)])];
                T *h = hl + size_t(s) * hidden;
                T *c = cl + size_t(s) * hidden;
                const T *prev_h = t == 0 ? nullptr : h;
                const int32_t tab =
                    l == 0 ? rowTab_[size_t(lane.step0) + size_t(t)]
                           : -1;
                if (tab >= 0) {
                    // The step's input is row r of a parameter
                    // table (an embedding gather): its Wx product
                    // is precomputed per vocabulary entry — in the
                    // shared snapshot, once across all sibling
                    // executors — so the whole layer-0 input matvec
                    // is skipped.
                    const T *proj = snapshot_->projTable<T>(
                        layer.wx, tab, 4 * hidden, in_dim);
                    const int32_t row =
                        rowIdx_[size_t(lane.step0) + size_t(t)];
                    laneGatesCombine(proj + size_t(row) * 4 * hidden,
                                     wh, bias, prev_h, z, scratch,
                                     4 * hidden, hidden);
                } else {
                    const T *x =
                        l == 0 ? ws.in.data() + lane.off +
                                     size_t(t) * dim_
                               : h - per_layer; // layer below
                    laneGates(wx, wh, bias, x, prev_h, z, scratch,
                              4 * hidden, in_dim, hidden);
                }
                laneCellUpdate(z, h, c, hidden);
            }
        }
        // Lanes ending at this step hand their top-layer hidden
        // state to finalH, indexed by original lane id.
        const T *top = ws.h.data() + size_t(layers - 1) * per_layer;
        for (int s = 0; s < active; ++s) {
            const int id = order_[size_t(s)];
            if (lanes_[size_t(id)].len != t + 1)
                continue;
            const T *src = top + size_t(s) * hidden;
            std::copy(src, src + hidden,
                      ws.finalH.begin() +
                          long(size_t(id) * hidden));
        }
    }
}

void
BatchedForward::run(const LstmStackRef &stack)
{
    if (precision_ == Precision::kF64)
        runImpl<double>(stack);
    else
        runImpl<float>(stack);
}

template <typename T>
void
BatchedForward::headAllImpl(const LinearRef &head, double *out) const
{
    const Lanes<T> &ws = lanes<T>();
    panic_if(head.outDim != 1,
             "headAll expects a scalar head, got outDim {}",
             head.outDim);
    panic_if(head.inDim != lastHidden_,
             "headAll: head expects {} inputs, last run produced {}",
             head.inDim, lastHidden_);
    const T *w = weight<T>(head.weight);
    const T b = weight<T>(head.bias)[0];
    for (size_t j = 0; j < lanes_.size(); ++j) {
        const T *hj = ws.finalH.data() + j * lastHidden_;
        T sum = 0;
        for (int k = 0; k < lastHidden_; ++k)
            sum += w[k] * hj[k];
        out[j] = double(sum + b);
    }
}

void
BatchedForward::headAll(const LinearRef &head, double *out) const
{
    if (precision_ == Precision::kF64)
        headAllImpl<double>(head, out);
    else
        headAllImpl<float>(head, out);
}

void
BatchedForward::finalHidden(int lane, double *out) const
{
    panic_if(lastHidden_ == 0, "finalHidden before run()");
    panic_if(lane < 0 ||
                 size_t(lane + 1) * lastHidden_ >
                     (precision_ == Precision::kF64
                          ? f64_.finalH.size()
                          : f32_.finalH.size()),
             "finalHidden: bad lane {}", lane);
    if (precision_ == Precision::kF64) {
        const double *src =
            f64_.finalH.data() + size_t(lane) * lastHidden_;
        std::copy(src, src + lastHidden_, out);
    } else {
        const float *src =
            f32_.finalH.data() + size_t(lane) * lastHidden_;
        for (int i = 0; i < lastHidden_; ++i)
            out[i] = double(src[i]);
    }
}

} // namespace difftune::nn
