/**
 * @file
 * Neural-network building blocks: embedding tables, linear layers and
 * stacked LSTMs — the components of the Ithemal architecture
 * (Figure 3 of the paper).
 *
 * Modules register their weights in a caller-provided ParamSet at
 * construction and are stateless afterwards: forward() takes the
 * Graph, the ParamSet and an optional gradient sink, so the same
 * module description can run on many threads concurrently.
 */

#ifndef DIFFTUNE_NN_MODULES_HH
#define DIFFTUNE_NN_MODULES_HH

#include <vector>

#include "nn/batched.hh"
#include "nn/graph.hh"

namespace difftune::nn
{

/** Context threaded through module forward passes. */
struct Ctx
{
    Graph &graph;
    const ParamSet &params;
    Grads *sink = nullptr; ///< null: frozen (inference / phase 4)
    /**
     * Build fused single-node ops (the default). false builds the
     * node-per-op reference composition instead — bit-identical
     * results, many more nodes; used by the equivalence tests and
     * the old-vs-new comparison in bench_micro_nn.
     */
    bool fuse = true;
};

/** Token-embedding lookup table. */
class Embedding
{
  public:
    Embedding(ParamSet &params, int vocab, int dim, Rng &rng);

    /** @return the embedding of @p token as a (dim x 1) vector. */
    Var forward(Ctx &ctx, int token) const;

    int dim() const { return dim_; }

    /** ParamSet index of the (vocab x dim) table (batched gather). */
    int tableIndex() const { return table_; }

  private:
    int table_;
    int dim_;
};

/** Fully connected layer y = W x + b. */
class Linear
{
  public:
    Linear(ParamSet &params, int in, int out, Rng &rng);

    Var forward(Ctx &ctx, Var x) const;

    int outDim() const { return out_; }

    /** Parameter indices for the batched execution mode. */
    LinearRef batchedRef() const
    {
        return LinearRef{weight_, bias_, in_, out_};
    }

  private:
    int weight_;
    int bias_;
    int in_;
    int out_;
};

/** One LSTM layer (Hochreiter & Schmidhuber). */
class LstmCell
{
  public:
    LstmCell(ParamSet &params, int in, int hidden, Rng &rng);

    /** Hidden and cell state pair. */
    struct State
    {
        Var h;
        Var c;
    };

    /** Zero initial state. */
    State initial(Ctx &ctx) const;

    /** One timestep; returns the new state. */
    State step(Ctx &ctx, Var x, const State &state) const;

    int hiddenDim() const { return hidden_; }

    /** Parameter indices for the batched execution mode. */
    LstmLayerRef batchedRef() const
    {
        return LstmLayerRef{wx_, wh_, bias_};
    }

  private:
    int wx_;     ///< (4H x in)
    int wh_;     ///< (4H x H)
    int bias_;   ///< (4H x 1)
    int hidden_;
};

/**
 * A stack of LSTM layers (the paper stacks 4). The input sequence
 * feeds layer 0; each layer's hidden sequence feeds the next.
 */
class LstmStack
{
  public:
    LstmStack(ParamSet &params, int in, int hidden, int layers,
              Rng &rng);

    /**
     * Run the stack over @p sequence and return the final hidden
     * state of the top layer.
     */
    Var runSequence(Ctx &ctx, const std::vector<Var> &sequence) const;

    int hiddenDim() const { return hidden_; }
    int numLayers() const { return int(cells_.size()); }

    /** Parameter indices for the batched execution mode. */
    LstmStackRef batchedRef() const;

  private:
    std::vector<LstmCell> cells_;
    int in_;
    int hidden_;
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_MODULES_HH
