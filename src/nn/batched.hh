/**
 * @file
 * Batched multi-block forward inference: the serving-side execution
 * mode of the nn/ substrate (no tape, shared weight reads, optional
 * single-precision kernels).
 *
 * The autograd Graph executes one block at a time and pays tape
 * construction per node. BatchedForward runs N ragged sequences
 * ("lanes") through an LSTM stack in lockstep with no tape at all:
 * per step, each layer's weight panel streams over every active
 * lane back to back (cache-hot instead of re-fetched per block),
 * and two forward-only shortcuts exploit frozenness:
 *
 *  - first-step skip: a lane's initial hidden state is zero, so the
 *    recurrent matvec at t = 0 collapses to its exact degenerate
 *    result (+0.0 per row — see laneGates in batched.cc);
 *  - input projections: when a step's input is a row of a parameter
 *    table (an embedding gather, via setInputParamRow), the Wx
 *    product of every table row is precomputed once per (weight,
 *    table) pair and the whole layer-0 input matvec is skipped.
 *
 * # Bit-stability contract (double precision)
 *
 * In Precision::kF64 every per-lane arithmetic operation replicates
 * the graph engine's per-element expression shape and k-ascending
 * accumulation order exactly — the matvec kernel is literally the
 * same template (nn/matvec_inl.hh), and both shortcuts above are
 * value-exact — so a batched forward pass is bit-identical to
 * running each lane through its own Graph, regardless of batch
 * size, submission order or the lengths of the other lanes.
 * tests/test_nn_batched.cc and the golden suite lock this in.
 *
 * # Ragged batches and masking
 *
 * Lanes may have different lengths. run() sorts lanes by descending
 * length (stable), so at step t only a contiguous prefix of lanes
 * is still active; finished lanes simply stop being touched —
 * masking by exclusion, which cannot perturb the surviving lanes'
 * numerics. A lane's final hidden state is captured at its own last
 * step.
 *
 * # Single-precision serving (Precision::kF32)
 *
 * An opt-in inference mode for serving: all parameters are
 * converted to float once at construction (i.e. once per checkpoint
 * load), the kernels run in single precision, and the sigmoid/tanh
 * transcendentals — the other dominant cost at serving widths — go
 * through fast polynomial approximations (straight-line float
 * arithmetic, deterministic, auto-vectorizable) instead of libm.
 * Accuracy is gated, not bit-gated: the serving tests require
 * relative error < 1e-5 against the double path on the test corpus.
 * Training never uses this mode.
 *
 * The bound ParamSet must stay frozen for the executor's lifetime
 * (the f32 conversion and the input projections snapshot it). Usage
 * per LSTM level:
 *
 *     bf.begin(in_dim);
 *     int lane = bf.addLane(steps);
 *     bf.setInput(...) / setInputParamRow(...) / setInputPrevHidden(...)
 *     bf.run(stack_ref);          // finalHidden(lane) now valid
 *     ... begin() the next level (may read the previous finalHidden
 *         via setInputPrevHidden) ...
 *     bf.headAll(head_ref, out);  // scalar head over final hiddens
 */

#ifndef DIFFTUNE_NN_BATCHED_HH
#define DIFFTUNE_NN_BATCHED_HH

#include <cstdint>
#include <vector>

#include "nn/graph.hh"

namespace difftune::nn
{

/** Arithmetic precision of a forward-only execution mode. */
enum class Precision : uint8_t
{
    kF64, ///< double; bit-identical to the Graph engine
    kF32, ///< float serving mode; accuracy-gated, not bit-gated
};

/** "f64" / "f32". */
const char *precisionName(Precision precision);

/** Parameter indices of one LSTM layer (all within one ParamSet). */
struct LstmLayerRef
{
    int wx = -1;   ///< (4H x in) input weights
    int wh = -1;   ///< (4H x H) recurrent weights
    int bias = -1; ///< (4H x 1) bias, forget-gate block at [H, 2H)
};

/** Parameter indices of a stacked LSTM, bottom layer first. */
struct LstmStackRef
{
    std::vector<LstmLayerRef> layers;
    int inDim = 0;  ///< layer-0 input width
    int hidden = 0; ///< hidden width (all layers)
};

/** Parameter indices of a linear layer y = W x + b. */
struct LinearRef
{
    int weight = -1; ///< (out x in)
    int bias = -1;   ///< (out x 1)
    int inDim = 0;
    int outDim = 0;
};

/**
 * Forward-only batched executor over one ParamSet (see the file
 * comment for the execution model and the usage protocol). All
 * scratch is recycled across batches, so a long-lived instance (one
 * per serving shard) allocates nothing in steady state.
 */
class BatchedForward
{
  public:
    /**
     * Bind to @p params. kF64 reads the ParamSet storage in place;
     * kF32 converts every parameter to float once, here.
     */
    explicit BatchedForward(const ParamSet &params,
                            Precision precision = Precision::kF64);

    BatchedForward(const BatchedForward &) = delete;
    BatchedForward &operator=(const BatchedForward &) = delete;

    Precision precision() const { return precision_; }

    // ---- Ragged batch assembly

    /**
     * Start assembling a batch of lanes whose per-step inputs are
     * @p dim wide. Previous finalHidden() results stay readable
     * until the next run().
     */
    void begin(int dim);

    /** Add a lane of @p steps >= 1 steps; returns its lane id. */
    int addLane(int steps);

    /**
     * Fill @p n elements of (lane, step)'s input at @p offset from
     * @p x (converted to the working precision on copy).
     */
    void setInput(int lane, int step, int offset, const double *x,
                  int n);

    /**
     * Input slice = row @p row of parameter @p table_index (an
     * embedding gather, read from the precision-converted weights).
     */
    void setInputParamRow(int lane, int step, int offset,
                          int table_index, int row);

    /**
     * Input slice = the previous run()'s final hidden state of
     * @p src_lane (copied in the working precision, no double
     * round trip).
     */
    void setInputPrevHidden(int lane, int step, int offset,
                            int src_lane);

    // ---- Execution

    /**
     * Advance @p stack over the assembled batch in lockstep. Every
     * lane must have been fully filled. Invalidates the previous
     * run's finalHidden values.
     */
    void run(const LstmStackRef &stack);

    /**
     * Scalar head y_lane = W h_final(lane) + b (outDim must be 1)
     * over every lane of the last run(); writes numLanes() doubles.
     */
    void headAll(const LinearRef &head, double *out) const;

    /**
     * Copy the last run()'s final top-layer hidden state of @p lane
     * into @p out (hidden doubles).
     */
    void finalHidden(int lane, double *out) const;

    size_t numLanes() const { return lanes_.size(); }

  private:
    /**
     * Precomputed input projection: row r of @p data is the shared
     * matvec kernel's product of weight @p wx against row r of
     * parameter table @p table — bit-identical to computing it at
     * step time, done once per (wx, table) pair instead of once per
     * lane step.
     */
    template <typename T> struct ProjEntry
    {
        int wx = -1;
        int table = -1;
        int rows = 0; ///< output rows per table row (4H)
        std::vector<T> data;
    };

    /** Per-precision storage; only the active precision's is used. */
    template <typename T> struct Lanes
    {
        std::vector<T> weights;       ///< kF32: converted ParamSet
        std::vector<size_t> offsets;  ///< kF32: per-tensor offsets
        std::vector<T> in;            ///< ragged inputs, lane-major
        std::vector<T> h, c;          ///< layers x lanes x hidden
        std::vector<T> gates;         ///< one lane's z + wh scratch
        std::vector<T> finalH;        ///< lanes x hidden (flat)
        /** Lazy Wx-times-table products (see setInputParamRow). */
        std::vector<ProjEntry<T>> proj;
    };

    struct Lane
    {
        int len = 0;       ///< steps
        size_t off = 0;    ///< offset of step 0 in Lanes::in
        int32_t step0 = 0; ///< off / dim: index into the step marks
    };

    template <typename T> Lanes<T> &lanes();
    template <typename T> const Lanes<T> &lanes() const;

    /** Base pointer of parameter @p index in the working precision. */
    template <typename T> const T *weight(int index) const;

    /**
     * The precomputed projection of every row of parameter table
     * @p table through weight @p wx (lazy; cached per (wx, table)
     * pair for the executor's lifetime — the bound ParamSet is
     * frozen by contract). Each projected row comes from the shared
     * matvec kernel, so using one is bit-identical to running that
     * matvec at step time.
     */
    template <typename T>
    const T *projTable(int wx, int table, int rows, int in_dim);

    template <typename T> void runImpl(const LstmStackRef &stack);
    template <typename T>
    void headAllImpl(const LinearRef &head, double *out) const;

    const ParamSet &params_;
    Precision precision_;

    int dim_ = 0;           ///< input width of the batch being built
    int lastHidden_ = 0;    ///< hidden width of the last run()
    std::vector<Lane> lanes_;
    std::vector<int> order_; ///< lane ids sorted by length descending
    /**
     * Per-step input provenance, indexed lane.step0 + step: the
     * (table, row) a full-width setInputParamRow filled it from, or
     * (-1, -1) for raw inputs. Lets run() use the precomputed
     * Wx-projection of that row instead of a per-step matvec.
     */
    std::vector<int32_t> rowTab_;
    std::vector<int32_t> rowIdx_;

    Lanes<double> f64_;
    Lanes<float> f32_;
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_BATCHED_HH
