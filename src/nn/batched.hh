/**
 * @file
 * Batched multi-block forward inference: the serving-side execution
 * mode of the nn/ substrate (no tape, shared weight reads, optional
 * single-precision kernels).
 *
 * The autograd Graph executes one block at a time and pays tape
 * construction per node. BatchedForward runs N ragged sequences
 * ("lanes") through an LSTM stack in lockstep with no tape at all:
 * per step, each layer's weight panel streams over every active
 * lane back to back (cache-hot instead of re-fetched per block),
 * and two forward-only shortcuts exploit frozenness:
 *
 *  - first-step skip: a lane's initial hidden state is zero, so the
 *    recurrent matvec at t = 0 collapses to its exact degenerate
 *    result (+0.0 per row — see laneGates in batched.cc);
 *  - input projections: when a step's input is a row of a parameter
 *    table (an embedding gather, via setInputParamRow), the Wx
 *    product of every table row is precomputed once per (weight,
 *    table) pair and the whole layer-0 input matvec is skipped.
 *
 * All weight-derived state — the f64 view, the lazily-converted f32
 * panels and the input-projection tables — lives in an immutable
 * nn::WeightSnapshot (see nn/snapshot.hh) that the executor borrows
 * through a shared_ptr. Any number of executors (e.g. the serving
 * engine's shards) bind one snapshot and share a single copy; an
 * executor only owns its per-batch lane scratch.
 *
 * # Bit-stability contract (double precision)
 *
 * In Precision::kF64 every per-lane arithmetic operation replicates
 * the graph engine's per-element expression shape and k-ascending
 * accumulation order exactly — the matvec kernel is literally the
 * same template (nn/matvec_inl.hh), and both shortcuts above are
 * value-exact — so a batched forward pass is bit-identical to
 * running each lane through its own Graph, regardless of batch
 * size, submission order or the lengths of the other lanes.
 * tests/test_nn_batched.cc and the golden suite lock this in.
 *
 * # Ragged batches and masking
 *
 * Lanes may have different lengths. run() sorts lanes by descending
 * length (stable), so at step t only a contiguous prefix of lanes
 * is still active; finished lanes simply stop being touched —
 * masking by exclusion, which cannot perturb the surviving lanes'
 * numerics. A lane's final hidden state is captured at its own last
 * step.
 *
 * # Single-precision serving (Precision::kF32)
 *
 * An opt-in inference mode for serving: all parameters are
 * converted to float once per *snapshot* (the first kF32 executor
 * bind triggers it; later binds reuse the shared panels), the
 * kernels run in single precision, and the sigmoid/tanh
 * transcendentals — the other dominant cost at serving widths — go
 * through fast polynomial approximations (straight-line float
 * arithmetic, deterministic, auto-vectorizable) instead of libm.
 * Accuracy is gated, not bit-gated: the serving tests require
 * relative error < 1e-5 against the double path on the test corpus.
 * Training never uses this mode.
 *
 * The bound ParamSet must stay frozen for the executor's lifetime
 * (the f32 conversion and the input projections snapshot it). Usage
 * per LSTM level:
 *
 *     bf.begin(in_dim);
 *     int lane = bf.addLane(steps);
 *     bf.setInput(...) / setInputParamRow(...) / setInputPrevHidden(...)
 *     bf.run(stack_ref);          // finalHidden(lane) now valid
 *     ... begin() the next level (may read the previous finalHidden
 *         via setInputPrevHidden) ...
 *     bf.headAll(head_ref, out);  // scalar head over final hiddens
 */

#ifndef DIFFTUNE_NN_BATCHED_HH
#define DIFFTUNE_NN_BATCHED_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/snapshot.hh"

namespace difftune::nn
{

/** Arithmetic precision of a forward-only execution mode. */
enum class Precision : uint8_t
{
    kF64, ///< double; bit-identical to the Graph engine
    kF32, ///< float serving mode; accuracy-gated, not bit-gated
};

/** "f64" / "f32". */
const char *precisionName(Precision precision);

/** Parameter indices of one LSTM layer (all within one ParamSet). */
struct LstmLayerRef
{
    int wx = -1;   ///< (4H x in) input weights
    int wh = -1;   ///< (4H x H) recurrent weights
    int bias = -1; ///< (4H x 1) bias, forget-gate block at [H, 2H)
};

/** Parameter indices of a stacked LSTM, bottom layer first. */
struct LstmStackRef
{
    std::vector<LstmLayerRef> layers;
    int inDim = 0;  ///< layer-0 input width
    int hidden = 0; ///< hidden width (all layers)
};

/** Parameter indices of a linear layer y = W x + b. */
struct LinearRef
{
    int weight = -1; ///< (out x in)
    int bias = -1;   ///< (out x 1)
    int inDim = 0;
    int outDim = 0;
};

/**
 * Forward-only batched executor over one ParamSet (see the file
 * comment for the execution model and the usage protocol). All
 * scratch is recycled across batches, so a long-lived instance (one
 * per serving shard) allocates nothing in steady state.
 */
class BatchedForward
{
  public:
    /**
     * Borrow @p snapshot (shared with any number of sibling
     * executors). kF64 reads the snapshot's ParamSet storage in
     * place; kF32 triggers the snapshot's one-time f32 conversion
     * (a no-op if a sibling already did).
     */
    explicit BatchedForward(
        std::shared_ptr<const WeightSnapshot> snapshot,
        Precision precision = Precision::kF64);

    /**
     * Convenience: bind to @p params through a private snapshot
     * (for standalone users — tests, benches). @p params must
     * outlive the executor; nothing is shared.
     */
    explicit BatchedForward(const ParamSet &params,
                            Precision precision = Precision::kF64);

    BatchedForward(const BatchedForward &) = delete;
    BatchedForward &operator=(const BatchedForward &) = delete;

    Precision precision() const { return precision_; }

    const WeightSnapshot &snapshot() const { return *snapshot_; }

    const std::shared_ptr<const WeightSnapshot> &
    snapshotPtr() const
    {
        return snapshot_;
    }

    // ---- Ragged batch assembly

    /**
     * Start assembling a batch of lanes whose per-step inputs are
     * @p dim wide. Previous finalHidden() results stay readable
     * until the next run().
     */
    void begin(int dim);

    /** Add a lane of @p steps >= 1 steps; returns its lane id. */
    int addLane(int steps);

    /**
     * Fill @p n elements of (lane, step)'s input at @p offset from
     * @p x (converted to the working precision on copy).
     */
    void setInput(int lane, int step, int offset, const double *x,
                  int n);

    /**
     * Input slice = row @p row of parameter @p table_index (an
     * embedding gather, read from the precision-converted weights).
     */
    void setInputParamRow(int lane, int step, int offset,
                          int table_index, int row);

    /**
     * Input slice = the previous run()'s final hidden state of
     * @p src_lane (copied in the working precision, no double
     * round trip).
     */
    void setInputPrevHidden(int lane, int step, int offset,
                            int src_lane);

    // ---- Execution

    /**
     * Advance @p stack over the assembled batch in lockstep. Every
     * lane must have been fully filled. Invalidates the previous
     * run's finalHidden values.
     */
    void run(const LstmStackRef &stack);

    /**
     * Scalar head y_lane = W h_final(lane) + b (outDim must be 1)
     * over every lane of the last run(); writes numLanes() doubles.
     */
    void headAll(const LinearRef &head, double *out) const;

    /**
     * Copy the last run()'s final top-layer hidden state of @p lane
     * into @p out (hidden doubles).
     */
    void finalHidden(int lane, double *out) const;

    size_t numLanes() const { return lanes_.size(); }

  private:
    /** Per-precision scratch; only the active precision's is used. */
    template <typename T> struct Lanes
    {
        std::vector<T> in;     ///< ragged inputs, lane-major
        std::vector<T> h, c;   ///< layers x lanes x hidden
        std::vector<T> gates;  ///< one lane's z + wh scratch
        std::vector<T> finalH; ///< lanes x hidden (flat)
    };

    struct Lane
    {
        int len = 0;       ///< steps
        size_t off = 0;    ///< offset of step 0 in Lanes::in
        int32_t step0 = 0; ///< off / dim: index into the step marks
    };

    template <typename T> Lanes<T> &lanes();
    template <typename T> const Lanes<T> &lanes() const;

    /** Base pointer of parameter @p index in the working precision. */
    template <typename T> const T *weight(int index) const;

    template <typename T> void runImpl(const LstmStackRef &stack);
    template <typename T>
    void headAllImpl(const LinearRef &head, double *out) const;

    std::shared_ptr<const WeightSnapshot> snapshot_;
    const ParamSet &params_; ///< snapshot_->params(), cached
    Precision precision_;

    int dim_ = 0;           ///< input width of the batch being built
    int lastHidden_ = 0;    ///< hidden width of the last run()
    std::vector<Lane> lanes_;
    std::vector<int> order_; ///< lane ids sorted by length descending
    /**
     * Per-step input provenance, indexed lane.step0 + step: the
     * (table, row) a full-width setInputParamRow filled it from, or
     * (-1, -1) for raw inputs. Lets run() use the precomputed
     * Wx-projection of that row instead of a per-step matvec.
     */
    std::vector<int32_t> rowTab_;
    std::vector<int32_t> rowIdx_;

    Lanes<double> f64_;
    Lanes<float> f32_;
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_BATCHED_HH
