/**
 * @file
 * Frozen copies of the pre-rewrite (PR 1) autograd matvec kernels.
 *
 * These are the naive single-accumulator loops the engine shipped
 * before the fused/arena rewrite, kept in their own translation unit
 * at the default Release optimization level (no -O3 vectorization)
 * so they stay representative of the old engine's per-sample cost.
 * Graph::setReferenceKernels(true) routes the primitive matmul
 * through them; bench_micro_nn's old-vs-new floor uses that mode as
 * the "old" side of the comparison. They compute bit-identical
 * results to the optimized kernels (same per-element order), which
 * tests/test_nn_gradcheck.cc asserts.
 */

#ifndef DIFFTUNE_NN_REF_KERNELS_HH
#define DIFFTUNE_NN_REF_KERNELS_HH

namespace difftune::nn
{

/** out = W x (naive single-accumulator rows loop). */
void refMatvecForward(const double *w, const double *x, double *out,
                      int rows, int cols);

/**
 * dW[i,:] += dz_i * x^T (if @p wgrad) and dx += W^T dz (if
 * @p xgrad), rows ascending, dz_i == 0 rows skipped.
 */
void refMatvecBackward(const double *w, double *wgrad,
                       const double *x, double *xgrad, int rows,
                       int cols, const double *dz);

} // namespace difftune::nn

#endif // DIFFTUNE_NN_REF_KERNELS_HH
