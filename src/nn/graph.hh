/**
 * @file
 * Tape-based reverse-mode automatic differentiation.
 *
 * A Graph is a single-use tape: forward ops append nodes, backward()
 * walks the tape in reverse. Model weights live outside the graph in
 * ParamSets; gradients are accumulated into a Grads buffer aligned
 * with the ParamSet, which makes data-parallel training a matter of
 * giving each thread its own Graph + Grads and summing afterwards.
 *
 * Two ParamSets can feed one graph — e.g. the frozen surrogate
 * weights (no gradient accumulation, but gradients still flow
 * *through* them) and the trainable parameter table (DiffTune's
 * phase 4).
 */

#ifndef DIFFTUNE_NN_GRAPH_HH
#define DIFFTUNE_NN_GRAPH_HH

#include <functional>
#include <vector>

#include "nn/tensor.hh"

namespace difftune::nn
{

/** A set of persistent parameters (model weights). */
class ParamSet
{
  public:
    /** Register a parameter; returns its index. */
    int
    add(int rows, int cols)
    {
        params_.emplace_back(rows, cols);
        return int(params_.size()) - 1;
    }

    Tensor &operator[](int i) { return params_[size_t(i)]; }
    const Tensor &operator[](int i) const { return params_[size_t(i)]; }

    size_t count() const { return params_.size(); }

    /** Total scalar parameter count. */
    size_t scalarCount() const;

    /** Serialize all tensors (text, round-trips with load()). */
    std::string save() const;
    /** Load values saved by save(); shapes must match. */
    void load(const std::string &text);

  private:
    std::vector<Tensor> params_;
};

/** Per-parameter gradient buffers aligned with a ParamSet. */
class Grads
{
  public:
    explicit Grads(const ParamSet &params);

    Tensor &operator[](int i) { return grads_[size_t(i)]; }
    const Tensor &operator[](int i) const { return grads_[size_t(i)]; }

    size_t count() const { return grads_.size(); }

    void zero();

    /** this += other (elementwise over every tensor). */
    void addFrom(const Grads &other);

    /** Multiply every gradient by @p factor. */
    void scale(double factor);

    /** Global L2 norm across all gradients. */
    double l2Norm() const;

    /** Scale down so the global L2 norm is at most @p max_norm. */
    void clipL2(double max_norm);

  private:
    std::vector<Tensor> grads_;
};

/** Handle to a node in a Graph's tape. */
struct Var
{
    int32_t id = -1;

    bool valid() const { return id >= 0; }
};

/** Single-use reverse-mode tape. */
class Graph
{
  public:
    Graph() = default;

    /** Reset the tape for reuse (keeps capacity). */
    void clear();

    /**
     * Number of distinct parameter leaves materialized (parameter
     * nodes are cached per graph, so repeated uses of one weight —
     * e.g. an LSTM cell stepped over a sequence — share one node and
     * one value copy).
     */
    size_t numCachedParams() const { return paramCache_.size(); }

    // ---- Leaves

    /** Constant input (no gradient). */
    Var input(Tensor value);

    /** Constant scalar column-vector input of size 1. */
    Var inputScalar(double value);

    /**
     * Parameter leaf. If @p sink is non-null, backward() accumulates
     * the parameter's gradient into (*sink)[index]; a null sink means
     * the parameter is frozen (gradients still flow through uses).
     */
    Var param(const ParamSet &params, int index, Grads *sink);

    /**
     * One row of a parameter as a column vector (embedding lookup /
     * parameter-table gather).
     */
    Var paramRow(const ParamSet &params, int index, int row,
                 Grads *sink);

    // ---- Ops (all shapes are checked)

    Var matmul(Var a, Var b);       ///< (m x k) * (k x n)
    Var add(Var a, Var b);          ///< elementwise
    Var sub(Var a, Var b);          ///< elementwise
    Var mul(Var a, Var b);          ///< elementwise (Hadamard)
    Var scale(Var a, double c);     ///< a * c
    Var scaleByVec(Var a, std::vector<double> factors); ///< per-element
    Var sigmoid(Var a);
    Var tanh(Var a);
    Var relu(Var a);
    Var abs(Var a);
    Var exp(Var a); ///< elementwise e^x (clamped at x = 30 for safety)
    Var slice(Var a, int row0, int nrows); ///< rows of a column vector
    Var concat(const std::vector<Var> &parts); ///< stack column vectors

    // ---- Losses (scalar outputs; target is a constant)

    /** |pred - target| / max(target, floor): the paper's MAPE term. */
    Var lossMape(Var pred, double target, double floor = 1e-3);
    /** |pred - target|. */
    Var lossMae(Var pred, double target);
    /** (pred - target)^2. */
    Var lossMse(Var pred, double target);

    // ---- Access

    const Tensor &value(Var v) const { return nodes_[v.id].value; }
    const Tensor &grad(Var v) const { return nodes_[v.id].grad; }

    /** Scalar value of a 1x1 node. */
    double scalarValue(Var v) const { return value(v).data[0]; }

    /**
     * Reverse pass from @p loss (must be 1x1). Seeds d(loss)/d(loss)
     * = @p seed and accumulates into parameter sinks.
     */
    void backward(Var loss, double seed = 1.0);

    size_t numNodes() const { return nodes_.size(); }

  private:
    struct Node
    {
        Tensor value;
        Tensor grad;
        bool requiresGrad = false;
        /** Reverse-propagate this node's grad to its inputs. */
        std::function<void(Graph &, Node &)> backward;
    };

    Node &node(Var v) { return nodes_[v.id]; }

    Var makeNode(Tensor value, bool requires_grad,
                 std::function<void(Graph &, Node &)> backward);

    /** Ensure the grad tensor of @p v is allocated. */
    Tensor &gradRef(Var v);

    std::vector<Node> nodes_;
    /** (param-set address ^ index ^ row) -> node cache. */
    std::vector<std::pair<uint64_t, Var>> paramCache_;

    friend struct GraphTestPeer;
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_GRAPH_HH
