/**
 * @file
 * Tape-based reverse-mode automatic differentiation.
 *
 * A Graph is a reusable tape: forward ops append nodes, backward()
 * walks the tape in reverse. Model weights live outside the graph in
 * ParamSets; gradients are accumulated into a Grads buffer aligned
 * with the ParamSet, which makes data-parallel training a matter of
 * giving each thread its own Graph + Grads and summing afterwards.
 *
 * Two ParamSets can feed one graph — e.g. the frozen surrogate
 * weights (no gradient accumulation, but gradients still flow
 * *through* them) and the trainable parameter table (DiffTune's
 * phase 4).
 *
 * # Tape / arena lifecycle
 *
 * Nodes are plain structs in one contiguous vector; every value,
 * gradient and fused-op scratch buffer is bump-allocated from
 * pointer-stable slab arenas (DoubleArena). clear() is a high-water
 * mark reset: it drops the tape but keeps every slab and every
 * vector's capacity, so a Graph that is cleared and rebuilt with the
 * same shapes (the trainer's per-shard reuse, the serving engine's
 * per-shard graphs) performs **zero** heap allocation in steady
 * state, and each node's buffers land at the same addresses each
 * iteration — the per-node gradient buffers are effectively cached
 * across minibatch iterations. The tape order *is* the topological
 * order, so backward() is a single reverse sweep with a switch per
 * node; there is no std::function indirection and nothing to
 * re-derive per iteration.
 *
 * backward() zeroes all gradient buffers itself (one memset per
 * arena slab), so each backward() call computes gradients of the
 * current tape from scratch; parameter gradients still *accumulate*
 * into the caller's Grads sinks.
 *
 * # Fused ops
 *
 * The dominant multi-node patterns have single-node fused forms with
 * hand-written backward kernels:
 *
 *   linear()          act(W x + b)      replaces matmul+add(+act)
 *   lstmStep()        one LSTM cell     replaces ~16 nodes
 *   scaledSoftClamp() cap*tanh(s|x|/cap)  replaces abs+scaleByVec+
 *                                         scale+tanh+scale
 *
 * dot() is a fused a^T b reduction in the same style; today its
 * consumers are the gradcheck probes (and any future scalar heads),
 * not a hot path.
 *
 * Every fused kernel replicates the reference composition's
 * per-element operation order exactly, so fused and unfused graphs
 * produce bit-identical values and parameter updates (locked in by
 * tests/test_nn_gradcheck.cc equivalence tests and the golden files
 * under tests/golden/). To add an op: add an Op tag, a builder that
 * fills a Node, a backward case, a gradcheck in
 * tests/test_nn_gradcheck.cc, and — if it replaces a primitive
 * composition — a bit-exactness test against that composition.
 */

#ifndef DIFFTUNE_NN_GRAPH_HH
#define DIFFTUNE_NN_GRAPH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hh"

namespace difftune::nn
{

/** A set of persistent parameters (model weights). */
class ParamSet
{
  public:
    /** Register a parameter; returns its index. */
    int
    add(int rows, int cols)
    {
        params_.emplace_back(rows, cols);
        return int(params_.size()) - 1;
    }

    Tensor &operator[](int i) { return params_[size_t(i)]; }
    const Tensor &operator[](int i) const { return params_[size_t(i)]; }

    size_t count() const { return params_.size(); }

    /** Total scalar parameter count. */
    size_t scalarCount() const;

    /** Serialize all tensors (text, round-trips with load()). */
    std::string save() const;
    /** Load values saved by save(); version and shapes must match. */
    void load(const std::string &text);

  private:
    std::vector<Tensor> params_;
};

/** Per-parameter gradient buffers aligned with a ParamSet. */
class Grads
{
  public:
    explicit Grads(const ParamSet &params);

    Tensor &operator[](int i) { return grads_[size_t(i)]; }
    const Tensor &operator[](int i) const { return grads_[size_t(i)]; }

    size_t count() const { return grads_.size(); }

    void zero();

    /** this += other (elementwise over every tensor). */
    void addFrom(const Grads &other);

    /** Multiply every gradient by @p factor. */
    void scale(double factor);

    /** Global L2 norm across all gradients. */
    double l2Norm() const;

    /** Scale down so the global L2 norm is at most @p max_norm. */
    void clipL2(double max_norm);

  private:
    std::vector<Tensor> grads_;
};

/** Handle to a node in a Graph's tape. */
struct Var
{
    int32_t id = -1;

    bool valid() const { return id >= 0; }
};

/** Elementwise activation selector for fused ops. */
enum class Act : uint8_t
{
    None,
    Sigmoid,
    Tanh,
    Relu,
};

/**
 * Non-owning view of a node's value or gradient. Valid until the
 * owning Graph is cleared or destroyed.
 */
struct TensorView
{
    int rows = 0;
    int cols = 0;
    const double *data = nullptr;

    size_t size() const { return size_t(rows) * size_t(cols); }

    double
    at(int r, int c) const
    {
        return data[size_t(r) * cols + c];
    }

    /** Pointer to row @p r. */
    const double *row(int r) const { return data + size_t(r) * cols; }
};

/**
 * Bump allocator for double buffers: pointer-stable slabs with a
 * high-water-mark reset. reset() keeps every slab, so identical
 * allocation sequences reuse identical addresses with no heap
 * traffic.
 */
class DoubleArena
{
  public:
    /** Allocate @p n doubles (uninitialized). Stable address. */
    double *alloc(size_t n);

    /** High-water-mark reset: drop all allocations, keep slabs. */
    void reset();

    /** memset every double handed out since the last reset() to 0. */
    void zeroUsed();

    /** Doubles handed out since the last reset(). */
    size_t usedDoubles() const { return used_; }

  private:
    /** First slab: 1 k doubles = 8 KB. */
    static constexpr size_t firstSlabDoubles = size_t(1) << 10;
    /** Slab size cap: 256 k doubles = 2 MB. */
    static constexpr size_t maxSlabDoubles = size_t(1) << 18;

    struct Slab
    {
        std::unique_ptr<double[]> data;
        size_t cap = 0;
        size_t used = 0;
    };

    std::vector<Slab> slabs_;
    size_t cur_ = 0;  ///< slab currently allocated from
    size_t used_ = 0; ///< total doubles since reset()
};

/** Reusable reverse-mode tape (see file comment for the lifecycle). */
class Graph
{
  public:
    Graph() = default;
    Graph(const Graph &) = delete;
    Graph &operator=(const Graph &) = delete;

    /** Reset the tape for reuse (keeps slabs and capacity). */
    void clear();

    /**
     * Number of distinct parameter leaves materialized (parameter
     * nodes are cached per graph, so repeated uses of one weight —
     * e.g. an LSTM cell stepped over a sequence — share one node and
     * one value copy).
     */
    size_t numCachedParams() const { return paramCache_.size(); }

    // ---- Leaves

    /** Constant input (no gradient); the value is copied in. */
    Var input(const Tensor &value);

    /** Constant scalar column-vector input of size 1. */
    Var inputScalar(double value);

    /** Constant all-zero (rows x cols) input. */
    Var zeros(int rows, int cols);

    /**
     * Parameter leaf. If @p sink is non-null, backward() accumulates
     * the parameter's gradient into (*sink)[index]; a null sink means
     * the parameter is frozen (gradients still flow through uses).
     */
    Var param(const ParamSet &params, int index, Grads *sink);

    /**
     * One row of a parameter as a column vector (embedding lookup /
     * parameter-table gather).
     */
    Var paramRow(const ParamSet &params, int index, int row,
                 Grads *sink);

    // ---- Primitive ops (all shapes are checked)

    Var matmul(Var a, Var b);   ///< (m x k) * (k x n)
    Var add(Var a, Var b);      ///< elementwise
    Var sub(Var a, Var b);      ///< elementwise
    Var mul(Var a, Var b);      ///< elementwise (Hadamard)
    Var scale(Var a, double c); ///< a * c
    Var scaleByVec(Var a, const std::vector<double> &factors);
    Var sigmoid(Var a);
    Var tanh(Var a);
    Var relu(Var a);
    Var abs(Var a);
    Var exp(Var a); ///< elementwise e^x (clamped at x = 30 for safety)
    Var slice(Var a, int row0, int nrows); ///< rows of a column vector
    Var concat(const std::vector<Var> &parts); ///< stack column vectors

    // ---- Fused ops (bit-identical to their primitive compositions)

    /** act(W x + b): fused matmul + bias + activation. */
    Var linear(Var w, Var x, Var b, Act act = Act::None);

    /** Hidden and cell state of one fused LSTM step. */
    struct LstmState
    {
        Var h;
        Var c;
    };

    /**
     * One fused LSTM cell step (gate order [i f g o], forget-gate
     * layout as in modules.cc). One node replaces the ~16-node
     * primitive composition.
     */
    LstmState lstmStep(Var wx, Var wh, Var bias, Var x, Var h, Var c);

    /** Fused dot-product reduction a^T b for column vectors (1x1). */
    Var dot(Var a, Var b);

    /**
     * cap * tanh(scales_i * |a_i| / cap): the parameter-table input
     * soft clamp, fused from abs + scaleByVec + scale + tanh + scale.
     */
    Var scaledSoftClamp(Var a, const std::vector<double> &scales,
                        double cap);

    // ---- Losses (scalar outputs; target is a constant)

    /** |pred - target| / max(target, floor): the paper's MAPE term. */
    Var lossMape(Var pred, double target, double floor = 1e-3);
    /** |pred - target|. */
    Var lossMae(Var pred, double target);
    /** (pred - target)^2. */
    Var lossMse(Var pred, double target);

    // ---- Access

    TensorView value(Var v) const;
    TensorView grad(Var v) const;

    /** Scalar value of a 1x1 node. */
    double scalarValue(Var v) const;

    /**
     * Reverse pass from @p loss (must be 1x1). Zeroes all node
     * gradients, seeds d(loss)/d(loss) = @p seed and accumulates
     * into parameter sinks.
     */
    void backward(Var loss, double seed = 1.0);

    size_t numNodes() const { return nodes_.size(); }

    /**
     * Route the primitive matmul's matrix-vector paths through the
     * frozen pre-rewrite kernels (nn/ref_kernels.cc). Bit-identical
     * results, pre-rewrite speed — the "old" side of
     * bench_micro_nn's old-vs-new floor. Off by default.
     */
    void setReferenceKernels(bool on) { refKernels_ = on; }

    /** Doubles currently allocated across both arenas (stats). */
    size_t
    arenaDoubles() const
    {
        return varena_.usedDoubles() + garena_.usedDoubles();
    }

  private:
    enum class Op : uint8_t
    {
        Input,
        Param,
        ParamRow,
        Matmul,
        Add,
        Sub,
        Mul,
        Scale,
        ScaleVec,
        Sigmoid,
        Tanh,
        Relu,
        Abs,
        Exp,
        Slice,
        Concat,
        Linear,
        LstmCell,
        Dot,
        SoftClamp,
        LossMape,
        LossMae,
        LossMse,
    };

    /**
     * One tape entry. Trivially destructible: all buffers live in
     * the arenas, operand lists in extraVars_, op constants in
     * extraData_.
     */
    struct Node
    {
        Op op = Op::Input;
        Act act = Act::None;
        bool requiresGrad = false;
        /** Gradient seeded during the current backward() sweep. */
        bool gradLive = false;
        int rows = 0;
        int cols = 0;
        double *val = nullptr;  ///< value, varena_ (Slice: aliased)
        double *grad = nullptr; ///< gradient, garena_ (if needed)
        double *aux = nullptr;  ///< fused-op saved state / scratch
        int32_t a = -1, b = -1, c = -1; ///< operand node ids
        int32_t extra = -1; ///< offset into extraVars_ / extraData_
        int32_t i0 = 0, i1 = 0; ///< small int payload
        double c0 = 0.0, c1 = 0.0; ///< small double payload
        Grads *sink = nullptr; ///< Param/ParamRow gradient sink
    };

    Node &node(Var v) { return nodes_[size_t(v.id)]; }
    const Node &node(Var v) const { return nodes_[size_t(v.id)]; }

    /**
     * Append a node with a (rows x cols) value buffer and optional
     * aux space; allocates a gradient buffer iff @p requires_grad.
     */
    Var pushNode(Op op, int rows, int cols, bool requires_grad,
                 size_t aux_doubles = 0);

    /** pushNode without a value allocation (Slice aliases). */
    Var pushAliasNode(Op op, int rows, int cols, bool requires_grad,
                      double *val);

    Var unaryElementwise(Op op, Var a);
    Var lossNode(Op op, Var pred, double target, double value,
                 double denom);

    void backwardNode(Node &n);

    std::vector<Node> nodes_;
    /** (param-set address ^ index ^ row) -> node cache. */
    std::vector<std::pair<uint64_t, Var>> paramCache_;
    /** Operand-id overflow lists (Concat parts, LstmCell inputs). */
    std::vector<int32_t> extraVars_;
    /** Per-op constant vectors (scaleByVec / soft-clamp scales). */
    std::vector<double> extraData_;
    DoubleArena varena_; ///< values + fused-op aux
    DoubleArena garena_; ///< gradients (zeroed per backward())
    bool refKernels_ = false; ///< see setReferenceKernels()
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_GRAPH_HH
