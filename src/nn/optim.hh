/**
 * @file
 * First-order stochastic optimizers: SGD (Robbins & Monro) and Adam
 * (Kingma & Ba) — the paper trains both the surrogate and the
 * parameter table with Adam.
 */

#ifndef DIFFTUNE_NN_OPTIM_HH
#define DIFFTUNE_NN_OPTIM_HH

#include "nn/graph.hh"

namespace difftune::nn
{

/** Optimizer interface over a ParamSet + averaged Grads. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update using @p grads; does not zero the grads. */
    virtual void step(ParamSet &params, const Grads &grads) = 0;
};

/** Plain stochastic gradient descent. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(double lr) : lr_(lr) {}

    void step(ParamSet &params, const Grads &grads) override;

  private:
    double lr_;
};

/** Adam with bias correction. */
class Adam : public Optimizer
{
  public:
    explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
    {
    }

    void step(ParamSet &params, const Grads &grads) override;

    long stepCount() const { return steps_; }

    /** Adjust the learning rate (for decay schedules). */
    void setLr(double lr) { lr_ = lr; }
    double lr() const { return lr_; }

  private:
    double lr_, beta1_, beta2_, eps_;
    long steps_ = 0;
    std::vector<Tensor> m_, v_;
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_OPTIM_HH
