/**
 * @file
 * The matrix-vector kernel shared by the autograd engine
 * (nn/graph.cc), the batched forward executor (nn/batched.cc) and
 * the snapshot projection tables (nn/snapshot.cc).
 *
 * Internal header: include only from nn/ translation units. Every
 * engine must run the *same* kernel so their results are
 * bit-identical by construction — matvecForwardT routes through the
 * one runtime dispatch point (nn/matvec_dispatch.hh), which selects
 * the scalar or the AVX2 implementation once per process. Both
 * implementations keep each row's accumulation in the reference
 * k-ascending order with no FMA contraction, so the selection can
 * never change results, only speed; if you change the accumulation
 * order anywhere you change the numerics contract of every engine
 * (see tests/golden/).
 */

#ifndef DIFFTUNE_NN_MATVEC_INL_HH
#define DIFFTUNE_NN_MATVEC_INL_HH

#include <cstddef>
#include <type_traits>

#include "nn/matvec_dispatch.hh"

namespace difftune::nn
{

/**
 * Portable reference kernel: out = W x for a column vector x,
 * blocked eight rows at a time — eight independent accumulator
 * chains give the FMA units ILP while each row's sum keeps the
 * reference k-ascending order, so the blocking is bit-transparent.
 */
template <typename T>
inline void
matvecForwardScalarT(const T *__restrict w, const T *__restrict x,
                     T *__restrict out, int rows, int cols)
{
    int r = 0;
    for (; r + 8 <= rows; r += 8) {
        const T *w0 = w + size_t(r) * cols;
        const T *w1 = w0 + cols;
        const T *w2 = w1 + cols;
        const T *w3 = w2 + cols;
        const T *w4 = w3 + cols;
        const T *w5 = w4 + cols;
        const T *w6 = w5 + cols;
        const T *w7 = w6 + cols;
        T s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        T s4 = 0, s5 = 0, s6 = 0, s7 = 0;
        for (int k = 0; k < cols; ++k) {
            const T xk = x[k];
            s0 += w0[k] * xk;
            s1 += w1[k] * xk;
            s2 += w2[k] * xk;
            s3 += w3[k] * xk;
            s4 += w4[k] * xk;
            s5 += w5[k] * xk;
            s6 += w6[k] * xk;
            s7 += w7[k] * xk;
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
        out[r + 4] = s4;
        out[r + 5] = s5;
        out[r + 6] = s6;
        out[r + 7] = s7;
    }
    for (; r + 4 <= rows; r += 4) {
        const T *w0 = w + size_t(r) * cols;
        const T *w1 = w0 + cols;
        const T *w2 = w1 + cols;
        const T *w3 = w2 + cols;
        T s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int k = 0; k < cols; ++k) {
            const T xk = x[k];
            s0 += w0[k] * xk;
            s1 += w1[k] * xk;
            s2 += w2[k] * xk;
            s3 += w3[k] * xk;
        }
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
    }
    for (; r < rows; ++r) {
        const T *wr = w + size_t(r) * cols;
        T sum = 0;
        for (int k = 0; k < cols; ++k)
            sum += wr[k] * x[k];
        out[r] = sum;
    }
}

/**
 * The dispatch point every nn/ engine calls: routes f64/f32 through
 * the process-wide selected kernels (scalar until AVX2 is both
 * compiled in and reported by cpuid; DIFFTUNE_FORCE_SCALAR pins
 * scalar). Bit-identical across paths — see matvec_dispatch.hh.
 */
template <typename T>
inline void
matvecForwardT(const T *__restrict w, const T *__restrict x,
               T *__restrict out, int rows, int cols)
{
    if constexpr (std::is_same_v<T, double>)
        matvecKernels().f64(w, x, out, rows, cols);
    else if constexpr (std::is_same_v<T, float>)
        matvecKernels().f32(w, x, out, rows, cols);
    else
        matvecForwardScalarT(w, x, out, rows, cols);
}

} // namespace difftune::nn

#endif // DIFFTUNE_NN_MATVEC_INL_HH
