/**
 * @file
 * Runtime matvec path selection: scalar unless AVX2 kernels were
 * compiled in AND cpuid reports AVX2, with DIFFTUNE_FORCE_SCALAR
 * pinning the scalar path. Selected once per process (bit-stability
 * of cached predictions forbids switching mid-run).
 */

#include "nn/matvec_dispatch.hh"

#include "base/env.hh"
#include "nn/matvec_inl.hh"

namespace difftune::nn
{

namespace
{

void
scalarF64(const double *w, const double *x, double *out, int rows,
          int cols)
{
    matvecForwardScalarT(w, x, out, rows, cols);
}

void
scalarF32(const float *w, const float *x, float *out, int rows,
          int cols)
{
    matvecForwardScalarT(w, x, out, rows, cols);
}

const MatvecKernels scalarKernels{scalarF64, scalarF32, "scalar"};
const MatvecKernels forcedKernels{scalarF64, scalarF32,
                                  "scalar (forced)"};

const MatvecKernels &
selectKernels()
{
    const std::string force =
        envString("DIFFTUNE_FORCE_SCALAR", "");
    if (!force.empty() && force != "0")
        return forcedKernels;
    if (const MatvecKernels *avx2 = matvecAvx2Kernels();
        avx2 && cpuSupportsAvx2())
        return *avx2;
    return scalarKernels;
}

} // namespace

bool
cpuSupportsAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const MatvecKernels &
matvecScalarKernels()
{
    return scalarKernels;
}

const MatvecKernels &
matvecKernels()
{
    // Magic static: the probe runs once, on first use, thread-safely.
    static const MatvecKernels &selected = selectKernels();
    return selected;
}

const char *
matvecPathName()
{
    return matvecKernels().name;
}

} // namespace difftune::nn
