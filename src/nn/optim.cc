/**
 * @file
 * Optimizer implementations.
 */

#include "nn/optim.hh"

#include <cmath>

namespace difftune::nn
{

void
Sgd::step(ParamSet &params, const Grads &grads)
{
    for (size_t i = 0; i < params.count(); ++i) {
        Tensor &p = params[int(i)];
        const Tensor &g = grads[int(i)];
        for (size_t j = 0; j < p.data.size(); ++j)
            p.data[j] -= lr_ * g.data[j];
    }
}

void
Adam::step(ParamSet &params, const Grads &grads)
{
    if (m_.empty()) {
        for (size_t i = 0; i < params.count(); ++i) {
            m_.emplace_back(params[int(i)].rows, params[int(i)].cols);
            v_.emplace_back(params[int(i)].rows, params[int(i)].cols);
        }
    }
    ++steps_;
    const double bc1 = 1.0 - std::pow(beta1_, double(steps_));
    const double bc2 = 1.0 - std::pow(beta2_, double(steps_));
    for (size_t i = 0; i < params.count(); ++i) {
        Tensor &p = params[int(i)];
        const Tensor &g = grads[int(i)];
        Tensor &m = m_[i];
        Tensor &v = v_[i];
        for (size_t j = 0; j < p.data.size(); ++j) {
            const double grad = g.data[j];
            m.data[j] = beta1_ * m.data[j] + (1.0 - beta1_) * grad;
            v.data[j] = beta2_ * v.data[j] + (1.0 - beta2_) * grad * grad;
            const double mhat = m.data[j] / bc1;
            const double vhat = v.data[j] / bc2;
            p.data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

} // namespace difftune::nn
