/**
 * @file
 * Dense row-major matrix type used by the autograd engine.
 *
 * Everything in the surrogate is a column vector or a small matrix,
 * so a minimal (rows x cols, double) type suffices. Doubles keep the
 * numerical-gradient tests tight; the model widths this library uses
 * train in seconds on a multicore CPU regardless.
 */

#ifndef DIFFTUNE_NN_TENSOR_HH
#define DIFFTUNE_NN_TENSOR_HH

#include <cstddef>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

namespace difftune::nn
{

/** A dense row-major matrix. A column vector is (n, 1). */
struct Tensor
{
    int rows = 0;
    int cols = 0;
    std::vector<double> data;

    Tensor() = default;

    Tensor(int r, int c) : rows(r), cols(c), data(size_t(r) * c, 0.0) {}

    size_t size() const { return data.size(); }

    double &
    at(int r, int c)
    {
        return data[size_t(r) * cols + c];
    }

    double
    at(int r, int c) const
    {
        return data[size_t(r) * cols + c];
    }

    /** Pointer to row @p r. */
    double *row(int r) { return data.data() + size_t(r) * cols; }
    const double *
    row(int r) const
    {
        return data.data() + size_t(r) * cols;
    }

    void
    zero()
    {
        std::fill(data.begin(), data.end(), 0.0);
    }

    /** Fill with uniform values in [-scale, scale]. */
    void
    uniformInit(Rng &rng, double scale)
    {
        for (double &v : data)
            v = rng.uniformReal(-scale, scale);
    }

    /** this += other (shapes must match). */
    void
    addInPlace(const Tensor &other)
    {
        panic_if(rows != other.rows || cols != other.cols,
                 "tensor shape mismatch {}x{} += {}x{}", rows, cols,
                 other.rows, other.cols);
        for (size_t i = 0; i < data.size(); ++i)
            data[i] += other.data[i];
    }
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_TENSOR_HH
