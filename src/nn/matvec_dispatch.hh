/**
 * @file
 * Runtime-dispatched forward matvec kernels.
 *
 * One process-wide selection, made on first use, routes every
 * forward matvec (autograd engine, batched executor, snapshot
 * projections — all via nn/matvec_inl.hh) to either the portable
 * scalar kernel or the AVX2 kernel:
 *
 *  - scalar: the ILP-blocked reference in matvec_inl.hh.
 *  - avx2:   vectorized *across rows* (4 f64 / 8 f32 rows per
 *            256-bit register) with each lane's accumulation kept in
 *            k-ascending order and no FMA contraction, so both f64
 *            and f32 results are bit-identical to the scalar kernel
 *            (tests/test_frontend.cc proves it exhaustively; the
 *            golden suites re-prove it end to end). Selected only
 *            when the kernels were compiled in AND cpuid reports
 *            AVX2.
 *
 * Because every caller goes through the one dispatch point, the f64
 * bit-exactness contract (batched == sequential reference) holds
 * per selected path by construction — both sides of any comparison
 * always run the same kernel.
 *
 * Setting DIFFTUNE_FORCE_SCALAR (non-empty, not "0") pins the
 * scalar path; CI runs the nn + serve suites both ways.
 */

#ifndef DIFFTUNE_NN_MATVEC_DISPATCH_HH
#define DIFFTUNE_NN_MATVEC_DISPATCH_HH

namespace difftune::nn
{

/** out = W x (row-major W, rows x cols) in double precision. */
using MatvecF64Fn = void (*)(const double *w, const double *x,
                             double *out, int rows, int cols);
/** out = W x in single precision. */
using MatvecF32Fn = void (*)(const float *w, const float *x,
                             float *out, int rows, int cols);

/** One selectable matvec implementation pair. */
struct MatvecKernels
{
    MatvecF64Fn f64 = nullptr;
    MatvecF32Fn f32 = nullptr;
    const char *name = "";
};

/**
 * The process-wide selected kernels. The choice is made once, on
 * first call (cpuid probe + DIFFTUNE_FORCE_SCALAR override), and
 * never changes — switching mid-process would break the
 * bit-stability of cached predictions.
 */
const MatvecKernels &matvecKernels();

/** Name of the selected path: "avx2", "scalar", "scalar (forced)". */
const char *matvecPathName();

/** The portable scalar kernels (always available). */
const MatvecKernels &matvecScalarKernels();

/**
 * The AVX2 kernels, or null when the build had no -mavx2 support.
 * Callers must check cpuSupportsAvx2() before executing them.
 */
const MatvecKernels *matvecAvx2Kernels();

/** Whether this CPU reports AVX2 (false on non-x86). */
bool cpuSupportsAvx2();

} // namespace difftune::nn

#endif // DIFFTUNE_NN_MATVEC_DISPATCH_HH
