/**
 * @file
 * WeightSnapshot implementation: lazy f32 panels and the lock-free
 * projection-table cache.
 */

#include "nn/snapshot.hh"

#include "nn/matvec_inl.hh"

namespace difftune::nn
{

WeightSnapshot::WeightSnapshot(const ParamSet &params,
                               std::shared_ptr<const void> owner)
    : params_(params), owner_(std::move(owner))
{
    // Offsets are cheap (one size_t per tensor); precomputing them
    // here keeps ensureF32 a pure value fill.
    f32Offsets_.reserve(params.count());
    size_t total = 0;
    for (size_t i = 0; i < params.count(); ++i) {
        f32Offsets_.push_back(total);
        total += params[int(i)].size();
    }
}

WeightSnapshot::~WeightSnapshot()
{
    for (ProjNode<double> *node = projF64_.load(); node != nullptr;) {
        ProjNode<double> *next = node->next;
        delete node;
        node = next;
    }
    for (ProjNode<float> *node = projF32_.load(); node != nullptr;) {
        ProjNode<float> *next = node->next;
        delete node;
        node = next;
    }
}

void
WeightSnapshot::setInputColumns(std::vector<Tensor> columns)
{
    // Columns are a pure function of the frozen checkpoint, so a
    // second engine binding the same snapshot computes identical
    // ones — the first caller wins, and call_once gives every later
    // caller a happens-before edge to the winner's write.
    std::call_once(columnsOnce_, [this, &columns] {
        inputColumns_ = std::move(columns);
        columnsSet_.store(true, std::memory_order_release);
    });
}

void
WeightSnapshot::ensureF32() const
{
    std::call_once(f32Once_, [this] {
        // The one-time weight conversion: every parameter tensor,
        // narrowed to float, packed back to back. Shared by every
        // kF32 executor bound to this snapshot, so a W-shard engine
        // pays it once per checkpoint load instead of W times.
        size_t total = 0;
        for (size_t i = 0; i < params_.count(); ++i)
            total += params_[int(i)].size();
        f32Weights_.reserve(total);
        for (size_t i = 0; i < params_.count(); ++i)
            for (double v : params_[int(i)].data)
                f32Weights_.push_back(float(v));
        f32Ready_.store(true, std::memory_order_release);
    });
}

template <> std::atomic<WeightSnapshot::ProjNode<double> *> &
WeightSnapshot::projHead() const
{
    return projF64_;
}

template <> std::atomic<WeightSnapshot::ProjNode<float> *> &
WeightSnapshot::projHead() const
{
    return projF32_;
}

template <typename T>
const T *
WeightSnapshot::projTable(int wx, int table, int rows, int in_dim) const
{
    std::atomic<ProjNode<T> *> &head = projHead<T>();
    for (ProjNode<T> *node = head.load(std::memory_order_acquire);
         node != nullptr; node = node->next)
        if (node->wx == wx && node->table == table)
            return node->data.data();

    // Miss: compute the projection, then publish with a CAS push.
    // Concurrent computations of the same pair produce identical
    // bytes (pure function of the frozen weights); the loser of the
    // race re-scans, finds the winner's entry and discards its own,
    // so the list never holds duplicates.
    const T *wxv;
    const T *tab;
    if constexpr (std::is_same_v<T, float>) {
        ensureF32();
        wxv = weightF32(wx);
        tab = weightF32(table);
    } else {
        wxv = params_[wx].data.data();
        tab = params_[table].data.data();
    }
    const int table_rows = params_[table].rows;
    auto node = std::make_unique<ProjNode<T>>();
    node->wx = wx;
    node->table = table;
    node->data.resize(size_t(table_rows) * rows);
    for (int row = 0; row < table_rows; ++row)
        matvecForwardT(wxv, tab + size_t(row) * in_dim,
                       node->data.data() + size_t(row) * rows, rows,
                       in_dim);

    ProjNode<T> *expected = head.load(std::memory_order_acquire);
    while (true) {
        for (ProjNode<T> *seen = expected; seen != nullptr;
             seen = seen->next)
            if (seen->wx == wx && seen->table == table)
                return seen->data.data(); // lost the race; use theirs
        node->next = expected;
        if (head.compare_exchange_weak(expected, node.get(),
                                       std::memory_order_release,
                                       std::memory_order_acquire))
            return node.release()->data.data();
    }
}

template const double *WeightSnapshot::projTable<double>(int, int, int,
                                                         int) const;
template const float *WeightSnapshot::projTable<float>(int, int, int,
                                                       int) const;

size_t
WeightSnapshot::f64Bytes() const
{
    return params_.scalarCount() * sizeof(double);
}

size_t
WeightSnapshot::projBytesF64() const
{
    size_t bytes = 0;
    for (const ProjNode<double> *node =
             projF64_.load(std::memory_order_acquire);
         node != nullptr; node = node->next)
        bytes += node->data.size() * sizeof(double);
    return bytes;
}

size_t
WeightSnapshot::projBytesF32() const
{
    size_t bytes = 0;
    for (const ProjNode<float> *node =
             projF32_.load(std::memory_order_acquire);
         node != nullptr; node = node->next)
        bytes += node->data.size() * sizeof(float);
    return bytes;
}

size_t
WeightSnapshot::inputColumnBytes() const
{
    size_t bytes = 0;
    for (const Tensor &column : inputColumns_)
        bytes += column.size() * sizeof(double);
    return bytes;
}

} // namespace difftune::nn
