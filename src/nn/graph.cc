/**
 * @file
 * Autograd implementation.
 */

#include "nn/graph.hh"

#include <cmath>
#include <sstream>

namespace difftune::nn
{

// ---------------------------------------------------------------- ParamSet

size_t
ParamSet::scalarCount() const
{
    size_t total = 0;
    for (const auto &p : params_)
        total += p.size();
    return total;
}

std::string
ParamSet::save() const
{
    std::ostringstream os;
    os.precision(17);
    os << "difftune-nn v1 " << params_.size() << "\n";
    for (const auto &p : params_) {
        os << p.rows << ' ' << p.cols;
        for (double v : p.data)
            os << ' ' << v;
        os << '\n';
    }
    return os.str();
}

void
ParamSet::load(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, version;
    size_t count = 0;
    is >> magic >> version >> count;
    fatal_if(magic != "difftune-nn" || count != params_.size(),
             "bad model file (|params| {} vs expected {})", count,
             params_.size());
    for (auto &p : params_) {
        int rows = 0, cols = 0;
        is >> rows >> cols;
        fatal_if(rows != p.rows || cols != p.cols,
                 "model file shape mismatch: {}x{} vs {}x{}", rows, cols,
                 p.rows, p.cols);
        for (double &v : p.data)
            is >> v;
    }
    fatal_if(!is, "truncated model file");
}

// ------------------------------------------------------------------- Grads

Grads::Grads(const ParamSet &params)
{
    grads_.reserve(params.count());
    for (size_t i = 0; i < params.count(); ++i)
        grads_.emplace_back(params[int(i)].rows, params[int(i)].cols);
}

void
Grads::zero()
{
    for (auto &g : grads_)
        g.zero();
}

void
Grads::addFrom(const Grads &other)
{
    panic_if(grads_.size() != other.grads_.size(),
             "grads size mismatch");
    for (size_t i = 0; i < grads_.size(); ++i)
        grads_[i].addInPlace(other.grads_[i]);
}

void
Grads::scale(double factor)
{
    for (auto &g : grads_)
        for (double &v : g.data)
            v *= factor;
}

double
Grads::l2Norm() const
{
    double total = 0.0;
    for (const auto &g : grads_)
        for (double v : g.data)
            total += v * v;
    return std::sqrt(total);
}

void
Grads::clipL2(double max_norm)
{
    const double norm = l2Norm();
    if (norm > max_norm && norm > 0.0)
        scale(max_norm / norm);
}

// ------------------------------------------------------------------- Graph

void
Graph::clear()
{
    nodes_.clear();
    paramCache_.clear();
}

namespace
{

uint64_t
paramKey(const ParamSet &params, int index, int row)
{
    uint64_t key = reinterpret_cast<uint64_t>(&params);
    key ^= uint64_t(index + 1) * 0x9e3779b97f4a7c15ULL;
    key ^= uint64_t(row + 2) * 0xc2b2ae3d27d4eb4fULL;
    return key;
}

} // namespace

Var
Graph::makeNode(Tensor value, bool requires_grad,
                std::function<void(Graph &, Node &)> backward)
{
    Node node;
    node.value = std::move(value);
    node.requiresGrad = requires_grad;
    node.backward = std::move(backward);
    nodes_.push_back(std::move(node));
    return Var{int32_t(nodes_.size()) - 1};
}

Tensor &
Graph::gradRef(Var v)
{
    Node &n = node(v);
    if (n.grad.size() == 0)
        n.grad = Tensor(n.value.rows, n.value.cols);
    return n.grad;
}

Var
Graph::input(Tensor value)
{
    return makeNode(std::move(value), false, nullptr);
}

Var
Graph::inputScalar(double value)
{
    Tensor t(1, 1);
    t.data[0] = value;
    return makeNode(std::move(t), false, nullptr);
}

Var
Graph::param(const ParamSet &params, int index, Grads *sink)
{
    const uint64_t key = paramKey(params, index, -1);
    for (const auto &[cached_key, var] : paramCache_)
        if (cached_key == key)
            return var;

    Tensor value = params[index];
    Var var;
    if (!sink) {
        var = makeNode(std::move(value), false, nullptr);
    } else {
        var = makeNode(std::move(value), true,
                       [sink, index](Graph &, Node &self) {
                           (*sink)[index].addInPlace(self.grad);
                       });
    }
    paramCache_.emplace_back(key, var);
    return var;
}

Var
Graph::paramRow(const ParamSet &params, int index, int row, Grads *sink)
{
    const Tensor &table = params[index];
    panic_if(row < 0 || row >= table.rows,
             "paramRow: row {} out of {} rows", row, table.rows);
    const uint64_t key = paramKey(params, index, row);
    for (const auto &[cached_key, var] : paramCache_)
        if (cached_key == key)
            return var;

    Tensor value(table.cols, 1);
    for (int c = 0; c < table.cols; ++c)
        value.data[c] = table.at(row, c);
    Var var;
    if (!sink) {
        var = makeNode(std::move(value), false, nullptr);
    } else {
        var = makeNode(std::move(value), true,
                       [sink, index, row](Graph &, Node &self) {
                           Tensor &g = (*sink)[index];
                           for (int c = 0; c < g.cols; ++c)
                               g.at(row, c) += self.grad.data[c];
                       });
    }
    paramCache_.emplace_back(key, var);
    return var;
}

Var
Graph::matmul(Var a, Var b)
{
    const Tensor &av = value(a);
    const Tensor &bv = value(b);
    panic_if(av.cols != bv.rows, "matmul: {}x{} * {}x{}", av.rows,
             av.cols, bv.rows, bv.cols);
    Tensor out(av.rows, bv.cols);
    if (bv.cols == 1) {
        // Fast matrix-vector path: every LSTM/linear op lands here.
        const double *b_data = bv.data.data();
        for (int i = 0; i < av.rows; ++i) {
            const double *arow = av.row(i);
            double sum = 0.0;
            for (int k = 0; k < av.cols; ++k)
                sum += arow[k] * b_data[k];
            out.data[i] = sum;
        }
    } else {
        for (int i = 0; i < av.rows; ++i) {
            const double *arow = av.row(i);
            double *orow = out.row(i);
            for (int k = 0; k < av.cols; ++k) {
                const double aik = arow[k];
                const double *brow = bv.row(k);
                for (int j = 0; j < bv.cols; ++j)
                    orow[j] += aik * brow[j];
            }
        }
    }
    const bool needs = node(a).requiresGrad || node(b).requiresGrad;
    return makeNode(std::move(out), needs,
                    [a, b](Graph &g, Node &self) {
                        const Tensor &av = g.value(a);
                        const Tensor &bv = g.value(b);
                        const Tensor &dc = self.grad;
                        if (g.node(a).requiresGrad) {
                            Tensor &da = g.gradRef(a);
                            if (bv.cols == 1) {
                                // dA += dc (col) outer b^T
                                const double *b_data = bv.data.data();
                                for (int i = 0; i < da.rows; ++i) {
                                    const double dci = dc.data[i];
                                    if (dci == 0.0)
                                        continue;
                                    double *darow = da.row(i);
                                    for (int k = 0; k < da.cols; ++k)
                                        darow[k] += dci * b_data[k];
                                }
                            } else {
                                // dA += dC * B^T
                                for (int i = 0; i < da.rows; ++i)
                                    for (int k = 0; k < da.cols; ++k) {
                                        double sum = 0.0;
                                        for (int j = 0; j < bv.cols; ++j)
                                            sum += dc.at(i, j) *
                                                   bv.at(k, j);
                                        da.at(i, k) += sum;
                                    }
                            }
                        }
                        if (g.node(b).requiresGrad) {
                            Tensor &db = g.gradRef(b);
                            if (bv.cols == 1) {
                                // db += A^T * dc
                                for (int i = 0; i < av.rows; ++i) {
                                    const double dci = dc.data[i];
                                    if (dci == 0.0)
                                        continue;
                                    const double *arow = av.row(i);
                                    for (int k = 0; k < db.rows; ++k)
                                        db.data[k] += arow[k] * dci;
                                }
                            } else {
                                // dB += A^T * dC
                                for (int k = 0; k < db.rows; ++k)
                                    for (int j = 0; j < db.cols; ++j) {
                                        double sum = 0.0;
                                        for (int i = 0; i < av.rows; ++i)
                                            sum += av.at(i, k) *
                                                   dc.at(i, j);
                                        db.at(k, j) += sum;
                                    }
                            }
                        }
                    });
}

namespace
{

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    panic_if(a.rows != b.rows || a.cols != b.cols,
             "{}: shape mismatch {}x{} vs {}x{}", op, a.rows, a.cols,
             b.rows, b.cols);
}

} // namespace

Var
Graph::add(Var a, Var b)
{
    const Tensor &av = value(a);
    const Tensor &bv = value(b);
    checkSameShape(av, bv, "add");
    Tensor out = av;
    out.addInPlace(bv);
    const bool needs = node(a).requiresGrad || node(b).requiresGrad;
    return makeNode(std::move(out), needs, [a, b](Graph &g, Node &self) {
        if (g.node(a).requiresGrad)
            g.gradRef(a).addInPlace(self.grad);
        if (g.node(b).requiresGrad)
            g.gradRef(b).addInPlace(self.grad);
    });
}

Var
Graph::sub(Var a, Var b)
{
    const Tensor &av = value(a);
    const Tensor &bv = value(b);
    checkSameShape(av, bv, "sub");
    Tensor out = av;
    for (size_t i = 0; i < out.data.size(); ++i)
        out.data[i] -= bv.data[i];
    const bool needs = node(a).requiresGrad || node(b).requiresGrad;
    return makeNode(std::move(out), needs, [a, b](Graph &g, Node &self) {
        if (g.node(a).requiresGrad)
            g.gradRef(a).addInPlace(self.grad);
        if (g.node(b).requiresGrad) {
            Tensor &db = g.gradRef(b);
            for (size_t i = 0; i < db.data.size(); ++i)
                db.data[i] -= self.grad.data[i];
        }
    });
}

Var
Graph::mul(Var a, Var b)
{
    const Tensor &av = value(a);
    const Tensor &bv = value(b);
    checkSameShape(av, bv, "mul");
    Tensor out = av;
    for (size_t i = 0; i < out.data.size(); ++i)
        out.data[i] *= bv.data[i];
    const bool needs = node(a).requiresGrad || node(b).requiresGrad;
    return makeNode(std::move(out), needs, [a, b](Graph &g, Node &self) {
        const Tensor &av = g.value(a);
        const Tensor &bv = g.value(b);
        if (g.node(a).requiresGrad) {
            Tensor &da = g.gradRef(a);
            for (size_t i = 0; i < da.data.size(); ++i)
                da.data[i] += self.grad.data[i] * bv.data[i];
        }
        if (g.node(b).requiresGrad) {
            Tensor &db = g.gradRef(b);
            for (size_t i = 0; i < db.data.size(); ++i)
                db.data[i] += self.grad.data[i] * av.data[i];
        }
    });
}

Var
Graph::scale(Var a, double c)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v *= c;
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a, c](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i)
                            da.data[i] += self.grad.data[i] * c;
                    });
}

Var
Graph::scaleByVec(Var a, std::vector<double> factors)
{
    const Tensor &av = value(a);
    panic_if(factors.size() != av.data.size(),
             "scaleByVec: {} factors for {} elements", factors.size(),
             av.data.size());
    Tensor out = av;
    for (size_t i = 0; i < out.data.size(); ++i)
        out.data[i] *= factors[i];
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a, factors = std::move(factors)](Graph &g,
                                                      Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i)
                            da.data[i] += self.grad.data[i] * factors[i];
                    });
}

Var
Graph::sigmoid(Var a)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v = 1.0 / (1.0 + std::exp(-v));
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i) {
                            const double y = self.value.data[i];
                            da.data[i] +=
                                self.grad.data[i] * y * (1.0 - y);
                        }
                    });
}

Var
Graph::tanh(Var a)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v = std::tanh(v);
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i) {
                            const double y = self.value.data[i];
                            da.data[i] +=
                                self.grad.data[i] * (1.0 - y * y);
                        }
                    });
}

Var
Graph::relu(Var a)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v = v > 0.0 ? v : 0.0;
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        const Tensor &av = g.value(a);
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i)
                            if (av.data[i] > 0.0)
                                da.data[i] += self.grad.data[i];
                    });
}

Var
Graph::abs(Var a)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v = std::fabs(v);
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        const Tensor &av = g.value(a);
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i) {
                            const double sign =
                                av.data[i] >= 0.0 ? 1.0 : -1.0;
                            da.data[i] += self.grad.data[i] * sign;
                        }
                    });
}

Var
Graph::exp(Var a)
{
    Tensor out = value(a);
    for (double &v : out.data)
        v = std::exp(std::min(v, 30.0));
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        const Tensor &av = g.value(a);
                        Tensor &da = g.gradRef(a);
                        for (size_t i = 0; i < da.data.size(); ++i) {
                            if (av.data[i] >= 30.0)
                                continue; // clamped region: zero grad
                            da.data[i] += self.grad.data[i] *
                                          self.value.data[i];
                        }
                    });
}

Var
Graph::slice(Var a, int row0, int nrows)
{
    const Tensor &av = value(a);
    panic_if(av.cols != 1, "slice expects a column vector");
    panic_if(row0 < 0 || row0 + nrows > av.rows,
             "slice [{}:{}) out of {} rows", row0, row0 + nrows,
             av.rows);
    Tensor out(nrows, 1);
    for (int r = 0; r < nrows; ++r)
        out.data[r] = av.data[row0 + r];
    return makeNode(std::move(out), node(a).requiresGrad,
                    [a, row0](Graph &g, Node &self) {
                        if (!g.node(a).requiresGrad)
                            return;
                        Tensor &da = g.gradRef(a);
                        for (int r = 0; r < self.value.rows; ++r)
                            da.data[row0 + r] += self.grad.data[r];
                    });
}

Var
Graph::concat(const std::vector<Var> &parts)
{
    int total = 0;
    bool needs = false;
    for (Var part : parts) {
        panic_if(value(part).cols != 1, "concat expects column vectors");
        total += value(part).rows;
        needs = needs || node(part).requiresGrad;
    }
    Tensor out(total, 1);
    int offset = 0;
    for (Var part : parts) {
        const Tensor &pv = value(part);
        for (int r = 0; r < pv.rows; ++r)
            out.data[offset + r] = pv.data[r];
        offset += pv.rows;
    }
    return makeNode(std::move(out), needs,
                    [parts](Graph &g, Node &self) {
                        int offset = 0;
                        for (Var part : parts) {
                            const int n = g.value(part).rows;
                            if (g.node(part).requiresGrad) {
                                Tensor &dp = g.gradRef(part);
                                for (int r = 0; r < n; ++r)
                                    dp.data[r] +=
                                        self.grad.data[offset + r];
                            }
                            offset += n;
                        }
                    });
}

Var
Graph::lossMape(Var pred, double target, double floor)
{
    const double denom = std::max(target, floor);
    panic_if(value(pred).size() != 1, "lossMape expects a scalar");
    const double p = scalarValue(pred);
    Tensor out(1, 1);
    out.data[0] = std::fabs(p - target) / denom;
    return makeNode(std::move(out), node(pred).requiresGrad,
                    [pred, target, denom](Graph &g, Node &self) {
                        if (!g.node(pred).requiresGrad)
                            return;
                        const double p = g.scalarValue(pred);
                        const double sign = p >= target ? 1.0 : -1.0;
                        g.gradRef(pred).data[0] +=
                            self.grad.data[0] * sign / denom;
                    });
}

Var
Graph::lossMae(Var pred, double target)
{
    panic_if(value(pred).size() != 1, "lossMae expects a scalar");
    const double p = scalarValue(pred);
    Tensor out(1, 1);
    out.data[0] = std::fabs(p - target);
    return makeNode(std::move(out), node(pred).requiresGrad,
                    [pred, target](Graph &g, Node &self) {
                        if (!g.node(pred).requiresGrad)
                            return;
                        const double p = g.scalarValue(pred);
                        const double sign = p >= target ? 1.0 : -1.0;
                        g.gradRef(pred).data[0] +=
                            self.grad.data[0] * sign;
                    });
}

Var
Graph::lossMse(Var pred, double target)
{
    panic_if(value(pred).size() != 1, "lossMse expects a scalar");
    const double p = scalarValue(pred);
    Tensor out(1, 1);
    out.data[0] = (p - target) * (p - target);
    return makeNode(std::move(out), node(pred).requiresGrad,
                    [pred, target](Graph &g, Node &self) {
                        if (!g.node(pred).requiresGrad)
                            return;
                        const double p = g.scalarValue(pred);
                        g.gradRef(pred).data[0] +=
                            self.grad.data[0] * 2.0 * (p - target);
                    });
}

void
Graph::backward(Var loss, double seed)
{
    panic_if(value(loss).size() != 1, "backward expects a scalar loss");
    gradRef(loss).data[0] = seed;
    for (int32_t i = loss.id; i >= 0; --i) {
        Node &n = nodes_[i];
        if (!n.requiresGrad || !n.backward || n.grad.size() == 0)
            continue;
        n.backward(*this, n);
    }
}

} // namespace difftune::nn
