/**
 * @file
 * Autograd implementation: arena-backed tape, tagged-op dispatch and
 * the fused-op kernels.
 *
 * Bit-stability contract: every kernel — fused or primitive —
 * replicates the per-element expression shape and accumulation order
 * of the original node-per-op engine, so the rewrite is invisible to
 * the golden-regression suite (tests/golden/). When touching a
 * backward case, keep the expression associativity exactly as
 * written; (g * y) * (1 - y) and g * (y * (1 - y)) differ in the
 * last ulp.
 */

#include "nn/graph.hh"

#include "nn/matvec_inl.hh"
#include "nn/ref_kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace difftune::nn
{

// ---------------------------------------------------------------- ParamSet

size_t
ParamSet::scalarCount() const
{
    size_t total = 0;
    for (const auto &p : params_)
        total += p.size();
    return total;
}

std::string
ParamSet::save() const
{
    std::ostringstream os;
    os.precision(17);
    os << "difftune-nn v1 " << params_.size() << "\n";
    for (const auto &p : params_) {
        os << p.rows << ' ' << p.cols;
        for (double v : p.data)
            os << ' ' << v;
        os << '\n';
    }
    return os.str();
}

void
ParamSet::load(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, version;
    size_t count = 0;
    is >> magic >> version >> count;
    fatal_if(magic != "difftune-nn",
             "bad model file (magic '{}', expected 'difftune-nn')",
             magic);
    fatal_if(version != "v1",
             "unsupported model file version '{}' (expected 'v1')",
             version);
    fatal_if(count != params_.size(),
             "bad model file (|params| {} vs expected {})", count,
             params_.size());
    for (auto &p : params_) {
        int rows = 0, cols = 0;
        is >> rows >> cols;
        fatal_if(rows != p.rows || cols != p.cols,
                 "model file shape mismatch: {}x{} vs {}x{}", rows, cols,
                 p.rows, p.cols);
        for (double &v : p.data)
            is >> v;
    }
    fatal_if(!is, "truncated model file");
}

// ------------------------------------------------------------------- Grads

Grads::Grads(const ParamSet &params)
{
    grads_.reserve(params.count());
    for (size_t i = 0; i < params.count(); ++i)
        grads_.emplace_back(params[int(i)].rows, params[int(i)].cols);
}

void
Grads::zero()
{
    for (auto &g : grads_)
        g.zero();
}

void
Grads::addFrom(const Grads &other)
{
    panic_if(grads_.size() != other.grads_.size(),
             "grads size mismatch");
    for (size_t i = 0; i < grads_.size(); ++i)
        grads_[i].addInPlace(other.grads_[i]);
}

void
Grads::scale(double factor)
{
    for (auto &g : grads_)
        for (double &v : g.data)
            v *= factor;
}

double
Grads::l2Norm() const
{
    double total = 0.0;
    for (const auto &g : grads_)
        for (double v : g.data)
            total += v * v;
    return std::sqrt(total);
}

void
Grads::clipL2(double max_norm)
{
    const double norm = l2Norm();
    if (norm > max_norm && norm > 0.0)
        scale(max_norm / norm);
}

// ------------------------------------------------------------- DoubleArena

double *
DoubleArena::alloc(size_t n)
{
    if (n == 0)
        return nullptr;
    // Skipped slab remainders stay unused until the next reset();
    // identical allocation sequences therefore always land on
    // identical addresses.
    while (cur_ < slabs_.size() &&
           slabs_[cur_].used + n > slabs_[cur_].cap)
        ++cur_;
    if (cur_ == slabs_.size()) {
        // Geometric slab growth: short-lived graphs pay one small
        // allocation, big reused graphs converge on a few large
        // slabs. Deliberately uninitialized — values are always
        // written before being read, gradients are zeroed per
        // backward() sweep.
        size_t cap = slabs_.empty()
                         ? firstSlabDoubles
                         : std::min(slabs_.back().cap * 4,
                                    maxSlabDoubles);
        if (cap < n)
            cap = n;
        Slab slab;
        slab.cap = cap;
        slab.data = std::unique_ptr<double[]>(new double[cap]);
        slabs_.push_back(std::move(slab));
    }
    Slab &slab = slabs_[cur_];
    double *ptr = slab.data.get() + slab.used;
    slab.used += n;
    used_ += n;
    return ptr;
}

void
DoubleArena::reset()
{
    for (Slab &slab : slabs_)
        slab.used = 0;
    cur_ = 0;
    used_ = 0;
}

void
DoubleArena::zeroUsed()
{
    for (Slab &slab : slabs_) {
        if (slab.used)
            std::memset(slab.data.get(), 0,
                        slab.used * sizeof(double));
    }
}

// ------------------------------------------------------------------- Graph

void
Graph::clear()
{
    nodes_.clear();
    paramCache_.clear();
    extraVars_.clear();
    extraData_.clear();
    varena_.reset();
    garena_.reset();
}

namespace
{

uint64_t
paramKey(const ParamSet &params, int index, int row)
{
    uint64_t key = reinterpret_cast<uint64_t>(&params);
    key ^= uint64_t(index + 1) * 0x9e3779b97f4a7c15ULL;
    key ^= uint64_t(row + 2) * 0xc2b2ae3d27d4eb4fULL;
    return key;
}

void
checkSameShape(int ar, int ac, int br, int bc, const char *op)
{
    panic_if(ar != br || ac != bc,
             "{}: shape mismatch {}x{} vs {}x{}", op, ar, ac, br, bc);
}

} // namespace

namespace
{

/**
 * out = W x: the shared ILP-blocked kernel (nn/matvec_inl.hh),
 * instantiated at double. The batched executor runs the same
 * template, which is what keeps the two engines bit-identical.
 */
inline void
matvecForward(const double *__restrict w, const double *__restrict x,
              double *__restrict out, int rows, int cols)
{
    matvecForwardT(w, x, out, rows, cols);
}

} // namespace

Var
Graph::pushNode(Op op, int rows, int cols, bool requires_grad,
                size_t aux_doubles)
{
    Node n;
    n.op = op;
    n.rows = rows;
    n.cols = cols;
    n.requiresGrad = requires_grad;
    n.val = varena_.alloc(size_t(rows) * cols);
    if (requires_grad)
        n.grad = garena_.alloc(size_t(rows) * cols);
    if (aux_doubles)
        n.aux = varena_.alloc(aux_doubles);
    nodes_.push_back(n);
    return Var{int32_t(nodes_.size()) - 1};
}

Var
Graph::pushAliasNode(Op op, int rows, int cols, bool requires_grad,
                     double *val)
{
    Node n;
    n.op = op;
    n.rows = rows;
    n.cols = cols;
    n.requiresGrad = requires_grad;
    n.val = val;
    if (requires_grad)
        n.grad = garena_.alloc(size_t(rows) * cols);
    nodes_.push_back(n);
    return Var{int32_t(nodes_.size()) - 1};
}

TensorView
Graph::value(Var v) const
{
    const Node &n = node(v);
    return TensorView{n.rows, n.cols, n.val};
}

TensorView
Graph::grad(Var v) const
{
    const Node &n = node(v);
    return TensorView{n.rows, n.cols, n.grad};
}

double
Graph::scalarValue(Var v) const
{
    return node(v).val[0];
}

// ---- Leaves

Var
Graph::input(const Tensor &value)
{
    Var v = pushNode(Op::Input, value.rows, value.cols, false);
    std::memcpy(node(v).val, value.data.data(),
                value.size() * sizeof(double));
    return v;
}

Var
Graph::inputScalar(double value)
{
    Var v = pushNode(Op::Input, 1, 1, false);
    node(v).val[0] = value;
    return v;
}

Var
Graph::zeros(int rows, int cols)
{
    Var v = pushNode(Op::Input, rows, cols, false);
    std::memset(node(v).val, 0, size_t(rows) * cols * sizeof(double));
    return v;
}

Var
Graph::param(const ParamSet &params, int index, Grads *sink)
{
    const uint64_t key = paramKey(params, index, -1);
    for (const auto &[cached_key, var] : paramCache_)
        if (cached_key == key)
            return var;

    // Zero-copy: a parameter leaf aliases the ParamSet's storage
    // (never written through; optimizer steps happen between graph
    // lifetimes, not during them).
    const Tensor &value = params[index];
    Var var = pushAliasNode(Op::Param, value.rows, value.cols,
                            sink != nullptr,
                            const_cast<double *>(value.data.data()));
    Node &n = node(var);
    n.sink = sink;
    n.i0 = index;
    paramCache_.emplace_back(key, var);
    return var;
}

Var
Graph::paramRow(const ParamSet &params, int index, int row, Grads *sink)
{
    const Tensor &table = params[index];
    panic_if(row < 0 || row >= table.rows,
             "paramRow: row {} out of {} rows", row, table.rows);
    const uint64_t key = paramKey(params, index, row);
    for (const auto &[cached_key, var] : paramCache_)
        if (cached_key == key)
            return var;

    // A row of a row-major matrix is contiguous: the gathered column
    // vector aliases it directly (same zero-copy argument as param()).
    Var var = pushAliasNode(Op::ParamRow, table.cols, 1,
                            sink != nullptr,
                            const_cast<double *>(table.row(row)));
    Node &n = node(var);
    n.sink = sink;
    n.i0 = index;
    n.i1 = row;
    paramCache_.emplace_back(key, var);
    return var;
}

// ---- Primitive ops

Var
Graph::matmul(Var a, Var b)
{
    const Node &an = node(a);
    const Node &bn = node(b);
    panic_if(an.cols != bn.rows, "matmul: {}x{} * {}x{}", an.rows,
             an.cols, bn.rows, bn.cols);
    const bool needs = an.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Matmul, an.rows, bn.cols, needs);
    Node &n = node(v);
    n.a = a.id;
    n.b = b.id;
    const double *av = node(a).val;
    const double *bv = node(b).val;
    const int m = n.rows, k = node(a).cols, cols = n.cols;
    if (cols == 1) {
        // Fast matrix-vector path: every LSTM/linear op lands here.
        if (refKernels_)
            refMatvecForward(av, bv, n.val, m, k);
        else
            matvecForward(av, bv, n.val, m, k);
    } else {
        std::memset(n.val, 0, size_t(m) * cols * sizeof(double));
        for (int i = 0; i < m; ++i) {
            const double *arow = av + size_t(i) * k;
            double *orow = n.val + size_t(i) * cols;
            for (int p = 0; p < k; ++p) {
                const double aik = arow[p];
                const double *brow = bv + size_t(p) * cols;
                for (int j = 0; j < cols; ++j)
                    orow[j] += aik * brow[j];
            }
        }
    }
    return v;
}

Var
Graph::add(Var a, Var b)
{
    const Node &an = node(a);
    const Node &bn = node(b);
    checkSameShape(an.rows, an.cols, bn.rows, bn.cols, "add");
    const bool needs = an.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Add, an.rows, an.cols, needs);
    Node &n = node(v);
    n.a = a.id;
    n.b = b.id;
    const double *av = node(a).val;
    const double *bv = node(b).val;
    const size_t count = size_t(n.rows) * n.cols;
    for (size_t i = 0; i < count; ++i)
        n.val[i] = av[i] + bv[i];
    return v;
}

Var
Graph::sub(Var a, Var b)
{
    const Node &an = node(a);
    const Node &bn = node(b);
    checkSameShape(an.rows, an.cols, bn.rows, bn.cols, "sub");
    const bool needs = an.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Sub, an.rows, an.cols, needs);
    Node &n = node(v);
    n.a = a.id;
    n.b = b.id;
    const double *av = node(a).val;
    const double *bv = node(b).val;
    const size_t count = size_t(n.rows) * n.cols;
    for (size_t i = 0; i < count; ++i)
        n.val[i] = av[i] - bv[i];
    return v;
}

Var
Graph::mul(Var a, Var b)
{
    const Node &an = node(a);
    const Node &bn = node(b);
    checkSameShape(an.rows, an.cols, bn.rows, bn.cols, "mul");
    const bool needs = an.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Mul, an.rows, an.cols, needs);
    Node &n = node(v);
    n.a = a.id;
    n.b = b.id;
    const double *av = node(a).val;
    const double *bv = node(b).val;
    const size_t count = size_t(n.rows) * n.cols;
    for (size_t i = 0; i < count; ++i)
        n.val[i] = av[i] * bv[i];
    return v;
}

Var
Graph::scale(Var a, double c)
{
    const Node &an = node(a);
    Var v = pushNode(Op::Scale, an.rows, an.cols, an.requiresGrad);
    Node &n = node(v);
    n.a = a.id;
    n.c0 = c;
    const double *av = node(a).val;
    const size_t count = size_t(n.rows) * n.cols;
    for (size_t i = 0; i < count; ++i)
        n.val[i] = av[i] * c;
    return v;
}

Var
Graph::scaleByVec(Var a, const std::vector<double> &factors)
{
    const Node &an = node(a);
    const size_t count = size_t(an.rows) * an.cols;
    panic_if(factors.size() != count,
             "scaleByVec: {} factors for {} elements", factors.size(),
             count);
    Var v = pushNode(Op::ScaleVec, an.rows, an.cols, an.requiresGrad);
    Node &n = node(v);
    n.a = a.id;
    n.extra = int32_t(extraData_.size());
    extraData_.insert(extraData_.end(), factors.begin(), factors.end());
    const double *av = node(a).val;
    const double *f = extraData_.data() + n.extra;
    for (size_t i = 0; i < count; ++i)
        n.val[i] = av[i] * f[i];
    return v;
}

Var
Graph::unaryElementwise(Op op, Var a)
{
    const Node &an = node(a);
    Var v = pushNode(op, an.rows, an.cols, an.requiresGrad);
    Node &n = node(v);
    n.a = a.id;
    const double *av = node(a).val;
    const size_t count = size_t(n.rows) * n.cols;
    switch (op) {
    case Op::Sigmoid:
        for (size_t i = 0; i < count; ++i)
            n.val[i] = 1.0 / (1.0 + std::exp(-av[i]));
        break;
    case Op::Tanh:
        for (size_t i = 0; i < count; ++i)
            n.val[i] = std::tanh(av[i]);
        break;
    case Op::Relu:
        for (size_t i = 0; i < count; ++i)
            n.val[i] = av[i] > 0.0 ? av[i] : 0.0;
        break;
    case Op::Abs:
        for (size_t i = 0; i < count; ++i)
            n.val[i] = std::fabs(av[i]);
        break;
    case Op::Exp:
        for (size_t i = 0; i < count; ++i)
            n.val[i] = std::exp(std::min(av[i], 30.0));
        break;
    default:
        panic_if(true, "unaryElementwise: bad op");
    }
    return v;
}

Var
Graph::sigmoid(Var a)
{
    return unaryElementwise(Op::Sigmoid, a);
}

Var
Graph::tanh(Var a)
{
    return unaryElementwise(Op::Tanh, a);
}

Var
Graph::relu(Var a)
{
    return unaryElementwise(Op::Relu, a);
}

Var
Graph::abs(Var a)
{
    return unaryElementwise(Op::Abs, a);
}

Var
Graph::exp(Var a)
{
    return unaryElementwise(Op::Exp, a);
}

Var
Graph::slice(Var a, int row0, int nrows)
{
    const Node &an = node(a);
    panic_if(an.cols != 1, "slice expects a column vector");
    panic_if(row0 < 0 || row0 + nrows > an.rows,
             "slice [{}:{}) out of {} rows", row0, row0 + nrows,
             an.rows);
    // Zero-copy: a slice's value aliases its input's storage (node
    // values are immutable once computed).
    Var v = pushAliasNode(Op::Slice, nrows, 1, an.requiresGrad,
                          node(a).val + row0);
    Node &n = node(v);
    n.a = a.id;
    n.i0 = row0;
    return v;
}

Var
Graph::concat(const std::vector<Var> &parts)
{
    int total = 0;
    bool needs = false;
    for (Var part : parts) {
        panic_if(node(part).cols != 1, "concat expects column vectors");
        total += node(part).rows;
        needs = needs || node(part).requiresGrad;
    }
    Var v = pushNode(Op::Concat, total, 1, needs);
    Node &n = node(v);
    n.extra = int32_t(extraVars_.size());
    n.i0 = int32_t(parts.size());
    for (Var part : parts)
        extraVars_.push_back(part.id);
    int offset = 0;
    for (Var part : parts) {
        const Node &pn = node(part);
        std::memcpy(n.val + offset, pn.val,
                    size_t(pn.rows) * sizeof(double));
        offset += pn.rows;
    }
    return v;
}

// ---- Fused ops

Var
Graph::linear(Var w, Var x, Var b, Act act)
{
    const Node &wn = node(w);
    const Node &xn = node(x);
    const Node &bn = node(b);
    panic_if(xn.cols != 1 || bn.cols != 1,
             "linear expects column-vector x and b");
    panic_if(wn.cols != xn.rows || wn.rows != bn.rows,
             "linear: {}x{} * {}x1 + {}x1", wn.rows, wn.cols, xn.rows,
             bn.rows);
    const bool needs =
        wn.requiresGrad || xn.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Linear, wn.rows, 1, needs);
    Node &n = node(v);
    n.a = w.id;
    n.b = x.id;
    n.c = b.id;
    n.act = act;
    const double *wv = node(w).val;
    const double *xv = node(x).val;
    const double *bv = node(b).val;
    const int out = n.rows, in = node(x).rows;
    matvecForward(wv, xv, n.val, out, in);
    for (int i = 0; i < out; ++i) {
        const double z = n.val[i] + bv[i];
        switch (act) {
        case Act::None:
            n.val[i] = z;
            break;
        case Act::Sigmoid:
            n.val[i] = 1.0 / (1.0 + std::exp(-z));
            break;
        case Act::Tanh:
            n.val[i] = std::tanh(z);
            break;
        case Act::Relu:
            n.val[i] = z > 0.0 ? z : 0.0;
            break;
        }
    }
    return v;
}

Graph::LstmState
Graph::lstmStep(Var wx, Var wh, Var bias, Var x, Var h, Var c)
{
    const Node &wxn = node(wx);
    const Node &whn = node(wh);
    const Node &bn = node(bias);
    const Node &xn = node(x);
    const Node &hn = node(h);
    const Node &cn = node(c);
    const int hidden = cn.rows;
    const int in = xn.rows;
    panic_if(xn.cols != 1 || hn.cols != 1 || cn.cols != 1 ||
                 bn.cols != 1,
             "lstmStep expects column vectors");
    panic_if(wxn.rows != 4 * hidden || wxn.cols != in ||
                 whn.rows != 4 * hidden || whn.cols != hidden ||
                 bn.rows != 4 * hidden || hn.rows != hidden,
             "lstmStep: inconsistent shapes (hidden {}, in {})", hidden,
             in);
    const bool needs = wxn.requiresGrad || whn.requiresGrad ||
                       bn.requiresGrad || xn.requiresGrad ||
                       hn.requiresGrad || cn.requiresGrad;
    // Value [h'; c'] (2H); aux: post-activation gates [i f g o] (4H),
    // tanh(c') (H), and backward dz scratch (4H).
    Var v = pushNode(Op::LstmCell, 2 * hidden, 1, needs,
                     size_t(9) * hidden);
    Node &n = node(v);
    n.a = wx.id;
    n.b = wh.id;
    n.c = bias.id;
    n.i0 = hidden;
    n.extra = int32_t(extraVars_.size());
    extraVars_.push_back(x.id);
    extraVars_.push_back(h.id);
    extraVars_.push_back(c.id);

    const double *wxv = node(wx).val;
    const double *whv = node(wh).val;
    const double *bv = node(bias).val;
    const double *xv = node(x).val;
    const double *hv = node(h).val;
    const double *cv = node(c).val;
    double *gates = n.aux;
    double *tanh_c = n.aux + 4 * hidden;

    // Pre-activations z = (Wx x + Wh h) + b, in the reference
    // engine's summation order. The dz scratch area doubles as a
    // forward temporary for the Wh h product.
    double *scratch = n.aux + 5 * hidden;
    matvecForward(wxv, xv, gates, 4 * hidden, in);
    matvecForward(whv, hv, scratch, 4 * hidden, hidden);
    for (int r = 0; r < 4 * hidden; ++r)
        gates[r] = (gates[r] + scratch[r]) + bv[r];
    // Gate activations and the state update, gate order [i f g o].
    for (int i = 0; i < hidden; ++i) {
        const double gi = 1.0 / (1.0 + std::exp(-gates[i]));
        const double gf =
            1.0 / (1.0 + std::exp(-gates[hidden + i]));
        const double gg = std::tanh(gates[2 * hidden + i]);
        const double go =
            1.0 / (1.0 + std::exp(-gates[3 * hidden + i]));
        gates[i] = gi;
        gates[hidden + i] = gf;
        gates[2 * hidden + i] = gg;
        gates[3 * hidden + i] = go;
        const double cnew = (gf * cv[i]) + (gi * gg);
        const double tc = std::tanh(cnew);
        tanh_c[i] = tc;
        n.val[i] = go * tc;
        n.val[hidden + i] = cnew;
    }
    return LstmState{slice(v, 0, hidden), slice(v, hidden, hidden)};
}

Var
Graph::dot(Var a, Var b)
{
    const Node &an = node(a);
    const Node &bn = node(b);
    panic_if(an.cols != 1 || bn.cols != 1 || an.rows != bn.rows,
             "dot: {}x{} . {}x{}", an.rows, an.cols, bn.rows, bn.cols);
    const bool needs = an.requiresGrad || bn.requiresGrad;
    Var v = pushNode(Op::Dot, 1, 1, needs);
    Node &n = node(v);
    n.a = a.id;
    n.b = b.id;
    const double *av = node(a).val;
    const double *bv = node(b).val;
    double sum = 0.0;
    for (int i = 0; i < node(a).rows; ++i)
        sum += av[i] * bv[i];
    n.val[0] = sum;
    return v;
}

Var
Graph::scaledSoftClamp(Var a, const std::vector<double> &scales,
                       double cap)
{
    const Node &an = node(a);
    const size_t count = size_t(an.rows) * an.cols;
    panic_if(scales.size() != count,
             "scaledSoftClamp: {} scales for {} elements",
             scales.size(), count);
    panic_if(cap <= 0.0, "scaledSoftClamp: cap must be positive");
    Var v = pushNode(Op::SoftClamp, an.rows, an.cols, an.requiresGrad,
                     count);
    Node &n = node(v);
    n.a = a.id;
    n.c0 = cap;
    n.c1 = 1.0 / cap;
    n.extra = int32_t(extraData_.size());
    extraData_.insert(extraData_.end(), scales.begin(), scales.end());
    const double *av = node(a).val;
    const double *s = extraData_.data() + n.extra;
    // Reference chain: scale(tanh(scale(scaleByVec(abs(a), s),
    // 1/cap)), cap), one multiply at a time.
    for (size_t i = 0; i < count; ++i) {
        const double t1 = std::fabs(av[i]);
        const double t2 = t1 * s[i];
        const double t3 = t2 * n.c1;
        const double t4 = std::tanh(t3);
        n.aux[i] = t4;
        n.val[i] = t4 * cap;
    }
    return v;
}

// ---- Losses

Var
Graph::lossNode(Op op, Var pred, double target, double value,
                double denom)
{
    Var v = pushNode(op, 1, 1, node(pred).requiresGrad);
    Node &n = node(v);
    n.a = pred.id;
    n.c0 = target;
    n.c1 = denom;
    n.val[0] = value;
    return v;
}

Var
Graph::lossMape(Var pred, double target, double floor)
{
    panic_if(node(pred).rows * node(pred).cols != 1,
             "lossMape expects a scalar");
    const double denom = std::max(target, floor);
    const double p = scalarValue(pred);
    return lossNode(Op::LossMape, pred, target,
                    std::fabs(p - target) / denom, denom);
}

Var
Graph::lossMae(Var pred, double target)
{
    panic_if(node(pred).rows * node(pred).cols != 1,
             "lossMae expects a scalar");
    const double p = scalarValue(pred);
    return lossNode(Op::LossMae, pred, target, std::fabs(p - target),
                    0.0);
}

Var
Graph::lossMse(Var pred, double target)
{
    panic_if(node(pred).rows * node(pred).cols != 1,
             "lossMse expects a scalar");
    const double p = scalarValue(pred);
    return lossNode(Op::LossMse, pred, target,
                    (p - target) * (p - target), 0.0);
}

// ---- Backward

namespace
{

/**
 * dW[i,:] += dz_i * x^T and dx += W^T dz, in reference order (rows
 * ascending, the dz_i == 0 rows skipped exactly as the primitive
 * matmul backward does). The __restrict qualifiers are sound —
 * values and gradients live in separate arenas — and let the
 * elementwise update loops vectorize.
 */
inline void
matvecBackward(const double *__restrict wv, double *__restrict wgrad,
               bool w_live, const double *__restrict xv,
               double *__restrict xgrad, bool x_live, int rows,
               int cols, const double *__restrict dz)
{
    if (w_live) {
        for (int i = 0; i < rows; ++i) {
            const double dci = dz[i];
            if (dci == 0.0)
                continue;
            double *wrow = wgrad + size_t(i) * cols;
            for (int k = 0; k < cols; ++k)
                wrow[k] += dci * xv[k];
        }
    }
    if (x_live) {
        for (int i = 0; i < rows; ++i) {
            const double dci = dz[i];
            if (dci == 0.0)
                continue;
            const double *wrow = wv + size_t(i) * cols;
            for (int k = 0; k < cols; ++k)
                xgrad[k] += wrow[k] * dci;
        }
    }
}

} // namespace

void
Graph::backwardNode(Node &n)
{
    const size_t count = size_t(n.rows) * n.cols;
    const double *g = n.grad;
    switch (n.op) {
    case Op::Input:
        break;

    case Op::Param: {
        Tensor &t = (*n.sink)[n.i0];
        for (size_t i = 0; i < count; ++i)
            t.data[i] += g[i];
        break;
    }

    case Op::ParamRow: {
        Tensor &t = (*n.sink)[n.i0];
        for (int c = 0; c < t.cols; ++c)
            t.at(n.i1, c) += g[c];
        break;
    }

    case Op::Matmul: {
        Node &an = nodes_[n.a];
        Node &bn = nodes_[n.b];
        const int m = n.rows, k = an.cols, cols = n.cols;
        if (cols == 1 && n.a == n.b) {
            // matmul(a, a): both gradients land in one buffer, which
            // the __restrict fast path must not touch. Reference
            // accumulation order: dA first, then dB.
            for (int i = 0; i < m; ++i) {
                const double dci = g[i];
                if (dci == 0.0)
                    continue;
                double *row = an.grad + size_t(i) * k;
                for (int p = 0; p < k; ++p)
                    row[p] += dci * an.val[p];
            }
            for (int i = 0; i < m; ++i) {
                const double dci = g[i];
                if (dci == 0.0)
                    continue;
                const double *row = an.val + size_t(i) * k;
                for (int p = 0; p < k; ++p)
                    an.grad[p] += row[p] * dci;
            }
        } else if (cols == 1 && refKernels_) {
            refMatvecBackward(an.val,
                              an.requiresGrad ? an.grad : nullptr,
                              bn.val,
                              bn.requiresGrad ? bn.grad : nullptr, m,
                              k, g);
        } else if (cols == 1) {
            matvecBackward(an.val, an.requiresGrad ? an.grad : nullptr,
                           an.requiresGrad, bn.val,
                           bn.requiresGrad ? bn.grad : nullptr,
                           bn.requiresGrad, m, k, g);
        } else {
            if (an.requiresGrad) {
                // dA += dC * B^T
                for (int i = 0; i < m; ++i)
                    for (int p = 0; p < k; ++p) {
                        double sum = 0.0;
                        for (int j = 0; j < cols; ++j)
                            sum += g[size_t(i) * cols + j] *
                                   bn.val[size_t(p) * cols + j];
                        an.grad[size_t(i) * k + p] += sum;
                    }
            }
            if (bn.requiresGrad) {
                // dB += A^T * dC
                for (int p = 0; p < k; ++p)
                    for (int j = 0; j < cols; ++j) {
                        double sum = 0.0;
                        for (int i = 0; i < m; ++i)
                            sum += an.val[size_t(i) * k + p] *
                                   g[size_t(i) * cols + j];
                        bn.grad[size_t(p) * cols + j] += sum;
                    }
            }
        }
        if (an.requiresGrad)
            an.gradLive = true;
        if (bn.requiresGrad)
            bn.gradLive = true;
        break;
    }

    case Op::Add: {
        Node &an = nodes_[n.a];
        Node &bn = nodes_[n.b];
        if (an.requiresGrad) {
            an.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                an.grad[i] += g[i];
        }
        if (bn.requiresGrad) {
            bn.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                bn.grad[i] += g[i];
        }
        break;
    }

    case Op::Sub: {
        Node &an = nodes_[n.a];
        Node &bn = nodes_[n.b];
        if (an.requiresGrad) {
            an.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                an.grad[i] += g[i];
        }
        if (bn.requiresGrad) {
            bn.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                bn.grad[i] -= g[i];
        }
        break;
    }

    case Op::Mul: {
        Node &an = nodes_[n.a];
        Node &bn = nodes_[n.b];
        if (an.requiresGrad) {
            an.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                an.grad[i] += g[i] * bn.val[i];
        }
        if (bn.requiresGrad) {
            bn.gradLive = true;
            for (size_t i = 0; i < count; ++i)
                bn.grad[i] += g[i] * an.val[i];
        }
        break;
    }

    case Op::Scale: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i)
            an.grad[i] += g[i] * n.c0;
        break;
    }

    case Op::ScaleVec: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        const double *f = extraData_.data() + n.extra;
        for (size_t i = 0; i < count; ++i)
            an.grad[i] += g[i] * f[i];
        break;
    }

    case Op::Sigmoid: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i) {
            const double y = n.val[i];
            an.grad[i] += g[i] * y * (1.0 - y);
        }
        break;
    }

    case Op::Tanh: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i) {
            const double y = n.val[i];
            an.grad[i] += g[i] * (1.0 - y * y);
        }
        break;
    }

    case Op::Relu: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i)
            if (an.val[i] > 0.0)
                an.grad[i] += g[i];
        break;
    }

    case Op::Abs: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i) {
            const double sign = an.val[i] >= 0.0 ? 1.0 : -1.0;
            an.grad[i] += g[i] * sign;
        }
        break;
    }

    case Op::Exp: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (size_t i = 0; i < count; ++i) {
            if (an.val[i] >= 30.0)
                continue; // clamped region: zero grad
            an.grad[i] += g[i] * n.val[i];
        }
        break;
    }

    case Op::Slice: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        for (int r = 0; r < n.rows; ++r)
            an.grad[n.i0 + r] += g[r];
        break;
    }

    case Op::Concat: {
        int offset = 0;
        for (int32_t p = 0; p < n.i0; ++p) {
            Node &pn = nodes_[extraVars_[size_t(n.extra) + p]];
            if (pn.requiresGrad) {
                pn.gradLive = true;
                for (int r = 0; r < pn.rows; ++r)
                    pn.grad[r] += g[offset + r];
            }
            offset += pn.rows;
        }
        break;
    }

    case Op::Linear: {
        Node &wn = nodes_[n.a];
        Node &xn = nodes_[n.b];
        Node &bn = nodes_[n.c];
        const int out = n.rows, in = xn.rows;
        // dz_i = dy_i * act'(y_i); the composition order matches the
        // primitive act-then-add-then-matmul backward chain.
        for (int i = 0; i < out; ++i) {
            double dz = 0.0;
            const double y = n.val[i];
            switch (n.act) {
            case Act::None:
                dz = g[i];
                break;
            case Act::Sigmoid:
                dz = g[i] * y * (1.0 - y);
                break;
            case Act::Tanh:
                dz = g[i] * (1.0 - y * y);
                break;
            case Act::Relu:
                dz = y > 0.0 ? g[i] : 0.0;
                break;
            }
            if (bn.requiresGrad)
                bn.grad[i] += dz;
            if (dz == 0.0)
                continue;
            if (wn.requiresGrad) {
                double *wrow = wn.grad + size_t(i) * in;
                for (int k = 0; k < in; ++k)
                    wrow[k] += dz * xn.val[k];
            }
            if (xn.requiresGrad) {
                const double *wrow = wn.val + size_t(i) * in;
                for (int k = 0; k < in; ++k)
                    xn.grad[k] += wrow[k] * dz;
            }
        }
        if (wn.requiresGrad)
            wn.gradLive = true;
        if (xn.requiresGrad)
            xn.gradLive = true;
        if (bn.requiresGrad)
            bn.gradLive = true;
        break;
    }

    case Op::LstmCell: {
        Node &wxn = nodes_[n.a];
        Node &whn = nodes_[n.b];
        Node &bn = nodes_[n.c];
        Node &xn = nodes_[extraVars_[size_t(n.extra) + 0]];
        Node &hn = nodes_[extraVars_[size_t(n.extra) + 1]];
        Node &cn = nodes_[extraVars_[size_t(n.extra) + 2]];
        const int hidden = n.i0;
        const int in = xn.rows;
        const double *gates = n.aux;
        const double *tanh_c = n.aux + 4 * hidden;
        double *dz = n.aux + 5 * hidden;
        const double *dh = g;
        const double *dcg = g + hidden;
        // Per-element chain in the reference composition's order
        // (h = o*tanh(c'), c' = f*c + i*g, gates = sigma/tanh of z).
        for (int i = 0; i < hidden; ++i) {
            const double gi = gates[i];
            const double gf = gates[hidden + i];
            const double gg = gates[2 * hidden + i];
            const double go = gates[3 * hidden + i];
            const double tc = tanh_c[i];
            const double dout = dh[i] * tc;
            const double dtc = dh[i] * go;
            const double dc = dcg[i] + dtc * (1.0 - tc * tc);
            const double di = dc * gg;
            const double dg = dc * gi;
            const double df = dc * cn.val[i];
            if (cn.requiresGrad)
                cn.grad[i] += dc * gf;
            dz[i] = di * gi * (1.0 - gi);
            dz[hidden + i] = df * gf * (1.0 - gf);
            dz[2 * hidden + i] = dg * (1.0 - gg * gg);
            dz[3 * hidden + i] = dout * go * (1.0 - go);
        }
        if (bn.requiresGrad) {
            for (int r = 0; r < 4 * hidden; ++r)
                bn.grad[r] += dz[r];
        }
        // Reference order: the Wh*h matmul backward runs before the
        // Wx*x one (it sits later on the tape).
        matvecBackward(whn.val, whn.requiresGrad ? whn.grad : nullptr,
                       whn.requiresGrad, hn.val,
                       hn.requiresGrad ? hn.grad : nullptr,
                       hn.requiresGrad, 4 * hidden, hidden, dz);
        matvecBackward(wxn.val, wxn.requiresGrad ? wxn.grad : nullptr,
                       wxn.requiresGrad, xn.val,
                       xn.requiresGrad ? xn.grad : nullptr,
                       xn.requiresGrad, 4 * hidden, in, dz);
        if (wxn.requiresGrad)
            wxn.gradLive = true;
        if (whn.requiresGrad)
            whn.gradLive = true;
        if (bn.requiresGrad)
            bn.gradLive = true;
        if (xn.requiresGrad)
            xn.gradLive = true;
        if (hn.requiresGrad)
            hn.gradLive = true;
        if (cn.requiresGrad)
            cn.gradLive = true;
        break;
    }

    case Op::Dot: {
        Node &an = nodes_[n.a];
        Node &bn = nodes_[n.b];
        const double g0 = g[0];
        if (an.requiresGrad) {
            an.gradLive = true;
            for (int i = 0; i < an.rows; ++i)
                an.grad[i] += g0 * bn.val[i];
        }
        if (bn.requiresGrad) {
            bn.gradLive = true;
            for (int i = 0; i < bn.rows; ++i)
                bn.grad[i] += g0 * an.val[i];
        }
        break;
    }

    case Op::SoftClamp: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        const double *s = extraData_.data() + n.extra;
        for (size_t i = 0; i < count; ++i) {
            const double t4 = n.aux[i];
            const double d4 = g[i] * n.c0;
            const double d3 = d4 * (1.0 - t4 * t4);
            const double d2 = d3 * n.c1;
            const double d1 = d2 * s[i];
            const double sign = an.val[i] >= 0.0 ? 1.0 : -1.0;
            an.grad[i] += d1 * sign;
        }
        break;
    }

    case Op::LossMape: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        const double p = an.val[0];
        const double sign = p >= n.c0 ? 1.0 : -1.0;
        an.grad[0] += g[0] * sign / n.c1;
        break;
    }

    case Op::LossMae: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        const double p = an.val[0];
        const double sign = p >= n.c0 ? 1.0 : -1.0;
        an.grad[0] += g[0] * sign;
        break;
    }

    case Op::LossMse: {
        Node &an = nodes_[n.a];
        if (!an.requiresGrad)
            break;
        an.gradLive = true;
        const double p = an.val[0];
        an.grad[0] += g[0] * 2.0 * (p - n.c0);
        break;
    }
    }
}

void
Graph::backward(Var loss, double seed)
{
    Node &ln = node(loss);
    panic_if(size_t(ln.rows) * ln.cols != 1,
             "backward expects a scalar loss");
    if (!ln.requiresGrad)
        return;
    garena_.zeroUsed();
    for (Node &n : nodes_)
        n.gradLive = false;
    ln.grad[0] = seed;
    ln.gradLive = true;
    for (int32_t id = loss.id; id >= 0; --id) {
        Node &n = nodes_[size_t(id)];
        if (!n.requiresGrad || !n.gradLive)
            continue;
        backwardNode(n);
    }
}

} // namespace difftune::nn
