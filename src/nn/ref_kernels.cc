/**
 * @file
 * Reference kernel implementations — see the header for why these
 * must stay naive and must not be compiled with -O3.
 */

#include "nn/ref_kernels.hh"

#include <cstddef>

namespace difftune::nn
{

void
refMatvecForward(const double *w, const double *x, double *out,
                 int rows, int cols)
{
    for (int i = 0; i < rows; ++i) {
        const double *wrow = w + size_t(i) * cols;
        double sum = 0.0;
        for (int k = 0; k < cols; ++k)
            sum += wrow[k] * x[k];
        out[i] = sum;
    }
}

void
refMatvecBackward(const double *w, double *wgrad, const double *x,
                  double *xgrad, int rows, int cols, const double *dz)
{
    if (wgrad) {
        for (int i = 0; i < rows; ++i) {
            const double dci = dz[i];
            if (dci == 0.0)
                continue;
            double *wrow = wgrad + size_t(i) * cols;
            for (int k = 0; k < cols; ++k)
                wrow[k] += dci * x[k];
        }
    }
    if (xgrad) {
        for (int i = 0; i < rows; ++i) {
            const double dci = dz[i];
            if (dci == 0.0)
                continue;
            const double *wrow = w + size_t(i) * cols;
            for (int k = 0; k < cols; ++k)
                xgrad[k] += wrow[k] * dci;
        }
    }
}

} // namespace difftune::nn
