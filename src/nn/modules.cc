/**
 * @file
 * Module implementations.
 */

#include "nn/modules.hh"

#include <cmath>

namespace difftune::nn
{

namespace
{

/** Uniform(-1/sqrt(fan_in), +1/sqrt(fan_in)) initialization. */
void
initTensor(Tensor &tensor, Rng &rng, int fan_in)
{
    tensor.uniformInit(rng, 1.0 / std::sqrt(double(fan_in ? fan_in : 1)));
}

} // namespace

// --------------------------------------------------------------- Embedding

Embedding::Embedding(ParamSet &params, int vocab, int dim, Rng &rng)
    : table_(params.add(vocab, dim)), dim_(dim)
{
    initTensor(params[table_], rng, dim);
}

Var
Embedding::forward(Ctx &ctx, int token) const
{
    return ctx.graph.paramRow(ctx.params, table_, token, ctx.sink);
}

// ------------------------------------------------------------------ Linear

Linear::Linear(ParamSet &params, int in, int out, Rng &rng)
    : weight_(params.add(out, in)), bias_(params.add(out, 1)), in_(in),
      out_(out)
{
    initTensor(params[weight_], rng, in);
    initTensor(params[bias_], rng, in);
}

Var
Linear::forward(Ctx &ctx, Var x) const
{
    Graph &g = ctx.graph;
    Var w = g.param(ctx.params, weight_, ctx.sink);
    Var b = g.param(ctx.params, bias_, ctx.sink);
    if (ctx.fuse)
        return g.linear(w, x, b, Act::None);
    return g.add(g.matmul(w, x), b);
}

// ---------------------------------------------------------------- LstmCell

LstmCell::LstmCell(ParamSet &params, int in, int hidden, Rng &rng)
    : wx_(params.add(4 * hidden, in)), wh_(params.add(4 * hidden, hidden)),
      bias_(params.add(4 * hidden, 1)), hidden_(hidden)
{
    initTensor(params[wx_], rng, in);
    initTensor(params[wh_], rng, hidden);
    // Forget-gate bias starts at 1 (standard trick for gradient flow).
    Tensor &b = params[bias_];
    initTensor(b, rng, hidden);
    for (int i = hidden; i < 2 * hidden; ++i)
        b.data[i] = 1.0;
}

LstmCell::State
LstmCell::initial(Ctx &ctx) const
{
    Var zero_h = ctx.graph.zeros(hidden_, 1);
    Var zero_c = ctx.graph.zeros(hidden_, 1);
    return {zero_h, zero_c};
}

LstmCell::State
LstmCell::step(Ctx &ctx, Var x, const State &state) const
{
    Graph &g = ctx.graph;
    Var wx = g.param(ctx.params, wx_, ctx.sink);
    Var wh = g.param(ctx.params, wh_, ctx.sink);
    Var b = g.param(ctx.params, bias_, ctx.sink);

    if (ctx.fuse) {
        Graph::LstmState next =
            g.lstmStep(wx, wh, b, x, state.h, state.c);
        return {next.h, next.c};
    }

    // Reference node-per-op composition; the fused kernel above must
    // stay bit-identical to this (see tests/test_nn_gradcheck.cc).
    Var gates = g.add(g.add(g.matmul(wx, x), g.matmul(wh, state.h)), b);
    Var in_gate = g.sigmoid(g.slice(gates, 0, hidden_));
    Var forget_gate = g.sigmoid(g.slice(gates, hidden_, hidden_));
    Var cell_in = g.tanh(g.slice(gates, 2 * hidden_, hidden_));
    Var out_gate = g.sigmoid(g.slice(gates, 3 * hidden_, hidden_));

    Var c = g.add(g.mul(forget_gate, state.c), g.mul(in_gate, cell_in));
    Var h = g.mul(out_gate, g.tanh(c));
    return {h, c};
}

// --------------------------------------------------------------- LstmStack

LstmStack::LstmStack(ParamSet &params, int in, int hidden, int layers,
                     Rng &rng)
    : in_(in), hidden_(hidden)
{
    panic_if(layers < 1, "LstmStack needs at least one layer");
    cells_.reserve(layers);
    for (int layer = 0; layer < layers; ++layer)
        cells_.emplace_back(params, layer == 0 ? in : hidden, hidden,
                            rng);
}

LstmStackRef
LstmStack::batchedRef() const
{
    LstmStackRef ref;
    ref.inDim = in_;
    ref.hidden = hidden_;
    ref.layers.reserve(cells_.size());
    for (const auto &cell : cells_)
        ref.layers.push_back(cell.batchedRef());
    return ref;
}

Var
LstmStack::runSequence(Ctx &ctx, const std::vector<Var> &sequence) const
{
    panic_if(sequence.empty(), "LstmStack: empty sequence");
    std::vector<LstmCell::State> states;
    states.reserve(cells_.size());
    for (const auto &cell : cells_)
        states.push_back(cell.initial(ctx));

    for (Var x : sequence) {
        Var layer_in = x;
        for (size_t layer = 0; layer < cells_.size(); ++layer) {
            states[layer] = cells_[layer].step(ctx, layer_in,
                                               states[layer]);
            layer_in = states[layer].h;
        }
    }
    return states.back().h;
}

} // namespace difftune::nn
