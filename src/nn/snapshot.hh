/**
 * @file
 * WeightSnapshot: one immutable, shareable bundle of everything a
 * forward-only executor derives from a frozen ParamSet.
 *
 * Before serving API v2 every nn::BatchedForward owned a private
 * copy of the derived weight state — the f32-converted panels and
 * the per-(weight, table) input-projection tables — so a W-shard
 * serving engine paid W conversions and held W copies. A
 * WeightSnapshot hoists all of that out of the executor: it borrows
 * the frozen f64 ParamSet in place (zero copy), converts the f32
 * panels lazily (once, on the first kF32 bind), caches input
 * projections once per (weight, table) pair, and can carry the
 * loader's precomputed constant input columns (the serving engine's
 * per-opcode parameter-input tensors). Executors borrow the snapshot
 * through a shared_ptr, so any number of shards — across any number
 * of engines — share one copy of every derived table.
 *
 * # Immutability and thread safety
 *
 * The bound ParamSet must stay frozen for the snapshot's lifetime,
 * and the snapshot itself is logically immutable: every query
 * returns the same bytes forever. The two lazy caches are built
 * thread-safely (ensureF32 via std::call_once; projection tables via
 * an append-only lock-free list with acquire/release publication),
 * and both are pure functions of the frozen weights, so a racing
 * reader either sees the published entry or computes the identical
 * value — results never depend on timing. setInputColumns is the
 * one setup-time mutation: call it before the snapshot is shared
 * across threads (the serving engine does so at load time).
 *
 * Bit-exactness: the f64 view is the ParamSet storage itself, f32
 * panels are float(double) per element, and every projected row
 * comes from the shared matvec kernel (nn/matvec_inl.hh) — all
 * identical to what a private-copy executor computed before, so
 * sharing changes memory, never results.
 */

#ifndef DIFFTUNE_NN_SNAPSHOT_HH
#define DIFFTUNE_NN_SNAPSHOT_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/graph.hh"

namespace difftune::nn
{

/** Frozen-weight bundle shared by forward-only executors. */
class WeightSnapshot
{
  public:
    /**
     * Bind to @p params, which must stay frozen and alive for the
     * snapshot's lifetime. @p owner (optional) is held to keep the
     * ParamSet's storage alive — e.g. the surrogate::Model that owns
     * it.
     */
    explicit WeightSnapshot(const ParamSet &params,
                            std::shared_ptr<const void> owner = nullptr);
    ~WeightSnapshot();

    WeightSnapshot(const WeightSnapshot &) = delete;
    WeightSnapshot &operator=(const WeightSnapshot &) = delete;

    const ParamSet &params() const { return params_; }

    // ---- Loader-provided constant input columns

    /**
     * Attach precomputed constant input tensors (the serving
     * engine's per-opcode parameter-input columns). Thread-safe:
     * the first caller wins (std::call_once) and later callers —
     * e.g. sibling engines binding the same snapshot concurrently —
     * discard their argument and synchronize with the winner's
     * write. Safe because the columns are a pure function of the
     * frozen checkpoint, so every caller computes identical ones.
     */
    void setInputColumns(std::vector<Tensor> columns);

    const std::vector<Tensor> &
    inputColumns() const
    {
        return inputColumns_;
    }

    /**
     * Whether a setInputColumns call has completed. An acquire
     * read: a true result also makes the columns themselves visible,
     * so sibling engines can skip recomputing them entirely.
     */
    bool
    hasInputColumns() const
    {
        return columnsSet_.load(std::memory_order_acquire);
    }

    // ---- f32 panels (lazy)

    /**
     * Build the float-narrowed weight panels if not yet built.
     * Thread-safe and idempotent; called by every kF32 executor
     * bind, so the conversion happens once per snapshot, not once
     * per shard.
     */
    void ensureF32() const;

    /** Whether ensureF32 has completed. */
    bool
    hasF32() const
    {
        return f32Ready_.load(std::memory_order_acquire);
    }

    /**
     * Base pointer of parameter @p index in the f32 panels
     * (ensureF32 must have completed).
     */
    const float *
    weightF32(int index) const
    {
        panic_if(!hasF32(), "weightF32 before ensureF32");
        return f32Weights_.data() + f32Offsets_[size_t(index)];
    }

    /**
     * The projection of every row of parameter table @p table
     * through weight @p wx (lazy; cached once per (wx, table) pair
     * for the snapshot's lifetime). Row r of the result is the
     * shared matvec kernel's product of @p wx against table row r —
     * bit-identical to running that matvec at step time. @p rows is
     * the output height (4H for an LSTM input weight), @p in_dim the
     * table row width. T is double or float (float implies a prior
     * ensureF32).
     */
    template <typename T>
    const T *projTable(int wx, int table, int rows, int in_dim) const;

    // ---- Memory accounting (for the serving CLI / bench / tests)

    /** Bytes of the borrowed f64 ParamSet storage (not owned). */
    size_t f64Bytes() const;

    /** Bytes of the f32 panels (0 until ensureF32). */
    size_t
    f32Bytes() const
    {
        return hasF32() ? f32Weights_.size() * sizeof(float) : 0;
    }

    /** Bytes of all cached input projections (grows lazily). */
    size_t
    projBytes() const
    {
        return projBytesF64() + projBytesF32();
    }

    /** Bytes of the cached f64 / f32 input projections alone. */
    size_t projBytesF64() const;
    size_t projBytesF32() const;

    /** Bytes of the attached constant input columns. */
    size_t inputColumnBytes() const;

    /**
     * Bytes of derived state this snapshot deduplicates: everything
     * a pre-v2 executor would have copied per shard (f32 panels +
     * projection tables + input columns). The f64 weights are
     * excluded — they were always read in place.
     */
    size_t
    sharedBytes() const
    {
        return f32Bytes() + projBytes() + inputColumnBytes();
    }

  private:
    /** One published (wx, table) projection; append-only list node. */
    template <typename T> struct ProjNode
    {
        int wx = -1;
        int table = -1;
        std::vector<T> data;
        ProjNode *next = nullptr;
    };

    template <typename T> std::atomic<ProjNode<T> *> &projHead() const;

    const ParamSet &params_;
    std::shared_ptr<const void> owner_;
    std::once_flag columnsOnce_;
    std::atomic<bool> columnsSet_{false};
    std::vector<Tensor> inputColumns_;

    /** Per-tensor offsets into the f32 panels (precomputed, cheap). */
    std::vector<size_t> f32Offsets_;
    mutable std::once_flag f32Once_;
    mutable std::vector<float> f32Weights_;
    mutable std::atomic<bool> f32Ready_{false};

    mutable std::atomic<ProjNode<double> *> projF64_{nullptr};
    mutable std::atomic<ProjNode<float> *> projF32_{nullptr};
};

} // namespace difftune::nn

#endif // DIFFTUNE_NN_SNAPSHOT_HH
