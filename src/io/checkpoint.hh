/**
 * @file
 * Versioned binary checkpoint container.
 *
 * The byte-level specification lives in docs/CHECKPOINT_FORMAT.md —
 * keep the two in sync. Layout sketch (all integers little-endian;
 * see io/serialize.hh):
 *
 *     magic   "DTCHKPT\0"                    8 bytes
 *     u32     format version (1, or 2 with an f32 weights chunk)
 *     u32     chunk count
 *     chunk*  [ tag (4 bytes) | u64 payload size | payload
 *               | u32 CRC-32 of payload ]
 *
 * Chunks are independent sections (model config, weights, parameter
 * table, sampling distribution) looked up by tag, so readers tolerate
 * optional sections and future writers can append new ones without
 * breaking old files. Validation is strict: bad magic, unsupported
 * version, truncation anywhere, duplicate tags and CRC mismatches all
 * raise fatal() with a precise message — a corrupt file can never be
 * half-loaded.
 *
 * High-level save/load covers the repo's three durable artifacts: a
 * trained surrogate::Model (config + weights + vocabulary size), the
 * params::SamplingDist it was trained under (needed to rebuild the
 * input normalizer when serving a paramDim > 0 surrogate), and a
 * learned params::ParamTable. Round trips are bit-exact.
 *
 * Model weights come in two encodings: "WTS0" (doubles — training
 * checkpoints, bit-exact) and "WF32" (floats — serving-only
 * artifacts at half the size, written by saveCheckpoint with
 * nn::Precision::kF32). A file with a WF32 chunk is stamped format
 * version 2, so version-1 readers reject it at load instead of
 * misreading it; files without one keep version 1 for backward
 * compatibility. See docs/CHECKPOINT_FORMAT.md for the payload
 * schemas and the exact rejection behavior.
 */

#ifndef DIFFTUNE_IO_CHECKPOINT_HH
#define DIFFTUNE_IO_CHECKPOINT_HH

#include <memory>
#include <optional>
#include <vector>

#include "io/serialize.hh"
#include "params/sampling.hh"
#include "surrogate/model.hh"

namespace difftune::io
{

/** Container magic: 8 bytes at offset 0 of every checkpoint. */
inline constexpr char checkpointMagic[8] = {'D', 'T', 'C', 'H',
                                            'K', 'P', 'T', '\0'};

/**
 * Newest container format version this build reads and writes.
 * Writers stamp the *lowest* version whose feature set the file
 * actually uses (see ChunkWriter::requireVersion), so old readers
 * only reject files they genuinely cannot decode.
 */
inline constexpr uint32_t checkpointVersion = 2;

/** Well-known chunk tags. */
inline constexpr const char *tagModelConfig = "MCFG";
inline constexpr const char *tagModelWeights = "WTS0";
inline constexpr const char *tagModelWeightsF32 = "WF32"; ///< v2+
inline constexpr const char *tagParamTable = "PTBL";
inline constexpr const char *tagSamplingDist = "DIST";

/**
 * One chunked-container file type. The checkpoint machinery — magic
 * header, version gate, tagged CRC-guarded chunks, strict truncation
 * and duplicate rejection — is format-agnostic; a ContainerKind
 * binds it to a concrete file type (the checkpoint itself, the
 * compare module's .preds prediction artifact). Distinct magics keep
 * the types honest: a .preds file can never half-load as a
 * checkpoint or vice versa.
 */
struct ContainerKind
{
    const char *magic;   ///< exactly 8 bytes at offset 0
    uint32_t maxVersion; ///< newest format this build reads/writes
    const char *what;    ///< noun used in error messages
};

/** The checkpoint container (the default kind everywhere). */
inline constexpr ContainerKind checkpointContainer{
    checkpointMagic, checkpointVersion, "checkpoint"};

/** Assembles a chunked container in memory. */
class ChunkWriter
{
  public:
    explicit ChunkWriter(
        const ContainerKind &kind = checkpointContainer)
        : kind_(kind)
    {
    }

    /** Append a chunk; @p tag must be exactly 4 characters. */
    void add(std::string_view tag, std::string payload);

    /**
     * Declare that the file needs at least format @p version (e.g.
     * 2 when a WF32 chunk is present). The header carries the
     * maximum declared; default 1.
     */
    void requireVersion(uint32_t version);

    /** Serialize header + all chunks. */
    std::string serialize() const;

    /** serialize() to @p path (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

  private:
    struct Chunk
    {
        std::string tag;
        std::string payload;
    };

    ContainerKind kind_;
    uint32_t version_ = 1;
    std::vector<Chunk> chunks_;
};

/** Parses and validates a chunked container. */
class ChunkReader
{
  public:
    /**
     * Parse @p bytes; fatal on any structural defect. @p source
     * names the container in every error message — fromFile passes
     * the file path, so a bad file is always identified by name
     * (empty: @p kind's noun is used).
     */
    explicit ChunkReader(std::string bytes, std::string source = "",
                         const ContainerKind &kind =
                             checkpointContainer);

    /** Read and parse @p path (errors name the path). */
    static ChunkReader
    fromFile(const std::string &path,
             const ContainerKind &kind = checkpointContainer);

    bool has(std::string_view tag) const;

    /** Payload of the chunk tagged @p tag (fatal if absent). */
    std::string_view payload(std::string_view tag) const;

    size_t numChunks() const { return chunks_.size(); }

    /** The container name used in error messages. */
    const std::string &source() const { return source_; }

  private:
    struct Chunk
    {
        std::string tag;
        std::string_view payload; ///< view into bytes_
    };

    std::string bytes_;
    std::string source_;
    std::vector<Chunk> chunks_;
};

// ---- Section payload codecs (exposed for tests).

/** Encode all tensors of @p params (bit-exact). */
std::string encodeParamSet(const nn::ParamSet &params);

/**
 * Decode weights encoded by encodeParamSet into @p params. Tensor
 * count and shapes must match the registered parameters exactly.
 */
void decodeParamSet(std::string_view payload, nn::ParamSet &params);

/**
 * Encode all tensors of @p params narrowed to f32 (the WF32 chunk:
 * half the bytes; serving-only precision). Narrow-then-widen round
 * trips reproduce the narrowed values exactly.
 */
std::string encodeParamSetF32(const nn::ParamSet &params);

/** Decode weights encoded by encodeParamSetF32 (shapes must match). */
void decodeParamSetF32(std::string_view payload, nn::ParamSet &params);

std::string encodeParamTable(const params::ParamTable &table);
params::ParamTable decodeParamTable(std::string_view payload);

std::string encodeSamplingDist(const params::SamplingDist &dist);
params::SamplingDist decodeSamplingDist(std::string_view payload);

// ---- High-level checkpoint API.

/** Everything a checkpoint can carry; absent sections stay empty. */
struct Checkpoint
{
    /** Trained surrogate/Ithemal model (config + weights). */
    std::unique_ptr<surrogate::Model> model;
    /** Vocabulary size the model was built against. */
    size_t vocabSize = 0;
    /** Sampling distribution (input normalizer for paramDim > 0). */
    std::optional<params::SamplingDist> dist;
    /** Learned simulator parameter table. */
    std::optional<params::ParamTable> table;
    /**
     * Encoding the weights were stored in. kF32 weights load as
     * float-valued doubles: serving them through an f32 engine is
     * bit-identical to serving the original f64 checkpoint through
     * one, but double-precision results will differ slightly from
     * the original's — an f32 file is a serving artifact, not a
     * training checkpoint.
     */
    nn::Precision weightPrecision = nn::Precision::kF64;
};

/**
 * Save a checkpoint to @p path. Null/absent sections are omitted; at
 * least one section must be present. @p weights selects the model
 * weight encoding: kF64 writes a bit-exact (v1) file, kF32 writes a
 * half-size serving-only (v2) file — see Checkpoint::weightPrecision
 * for the semantics.
 */
void saveCheckpoint(const std::string &path,
                    const surrogate::Model *model,
                    const params::SamplingDist *dist,
                    const params::ParamTable *table,
                    nn::Precision weights = nn::Precision::kF64);

/** Convenience: table-only checkpoint (tuner artifacts). */
void saveTableCheckpoint(const std::string &path,
                         const params::ParamTable &table);

/** Load and validate a checkpoint saved by saveCheckpoint. */
Checkpoint loadCheckpoint(const std::string &path);

} // namespace difftune::io

#endif // DIFFTUNE_IO_CHECKPOINT_HH
