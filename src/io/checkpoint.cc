/**
 * @file
 * Checkpoint container and section codec implementation.
 */

#include "io/checkpoint.hh"

#include <fstream>
#include <sstream>

namespace difftune::io
{

// ------------------------------------------------------------ ChunkWriter

void
ChunkWriter::add(std::string_view tag, std::string payload)
{
    panic_if(tag.size() != 4, "chunk tag '{}' is not 4 characters",
             std::string(tag));
    for (const Chunk &chunk : chunks_)
        panic_if(chunk.tag == tag, "duplicate chunk tag '{}'",
                 std::string(tag));
    chunks_.push_back(Chunk{std::string(tag), std::move(payload)});
}

void
ChunkWriter::requireVersion(uint32_t version)
{
    panic_if(version < 1 || version > kind_.maxVersion,
             "requireVersion: {} outside the writable range [1, {}]",
             version, kind_.maxVersion);
    version_ = std::max(version_, version);
}

std::string
ChunkWriter::serialize() const
{
    ByteWriter writer;
    writer.bytes(std::string_view(kind_.magic, 8));
    writer.u32(version_);
    writer.u32(uint32_t(chunks_.size()));
    for (const Chunk &chunk : chunks_) {
        writer.bytes(chunk.tag);
        writer.u64(chunk.payload.size());
        writer.bytes(chunk.payload);
        writer.u32(crc32(chunk.payload));
    }
    return writer.take();
}

void
ChunkWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open '{}' for writing", path);
    const std::string bytes = serialize();
    out.write(bytes.data(), std::streamsize(bytes.size()));
    out.flush();
    fatal_if(!out, "write to '{}' failed", path);
}

// ------------------------------------------------------------ ChunkReader

ChunkReader::ChunkReader(std::string bytes, std::string source,
                         const ContainerKind &kind)
    : bytes_(std::move(bytes)), source_(std::move(source))
{
    if (source_.empty())
        source_ = kind.what;
    ByteReader reader(bytes_, source_.c_str());
    const std::string_view magic = reader.bytes(8);
    fatal_if(magic != std::string_view(kind.magic, 8),
             "{}: not a difftune {} (bad magic)", source_, kind.what);
    const uint32_t version = reader.u32();
    fatal_if(version < 1 || version > kind.maxVersion,
             "{}: unsupported {} version {} (this build reads 1..{})",
             source_, kind.what, version, kind.maxVersion);
    const uint32_t count = reader.u32();
    chunks_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Chunk chunk;
        chunk.tag = std::string(reader.bytes(4));
        const uint64_t size = reader.u64();
        fatal_if(size > reader.remaining(),
                 "{}: truncated: chunk '{}' claims {} bytes, {} "
                 "remain",
                 source_, chunk.tag, size, reader.remaining());
        chunk.payload = reader.bytes(size_t(size));
        const uint32_t stored_crc = reader.u32();
        const uint32_t actual_crc = crc32(chunk.payload);
        fatal_if(stored_crc != actual_crc,
                 "{}: corrupt: chunk '{}' CRC mismatch "
                 "(stored {}, computed {})",
                 source_, chunk.tag, stored_crc, actual_crc);
        for (const Chunk &seen : chunks_)
            fatal_if(seen.tag == chunk.tag,
                     "{}: corrupt: duplicate chunk '{}'", source_,
                     chunk.tag);
        chunks_.push_back(std::move(chunk));
    }
    reader.expectEnd();
}

ChunkReader
ChunkReader::fromFile(const std::string &path,
                      const ContainerKind &kind)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open {} '{}'", kind.what, path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fatal_if(in.bad(), "read of {} '{}' failed", kind.what, path);
    return ChunkReader(std::move(buffer).str(),
                       std::string(kind.what) + " '" + path + "'",
                       kind);
}

bool
ChunkReader::has(std::string_view tag) const
{
    for (const Chunk &chunk : chunks_)
        if (chunk.tag == tag)
            return true;
    return false;
}

std::string_view
ChunkReader::payload(std::string_view tag) const
{
    for (const Chunk &chunk : chunks_)
        if (chunk.tag == tag)
            return chunk.payload;
    fatal("{}: no '{}' chunk", source_, std::string(tag));
}

// --------------------------------------------------------- section codecs

std::string
encodeParamSet(const nn::ParamSet &params)
{
    ByteWriter writer;
    writer.u64(params.count());
    for (size_t i = 0; i < params.count(); ++i) {
        const nn::Tensor &tensor = params[int(i)];
        writer.i32(tensor.rows);
        writer.i32(tensor.cols);
        for (double v : tensor.data)
            writer.f64(v);
    }
    return writer.take();
}

void
decodeParamSet(std::string_view payload, nn::ParamSet &params)
{
    ByteReader reader(payload, "weights chunk");
    const uint64_t count = reader.u64();
    fatal_if(count != params.count(),
             "weights chunk has {} tensors, model expects {}", count,
             params.count());
    for (size_t i = 0; i < params.count(); ++i) {
        nn::Tensor &tensor = params[int(i)];
        const int32_t rows = reader.i32();
        const int32_t cols = reader.i32();
        fatal_if(rows != tensor.rows || cols != tensor.cols,
                 "weights chunk tensor {} is {}x{}, model expects {}x{}",
                 i, rows, cols, tensor.rows, tensor.cols);
        for (double &v : tensor.data)
            v = reader.f64();
    }
    reader.expectEnd();
}

std::string
encodeParamSetF32(const nn::ParamSet &params)
{
    ByteWriter writer;
    writer.u64(params.count());
    for (size_t i = 0; i < params.count(); ++i) {
        const nn::Tensor &tensor = params[int(i)];
        writer.i32(tensor.rows);
        writer.i32(tensor.cols);
        for (double v : tensor.data)
            writer.f32(float(v));
    }
    return writer.take();
}

void
decodeParamSetF32(std::string_view payload, nn::ParamSet &params)
{
    ByteReader reader(payload, "f32 weights chunk");
    const uint64_t count = reader.u64();
    fatal_if(count != params.count(),
             "f32 weights chunk has {} tensors, model expects {}",
             count, params.count());
    for (size_t i = 0; i < params.count(); ++i) {
        nn::Tensor &tensor = params[int(i)];
        const int32_t rows = reader.i32();
        const int32_t cols = reader.i32();
        fatal_if(rows != tensor.rows || cols != tensor.cols,
                 "f32 weights chunk tensor {} is {}x{}, model "
                 "expects {}x{}",
                 i, rows, cols, tensor.rows, tensor.cols);
        for (double &v : tensor.data)
            v = double(reader.f32());
    }
    reader.expectEnd();
}

std::string
encodeParamTable(const params::ParamTable &table)
{
    ByteWriter writer;
    writer.u64(table.numOpcodes());
    writer.f64(table.dispatchWidth);
    writer.f64(table.reorderBufferSize);
    for (const auto &inst : table.perOpcode) {
        writer.f64(inst.numMicroOps);
        writer.f64(inst.writeLatency);
        for (double ra : inst.readAdvance)
            writer.f64(ra);
        for (double pc : inst.portMap)
            writer.f64(pc);
    }
    return writer.take();
}

params::ParamTable
decodeParamTable(std::string_view payload)
{
    ByteReader reader(payload, "parameter-table chunk");
    const uint64_t num_opcodes = reader.u64();
    // Guard the allocation before trusting the count: each opcode
    // record occupies perOpcodeParams doubles in the payload.
    fatal_if(num_opcodes >
                 reader.remaining() / (params::perOpcodeParams * 8),
             "truncated parameter-table chunk: {} opcodes claimed, {} "
             "bytes remain",
             num_opcodes, reader.remaining());
    params::ParamTable table{size_t(num_opcodes)};
    table.dispatchWidth = reader.f64();
    table.reorderBufferSize = reader.f64();
    for (auto &inst : table.perOpcode) {
        inst.numMicroOps = reader.f64();
        inst.writeLatency = reader.f64();
        for (double &ra : inst.readAdvance)
            ra = reader.f64();
        for (double &pc : inst.portMap)
            pc = reader.f64();
    }
    reader.expectEnd();
    return table;
}

std::string
encodeSamplingDist(const params::SamplingDist &dist)
{
    ByteWriter writer;
    writer.i32(dist.writeLatencyMin);
    writer.i32(dist.writeLatencyMax);
    writer.i32(dist.readAdvanceMax);
    writer.i32(dist.uopsMin);
    writer.i32(dist.uopsMax);
    writer.i32(dist.portMaxPorts);
    writer.i32(dist.portMaxCycles);
    writer.i32(dist.dispatchMin);
    writer.i32(dist.dispatchMax);
    writer.i32(dist.robMin);
    writer.i32(dist.robMax);
    writer.u8(dist.mask.numMicroOps);
    writer.u8(dist.mask.writeLatency);
    writer.u8(dist.mask.readAdvance);
    writer.u8(dist.mask.portMap);
    writer.u8(dist.mask.globals);
    return writer.take();
}

params::SamplingDist
decodeSamplingDist(std::string_view payload)
{
    ByteReader reader(payload, "sampling-dist chunk");
    params::SamplingDist dist;
    dist.writeLatencyMin = reader.i32();
    dist.writeLatencyMax = reader.i32();
    dist.readAdvanceMax = reader.i32();
    dist.uopsMin = reader.i32();
    dist.uopsMax = reader.i32();
    dist.portMaxPorts = reader.i32();
    dist.portMaxCycles = reader.i32();
    dist.dispatchMin = reader.i32();
    dist.dispatchMax = reader.i32();
    dist.robMin = reader.i32();
    dist.robMax = reader.i32();
    dist.mask.numMicroOps = reader.u8() != 0;
    dist.mask.writeLatency = reader.u8() != 0;
    dist.mask.readAdvance = reader.u8() != 0;
    dist.mask.portMap = reader.u8() != 0;
    dist.mask.globals = reader.u8() != 0;
    reader.expectEnd();
    return dist;
}

namespace
{

std::string
encodeModelConfig(const surrogate::ModelConfig &config, size_t vocab)
{
    ByteWriter writer;
    writer.i32(config.embedDim);
    writer.i32(config.hidden);
    writer.i32(config.tokenLayers);
    writer.i32(config.blockLayers);
    writer.i32(config.paramDim);
    writer.u64(config.seed);
    writer.u64(vocab);
    return writer.take();
}

surrogate::ModelConfig
decodeModelConfig(std::string_view payload, size_t &vocab)
{
    ByteReader reader(payload, "model-config chunk");
    surrogate::ModelConfig config;
    config.embedDim = reader.i32();
    config.hidden = reader.i32();
    config.tokenLayers = reader.i32();
    config.blockLayers = reader.i32();
    config.paramDim = reader.i32();
    config.seed = reader.u64();
    vocab = size_t(reader.u64());
    reader.expectEnd();
    fatal_if(config.embedDim <= 0 || config.hidden <= 0 ||
                 config.tokenLayers <= 0 || config.blockLayers <= 0 ||
                 config.paramDim < 0 || vocab == 0,
             "corrupt model-config chunk: non-positive dimension");
    return config;
}

/**
 * The scalar weight count a Model with this config registers, as a
 * double (immune to overflow from crafted dimensions). Mirrors the
 * layer registrations in surrogate::Model / nn::modules — if the
 * layout ever changes, decodeParamSet's per-tensor shape checks still
 * reject the file; this pre-check only exists to bound the Model
 * allocation by the weights actually present on disk.
 */
double
expectedModelScalars(const surrogate::ModelConfig &config, size_t vocab)
{
    const double hidden = config.hidden;
    auto lstmStack = [&](double in, int layers) {
        double total = 0.0;
        for (int layer = 0; layer < layers; ++layer) {
            const double cell_in = layer == 0 ? in : hidden;
            total += 4 * hidden * cell_in + // wx
                     4 * hidden * hidden +  // wh
                     4 * hidden;            // bias
        }
        return total;
    };
    return double(vocab) * config.embedDim +
           lstmStack(config.embedDim, config.tokenLayers) +
           lstmStack(hidden + config.paramDim, config.blockLayers) +
           hidden + 1; // head weight + bias
}

} // namespace

// ---------------------------------------------------------- high level

void
saveCheckpoint(const std::string &path, const surrogate::Model *model,
               const params::SamplingDist *dist,
               const params::ParamTable *table, nn::Precision weights)
{
    panic_if(!model && !dist && !table,
             "refusing to save an empty checkpoint");
    ChunkWriter writer;
    if (model) {
        writer.add(tagModelConfig,
                   encodeModelConfig(model->config(),
                                     isa::theVocab().size()));
        if (weights == nn::Precision::kF32) {
            // The f32 weights chunk is a version-2 feature; stamping
            // the file v2 makes old readers reject it cleanly
            // instead of failing on the unknown tag's absence.
            writer.add(tagModelWeightsF32,
                       encodeParamSetF32(model->params()));
            writer.requireVersion(2);
        } else {
            writer.add(tagModelWeights,
                       encodeParamSet(model->params()));
        }
    }
    if (dist)
        writer.add(tagSamplingDist, encodeSamplingDist(*dist));
    if (table)
        writer.add(tagParamTable, encodeParamTable(*table));
    writer.writeFile(path);
}

void
saveTableCheckpoint(const std::string &path,
                    const params::ParamTable &table)
{
    saveCheckpoint(path, nullptr, nullptr, &table);
}

namespace
{

/**
 * Run a section decode, tagging any error with the file path and
 * the chunk it came from — a bad file must always be identifiable
 * from the message alone.
 */
template <typename Fn>
auto
decodeChunk(const std::string &path, const char *tag, Fn &&decode)
    -> decltype(decode())
{
    try {
        return decode();
    } catch (const std::exception &error) {
        fatal("checkpoint '{}': chunk '{}': {}", path, tag,
              stripErrorPrefix(error.what()));
    }
}

} // namespace

Checkpoint
loadCheckpoint(const std::string &path)
{
    const ChunkReader reader = ChunkReader::fromFile(path);
    Checkpoint checkpoint;
    const bool has_f64 = reader.has(tagModelWeights);
    const bool has_f32 = reader.has(tagModelWeightsF32);
    fatal_if(has_f64 && has_f32,
             "checkpoint '{}': corrupt: both f64 and f32 weight "
             "chunks",
             path);
    if (reader.has(tagModelConfig)) {
        fatal_if(!has_f64 && !has_f32,
                 "checkpoint '{}': has a model config but no weights",
                 path);
        const surrogate::ModelConfig config =
            decodeChunk(path, tagModelConfig, [&] {
                return decodeModelConfig(
                    reader.payload(tagModelConfig),
                    checkpoint.vocabSize);
            });
        // Bound the Model allocation by the weights actually on disk
        // before constructing it — a crafted config chunk must not be
        // able to demand terabytes the weights chunk does not hold.
        const char *weights_tag =
            has_f64 ? tagModelWeights : tagModelWeightsF32;
        const std::string_view weights = reader.payload(weights_tag);
        const double expected =
            expectedModelScalars(config, checkpoint.vocabSize);
        const double scalar_bytes = has_f64 ? 8.0 : 4.0;
        fatal_if(expected * scalar_bytes > double(weights.size()),
                 "checkpoint '{}': corrupt: model config implies {} "
                 "weight scalars but chunk '{}' holds {} bytes",
                 path, expected, weights_tag, weights.size());
        checkpoint.model = std::make_unique<surrogate::Model>(
            config, checkpoint.vocabSize);
        decodeChunk(path, weights_tag, [&] {
            if (has_f64) {
                decodeParamSet(weights, checkpoint.model->params());
            } else {
                decodeParamSetF32(weights,
                                  checkpoint.model->params());
                checkpoint.weightPrecision = nn::Precision::kF32;
            }
        });
    } else {
        fatal_if(has_f64 || has_f32,
                 "checkpoint '{}': has model weights but no config",
                 path);
    }
    if (reader.has(tagSamplingDist))
        checkpoint.dist = decodeChunk(path, tagSamplingDist, [&] {
            return decodeSamplingDist(reader.payload(tagSamplingDist));
        });
    if (reader.has(tagParamTable))
        checkpoint.table = decodeChunk(path, tagParamTable, [&] {
            return decodeParamTable(reader.payload(tagParamTable));
        });
    return checkpoint;
}

} // namespace difftune::io
