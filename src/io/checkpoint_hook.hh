/**
 * @file
 * Where and how often a training loop checkpoints its artifacts (see
 * io/checkpoint.hh for the file format). Embedded in DiffTuneConfig,
 * IthemalConfig and tuner::TunerConfig: an empty path disables
 * checkpointing; with a path the final artifact is always saved, and
 * `every` > 0 additionally saves mid-training (its unit is epochs for
 * the gradient trainers, improved-best candidates for the tuner), so
 * a long run killed partway leaves a loadable artifact behind.
 *
 * Deliberately a tiny standalone header: config structs across layers
 * (core, tuner) embed it without pulling in the checkpoint codec or
 * each other's training machinery.
 */

#ifndef DIFFTUNE_IO_CHECKPOINT_HOOK_HH
#define DIFFTUNE_IO_CHECKPOINT_HOOK_HH

#include <string>

namespace difftune::io
{

struct CheckpointHook
{
    std::string path; ///< target file; empty: checkpointing disabled
    int every = 0;    ///< also save every N progress units (0: end only)

    bool enabled() const { return !path.empty(); }

    /** True when progress unit @p unit (1-based) should save. */
    bool
    due(int unit) const
    {
        return enabled() && every > 0 && unit % every == 0;
    }
};

} // namespace difftune::io

#endif // DIFFTUNE_IO_CHECKPOINT_HOOK_HH
