/**
 * @file
 * CRC-32 implementation (table-driven, IEEE 802.3 polynomial).
 */

#include "io/serialize.hh"

#include <array>

namespace difftune::io
{

namespace
{

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(std::string_view data)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t crc = 0xffffffffu;
    for (char ch : data)
        crc = table[(crc ^ uint8_t(ch)) & 0xff] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace difftune::io
