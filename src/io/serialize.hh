/**
 * @file
 * Little-endian binary serialization primitives.
 *
 * Checkpoint files must be byte-identical across hosts, so every
 * multi-byte value is written explicitly in little-endian byte order
 * rather than via memcpy of host-order integers. Doubles travel as
 * their IEEE-754 bit patterns, which makes round-trips bit-exact for
 * every value including -0.0, denormals, infinities and NaNs.
 *
 * ByteReader is fully bounds-checked: reading past the end of the
 * buffer raises fatal() with the name of the structure being decoded,
 * so a truncated or corrupt file can never read uninitialized memory.
 *
 * The container format built on these primitives is specified in
 * docs/CHECKPOINT_FORMAT.md.
 */

#ifndef DIFFTUNE_IO_SERIALIZE_HH
#define DIFFTUNE_IO_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/logging.hh"

namespace difftune::io
{

/** CRC-32 (IEEE 802.3 polynomial) of @p data. */
uint32_t crc32(std::string_view data);

/** Append-only little-endian byte buffer. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { data_.push_back(char(v)); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            data_.push_back(char((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            data_.push_back(char((v >> (8 * i)) & 0xff));
    }

    void i32(int32_t v) { u32(uint32_t(v)); }

    /** IEEE-754 bit pattern; bit-exact round trip. */
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    /** Single-precision IEEE-754 bit pattern (f32 weight chunks). */
    void f32(float v) { u32(std::bit_cast<uint32_t>(v)); }

    void bytes(std::string_view v) { data_.append(v); }

    /** Length-prefixed string. */
    void
    str(std::string_view v)
    {
        u64(v.size());
        bytes(v);
    }

    const std::string &data() const { return data_; }
    std::string take() { return std::move(data_); }

  private:
    std::string data_;
};

/** Bounds-checked little-endian reader over a borrowed buffer. */
class ByteReader
{
  public:
    /**
     * @param data buffer to decode (must outlive the reader)
     * @param what structure name used in error messages
     */
    ByteReader(std::string_view data, const char *what)
        : data_(data), what_(what)
    {
    }

    uint8_t
    u8()
    {
        need(1);
        return uint8_t(data_[pos_++]);
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(uint8_t(data_[pos_ + i])) << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(uint8_t(data_[pos_ + i])) << (8 * i);
        pos_ += 8;
        return v;
    }

    int32_t i32() { return int32_t(u32()); }

    double f64() { return std::bit_cast<double>(u64()); }

    float f32() { return std::bit_cast<float>(u32()); }

    std::string_view
    bytes(size_t n)
    {
        need(n);
        std::string_view v = data_.substr(pos_, n);
        pos_ += n;
        return v;
    }

    /** Length-prefixed string written by ByteWriter::str. */
    std::string_view
    str()
    {
        const uint64_t n = u64();
        fatal_if(n > remaining(), "corrupt {}: string length {} exceeds "
                 "remaining {} bytes", what_, n, remaining());
        return bytes(size_t(n));
    }

    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** fatal() unless the payload was consumed exactly. */
    void
    expectEnd() const
    {
        fatal_if(!atEnd(), "corrupt {}: {} trailing bytes", what_,
                 remaining());
    }

  private:
    void
    need(size_t n) const
    {
        fatal_if(n > remaining(),
                 "truncated {}: need {} bytes at offset {}, have {}",
                 what_, n, pos_, remaining());
    }

    std::string_view data_;
    const char *what_;
    size_t pos_ = 0;
};

} // namespace difftune::io

#endif // DIFFTUNE_IO_SERIALIZE_HH
