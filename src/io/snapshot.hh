/**
 * @file
 * Load-once promotion of a checkpoint into an immutable, shareable
 * serving bundle.
 *
 * A Checkpoint is a mutable grab-bag fresh off the wire; a
 * ModelSnapshot is what serving engines actually want: the model
 * frozen behind shared_ptr<const>, its weights wrapped in one
 * nn::WeightSnapshot (see nn/snapshot.hh) that every executor shard
 * — across any number of engines — borrows instead of copying, plus
 * the table/distribution sections the DiffTune surrogate needs.
 * Load a file once with loadModelSnapshot and construct as many
 * serve::AsyncEngine / serve::PredictionEngine instances from it as
 * you like; they share one copy of the weights and every derived
 * panel.
 *
 * Validation here covers what any consumer needs (a model must be
 * present and match the process vocabulary); surrogate-specific
 * checks (table/distribution presence and dimensions) stay with the
 * serving engine, which owns the parameter-input transform. All
 * loadModelSnapshot error messages name the offending file.
 */

#ifndef DIFFTUNE_IO_SNAPSHOT_HH
#define DIFFTUNE_IO_SNAPSHOT_HH

#include "io/checkpoint.hh"
#include "nn/snapshot.hh"

namespace difftune::io
{

/**
 * A checkpoint promoted to an immutable serving bundle. Every
 * section sits behind shared_ptr<const>, so engines built from one
 * artifact share the sections themselves, not per-engine copies.
 */
struct ModelSnapshot
{
    /** The frozen model (never trained through this handle). */
    std::shared_ptr<const surrogate::Model> model;
    /** Sampling distribution (input normalizer for paramDim > 0). */
    std::shared_ptr<const params::SamplingDist> dist;
    /** Learned simulator parameter table. */
    std::shared_ptr<const params::ParamTable> table;
    /** Encoding the weights were stored in (see Checkpoint). */
    nn::Precision weightPrecision = nn::Precision::kF64;
    /**
     * The model's weights as one shareable snapshot (owns a
     * reference to the model). Engines bind their executors to this
     * and may attach precomputed input columns at load time — do
     * that before the snapshot is shared across threads.
     */
    std::shared_ptr<nn::WeightSnapshot> weights;
};

/**
 * Promote @p checkpoint (which must carry a model matching the
 * process vocabulary) into a ModelSnapshot. The checkpoint is
 * consumed.
 */
ModelSnapshot makeModelSnapshot(Checkpoint &&checkpoint);

/**
 * Load @p path and promote it. The checkpoint is read and the
 * snapshot constructed exactly once; share the result across
 * engines instead of re-loading. Errors name @p path.
 */
ModelSnapshot loadModelSnapshot(const std::string &path);

} // namespace difftune::io

#endif // DIFFTUNE_IO_SNAPSHOT_HH
