/**
 * @file
 * ModelSnapshot construction.
 */

#include "io/snapshot.hh"

#include "isa/tokens.hh"

namespace difftune::io
{

ModelSnapshot
makeModelSnapshot(Checkpoint &&checkpoint)
{
    fatal_if(!checkpoint.model,
             "checkpoint carries no model; nothing to serve");
    fatal_if(checkpoint.vocabSize != isa::theVocab().size(),
             "checkpoint vocabulary size {} does not match this "
             "process's {}",
             checkpoint.vocabSize, isa::theVocab().size());

    ModelSnapshot snapshot;
    snapshot.model = std::shared_ptr<const surrogate::Model>(
        std::move(checkpoint.model));
    if (checkpoint.dist)
        snapshot.dist = std::make_shared<const params::SamplingDist>(
            std::move(*checkpoint.dist));
    if (checkpoint.table)
        snapshot.table = std::make_shared<const params::ParamTable>(
            std::move(*checkpoint.table));
    snapshot.weightPrecision = checkpoint.weightPrecision;
    snapshot.weights = surrogate::makeWeightSnapshot(snapshot.model);
    return snapshot;
}

ModelSnapshot
loadModelSnapshot(const std::string &path)
{
    // loadCheckpoint errors already name the path; tag the
    // promotion-stage validations with it too.
    Checkpoint checkpoint = loadCheckpoint(path);
    try {
        return makeModelSnapshot(std::move(checkpoint));
    } catch (const std::exception &error) {
        fatal("checkpoint '{}': {}", path,
              stripErrorPrefix(error.what()));
    }
}

} // namespace difftune::io
