/**
 * @file
 * Minimal intrusive-order LRU cache: an std::list holds entries in
 * recency order and an unordered_map indexes list iterators, so get,
 * put and eviction are all O(1). Used by the prediction engine to
 * memoize per-block results keyed by canonicalized block text.
 */

#ifndef DIFFTUNE_SERVE_LRU_CACHE_HH
#define DIFFTUNE_SERVE_LRU_CACHE_HH

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>

#include "base/logging.hh"

namespace difftune::serve
{

template <typename Key, typename Value>
class LruCache
{
  public:
    explicit LruCache(size_t capacity) : capacity_(capacity)
    {
        panic_if(capacity == 0, "LRU cache capacity must be positive");
    }

    /**
     * Look up @p key; a hit refreshes its recency and returns a
     * pointer valid until the next put(). Miss returns nullptr.
     */
    const Value *
    get(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Insert or refresh @p key, evicting the LRU entry when full. */
    void
    put(Key key, Value value)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        if (index_.size() >= capacity_) {
            index_.erase(order_.back().first);
            order_.pop_back();
        }
        order_.emplace_front(std::move(key), std::move(value));
        index_.emplace(order_.front().first, order_.begin());
    }

    size_t size() const { return index_.size(); }
    size_t capacity() const { return capacity_; }

  private:
    using Entry = std::pair<Key, Value>;

    size_t capacity_;
    std::list<Entry> order_; ///< front = most recently used
    std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_LRU_CACHE_HH
