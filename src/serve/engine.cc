/**
 * @file
 * PredictionEngine implementation.
 */

#include "serve/engine.hh"

#include <unordered_map>

#include "base/env.hh"
#include "base/parallel.hh"
#include "core/raw_table.hh"
#include "isa/parse.hh"

namespace difftune::serve
{

PredictionEngine::PredictionEngine(io::Checkpoint checkpoint,
                                   ServeConfig config)
    : model_(std::move(checkpoint.model)),
      table_(std::move(checkpoint.table)),
      workers_(config.workers > 0 ? config.workers : workerThreads()),
      cache_(config.cacheCapacity)
{
    fatal_if(!model_, "checkpoint carries no model; nothing to serve");
    fatal_if(checkpoint.vocabSize != isa::theVocab().size(),
             "checkpoint vocabulary size {} does not match this "
             "process's {}",
             checkpoint.vocabSize, isa::theVocab().size());

    const int param_dim = model_->config().paramDim;
    if (param_dim > 0) {
        // A DiffTune surrogate needs its frozen inputs: the learned
        // table and the sampling distribution whose widths normalize
        // the table entries.
        fatal_if(!table_, "surrogate checkpoint (paramDim {}) carries "
                 "no parameter table",
                 param_dim);
        fatal_if(!checkpoint.dist,
                 "surrogate checkpoint (paramDim {}) carries no "
                 "sampling distribution",
                 param_dim);
        fatal_if(table_->numOpcodes() != isa::theIsa().numOpcodes(),
                 "checkpoint table has {} opcodes, ISA has {}",
                 table_->numOpcodes(), isa::theIsa().numOpcodes());
        const core::ParamNormalizer norm(*checkpoint.dist);
        fatal_if(norm.paramDim() != param_dim,
                 "checkpoint sampling distribution implies paramDim "
                 "{}, model expects {}",
                 norm.paramDim(), param_dim);
        // The table is frozen from here on, so each opcode's input
        // column is a constant — precompute all of them once.
        opcodeInputs_.reserve(table_->numOpcodes());
        for (size_t op = 0; op < table_->numOpcodes(); ++op)
            opcodeInputs_.push_back(core::opcodeParamInput(
                *table_, isa::OpcodeId(op), norm));
    }

    graphs_.resize(size_t(workers_));
    for (auto &graph : graphs_)
        graph = std::make_unique<nn::Graph>();
}

PredictionEngine
PredictionEngine::fromFile(const std::string &path, ServeConfig config)
{
    return PredictionEngine(io::loadCheckpoint(path), config);
}

double
PredictionEngine::forwardEncoded(nn::Graph &graph,
                                 const surrogate::EncodedBlock &encoded,
                                 const isa::BasicBlock &block) const
{
    fatal_if(block.empty(), "cannot predict an empty block");
    nn::Ctx ctx{graph, model_->params(), nullptr};
    std::vector<nn::Var> inputs;
    if (!opcodeInputs_.empty()) {
        inputs.reserve(block.size());
        for (const auto &inst : block.insts)
            inputs.push_back(
                graph.input(opcodeInputs_[size_t(inst.opcode)]));
    }
    nn::Var pred = graph.exp(model_->forward(ctx, encoded, inputs));
    return graph.scalarValue(pred);
}

double
PredictionEngine::predict(const std::string &block_text)
{
    return predictBlock(isa::parseBlock(block_text));
}

double
PredictionEngine::predictBlock(const isa::BasicBlock &block)
{
    ++stats_.requests;
    std::string key = isa::toString(block);
    if (const double *hit = cache_.get(key)) {
        ++stats_.hits;
        return *hit;
    }
    ++stats_.misses;
    ++stats_.forwards;
    nn::Graph &graph = *graphs_.front();
    graph.clear();
    const double prediction =
        forwardEncoded(graph, surrogate::encodeBlock(block), block);
    cache_.put(std::move(key), prediction);
    return prediction;
}

std::vector<double>
PredictionEngine::predictAll(const std::vector<std::string> &block_texts)
{
    ++stats_.batches;
    stats_.requests += block_texts.size();

    std::vector<double> results(block_texts.size(), 0.0);
    std::vector<Miss> misses;
    std::unordered_map<std::string, size_t> miss_index;

    // Resolve the cache on the submit thread; only genuinely new
    // canonical blocks (deduplicated within the batch) fan out. Input
    // validation must also happen here — a fatal() thrown inside a
    // worker-pool shard would escape the pool thread uncaught.
    for (size_t i = 0; i < block_texts.size(); ++i) {
        isa::BasicBlock block = isa::parseBlock(block_texts[i]);
        fatal_if(block.empty(),
                 "cannot predict an empty block (batch index {})", i);
        std::string key = isa::toString(block);
        if (const double *hit = cache_.get(key)) {
            ++stats_.hits;
            results[i] = *hit;
            continue;
        }
        ++stats_.misses;
        auto it = miss_index.find(key);
        if (it == miss_index.end()) {
            it = miss_index.emplace(key, misses.size()).first;
            misses.push_back(Miss{std::move(key), std::move(block),
                                  0.0, {}});
        }
        misses[it->second].outputs.push_back(uint32_t(i));
    }

    stats_.forwards += misses.size();

    // One reusable graph per shard; the shard partition is a pure
    // function of (count, workers), and each block's forward pass is
    // independent, so results do not depend on the worker count.
    parallelShards(misses.size(), workers_,
                   [&](size_t lo, size_t hi, int shard) {
                       nn::Graph &graph = *graphs_[size_t(shard)];
                       for (size_t m = lo; m < hi; ++m) {
                           graph.clear();
                           misses[m].prediction = forwardEncoded(
                               graph,
                               surrogate::encodeBlock(misses[m].block),
                               misses[m].block);
                       }
                   });

    // Publish in deterministic (batch) order.
    for (Miss &miss : misses) {
        for (uint32_t slot : miss.outputs)
            results[slot] = miss.prediction;
        cache_.put(std::move(miss.key), miss.prediction);
    }
    return results;
}

double
PredictionEngine::predictUncached(const std::string &block_text) const
{
    const isa::BasicBlock block = isa::parseBlock(block_text);
    nn::Graph graph;
    return forwardEncoded(graph, surrogate::encodeBlock(block), block);
}

} // namespace difftune::serve
