/**
 * @file
 * PredictionEngine implementation.
 */

#include "serve/engine.hh"

#include <cmath>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "base/env.hh"
#include "base/parallel.hh"
#include "core/raw_table.hh"
#include "isa/parse.hh"

namespace difftune::serve
{

PredictionEngine::PredictionEngine(io::Checkpoint checkpoint,
                                   ServeConfig config)
    : model_(std::move(checkpoint.model)),
      table_(std::move(checkpoint.table)),
      workers_(config.workers > 0 ? config.workers : workerThreads()),
      precision_(config.precision), textCache_(config.cacheCapacity),
      cache_(config.cacheCapacity)
{
    fatal_if(!model_, "checkpoint carries no model; nothing to serve");
    fatal_if(checkpoint.vocabSize != isa::theVocab().size(),
             "checkpoint vocabulary size {} does not match this "
             "process's {}",
             checkpoint.vocabSize, isa::theVocab().size());

    const int param_dim = model_->config().paramDim;
    if (param_dim > 0) {
        // A DiffTune surrogate needs its frozen inputs: the learned
        // table and the sampling distribution whose widths normalize
        // the table entries.
        fatal_if(!table_, "surrogate checkpoint (paramDim {}) carries "
                 "no parameter table",
                 param_dim);
        fatal_if(!checkpoint.dist,
                 "surrogate checkpoint (paramDim {}) carries no "
                 "sampling distribution",
                 param_dim);
        fatal_if(table_->numOpcodes() != isa::theIsa().numOpcodes(),
                 "checkpoint table has {} opcodes, ISA has {}",
                 table_->numOpcodes(), isa::theIsa().numOpcodes());
        const core::ParamNormalizer norm(*checkpoint.dist);
        fatal_if(norm.paramDim() != param_dim,
                 "checkpoint sampling distribution implies paramDim "
                 "{}, model expects {}",
                 norm.paramDim(), param_dim);
        // The table is frozen from here on, so each opcode's input
        // column is a constant — precompute all of them once.
        opcodeInputs_.reserve(table_->numOpcodes());
        for (size_t op = 0; op < table_->numOpcodes(); ++op)
            opcodeInputs_.push_back(core::opcodeParamInput(
                *table_, isa::OpcodeId(op), norm));
    }

    // One batched executor and one instruction-hidden memo table
    // per shard. In kF32 mode each weight conversion happens here —
    // once per load, never on the request path.
    batched_.reserve(size_t(workers_));
    for (int shard = 0; shard < workers_; ++shard) {
        batched_.push_back(std::make_unique<nn::BatchedForward>(
            model_->params(), precision_));
        instCaches_.emplace_back();
    }
}

PredictionEngine
PredictionEngine::fromFile(const std::string &path, ServeConfig config)
{
    return PredictionEngine(io::loadCheckpoint(path), config);
}

double
PredictionEngine::forwardEncoded(nn::Graph &graph,
                                 const surrogate::EncodedBlock &encoded,
                                 const isa::BasicBlock &block) const
{
    fatal_if(block.empty(), "cannot predict an empty block");
    nn::Ctx ctx{graph, model_->params(), nullptr};
    std::vector<nn::Var> inputs;
    if (!opcodeInputs_.empty()) {
        inputs.reserve(block.size());
        for (const auto &inst : block.insts)
            inputs.push_back(
                graph.input(opcodeInputs_[size_t(inst.opcode)]));
    }
    nn::Var pred = graph.exp(model_->forward(ctx, encoded, inputs));
    return graph.scalarValue(pred);
}

void
PredictionEngine::forwardMissBatch(int shard,
                                   std::vector<Miss> &misses,
                                   size_t lo, size_t hi)
{
    nn::BatchedForward &bf = *batched_[size_t(shard)];
    const size_t count = hi - lo;
    std::vector<surrogate::EncodedBlock> encoded;
    std::vector<const surrogate::EncodedBlock *> blocks;
    std::vector<std::vector<const nn::Tensor *>> inst_params;
    encoded.reserve(count);
    blocks.reserve(count);
    for (size_t m = lo; m < hi; ++m)
        encoded.push_back(surrogate::encodeBlock(misses[m].block));
    for (const auto &e : encoded)
        blocks.push_back(&e);
    if (!opcodeInputs_.empty()) {
        inst_params.reserve(count);
        for (size_t m = lo; m < hi; ++m) {
            inst_params.emplace_back();
            inst_params.back().reserve(misses[m].block.size());
            for (const auto &inst : misses[m].block.insts)
                inst_params.back().push_back(
                    &opcodeInputs_[size_t(inst.opcode)]);
        }
    }
    std::vector<double> heads;
    model_->predictBatch(bf, blocks, inst_params, heads,
                         &instCaches_[size_t(shard)]);
    // Same expression as Graph::exp (the sequential path's final
    // node), so the kF64 batched prediction is bit-identical to
    // forwardEncoded's.
    for (size_t m = lo; m < hi; ++m)
        misses[m].prediction =
            std::exp(std::min(heads[m - lo], 30.0));
}

double
PredictionEngine::predict(const std::string &block_text)
{
    if (const double *hit = textCache_.get(block_text)) {
        ++stats_.requests;
        ++stats_.hits;
        return *hit;
    }
    const double prediction =
        predictBlock(isa::parseBlock(block_text));
    textCache_.put(block_text, prediction);
    return prediction;
}

double
PredictionEngine::predictBlock(const isa::BasicBlock &block)
{
    ++stats_.requests;
    fatal_if(block.empty(), "cannot predict an empty block");
    std::string key = isa::toString(block);
    if (const double *hit = cache_.get(key)) {
        ++stats_.hits;
        return *hit;
    }
    ++stats_.misses;
    ++stats_.forwards;
    // A batch of one on shard 0's executor: the cache must hold
    // predictions from one execution mode only, whichever precision
    // is being served.
    std::vector<Miss> one(1);
    one[0].block = block;
    forwardMissBatch(0, one, 0, 1);
    const double prediction = one[0].prediction;
    cache_.put(std::move(key), prediction);
    return prediction;
}

std::vector<double>
PredictionEngine::predictAll(const std::vector<std::string> &block_texts)
{
    ++stats_.batches;
    stats_.requests += block_texts.size();

    std::vector<double> results(block_texts.size(), 0.0);
    std::vector<Miss> misses;
    std::vector<uint32_t> parsed; ///< indices that missed textCache_
    /** In-batch raw-text dedup: first slot to parse each text. */
    std::unordered_map<std::string_view, uint32_t> raw_first;
    /** (duplicate slot, first slot) pairs resolved after publish. */
    std::vector<std::pair<uint32_t, uint32_t>> raw_dups;
    std::unordered_map<std::string, size_t> miss_index;

    // Resolve the caches on the submit thread — the raw-text front
    // cache first (repeat traffic skips parsing entirely, including
    // exact repeats within this batch), then the canonical cache;
    // only genuinely new canonical blocks (deduplicated within the
    // batch) fan out. Input validation must also happen here — a
    // fatal() thrown inside a worker-pool shard would escape the
    // pool thread uncaught.
    for (size_t i = 0; i < block_texts.size(); ++i) {
        if (const double *hit = textCache_.get(block_texts[i])) {
            ++stats_.hits;
            results[i] = *hit;
            continue;
        }
        auto [first, fresh] =
            raw_first.try_emplace(block_texts[i], uint32_t(i));
        if (!fresh) {
            // An exact repeat within this batch: skip the parse but
            // count it as a miss — it was not in any cache at submit
            // time (ServeStats::hits means answered from the LRU).
            ++stats_.misses;
            raw_dups.emplace_back(uint32_t(i), first->second);
            continue;
        }
        parsed.push_back(uint32_t(i));
        isa::BasicBlock block = isa::parseBlock(block_texts[i]);
        fatal_if(block.empty(),
                 "cannot predict an empty block (batch index {})", i);
        std::string key = isa::toString(block);
        if (const double *hit = cache_.get(key)) {
            ++stats_.hits;
            results[i] = *hit;
            continue;
        }
        ++stats_.misses;
        auto it = miss_index.find(key);
        if (it == miss_index.end()) {
            it = miss_index.emplace(key, misses.size()).first;
            misses.push_back(Miss{std::move(key), std::move(block),
                                  0.0, {}});
        }
        misses[it->second].outputs.push_back(uint32_t(i));
    }

    stats_.forwards += misses.size();

    // One batched executor per shard: the shard's misses run as one
    // lane batch (shared weight reads, lockstep steps, instruction
    // dedup). The shard partition is a pure function of (count,
    // workers), and each lane's arithmetic is independent, so
    // results do not depend on the worker count or the batch
    // composition.
    parallelShards(misses.size(), workers_,
                   [&](size_t lo, size_t hi, int shard) {
                       forwardMissBatch(shard, misses, lo, hi);
                   });

    // Publish in deterministic (batch) order.
    for (Miss &miss : misses) {
        for (uint32_t slot : miss.outputs)
            results[slot] = miss.prediction;
        cache_.put(std::move(miss.key), miss.prediction);
    }
    for (auto [dup, first] : raw_dups)
        results[dup] = results[first];
    for (uint32_t i : parsed)
        textCache_.put(block_texts[i], results[i]);
    return results;
}

double
PredictionEngine::predictUncached(const std::string &block_text) const
{
    const isa::BasicBlock block = isa::parseBlock(block_text);
    nn::Graph graph;
    return forwardEncoded(graph, surrogate::encodeBlock(block), block);
}

} // namespace difftune::serve
