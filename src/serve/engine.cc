/**
 * @file
 * PredictionEngine: v1 surface, v2 internals.
 */

#include "serve/engine.hh"

namespace difftune::serve
{

AsyncConfig
PredictionEngine::toAsyncConfig(const ServeConfig &config)
{
    AsyncConfig async;
    async.workers = config.workers;
    async.cacheCapacity = config.cacheCapacity;
    async.precision = config.precision;
    return async;
}

PredictionEngine::PredictionEngine(io::Checkpoint checkpoint,
                                   ServeConfig config)
    : engine_(std::make_unique<AsyncEngine>(std::move(checkpoint),
                                            toAsyncConfig(config)))
{
}

PredictionEngine::PredictionEngine(io::ModelSnapshot artifact,
                                   ServeConfig config)
    : engine_(std::make_unique<AsyncEngine>(std::move(artifact),
                                            toAsyncConfig(config)))
{
}

PredictionEngine
PredictionEngine::fromFile(const std::string &path, ServeConfig config)
{
    // One shared load-and-wrap path (path-naming errors included):
    // AsyncEngine::loadFromFile.
    PredictionEngine engine;
    engine.engine_ =
        AsyncEngine::loadFromFile(path, toAsyncConfig(config));
    return engine;
}

} // namespace difftune::serve
