/**
 * @file
 * Thread-safe sharded-mutex wrapper over lab::PolicyCache.
 *
 * One global cache lock would serialize every request of a
 * concurrent serving engine on a single mutex; instead the key space
 * is striped over S independent policy-driven caches, each behind
 * its own mutex, so concurrent clients only contend when their keys
 * land in the same stripe. get() returns the value by copy — a
 * pointer into a stripe would dangle the moment another thread
 * touched it.
 *
 * Since the traffic-lab PR each stripe is a lab::PolicyCache driven
 * by a pluggable lab::CachePolicy (LRU by default, byte-identical
 * decisions to the legacy LruCache; see docs/TRAFFIC_LAB.md), so an
 * AsyncEngine can be constructed with any replacement/admission
 * policy. Striping and policy choice change *eviction* behavior
 * versus one big LRU (each stripe decides independently, admission
 * filters may decline inserts), which by the serving engine's
 * determinism contract may only affect speed: predictions are pure
 * per canonical block, so a cache can never change results, only
 * whether a forward pass is re-run.
 */

#ifndef DIFFTUNE_SERVE_SHARDED_CACHE_HH
#define DIFFTUNE_SERVE_SHARDED_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "lab/policy.hh"
#include "lab/policy_cache.hh"

namespace difftune::serve
{

template <typename Key, typename Value>
class ShardedLruCache
{
  public:
    /**
     * @param capacity total entry budget, split evenly (rounded up)
     *        across stripes
     * @param stripes lock stripe count (>= 1)
     * @param policy per-stripe policy factory (null: classic LRU)
     */
    ShardedLruCache(size_t capacity, int stripes,
                    lab::PolicyFactory policy = nullptr)
        : capacity_(capacity)
    {
        panic_if(stripes < 1, "ShardedLruCache: {} stripes", stripes);
        panic_if(capacity == 0,
                 "ShardedLruCache: capacity must be positive");
        if (!policy)
            policy = [](size_t cap) { return lab::makeLruPolicy(cap); };
        const size_t per_stripe =
            (capacity + size_t(stripes) - 1) / size_t(stripes);
        stripes_.reserve(size_t(stripes));
        for (int i = 0; i < stripes; ++i)
            stripes_.push_back(
                std::make_unique<Stripe>(per_stripe, policy));
    }

    /** Thread-safe lookup; a hit refreshes recency in its stripe. */
    std::optional<Value>
    get(const Key &key)
    {
        Stripe &stripe = stripeFor(key);
        std::lock_guard lock(stripe.mutex);
        if (const Value *hit = stripe.cache.get(key))
            return *hit;
        return std::nullopt;
    }

    /**
     * Thread-safe insert/refresh. Returns false iff the stripe's
     * admission policy declined the key (nothing was stored).
     */
    bool
    put(Key key, Value value)
    {
        Stripe &stripe = stripeFor(key);
        std::lock_guard lock(stripe.mutex);
        return stripe.cache.put(std::move(key), std::move(value));
    }

    /** Entries across all stripes (locks each in turn). */
    size_t
    size() const
    {
        size_t total = 0;
        for (const auto &stripe : stripes_) {
            std::lock_guard lock(stripe->mutex);
            total += stripe->cache.size();
        }
        return total;
    }

    /** Hit/miss/eviction counters summed over stripes. */
    lab::CacheCounters
    counters() const
    {
        lab::CacheCounters total;
        for (const auto &stripe : stripes_) {
            std::lock_guard lock(stripe->mutex);
            total += stripe->cache.counters();
        }
        return total;
    }

    /** The active policy's name ("lru" unless configured). */
    const char *
    policyName() const
    {
        return stripes_.front()->cache.policyName();
    }

    /**
     * The configured total entry budget, exactly as passed to the
     * constructor (what `difftune_serve info` and sizing math should
     * report). Enforcement is per stripe — each stripe holds at most
     * ceil(capacity / stripes) entries — so when capacity does not
     * divide the stripe count, residency may exceed this budget by
     * up to stripes - 1 entries; enforcedCapacity() is that hard
     * bound. (This used to report stripes * per_stripe, overstating
     * the budget: 10 over 4 stripes reported 12.)
     */
    size_t capacity() const { return capacity_; }

    /** The hard residency bound actually enforced:
     *  stripes * ceil(capacity / stripes) >= capacity(). */
    size_t
    enforcedCapacity() const
    {
        return stripes_.size() * stripes_.front()->cache.capacity();
    }

    int numStripes() const { return int(stripes_.size()); }

    /**
     * The stripe index @p key lands in — exposed so the stripe-
     * balance test can audit the mix below against dense BlockId
     * key populations without replicating it.
     */
    size_t
    stripeIndex(const Key &key) const
    {
        // Finalize the hash (full splitmix64 finalizer) before
        // reducing: std::hash is identity for integers on common
        // implementations, so dense BlockId keys would otherwise
        // land in stripes by `id % stripes` — balanced for
        // sequential ids but perfectly correlated with the bits the
        // per-stripe unordered_map reduces the same hash by, and
        // pathological for any strided id population. The two
        // multiply-xorshift rounds decorrelate both (measured: 10k
        // sequential BlockIds over 8 stripes stay within 10% of
        // fair share, worst stripe ~8.1% low; see
        // ShardedLruCacheTest.StripeBalanceOnDenseBlockIds).
        return size_t(lab::finalizeHash(uint64_t(hash_(key))) %
                      stripes_.size());
    }

  private:
    struct Stripe
    {
        Stripe(size_t capacity, const lab::PolicyFactory &policy)
            : cache(capacity, policy(capacity))
        {
        }

        mutable std::mutex mutex;
        lab::PolicyCache<Key, Value> cache;
    };

    Stripe &
    stripeFor(const Key &key)
    {
        return *stripes_[stripeIndex(key)];
    }

    size_t capacity_; ///< configured budget (see capacity())
    std::vector<std::unique_ptr<Stripe>> stripes_;
    std::hash<Key> hash_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_SHARDED_CACHE_HH
