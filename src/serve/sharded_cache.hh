/**
 * @file
 * Thread-safe sharded-mutex wrapper over LruCache.
 *
 * One global cache lock would serialize every request of a
 * concurrent serving engine on a single mutex; instead the key space
 * is striped over S independent LruCaches, each behind its own
 * mutex, so concurrent clients only contend when their keys land in
 * the same stripe. get() returns the value by copy — a pointer into
 * a stripe would dangle the moment another thread touched it.
 *
 * Striping changes *eviction* behavior versus one big LRU (each
 * stripe evicts independently), which by the serving engine's
 * determinism contract may only affect speed: predictions are pure
 * per canonical block, so a cache can never change results, only
 * whether a forward pass is re-run.
 */

#ifndef DIFFTUNE_SERVE_SHARDED_CACHE_HH
#define DIFFTUNE_SERVE_SHARDED_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/lru_cache.hh"

namespace difftune::serve
{

template <typename Key, typename Value>
class ShardedLruCache
{
  public:
    /**
     * @param capacity total entry budget, split evenly (rounded up)
     *        across stripes
     * @param stripes lock stripe count (>= 1)
     */
    ShardedLruCache(size_t capacity, int stripes)
        : capacity_(capacity)
    {
        panic_if(stripes < 1, "ShardedLruCache: {} stripes", stripes);
        panic_if(capacity == 0,
                 "ShardedLruCache: capacity must be positive");
        const size_t per_stripe =
            (capacity + size_t(stripes) - 1) / size_t(stripes);
        stripes_.reserve(size_t(stripes));
        for (int i = 0; i < stripes; ++i)
            stripes_.push_back(std::make_unique<Stripe>(per_stripe));
    }

    /** Thread-safe lookup; a hit refreshes recency in its stripe. */
    std::optional<Value>
    get(const Key &key)
    {
        Stripe &stripe = stripeFor(key);
        std::lock_guard lock(stripe.mutex);
        if (const Value *hit = stripe.cache.get(key))
            return *hit;
        return std::nullopt;
    }

    /** Thread-safe insert/refresh. */
    void
    put(Key key, Value value)
    {
        Stripe &stripe = stripeFor(key);
        std::lock_guard lock(stripe.mutex);
        stripe.cache.put(std::move(key), std::move(value));
    }

    /** Entries across all stripes (locks each in turn). */
    size_t
    size() const
    {
        size_t total = 0;
        for (const auto &stripe : stripes_) {
            std::lock_guard lock(stripe->mutex);
            total += stripe->cache.size();
        }
        return total;
    }

    /**
     * The configured total entry budget, exactly as passed to the
     * constructor (what `difftune_serve info` and sizing math should
     * report). Enforcement is per stripe — each stripe holds at most
     * ceil(capacity / stripes) entries — so when capacity does not
     * divide the stripe count, residency may exceed this budget by
     * up to stripes - 1 entries; enforcedCapacity() is that hard
     * bound. (This used to report stripes * per_stripe, overstating
     * the budget: 10 over 4 stripes reported 12.)
     */
    size_t capacity() const { return capacity_; }

    /** The hard residency bound actually enforced:
     *  stripes * ceil(capacity / stripes) >= capacity(). */
    size_t
    enforcedCapacity() const
    {
        return stripes_.size() * stripes_.front()->cache.capacity();
    }

    int numStripes() const { return int(stripes_.size()); }

  private:
    struct Stripe
    {
        explicit Stripe(size_t capacity) : cache(capacity) {}

        mutable std::mutex mutex;
        LruCache<Key, Value> cache;
    };

    Stripe &
    stripeFor(const Key &key)
    {
        // Finalize the hash (splitmix64) before reducing: the
        // stripe index must not correlate with the bits the
        // per-stripe unordered_map reduces the same hash by.
        uint64_t mix = uint64_t(hash_(key));
        mix ^= mix >> 30;
        mix *= 0xbf58476d1ce4e5b9ULL;
        mix ^= mix >> 27;
        return *stripes_[size_t(mix % stripes_.size())];
    }

    size_t capacity_; ///< configured budget (see capacity())
    std::vector<std::unique_ptr<Stripe>> stripes_;
    std::hash<Key> hash_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_SHARDED_CACHE_HH
