/**
 * @file
 * AsyncEngine implementation.
 *
 * Locking order (always take in this order, never hold both unless
 * noted): queueMutex_ guards only the request queue and the
 * stop/flush flags; batchMutex_ guards the shard executors and is
 * held across a whole serveBatch; the cache stripes are leaf locks
 * taken under either or neither. The dispatcher serves with no
 * queue lock held, so clients keep submitting while a batch runs.
 */

#include "serve/async_engine.hh"

#include <chrono>
#include <cmath>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "base/env.hh"
#include "base/parallel.hh"
#include "core/raw_table.hh"
#include "isa/parse.hh"
#include "obs/stage_timer.hh"

namespace difftune::serve
{

namespace
{

int
cacheStripes(const AsyncConfig &config)
{
    return config.cacheStripes > 0 ? config.cacheStripes : 8;
}

} // namespace

AsyncEngine::AsyncEngine(io::ModelSnapshot artifact,
                         AsyncConfig config)
    : artifact_(std::move(artifact)),
      workers_(config.workers > 0 ? config.workers : workerThreads()),
      precision_(config.precision), config_(config),
      interner_(config.internCapacity > 0 ? 2 * config.internCapacity
                                          : size_t(1) << 17,
                config.internCapacity > 0 ? config.internCapacity
                                          : size_t(1) << 16),
      textCache_(config.cacheCapacity, cacheStripes(config),
                 config.cachePolicy),
      cache_(config.cacheCapacity, cacheStripes(config),
             config.cachePolicy),
      encodedCache_(config.encodedCapacity > 0
                        ? config.encodedCapacity
                        : 4 * config.cacheCapacity,
                    cacheStripes(config), config.cachePolicy)
{
    fatal_if(!artifact_.model || !artifact_.weights,
             "AsyncEngine needs a promoted ModelSnapshot "
             "(io::makeModelSnapshot)");
    fatal_if(config_.maxBatch == 0, "maxBatch must be >= 1");
    fatal_if(config_.maxWaitMicros < 0, "maxWaitMicros must be >= 0");

    const int param_dim = artifact_.model->config().paramDim;
    if (param_dim > 0) {
        // A DiffTune surrogate needs its frozen inputs: the learned
        // table and the sampling distribution whose widths normalize
        // the table entries.
        fatal_if(!artifact_.table,
                 "surrogate checkpoint (paramDim {}) carries no "
                 "parameter table",
                 param_dim);
        fatal_if(!artifact_.dist,
                 "surrogate checkpoint (paramDim {}) carries no "
                 "sampling distribution",
                 param_dim);
        const params::ParamTable &table = *artifact_.table;
        fatal_if(table.numOpcodes() != isa::theIsa().numOpcodes(),
                 "checkpoint table has {} opcodes, ISA has {}",
                 table.numOpcodes(), isa::theIsa().numOpcodes());
        const core::ParamNormalizer norm(*artifact_.dist);
        fatal_if(norm.paramDim() != param_dim,
                 "checkpoint sampling distribution implies paramDim "
                 "{}, model expects {}",
                 norm.paramDim(), param_dim);
        // The table is frozen from here on, so each opcode's input
        // column is a constant. They live in the shared snapshot:
        // a sibling engine that already completed them makes them
        // visible through hasInputColumns and we skip the whole
        // computation; in a genuine construction race both compute
        // identical columns (pure function of the frozen
        // checkpoint) and setInputColumns keeps the winner's with
        // proper synchronization.
        if (!artifact_.weights->hasInputColumns()) {
            std::vector<nn::Tensor> columns;
            columns.reserve(table.numOpcodes());
            for (size_t op = 0; op < table.numOpcodes(); ++op)
                columns.push_back(core::opcodeParamInput(
                    table, isa::OpcodeId(op), norm));
            artifact_.weights->setInputColumns(std::move(columns));
        }
    }
    snapshot_ = artifact_.weights;

    // One executor + instruction-hidden memo per shard, all
    // borrowing the one snapshot: the kF32 conversion and every
    // input projection happen once per engine (or once per
    // *artifact*, when engines share), no longer once per shard.
    // The dispatcher thread starts lazily on the first submit.
    shards_.reserve(size_t(workers_));
    for (int shard = 0; shard < workers_; ++shard) {
        shards_.emplace_back();
        shards_.back().batched = std::make_unique<nn::BatchedForward>(
            snapshot_, precision_);
    }

    registerMetrics();
}

void
AsyncEngine::registerMetrics()
{
    // The kill switch: with DIFFTUNE_OBS_OFF set (or setEnabled
    // false) every stage pointer stays null and the spans below
    // degrade to single branches — no clock reads, no records, no
    // registry entries. Sampled once here; the engine's lifetime
    // pins the answer.
    if (!obs::enabled())
        return;
    static std::atomic<uint64_t> nextEngineId{0};
    metricPrefix_ =
        config_.metricPrefix.empty()
            ? "serve.engine" + std::to_string(nextEngineId.fetch_add(
                                   1, std::memory_order_relaxed))
            : config_.metricPrefix;
    registry_ = config_.registry ? config_.registry
                                 : &obs::MetricRegistry::global();
    const std::string p = metricPrefix_ + ".";
    std::vector<std::string> linked;
    try {
        // ServeStats mirrors: the registry reads the live atomics
        // (no second copy to drift); ~AsyncEngine unlinks them.
        const std::pair<const char *, const std::atomic<uint64_t> *>
            mirrors[] = {
                {"requests", &stats_.requests},
                {"text_hits", &stats_.textHits},
                {"text_misses", &stats_.textMisses},
                {"hits", &stats_.hits},
                {"misses", &stats_.misses},
                {"forwards", &stats_.forwards},
                {"batches", &stats_.batches},
                {"intern_hits", &stats_.internHits},
                {"encode_hits", &stats_.encodeHits},
            };
        for (const auto &[field, source] : mirrors) {
            registry_->linkCounter(p + field, source);
            linked.push_back(p + field);
        }
        // Registry-owned stage instrumentation (immortal; engines
        // reusing an explicit prefix sequentially accumulate into
        // the same histograms).
        stage_.request = &registry_->histogram(p + "request_ns");
        stage_.parse = &registry_->histogram(p + "stage.parse_ns");
        stage_.intern = &registry_->histogram(p + "stage.intern_ns");
        stage_.predCache =
            &registry_->histogram(p + "stage.pred_cache_ns");
        stage_.encode = &registry_->histogram(p + "stage.encode_ns");
        stage_.forward =
            &registry_->histogram(p + "stage.forward_ns");
        stage_.queueWait =
            &registry_->histogram(p + "stage.queue_wait_ns");
        stage_.coalesce =
            &registry_->histogram(p + "stage.coalesce_ns");
        stage_.batchSize =
            &registry_->histogram(p + "batch_size");
        stage_.queueDepth = &registry_->gauge(p + "queue_depth");
    } catch (...) {
        // A prefix collision (two live engines sharing a prefix)
        // aborts construction; drop exactly the links THIS call
        // made — a prefix-wide unlink would tear down the other
        // live engine's mirrors — so no dangling ServeStats
        // pointer survives this engine.
        for (const std::string &name : linked)
            registry_->unlinkCounter(name);
        stage_ = {};
        registry_ = nullptr;
        throw;
    }
}

AsyncEngine::AsyncEngine(io::Checkpoint checkpoint, AsyncConfig config)
    : AsyncEngine(io::makeModelSnapshot(std::move(checkpoint)),
                  std::move(config))
{
}

std::unique_ptr<AsyncEngine>
AsyncEngine::loadFromFile(const std::string &path, AsyncConfig config)
{
    io::ModelSnapshot artifact = io::loadModelSnapshot(path);
    try {
        return std::make_unique<AsyncEngine>(std::move(artifact),
                                             std::move(config));
    } catch (const std::exception &error) {
        fatal("cannot serve checkpoint '{}': {}", path,
              stripErrorPrefix(error.what()));
    }
}

AsyncEngine::~AsyncEngine()
{
    shutdown();
    // The registry must stop reading this engine's ServeStats before
    // the struct dies; the stage histograms stay behind, frozen.
    if (registry_)
        registry_->unlinkCounters(metricPrefix_ + ".");
}

void
AsyncEngine::shutdown()
{
    stopped_.store(true, std::memory_order_release);
    {
        std::lock_guard lock(queueMutex_);
        stopping_ = true;
        ++flushes_;
    }
    queueCv_.notify_all();
    // Exactly one caller joins (joinable() goes false afterwards);
    // shutdownMutex_ makes concurrent shutdown() calls — including
    // one racing the destructor — serialize instead of double-join,
    // and every caller returns only once the drain is complete.
    std::lock_guard lock(shutdownMutex_);
    for (const auto &worker : pool_)
        if (worker->thread.joinable())
            worker->thread.join();
}

// --------------------------------------------------------------- intake

std::optional<double>
AsyncEngine::frontProbe(const std::string &text)
{
    ++stats_.requests;
    if (std::optional<double> hit = textCache_.get(text)) {
        ++stats_.textHits;
        ++stats_.hits;
        return hit;
    }
    ++stats_.textMisses;
    return std::nullopt;
}

std::future<double>
AsyncEngine::submit(std::string block_text)
{
    // Intake closes atomically at shutdown — even for requests the
    // front cache could still answer, so "closed" is unambiguous.
    // Rejection is a catchable EngineStoppedError, never fatal():
    // the daemon must survive clients racing a drain.
    if (stopped_.load(std::memory_order_acquire))
        throw EngineStoppedError();
    std::promise<double> promise;
    std::future<double> future = promise.get_future();
    if (std::optional<double> hit = frontProbe(block_text)) {
        promise.set_value(*hit);
        return future;
    }
    // Striped assignment: requests round-robin over the per-worker
    // intake queues. The stripe draw sits outside the lock — it
    // only has to distribute, not order.
    const uint64_t stripe =
        intakeStripe_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard lock(queueMutex_);
        if (stopping_) {
            // Keep the counters reconciled (hits + misses ==
            // requests) before rejecting.
            ++stats_.misses;
            throw EngineStoppedError();
        }
        ensureDispatchersLocked();
        pool_[size_t(stripe % pool_.size())]->queue.push_back(
            Pending{std::move(block_text), std::move(promise),
                    stage_.on() ? obs::nowNs() : 0});
        ++totalQueued_;
        if (stage_.on())
            stage_.queueDepth->set(int64_t(totalQueued_));
    }
    // One worker suffices for one request — unless it lands while
    // the only awake worker is mid-coalesce on another queue, which
    // a pool avoids by waking everyone (cheap at pool sizes).
    if (pool_.size() == 1)
        queueCv_.notify_one();
    else
        queueCv_.notify_all();
    return future;
}

std::vector<std::future<double>>
AsyncEngine::submitAll(std::vector<std::string> block_texts)
{
    if (stopped_.load(std::memory_order_acquire))
        throw EngineStoppedError();
    std::vector<std::future<double>> futures;
    futures.reserve(block_texts.size());
    std::vector<Pending> fresh;
    // One timestamp for the whole group: the members enqueue
    // together, and one clock read keeps the intake loop cheap.
    const uint64_t enqueued = stage_.on() ? obs::nowNs() : 0;
    for (std::string &text : block_texts) {
        std::promise<double> promise;
        futures.push_back(promise.get_future());
        if (std::optional<double> hit = frontProbe(text)) {
            promise.set_value(*hit);
            continue;
        }
        fresh.push_back(
            Pending{std::move(text), std::move(promise), enqueued});
    }
    if (!fresh.empty()) {
        const uint64_t stripe = intakeStripe_.fetch_add(
            fresh.size(), std::memory_order_relaxed);
        {
            std::lock_guard lock(queueMutex_);
            if (stopping_) {
                stats_.misses += fresh.size();
                throw EngineStoppedError();
            }
            ensureDispatchersLocked();
            // Group members stripe round-robin like singles, so a
            // large group spreads over the pool and its micro-
            // batches overlap (bit-stability is indifferent to the
            // split; ordering within a future group is irrelevant
            // because every member carries its own future).
            for (size_t i = 0; i < fresh.size(); ++i)
                pool_[size_t((stripe + i) % pool_.size())]
                    ->queue.push_back(std::move(fresh[i]));
            totalQueued_ += fresh.size();
            if (stage_.on())
                stage_.queueDepth->set(int64_t(totalQueued_));
            // The whole group is already here: let the dispatchers
            // skip the coalescing wait.
            ++flushes_;
        }
        queueCv_.notify_all();
    }
    return futures;
}

// ----------------------------------------------------------- sync calls

bool
AsyncEngine::sampleTick()
{
    return stage_.on() &&
           stageSampleTick_.fetch_add(1, std::memory_order_relaxed) %
                   kStageSamplePeriod ==
               0;
}

double
AsyncEngine::predict(const std::string &block_text)
{
    const bool sampled = sampleTick();
    obs::StageTimer span(sampled ? stage_.request : nullptr);
    if (std::optional<double> hit = frontProbe(block_text))
        return *hit;
    const std::vector<const std::string *> one{&block_text};
    std::vector<Outcome> outcomes = serveBatch(one, sampled);
    if (outcomes[0].error)
        std::rethrow_exception(outcomes[0].error);
    return outcomes[0].value;
}

std::vector<double>
AsyncEngine::predictAll(const std::vector<std::string> &block_texts)
{
    // Every request in the group completes when this call returns,
    // so the call span is each one's end-to-end latency: one pair of
    // clock reads, recorded once per request.
    const uint64_t begin = stage_.on() ? obs::nowNs() : 0;
    std::vector<double> results(block_texts.size(), 0.0);
    std::vector<uint32_t> unresolved;
    std::vector<const std::string *> todo;
    for (size_t i = 0; i < block_texts.size(); ++i) {
        if (std::optional<double> hit = frontProbe(block_texts[i]))
            results[i] = *hit;
        else {
            unresolved.push_back(uint32_t(i));
            todo.push_back(&block_texts[i]);
        }
    }
    if (!todo.empty()) {
        std::vector<Outcome> outcomes = serveBatch(todo, sampleTick());
        for (size_t j = 0; j < outcomes.size(); ++j) {
            if (outcomes[j].error)
                std::rethrow_exception(outcomes[j].error);
            results[unresolved[j]] = outcomes[j].value;
        }
    }
    if (stage_.on() && !block_texts.empty()) {
        const uint64_t elapsed = obs::elapsedNs(begin, obs::nowNs());
        for (size_t i = 0; i < block_texts.size(); ++i)
            stage_.request->record(elapsed);
    }
    return results;
}

double
AsyncEngine::predictBlock(const isa::BasicBlock &block)
{
    obs::StageTimer span(sampleTick() ? stage_.request : nullptr);
    ++stats_.requests;
    ++stats_.textMisses; // this entry point bypasses the text cache
    fatal_if(block.empty(), "cannot predict an empty block");
    bool known = false;
    const isa::BlockId id = interner_.internBlock(block, known);
    if (known)
        ++stats_.internHits;
    if (id != isa::invalidBlockId) {
        if (std::optional<double> hit = cache_.get(id)) {
            ++stats_.hits;
            return *hit;
        }
    }
    std::lock_guard lock(batchMutex_);
    // Re-probe under the batch lock: a racing batch may have just
    // published this block.
    if (id != isa::invalidBlockId) {
        if (std::optional<double> hit = cache_.get(id)) {
            ++stats_.hits;
            return *hit;
        }
    }
    ++stats_.misses;
    ++stats_.forwards;
    ++stats_.batches;
    // A batch of one on shard 0's executor: the cache must hold
    // predictions from one execution mode only, whichever precision
    // is being served.
    std::vector<Miss> one(1);
    one[0].id = id;
    one[0].block = block;
    forwardMissBatch(shards_[0], one, 0, 1);
    const double prediction = one[0].prediction;
    if (id != isa::invalidBlockId)
        cache_.put(id, prediction);
    return prediction;
}

// ----------------------------------------------------------- batch core

std::vector<AsyncEngine::Outcome>
AsyncEngine::serveBatch(const std::vector<const std::string *> &texts,
                        bool sample_laps)
{
    std::lock_guard lock(batchMutex_);
    return serveBatchOn(shards_, texts, sample_laps);
}

std::vector<AsyncEngine::Outcome>
AsyncEngine::serveBatchOn(
    std::vector<Shard> &shards,
    const std::vector<const std::string *> &texts, bool sample_laps)
{
    ++stats_.batches;
    // Chained laps: each stage boundary is one clock read shared
    // with the next stage (N stages cost N+1 reads, not 2N), and
    // only sampled calls (see kStageSamplePeriod) record laps.
    obs::StageClock clk(sample_laps);
    std::vector<Outcome> outcomes(texts.size());
    std::vector<Miss> misses;
    std::vector<uint32_t> parsed; ///< slots to publish to textCache_
    /** In-batch raw-text dedup: first slot to parse each text. */
    std::unordered_map<std::string_view, uint32_t> raw_first;
    /** (duplicate slot, first slot) pairs resolved after publish. */
    std::vector<std::pair<uint32_t, uint32_t>> raw_dups;
    /** In-batch canonical dedup, by interned id. */
    std::unordered_map<isa::BlockId, size_t> miss_index;

    for (size_t i = 0; i < texts.size(); ++i) {
        const std::string &text = *texts[i];
        // Every request here already missed the front cache at
        // submit time; re-probe in case a racing batch published it
        // since.
        if (std::optional<double> hit = textCache_.get(text)) {
            ++stats_.hits;
            outcomes[i].value = *hit;
            continue;
        }
        auto [first, fresh] =
            raw_first.try_emplace(text, uint32_t(i));
        if (!fresh) {
            // An exact repeat within this batch: skip the parse but
            // count it as a miss — it was not in any cache when
            // served (ServeStats::hits means answered from an LRU).
            ++stats_.misses;
            raw_dups.emplace_back(uint32_t(i), first->second);
            continue;
        }
        clk.restart();
        isa::BasicBlock block;
        try {
            block = isa::parseBlock(text);
            fatal_if(block.empty(), "cannot predict an empty block");
        } catch (...) {
            // Per-request failure: this request's future carries the
            // error; the rest of the batch is served normally.
            outcomes[i].error = std::current_exception();
            ++stats_.misses;
            continue;
        }
        clk.lap(stage_.parse);
        // Resolve the parsed block to its interned canonical id —
        // the key for the prediction and pre-encoded caches. A
        // near-miss spelling of a known block lands on its existing
        // id here, with no canonical string ever built.
        bool known = false;
        const isa::BlockId id = interner_.internBlock(block, known);
        if (known)
            ++stats_.internHits;
        clk.lap(stage_.intern);
        parsed.push_back(uint32_t(i));
        if (id != isa::invalidBlockId) {
            std::optional<double> hit = cache_.get(id);
            clk.lap(stage_.predCache);
            if (hit) {
                ++stats_.hits;
                outcomes[i].value = *hit;
                continue;
            }
            ++stats_.misses;
            auto it = miss_index.find(id);
            if (it == miss_index.end()) {
                it = miss_index.emplace(id, misses.size()).first;
                misses.push_back(
                    Miss{id, std::move(block), 0.0, {}});
            }
            misses[it->second].outputs.push_back(uint32_t(i));
        } else {
            // Interner full: serve this block uncachably (correct,
            // just not memoized) rather than evicting interned
            // state other keys depend on.
            ++stats_.misses;
            misses.push_back(Miss{id, std::move(block), 0.0, {}});
            misses.back().outputs.push_back(uint32_t(i));
        }
    }

    stats_.forwards += misses.size();

    // One batched executor per shard: the shard's misses run as one
    // lane batch (shared weight reads, lockstep steps, instruction
    // dedup). The shard partition is a pure function of (count,
    // workers), and each lane's arithmetic is independent, so
    // results do not depend on the worker count or the batch
    // composition.
    {
        obs::StageTimer forward_span(
            misses.empty() ? nullptr : stage_.forward);
        parallelShards(misses.size(), int(shards.size()),
                       [&](size_t lo, size_t hi, int shard) {
                           forwardMissBatch(shards[size_t(shard)],
                                            misses, lo, hi);
                       });
    }

    // Publish in deterministic (batch) order.
    for (Miss &miss : misses) {
        for (uint32_t slot : miss.outputs)
            outcomes[slot].value = miss.prediction;
        if (miss.id != isa::invalidBlockId)
            cache_.put(miss.id, miss.prediction);
    }
    for (auto [dup, first] : raw_dups) {
        if (outcomes[first].error)
            outcomes[dup].error = outcomes[first].error;
        else
            outcomes[dup].value = outcomes[first].value;
    }
    for (uint32_t i : parsed)
        textCache_.put(*texts[i], outcomes[i].value);
    return outcomes;
}

void
AsyncEngine::forwardMissBatch(Shard &sh, std::vector<Miss> &misses,
                              size_t lo, size_t hi)
{
    nn::BatchedForward &bf = *sh.batched;
    const std::vector<nn::Tensor> &columns = snapshot_->inputColumns();
    const size_t count = hi - lo;
    std::vector<std::shared_ptr<const surrogate::EncodedBlock>>
        encoded;
    std::vector<const surrogate::EncodedBlock *> blocks;
    std::vector<const std::vector<isa::InstId> *> inst_ids;
    std::vector<std::vector<const nn::Tensor *>> inst_params;
    encoded.reserve(count);
    blocks.reserve(count);
    inst_ids.reserve(count);
    for (size_t m = lo; m < hi; ++m) {
        const Miss &miss = misses[m];
        // Per-miss encoded-lane acquisition span; shard threads
        // record concurrently (record() is wait-free).
        obs::StageTimer encode_span(stage_.encode);
        if (miss.id != isa::invalidBlockId) {
            // Pre-encoded cache: the token lanes of an interned
            // block are immutable, so a hit skips the vocabulary
            // encoding entirely. On a miss the lanes come from the
            // interner's per-instruction token storage (exactly
            // encodeBlock's output — intern.hh stores the canonical
            // encoding at intern time).
            inst_ids.push_back(&interner_.instIds(miss.id));
            if (auto hit = encodedCache_.get(miss.id)) {
                ++stats_.encodeHits;
                encoded.push_back(std::move(*hit));
            } else {
                auto lanes =
                    std::make_shared<surrogate::EncodedBlock>();
                lanes->reserve(inst_ids.back()->size());
                for (isa::InstId inst : *inst_ids.back())
                    lanes->push_back(interner_.tokens(inst));
                encodedCache_.put(miss.id, lanes);
                encoded.push_back(std::move(lanes));
            }
        } else {
            // Interner full: encode from scratch, cache nothing.
            inst_ids.push_back(nullptr);
            encoded.push_back(
                std::make_shared<surrogate::EncodedBlock>(
                    surrogate::encodeBlock(miss.block)));
        }
    }
    for (const auto &e : encoded)
        blocks.push_back(e.get());
    if (!columns.empty()) {
        inst_params.reserve(count);
        for (size_t m = lo; m < hi; ++m) {
            inst_params.emplace_back();
            inst_params.back().reserve(misses[m].block.size());
            for (const auto &inst : misses[m].block.insts)
                inst_params.back().push_back(
                    &columns[size_t(inst.opcode)]);
        }
    }
    std::vector<double> heads;
    artifact_.model->predictBatch(bf, blocks, inst_params, heads,
                                  &sh.instCache, &inst_ids);
    // Same expression as Graph::exp (the sequential path's final
    // node), so the kF64 batched prediction is bit-identical to
    // forwardEncoded's.
    for (size_t m = lo; m < hi; ++m)
        misses[m].prediction =
            std::exp(std::min(heads[m - lo], 30.0));
}

double
AsyncEngine::forwardEncoded(nn::Graph &graph,
                            const surrogate::EncodedBlock &encoded,
                            const isa::BasicBlock &block) const
{
    fatal_if(block.empty(), "cannot predict an empty block");
    const std::vector<nn::Tensor> &columns = snapshot_->inputColumns();
    nn::Ctx ctx{graph, artifact_.model->params(), nullptr};
    std::vector<nn::Var> inputs;
    if (!columns.empty()) {
        inputs.reserve(block.size());
        for (const auto &inst : block.insts)
            inputs.push_back(
                graph.input(columns[size_t(inst.opcode)]));
    }
    nn::Var pred = graph.exp(
        artifact_.model->forward(ctx, encoded, inputs));
    return graph.scalarValue(pred);
}

double
AsyncEngine::predictUncached(const std::string &block_text) const
{
    const isa::BasicBlock block = isa::parseBlock(block_text);
    nn::Graph graph;
    return forwardEncoded(graph, surrogate::encodeBlock(block), block);
}

// ----------------------------------------------------------- dispatcher

void
AsyncEngine::ensureDispatchersLocked()
{
    if (dispatchersStarted_)
        return;
    dispatchersStarted_ = true;
    // Build every worker — including its private executor set —
    // before any thread starts, so pool_ is immutable from here on
    // and workers index siblings' queues without further
    // coordination. The new threads block on queueMutex_ until the
    // caller releases it, then find the request that triggered the
    // start.
    const size_t pool = poolSize();
    pool_.reserve(pool);
    for (size_t w = 0; w < pool; ++w) {
        pool_.push_back(std::make_unique<DispatchWorker>());
        DispatchWorker &worker = *pool_.back();
        worker.shards.reserve(size_t(workers_));
        for (int shard = 0; shard < workers_; ++shard) {
            worker.shards.emplace_back();
            worker.shards.back().batched =
                std::make_unique<nn::BatchedForward>(snapshot_,
                                                     precision_);
        }
    }
    for (size_t w = 0; w < pool; ++w)
        pool_[w]->thread =
            std::thread(&AsyncEngine::dispatchLoop, this, w);
}

void
AsyncEngine::dispatchLoop(size_t self)
{
    // Async end-to-end latency: submit-time stamp to future
    // fulfillment, one clock read per micro-batch. (Front-cache hits
    // resolve inside submit and never reach this histogram.)
    auto recordRequests = [this](const std::vector<Pending> &batch) {
        if (!stage_.on())
            return;
        const uint64_t now = obs::nowNs();
        for (const Pending &pending : batch)
            stage_.request->record(
                obs::elapsedNs(pending.enqueuedNs, now));
    };
    DispatchWorker &me = *pool_[self];
    std::vector<Pending> batch;
    uint64_t served_flushes = 0;
    while (true) {
        {
            std::unique_lock lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || totalQueued_ > 0;
            });
            if (totalQueued_ == 0)
                return; // stopping and fully drained
            // Coalescing window: an undersized batch of this
            // worker's own traffic waits briefly for company —
            // unless a flush (submitAll group, shutdown) already
            // promised none is coming. A worker woken only to
            // steal (own queue empty) skips the wait: a backlog on
            // a busy sibling is dense traffic, and its owner
            // already paid any coalescing delay.
            if (!stopping_ && !me.queue.empty() &&
                me.queue.size() < config_.maxBatch &&
                served_flushes == flushes_ &&
                config_.maxWaitMicros > 0) {
                obs::StageTimer coalesce_span(stage_.coalesce);
                queueCv_.wait_for(
                    lock,
                    std::chrono::microseconds(config_.maxWaitMicros),
                    [this, &me, served_flushes] {
                        return stopping_ ||
                               me.queue.size() >= config_.maxBatch ||
                               served_flushes != flushes_;
                    });
            }
            // Intake: drain the own queue first (striped FIFO
            // affinity), then — only when idle — steal from loaded
            // siblings, oldest requests first, scanning round-robin
            // from the next worker up.
            batch.clear();
            std::deque<Pending> &own = me.queue;
            const size_t own_take =
                std::min(own.size(), config_.maxBatch);
            batch.reserve(own_take);
            for (size_t i = 0; i < own_take; ++i) {
                batch.push_back(std::move(own.front()));
                own.pop_front();
            }
            if (batch.empty()) {
                for (size_t step = 1;
                     step < pool_.size() &&
                     batch.size() < config_.maxBatch;
                     ++step) {
                    std::deque<Pending> &victim =
                        pool_[(self + step) % pool_.size()]->queue;
                    while (!victim.empty() &&
                           batch.size() < config_.maxBatch) {
                        batch.push_back(std::move(victim.front()));
                        victim.pop_front();
                    }
                }
            }
            totalQueued_ -= batch.size();
            if (stage_.on()) {
                // Pool-correct accounting: the gauge mirrors the
                // backlog summed over every per-worker queue, and
                // each request's queue wait runs from its enqueue
                // on the owning queue to this pop — stolen requests
                // keep their original stamp.
                stage_.queueDepth->set(int64_t(totalQueued_));
                stage_.batchSize->record(batch.size());
                const uint64_t now = obs::nowNs();
                for (const Pending &pending : batch)
                    stage_.queueWait->record(
                        obs::elapsedNs(pending.enqueuedNs, now));
            }
            // Only a fully-drained intake re-arms the coalescing
            // wait: a remainder (the tail of an oversized group, or
            // a backlog of singles deeper than maxBatch) is dense
            // traffic that must be served immediately, not held for
            // company that is already here.
            served_flushes =
                totalQueued_ == 0 ? flushes_ : flushes_ - 1;
        }
        if (batch.empty())
            continue; // a sibling drained the backlog first

        // Serve with no queue lock held — on this worker's private
        // executor set, no batchMutex_ — so clients keep submitting
        // and batches on other pool workers run concurrently while
        // this one executes.
        std::vector<const std::string *> texts;
        texts.reserve(batch.size());
        for (const Pending &pending : batch)
            texts.push_back(&pending.text);
        std::vector<Outcome> outcomes;
        try {
            outcomes = serveBatchOn(me.shards, texts, sampleTick());
        } catch (...) {
            // serveBatchOn captures per-request errors; anything
            // that still escapes (allocation failure) fails the
            // whole micro-batch rather than abandoning the futures.
            for (Pending &pending : batch)
                pending.promise.set_exception(
                    std::current_exception());
            recordRequests(batch);
            continue;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
            if (outcomes[i].error)
                batch[i].promise.set_exception(outcomes[i].error);
            else
                batch[i].promise.set_value(outcomes[i].value);
        }
        recordRequests(batch);
    }
}

} // namespace difftune::serve
