/**
 * @file
 * Serving-workload helpers.
 */

#include "serve/workload.hh"

namespace difftune::serve
{

std::vector<std::string>
powerLawWorkload(const bhive::Corpus &corpus, size_t requests,
                 size_t unique, uint64_t seed)
{
    panic_if(unique == 0 || unique > corpus.size(),
             "workload wants {} unique blocks, corpus has {}", unique,
             corpus.size());
    Rng rng(seed);
    std::vector<std::string> texts;
    texts.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
        const double u = rng.uniformReal();
        const size_t rank = size_t(double(unique) * u * u * u);
        texts.push_back(
            isa::toString(corpus[std::min(rank, unique - 1)].block));
    }
    return texts;
}

ThroughputComparison
compareThroughput(PredictionEngine &engine,
                  const std::vector<std::string> &workload, size_t wave)
{
    ThroughputComparison result;

    const auto naive_begin = std::chrono::steady_clock::now();
    double naive_sum = 0.0;
    for (const auto &text : workload)
        naive_sum += engine.predictUncached(text);
    const auto naive_end = std::chrono::steady_clock::now();
    result.naiveSeconds = secondsBetween(naive_begin, naive_end);

    const auto serve_begin = std::chrono::steady_clock::now();
    double serve_sum = 0.0;
    for (size_t start = 0; start < workload.size(); start += wave) {
        const auto first = workload.begin() + long(start);
        const auto last =
            workload.begin() +
            long(std::min(workload.size(), start + wave));
        for (double r : engine.predictAll(
                 std::vector<std::string>(first, last)))
            serve_sum += r;
    }
    const auto serve_end = std::chrono::steady_clock::now();
    result.engineSeconds = secondsBetween(serve_begin, serve_end);

    // Both paths sum the same per-request doubles in request order,
    // so even the sums must agree bit-exactly.
    fatal_if(serve_sum != naive_sum,
             "engine and naive predictions diverged ({} vs {})",
             serve_sum, naive_sum);
    return result;
}

} // namespace difftune::serve
