/**
 * @file
 * Serving-workload helpers.
 */

#include "serve/workload.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "obs/metrics.hh"
#include "serve/daemon.hh"

namespace difftune::serve
{

std::vector<std::string>
powerLawWorkload(const bhive::Corpus &corpus, size_t requests,
                 size_t unique, uint64_t seed)
{
    panic_if(unique == 0 || unique > corpus.size(),
             "workload wants {} unique blocks, corpus has {}", unique,
             corpus.size());
    Rng rng(seed);
    std::vector<std::string> texts;
    texts.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
        const double u = rng.uniformReal();
        const size_t rank = size_t(double(unique) * u * u * u);
        texts.push_back(
            isa::toString(corpus[std::min(rank, unique - 1)].block));
    }
    return texts;
}

NaiveRun
runNaive(const PredictionEngine &engine,
         const std::vector<std::string> &workload)
{
    NaiveRun run;
    run.predictions.reserve(workload.size());
    const auto begin = std::chrono::steady_clock::now();
    for (const auto &text : workload)
        run.predictions.push_back(engine.predictUncached(text));
    run.seconds =
        secondsBetween(begin, std::chrono::steady_clock::now());
    return run;
}

ThroughputComparison
engineVsNaive(PredictionEngine &engine,
              const std::vector<std::string> &workload,
              const NaiveRun &naive, size_t wave, double rel_tol)
{
    panic_if(naive.predictions.size() != workload.size(),
             "engineVsNaive: naive run has {} predictions for {} "
             "requests",
             naive.predictions.size(), workload.size());
    ThroughputComparison result;
    result.naiveSeconds = naive.seconds;

    std::vector<double> served;
    served.reserve(workload.size());
    const auto begin = std::chrono::steady_clock::now();
    for (size_t start = 0; start < workload.size(); start += wave) {
        const auto first = workload.begin() + long(start);
        const auto last =
            workload.begin() +
            long(std::min(workload.size(), start + wave));
        for (double r : engine.predictAll(
                 std::vector<std::string>(first, last)))
            served.push_back(r);
    }
    result.engineSeconds =
        secondsBetween(begin, std::chrono::steady_clock::now());

    // Every served prediction is checked against the double
    // reference: bit-exact at rel_tol 0 (the kF64 contract), within
    // rel_tol otherwise (the kF32 gate).
    for (size_t i = 0; i < workload.size(); ++i) {
        const double expect = naive.predictions[i];
        const double got = served[i];
        if (rel_tol <= 0.0) {
            fatal_if(got != expect,
                     "engine and naive predictions diverged at "
                     "request {} ({} vs {})",
                     i, got, expect);
            continue;
        }
        const double rel =
            std::abs(got - expect) / std::abs(expect);
        fatal_if(!(rel <= rel_tol),
                 "engine prediction at request {} off by {} "
                 "(tolerance {}): {} vs {}",
                 i, rel, rel_tol, got, expect);
        result.maxRelErr = std::max(result.maxRelErr, rel);
    }
    return result;
}

ThroughputComparison
compareThroughput(PredictionEngine &engine,
                  const std::vector<std::string> &workload,
                  size_t wave, double rel_tol)
{
    return engineVsNaive(engine, workload,
                         runNaive(engine, workload), wave, rel_tol);
}

namespace
{

void
checkAgainstReference(const NaiveRun *reference, size_t index,
                      double got)
{
    if (!reference)
        return;
    fatal_if(got != reference->predictions[index],
             "async and naive predictions diverged at request {} "
             "({} vs {})",
             index, got, reference->predictions[index]);
}

} // namespace

AsyncClientComparison
compareAsyncClients(const io::ModelSnapshot &artifact,
                    const std::vector<std::string> &workload,
                    int threads, const NaiveRun *reference,
                    const AsyncConfig &config)
{
    panic_if(threads < 1, "compareAsyncClients: {} threads", threads);
    panic_if(reference &&
                 reference->predictions.size() != workload.size(),
             "compareAsyncClients: reference has {} predictions for "
             "{} requests",
             reference->predictions.size(), workload.size());
    AsyncClientComparison result;
    result.threads = threads;

    // Single-caller baseline: one thread, one block at a time
    // through the synchronous path — the v1 usage style.
    {
        AsyncEngine engine(artifact, config);
        const auto begin = std::chrono::steady_clock::now();
        for (size_t i = 0; i < workload.size(); ++i)
            checkAgainstReference(reference, i,
                                  engine.predict(workload[i]));
        result.singleSeconds =
            secondsBetween(begin, std::chrono::steady_clock::now());
    }

    // Concurrent clients: thread t owns requests t, t + threads,
    // t + 2*threads, ... and blocks on each future before its next
    // submit, so at most `threads` requests are in flight — the
    // micro-batcher's coalescing is all that turns them into
    // batches.
    AsyncEngine engine(artifact, config);
    std::vector<double> served(workload.size(), 0.0);
    // All clients record into one wait-free histogram: no per-thread
    // latency vectors to grow, no O(n log n) sort at the end, and
    // percentiles carry the histogram's 1/16 relative-error bound.
    obs::LatencyHistogram latency_hist;
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(size_t(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = size_t(t); i < workload.size();
                 i += size_t(threads)) {
                const auto t0 = std::chrono::steady_clock::now();
                std::future<double> future =
                    engine.submit(workload[i]);
                served[i] = future.get();
                latency_hist.recordSeconds(secondsBetween(
                    t0, std::chrono::steady_clock::now()));
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    result.asyncSeconds =
        secondsBetween(begin, std::chrono::steady_clock::now());

    for (size_t i = 0; i < workload.size(); ++i)
        checkAgainstReference(reference, i, served[i]);

    result.latency = latencyFromHistogram(latency_hist);
    return result;
}

LatencyStats
latencyFromHistogram(const obs::LatencyHistogram &hist)
{
    LatencyStats stats;
    const obs::HistogramSnapshot snap = hist.snapshot();
    // An empty workload (or one where every request errored before
    // being timed) has no order statistics — report explicit zeros
    // instead of querying percentiles of nothing.
    if (snap.count() == 0)
        return stats;
    stats.p50 = snap.percentile(0.50) * 1e-9;
    stats.p95 = snap.percentile(0.95) * 1e-9;
    stats.p99 = snap.percentile(0.99) * 1e-9;
    return stats;
}

DaemonClientRun
runDaemonClients(const std::string &host, uint16_t port,
                 const std::string &model,
                 const std::vector<std::string> &workload,
                 int threads)
{
    panic_if(threads < 1, "runDaemonClients: {} threads", threads);
    DaemonClientRun run;
    run.predictions.assign(
        workload.size(), std::numeric_limits<double>::quiet_NaN());
    std::atomic<uint64_t> errors{0};
    obs::LatencyHistogram latency_hist;

    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(size_t(threads));
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            // Connect inside the per-request try: connectTo throws
            // DaemonError on a refused or draining daemon, and an
            // exception escaping a thread body terminates the whole
            // process — a failed connect must count as errors (the
            // slots keep their NaN markers), not abort the run.
            std::unique_ptr<DaemonClient> client;
            for (size_t i = size_t(t); i < workload.size();
                 i += size_t(threads)) {
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    if (!client)
                        client = std::make_unique<DaemonClient>(
                            host, port);
                    run.predictions[i] =
                        client->predict(model, workload[i]);
                } catch (const DaemonError &) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                    continue; // slot keeps its NaN marker
                }
                latency_hist.recordSeconds(secondsBetween(
                    t0, std::chrono::steady_clock::now()));
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    run.seconds =
        secondsBetween(begin, std::chrono::steady_clock::now());
    run.errors = errors.load(std::memory_order_relaxed);
    run.latency = latencyFromHistogram(latency_hist);
    return run;
}

} // namespace difftune::serve
