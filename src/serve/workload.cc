/**
 * @file
 * Serving-workload helpers.
 */

#include "serve/workload.hh"

#include <algorithm>
#include <cmath>

namespace difftune::serve
{

std::vector<std::string>
powerLawWorkload(const bhive::Corpus &corpus, size_t requests,
                 size_t unique, uint64_t seed)
{
    panic_if(unique == 0 || unique > corpus.size(),
             "workload wants {} unique blocks, corpus has {}", unique,
             corpus.size());
    Rng rng(seed);
    std::vector<std::string> texts;
    texts.reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
        const double u = rng.uniformReal();
        const size_t rank = size_t(double(unique) * u * u * u);
        texts.push_back(
            isa::toString(corpus[std::min(rank, unique - 1)].block));
    }
    return texts;
}

NaiveRun
runNaive(const PredictionEngine &engine,
         const std::vector<std::string> &workload)
{
    NaiveRun run;
    run.predictions.reserve(workload.size());
    const auto begin = std::chrono::steady_clock::now();
    for (const auto &text : workload)
        run.predictions.push_back(engine.predictUncached(text));
    run.seconds =
        secondsBetween(begin, std::chrono::steady_clock::now());
    return run;
}

ThroughputComparison
engineVsNaive(PredictionEngine &engine,
              const std::vector<std::string> &workload,
              const NaiveRun &naive, size_t wave, double rel_tol)
{
    panic_if(naive.predictions.size() != workload.size(),
             "engineVsNaive: naive run has {} predictions for {} "
             "requests",
             naive.predictions.size(), workload.size());
    ThroughputComparison result;
    result.naiveSeconds = naive.seconds;

    std::vector<double> served;
    served.reserve(workload.size());
    const auto begin = std::chrono::steady_clock::now();
    for (size_t start = 0; start < workload.size(); start += wave) {
        const auto first = workload.begin() + long(start);
        const auto last =
            workload.begin() +
            long(std::min(workload.size(), start + wave));
        for (double r : engine.predictAll(
                 std::vector<std::string>(first, last)))
            served.push_back(r);
    }
    result.engineSeconds =
        secondsBetween(begin, std::chrono::steady_clock::now());

    // Every served prediction is checked against the double
    // reference: bit-exact at rel_tol 0 (the kF64 contract), within
    // rel_tol otherwise (the kF32 gate).
    for (size_t i = 0; i < workload.size(); ++i) {
        const double expect = naive.predictions[i];
        const double got = served[i];
        if (rel_tol <= 0.0) {
            fatal_if(got != expect,
                     "engine and naive predictions diverged at "
                     "request {} ({} vs {})",
                     i, got, expect);
            continue;
        }
        const double rel =
            std::abs(got - expect) / std::abs(expect);
        fatal_if(!(rel <= rel_tol),
                 "engine prediction at request {} off by {} "
                 "(tolerance {}): {} vs {}",
                 i, rel, rel_tol, got, expect);
        result.maxRelErr = std::max(result.maxRelErr, rel);
    }
    return result;
}

ThroughputComparison
compareThroughput(PredictionEngine &engine,
                  const std::vector<std::string> &workload,
                  size_t wave, double rel_tol)
{
    return engineVsNaive(engine, workload,
                         runNaive(engine, workload), wave, rel_tol);
}

} // namespace difftune::serve
