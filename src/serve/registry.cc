/**
 * @file
 * ModelRegistry implementation.
 *
 * Locking: adminMutex_ serializes mutations end to end (including
 * the expensive engine construction, which must not run twice for
 * one name concurrently); mapMutex_ guards only the map and is the
 * single lock acquire() takes. The old engine's shared_ptr is
 * released *after* mapMutex_ is dropped, so an engine destructor
 * (which drains and joins) never runs under either lock when the
 * swap itself holds the last reference.
 */

#include "serve/registry.hh"

#include <algorithm>

namespace difftune::serve
{

namespace
{

bool
metricSafe(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(std::move(config))
{
    fatal_if(!metricSafe(config_.metricRoot),
             "ModelRegistry metricRoot '{}' is not metric-safe "
             "([A-Za-z0-9._-])",
             config_.metricRoot);
    if (obs::enabled()) {
        metrics_ = config_.registry ? config_.registry
                                    : &obs::MetricRegistry::global();
        const std::string p = config_.metricRoot + ".registry.";
        loads_ = &metrics_->counter(p + "loads");
        swapCounter_ = &metrics_->counter(p + "swaps");
        models_ = &metrics_->gauge(p + "models");
    }
}

ModelRegistry::~ModelRegistry() { drain(); }

void
ModelRegistry::load(const std::string &name,
                    io::ModelSnapshot artifact)
{
    fatal_if(!metricSafe(name),
             "model name '{}' is not metric-safe ([A-Za-z0-9._-])",
             name);
    std::lock_guard admin(adminMutex_);
    if (draining_)
        throw UnknownModelError(
            "ModelRegistry is draining: cannot load '" + name + "'");

    // The incoming generation: monotonic per name, and the counter
    // survives remove(), so the new engine's metric prefix never
    // collides with *any* engine ever registered under this name —
    // not just the one it replaces. A removed-but-still-referenced
    // engine keeps its linked counters; reusing its prefix would
    // merge two distinct engines' telemetry.
    const uint64_t generation = nextGeneration_[name]++;

    // Build the replacement entirely outside mapMutex_: validation,
    // input-column precompute and shard construction can take
    // milliseconds, and readers must keep acquiring the old engine
    // the whole time. A throw here (bad checkpoint) leaves the live
    // engine untouched — swaps fail closed.
    AsyncConfig cfg = config_.engine;
    cfg.metricPrefix = config_.metricRoot + "." + name + ".g" +
                       std::to_string(generation);
    cfg.registry = config_.registry;
    auto engine =
        std::make_shared<AsyncEngine>(std::move(artifact), cfg);

    std::shared_ptr<AsyncEngine> retired;
    bool swapped = false;
    {
        std::lock_guard lock(mapMutex_);
        Entry &entry = entries_[name];
        swapped = entry.engine != nullptr;
        retired = std::move(entry.engine); // destroyed below, unlocked
        entry.engine = std::move(engine);
        entry.generation = generation;
        if (models_)
            models_->set(int64_t(entries_.size()));
    }
    if (loads_)
        loads_->inc();
    if (swapped) {
        swaps_.fetch_add(1, std::memory_order_relaxed);
        if (swapCounter_)
            swapCounter_->inc();
    }
    // `retired` (if any) releases here, outside every lock. If this
    // was the last reference the old engine drains and joins now; if
    // in-flight requests still hold it, it lives until they finish —
    // either way no request is dropped.
}

void
ModelRegistry::loadFromFile(const std::string &name,
                            const std::string &path)
{
    load(name, io::loadModelSnapshot(path));
}

std::shared_ptr<AsyncEngine>
ModelRegistry::find(const std::string &name) const noexcept
{
    std::lock_guard lock(mapMutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.engine;
}

std::shared_ptr<AsyncEngine>
ModelRegistry::acquire(const std::string &name) const
{
    std::shared_ptr<AsyncEngine> engine = find(name);
    if (!engine) {
        std::string known;
        for (const std::string &n : names())
            known += (known.empty() ? "" : ", ") + n;
        throw UnknownModelError(
            "no model '" + name + "' is registered (serving: " +
            (known.empty() ? std::string("none") : known) + ")");
    }
    return engine;
}

bool
ModelRegistry::remove(const std::string &name)
{
    std::lock_guard admin(adminMutex_);
    std::shared_ptr<AsyncEngine> retired;
    {
        std::lock_guard lock(mapMutex_);
        auto it = entries_.find(name);
        if (it == entries_.end())
            return false;
        retired = std::move(it->second.engine);
        entries_.erase(it);
        if (models_)
            models_->set(int64_t(entries_.size()));
    }
    return true; // `retired` drains outside the locks, as in load()
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::vector<std::string> out;
    std::lock_guard lock(mapMutex_);
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out; // std::map iterates sorted
}

size_t
ModelRegistry::size() const
{
    std::lock_guard lock(mapMutex_);
    return entries_.size();
}

uint64_t
ModelRegistry::swaps() const
{
    return swaps_.load(std::memory_order_relaxed);
}

void
ModelRegistry::drain()
{
    std::lock_guard admin(adminMutex_);
    draining_ = true;
    // Engines stay in the map (acquire() keeps resolving; their
    // submit now throws EngineStoppedError) but stop taking work.
    // shutdown() returns only once every pending future completed,
    // so when drain() returns nothing is still owed to any client.
    std::vector<std::shared_ptr<AsyncEngine>> engines;
    {
        std::lock_guard lock(mapMutex_);
        engines.reserve(entries_.size());
        for (auto &[name, entry] : entries_)
            engines.push_back(entry.engine);
    }
    for (const auto &engine : engines)
        engine->shutdown();
}

bool
ModelRegistry::draining() const
{
    std::lock_guard admin(adminMutex_);
    return draining_;
}

} // namespace difftune::serve
