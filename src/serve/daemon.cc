/**
 * @file
 * Daemon / DaemonClient implementation (POSIX sockets).
 *
 * Framing helpers read and write exact byte counts in loops (TCP
 * fragments at will); integers cross the wire little-endian via
 * explicit byte assembly, so the format is identical on any host.
 * All writes use send(MSG_NOSIGNAL) — a peer closing mid-response
 * must surface as an error return, not SIGPIPE.
 */

#include "serve/daemon.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/logging.hh"
#include "obs/export.hh"

namespace difftune::serve
{

namespace
{

/** Read exactly @p n bytes; false on EOF/error. */
bool
readExact(int fd, void *buf, size_t n)
{
    char *out = static_cast<char *>(buf);
    while (n > 0) {
        const ssize_t got = ::recv(fd, out, n, 0);
        if (got == 0)
            return false; // orderly EOF
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        out += got;
        n -= size_t(got);
    }
    return true;
}

/** Write exactly @p n bytes; false on error (incl. closed peer). */
bool
writeExact(int fd, const void *buf, size_t n)
{
    const char *in = static_cast<const char *>(buf);
    while (n > 0) {
        const ssize_t put = ::send(fd, in, n, MSG_NOSIGNAL);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        in += put;
        n -= size_t(put);
    }
    return true;
}

void
appendU16(std::string &out, uint16_t v)
{
    out.push_back(char(v & 0xff));
    out.push_back(char((v >> 8) & 0xff));
}

void
appendU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
appendF64(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        out.push_back(char((bits >> (8 * i)) & 0xff));
}

/**
 * Cursor over a received payload; every read checks remaining bytes
 * so a truncated or lying frame parses to an error, never past the
 * buffer.
 */
struct Reader
{
    const std::string &buf;
    size_t pos = 0;

    bool
    u8(uint8_t &out)
    {
        if (buf.size() - pos < 1)
            return false;
        out = uint8_t(buf[pos++]);
        return true;
    }

    bool
    u16(uint16_t &out)
    {
        if (buf.size() - pos < 2)
            return false;
        out = uint16_t(uint8_t(buf[pos])) |
              uint16_t(uint16_t(uint8_t(buf[pos + 1])) << 8);
        pos += 2;
        return true;
    }

    bool
    u32(uint32_t &out)
    {
        if (buf.size() - pos < 4)
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i)
            out |= uint32_t(uint8_t(buf[pos + size_t(i)]))
                   << (8 * i);
        pos += 4;
        return true;
    }

    bool
    f64(double &out)
    {
        if (buf.size() - pos < 8)
            return false;
        uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= uint64_t(uint8_t(buf[pos + size_t(i)]))
                    << (8 * i);
        pos += 8;
        std::memcpy(&out, &bits, sizeof(out));
        return true;
    }

    bool
    bytes(size_t n, std::string &out)
    {
        if (buf.size() - pos < n)
            return false;
        out.assign(buf, pos, n);
        pos += n;
        return true;
    }
};

/** Frame a payload and write it. */
bool
writeFrame(int fd, const std::string &payload)
{
    std::string header;
    appendU32(header, uint32_t(payload.size()));
    return writeExact(fd, header.data(), header.size()) &&
           writeExact(fd, payload.data(), payload.size());
}

/** Read one frame's payload. false on EOF/error/oversize. */
bool
readFrame(int fd, size_t max_frame_bytes, std::string &payload)
{
    uint8_t header[4];
    if (!readExact(fd, header, sizeof(header)))
        return false;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= uint32_t(header[i]) << (8 * i);
    if (size_t(len) > max_frame_bytes)
        return false;
    payload.resize(len);
    return len == 0 || readExact(fd, payload.data(), len);
}

std::string
statusResponse(wire::Status status, const std::string &message)
{
    std::string out;
    out.push_back(char(status));
    appendU32(out, uint32_t(message.size()));
    out += message;
    return out;
}

std::string
okResponse(const std::string &body = {})
{
    std::string out;
    out.push_back(char(wire::kOk));
    out += body;
    return out;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Connect to host:port; returns fd or throws DaemonError. */
int
connectTo(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw DaemonError("socket(): " +
                          std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw DaemonError("bad daemon host '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw DaemonError("connect " + host + ":" +
                          std::to_string(port) + ": " + err);
    }
    // Predict frames are tiny request/response pairs; Nagle would
    // add 40ms batching stalls to every loopback round trip.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

/** Checked narrowing for u16 wire length fields: an oversized value
 *  must throw here, not truncate into a desynced frame the daemon
 *  then misparses. */
uint16_t
u16Length(const std::string &value, const char *what)
{
    if (value.size() > 0xffff)
        throw DaemonError(std::string(what) + " too long (" +
                          std::to_string(value.size()) +
                          " bytes; wire limit 65535)");
    return uint16_t(value.size());
}

/** Checked narrowing for u32 wire length fields. */
uint32_t
u32Length(const std::string &value, const char *what)
{
    if (value.size() > 0xffffffffu)
        throw DaemonError(std::string(what) + " too long (" +
                          std::to_string(value.size()) + " bytes)");
    return uint32_t(value.size());
}

} // namespace

// ---------------------------------------------------------------- Daemon

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), registry_(config_.registry)
{
    if (obs::enabled()) {
        obs::MetricRegistry &metrics =
            config_.registry.registry
                ? *config_.registry.registry
                : obs::MetricRegistry::global();
        const std::string p =
            config_.registry.metricRoot + ".daemon.";
        connCounter_ = &metrics.counter(p + "connections");
        reqCounter_ = &metrics.counter(p + "requests");
        errCounter_ = &metrics.counter(p + "errors");
    }
}

Daemon::~Daemon() { drain(); }

void
Daemon::start()
{
    fatal_if(listenFd_ >= 0, "Daemon::start() called twice");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(fd < 0, "difftuned: socket(): {}",
             std::strerror(errno));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("difftuned: bad bind host '{}'", config_.host);
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        fatal("difftuned: bind {}:{}: {}", config_.host,
              config_.port, err);
    }
    if (::listen(fd, 128) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        fatal("difftuned: listen: {}", err);
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        fatal("difftuned: getsockname: {}", err);
    }
    port_ = ntohs(bound.sin_port);
    listenFd_ = fd;
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Daemon::acceptLoop()
{
    while (!draining_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // drain() closed the listener (or it truly broke —
            // either way intake is over).
            break;
        }
        if (draining_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        connections_.fetch_add(1, std::memory_order_relaxed);
        if (connCounter_)
            connCounter_->inc();

        std::lock_guard lock(connectionsMutex_);
        reapConnectionsLocked();
        auto connection = std::make_unique<Connection>();
        connection->fd = fd;
        Connection *raw = connection.get();
        connection->thread =
            std::thread([this, raw] { serveConnection(*raw); });
        connections_list_.push_back(std::move(connection));
    }
}

void
Daemon::serveConnection(Connection &connection)
{
    std::string payload;
    while (readFrame(connection.fd, config_.maxFrameBytes,
                     payload)) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (reqCounter_)
            reqCounter_->inc();
        const std::string response = handleRequest(payload);
        if (!response.empty() &&
            uint8_t(response[0]) != wire::kOk) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            if (errCounter_)
                errCounter_->inc();
        }
        if (!writeFrame(connection.fd, response))
            break;
    }
    // Send FIN so the peer sees EOF right away, but leave the fd
    // open: it is closed by whoever joins this thread (reap or
    // drain). Closing here would race drain()'s SHUT_RD against a
    // concurrently reused descriptor.
    ::shutdown(connection.fd, SHUT_RDWR);
    connection.done.store(true, std::memory_order_release);
}

std::string
Daemon::handleRequest(const std::string &payload)
{
    Reader reader{payload};
    uint8_t op = 0;
    if (!reader.u8(op))
        return statusResponse(wire::kError, "empty request frame");
    try {
        switch (op) {
        case wire::kPredict:
            return handlePredict(payload);
        case wire::kStatsz: {
            const obs::MetricRegistry &metrics =
                config_.registry.registry
                    ? *config_.registry.registry
                    : obs::MetricRegistry::global();
            const std::string dump = obs::renderStatsz(metrics);
            // Framing budget: status byte + u32 length + dump must
            // fit one frame, or the client's readFrame rejects the
            // oversized response and the connection desyncs with a
            // misleading "short read". Degrade to a clear error.
            if (dump.size() + 5 > config_.maxFrameBytes)
                return statusResponse(
                    wire::kError,
                    "statsz dump (" + std::to_string(dump.size()) +
                        " bytes) exceeds the frame limit (" +
                        std::to_string(config_.maxFrameBytes) +
                        " bytes)");
            std::string body;
            appendU32(body, uint32_t(dump.size()));
            body += dump;
            return okResponse(body);
        }
        case wire::kLoad:
            return handleLoad(payload);
        case wire::kList: {
            const std::vector<std::string> names =
                registry_.names();
            std::string body;
            appendU32(body, uint32_t(names.size()));
            for (const std::string &name : names) {
                // Names loaded over the wire are u16-bounded, but
                // in-process registry().load() takes any length —
                // never narrow one silently into a desynced frame.
                if (name.size() > 0xffff)
                    return statusResponse(
                        wire::kError,
                        "model name too long for list response (" +
                            std::to_string(name.size()) + " bytes)");
                appendU16(body, uint16_t(name.size()));
                body += name;
            }
            return okResponse(body);
        }
        case wire::kPing:
            return okResponse();
        default:
            return statusResponse(
                wire::kError,
                "unknown opcode " + std::to_string(int(op)));
        }
    } catch (const EngineStoppedError &e) {
        return statusResponse(wire::kDraining, e.what());
    } catch (const std::exception &e) {
        return statusResponse(wire::kError,
                              stripErrorPrefix(e.what()));
    }
}

std::string
Daemon::handlePredict(const std::string &payload)
{
    Reader reader{payload};
    uint8_t op = 0;
    uint16_t name_len = 0;
    uint32_t text_len = 0;
    std::string name, text;
    if (!reader.u8(op) || !reader.u16(name_len) ||
        !reader.bytes(name_len, name) || !reader.u32(text_len) ||
        !reader.bytes(text_len, text))
        return statusResponse(wire::kError,
                              "malformed predict frame");
    // acquire() pins the engine for the whole call: a concurrent
    // hot-swap retires the map entry but this shared_ptr keeps the
    // old engine (and its WeightSnapshot) alive until the future
    // resolves — the zero-downtime contract.
    const std::shared_ptr<AsyncEngine> engine =
        registry_.acquire(name);
    const double prediction = engine->submit(std::move(text)).get();
    std::string body;
    appendF64(body, prediction);
    return okResponse(body);
}

std::string
Daemon::handleLoad(const std::string &payload)
{
    Reader reader{payload};
    uint8_t op = 0;
    uint16_t name_len = 0;
    uint32_t path_len = 0;
    std::string name, path;
    if (!reader.u8(op) || !reader.u16(name_len) ||
        !reader.bytes(name_len, name) || !reader.u32(path_len) ||
        !reader.bytes(path_len, path))
        return statusResponse(wire::kError,
                              "malformed load frame");
    registry_.loadFromFile(name, path);
    return okResponse();
}

void
Daemon::reapConnectionsLocked()
{
    // One pass, one doneness read per connection. Re-testing the
    // atomic in a second (remove_if) pass would let a thread that
    // finished *between* the passes be erased unjoined — destroying
    // a joinable std::thread calls std::terminate and leaks its fd.
    size_t kept = 0;
    for (auto &connection : connections_list_) {
        if (connection->done.load(std::memory_order_acquire)) {
            if (connection->thread.joinable())
                connection->thread.join();
            closeFd(connection->fd);
        } else {
            connections_list_[kept++] = std::move(connection);
        }
    }
    connections_list_.resize(kept);
}

void
Daemon::drain()
{
    std::lock_guard drain_lock(drainMutex_);
    if (draining_.exchange(true, std::memory_order_acq_rel))
        return;

    // 1. Stop intake. shutdown() wakes the blocked accept() (on
    //    Linux, merely close()ing the fd leaves that thread blocked
    //    forever); only then is the fd safe to close.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptor_.joinable())
        acceptor_.join();
    closeFd(listenFd_);

    // 2. Close every connection's *read* side only. readFrame()
    //    returns false at the next frame boundary, but a request
    //    already being handled still computes and writes its
    //    response — nothing accepted is dropped.
    {
        std::lock_guard lock(connectionsMutex_);
        for (const auto &connection : connections_list_)
            if (connection->fd >= 0)
                ::shutdown(connection->fd, SHUT_RD);
    }

    // 3. Join the connection threads (no new ones can appear: the
    //    acceptor is gone).
    std::vector<std::unique_ptr<Connection>> finished;
    {
        std::lock_guard lock(connectionsMutex_);
        finished.swap(connections_list_);
    }
    for (const auto &connection : finished) {
        if (connection->thread.joinable())
            connection->thread.join();
        closeFd(connection->fd);
    }

    // 4. Drain the registry: every engine stops intake and settles
    //    all pending futures.
    registry_.drain();
}

// ---------------------------------------------------------- DaemonClient

DaemonClient::DaemonClient(const std::string &host, uint16_t port)
    : fd_(connectTo(host, port))
{
}

DaemonClient::DaemonClient(uint16_t port)
    : DaemonClient("127.0.0.1", port)
{
}

DaemonClient::~DaemonClient() { closeFd(fd_); }

DaemonClient::DaemonClient(DaemonClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

DaemonClient &
DaemonClient::operator=(DaemonClient &&other) noexcept
{
    if (this != &other) {
        closeFd(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

std::string
DaemonClient::roundTrip(const std::string &payload)
{
    if (fd_ < 0)
        throw DaemonError("client connection is closed");
    if (!writeFrame(fd_, payload))
        throw DaemonError("short write (daemon closed?)");
    std::string response;
    if (!readFrame(fd_, wire::kDefaultMaxFrameBytes, response))
        throw DaemonError("short read (daemon closed?)");
    Reader reader{response};
    uint8_t status = 0;
    if (!reader.u8(status))
        throw DaemonError("empty response frame");
    if (status == wire::kOk)
        return response.substr(1);
    uint32_t msg_len = 0;
    std::string message;
    if (!reader.u32(msg_len) || !reader.bytes(msg_len, message))
        message = "malformed error response";
    throw DaemonError("daemon: " + message,
                      status == wire::kDraining);
}

double
DaemonClient::predict(const std::string &model,
                      const std::string &block_text)
{
    std::string payload;
    payload.push_back(char(wire::kPredict));
    appendU16(payload, u16Length(model, "model name"));
    payload += model;
    appendU32(payload, u32Length(block_text, "block text"));
    payload += block_text;
    const std::string body = roundTrip(payload);
    Reader reader{body};
    double prediction = 0.0;
    if (!reader.f64(prediction))
        throw DaemonError("malformed predict response");
    return prediction;
}

std::string
DaemonClient::statsz()
{
    std::string payload;
    payload.push_back(char(wire::kStatsz));
    const std::string body = roundTrip(payload);
    Reader reader{body};
    uint32_t len = 0;
    std::string dump;
    if (!reader.u32(len) || !reader.bytes(len, dump))
        throw DaemonError("malformed statsz response");
    return dump;
}

void
DaemonClient::load(const std::string &model,
                   const std::string &path)
{
    std::string payload;
    payload.push_back(char(wire::kLoad));
    appendU16(payload, u16Length(model, "model name"));
    payload += model;
    appendU32(payload, u32Length(path, "checkpoint path"));
    payload += path;
    roundTrip(payload);
}

std::vector<std::string>
DaemonClient::models()
{
    std::string payload;
    payload.push_back(char(wire::kList));
    const std::string body = roundTrip(payload);
    Reader reader{body};
    uint32_t count = 0;
    if (!reader.u32(count))
        throw DaemonError("malformed list response");
    std::vector<std::string> names;
    names.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        uint16_t len = 0;
        std::string name;
        if (!reader.u16(len) || !reader.bytes(len, name))
            throw DaemonError("malformed list response");
        names.push_back(std::move(name));
    }
    return names;
}

void
DaemonClient::ping()
{
    std::string payload;
    payload.push_back(char(wire::kPing));
    roundTrip(payload);
}

} // namespace difftune::serve
