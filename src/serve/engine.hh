/**
 * @file
 * The v1 synchronous serving API, now a thin wrapper over
 * serve::AsyncEngine (serving API v2 — see serve/async_engine.hh
 * and docs/SERVING.md).
 *
 * PredictionEngine keeps its original surface — predict /
 * predictAll / predictBlock / predictUncached, ServeConfig,
 * ServeStats — but every call delegates to an owned AsyncEngine's
 * synchronous path, so v1 callers transparently gain the v2
 * internals: one frozen nn::WeightSnapshot shared by all shard
 * executors (per-engine weight allocations no longer scale with the
 * worker count), sharded-mutex LRU caches, and atomic counters.
 * Unlike v1, the wrapper is also thread-safe — "synchronous and
 * single-caller" is no longer a restriction, just a usage style.
 * Two signatures shifted with the internals (see docs/SERVING.md):
 * ServeStats counters are std::atomic now, and table() hands back
 * the artifact's shared_ptr<const ParamTable> instead of an
 * optional (null when absent).
 *
 * Determinism contract (unchanged): a prediction is a pure function
 * of the canonical block text and the frozen checkpoint. kF64 is
 * bit-identical to the uncached reference; kF32 is accuracy-gated
 * < 1e-5 (see nn/batched.hh). Results never depend on batching,
 * order, worker count or cache state.
 *
 * Migration: new code should construct AsyncEngine directly (it
 * adds submit/submitAll futures and the micro-batcher). Existing
 * code needs no changes. ServeConfig maps 1:1 onto the matching
 * AsyncConfig fields; access the wrapped engine through async() for
 * the v2-only calls.
 */

#ifndef DIFFTUNE_SERVE_ENGINE_HH
#define DIFFTUNE_SERVE_ENGINE_HH

#include "serve/async_engine.hh"

namespace difftune::serve
{

/** v1 engine tuning knobs (a subset of AsyncConfig). */
struct ServeConfig
{
    int workers = 0;             ///< shard count (<= 0: library default)
    size_t cacheCapacity = 8192; ///< LRU entries (each cache)
    /** Serving arithmetic (see nn/batched.hh; kF32 is opt-in). */
    nn::Precision precision = nn::Precision::kF64;
};

/** Loads a checkpoint once; serves block-timing queries. */
class PredictionEngine
{
  public:
    /**
     * Serve @p checkpoint (must carry a model; a paramDim > 0 model
     * additionally requires the parameter table and sampling-dist
     * sections). The model must match the process vocabulary.
     */
    explicit PredictionEngine(io::Checkpoint checkpoint,
                              ServeConfig config = {});

    /** Serve an already-promoted artifact (shares its snapshot). */
    explicit PredictionEngine(io::ModelSnapshot artifact,
                              ServeConfig config = {});

    /** Load @p path and serve it (errors name the path). */
    static PredictionEngine fromFile(const std::string &path,
                                     ServeConfig config = {});

    /** Predict one block given in canonical assembly syntax. */
    double
    predict(const std::string &block_text)
    {
        return engine_->predict(block_text);
    }

    /** Predict a batch; results align with @p block_texts. */
    std::vector<double>
    predictAll(const std::vector<std::string> &block_texts)
    {
        return engine_->predictAll(block_texts);
    }

    /** Predict one already-parsed block (cached like predict()). */
    double
    predictBlock(const isa::BasicBlock &block)
    {
        return engine_->predictBlock(block);
    }

    /**
     * The uncached, unbatched reference path: parse + encode + one
     * fresh graph per call. Serves as the bench baseline and as the
     * ground truth the cached path must match bit-exactly.
     */
    double
    predictUncached(const std::string &block_text) const
    {
        return engine_->predictUncached(block_text);
    }

    const ServeStats &stats() const { return engine_->stats(); }
    const surrogate::Model &model() const { return engine_->model(); }
    const std::shared_ptr<const params::ParamTable> &table() const
    {
        return engine_->table();
    }
    int workers() const { return engine_->workers(); }
    nn::Precision precision() const { return engine_->precision(); }

    /** The wrapped v2 engine (submit/submitAll, snapshot, knobs). */
    AsyncEngine &async() { return *engine_; }
    const AsyncEngine &async() const { return *engine_; }

  private:
    PredictionEngine() = default; ///< fromFile assembly only

    static AsyncConfig toAsyncConfig(const ServeConfig &config);

    std::unique_ptr<AsyncEngine> engine_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_ENGINE_HH
