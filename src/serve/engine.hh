/**
 * @file
 * Batched prediction serving on top of a loaded checkpoint.
 *
 * A PredictionEngine owns a trained model (plus, for a DiffTune
 * surrogate, the learned parameter table and the sampling
 * distribution's input normalizer), loads it once, and then answers
 * block-timing queries at throughput. Three mechanisms make the hot
 * path cheap:
 *
 *  - an LRU cache keyed by canonicalized block text memoizes full
 *    predictions — for a frozen model the prediction is a pure
 *    function of the canonical block, so repeat traffic costs a hash
 *    lookup instead of an LSTM forward pass;
 *  - per-instruction parameter-input tensors depend only on the
 *    opcode once the table is frozen, so they are precomputed per
 *    opcode at load time instead of per request;
 *  - batched requests map over base/parallel shards, and each shard
 *    runs its blocks through one nn::BatchedForward executor —
 *    shared weight reads, lockstep LSTM steps, no per-block tape
 *    (see nn/batched.hh). Single-block misses take the same
 *    executor as a batch of one, so every cached prediction comes
 *    from one execution mode.
 *
 * Predictions follow the training-time convention: timing =
 * exp(model head), exactly as core/ithemal and core/difftune evaluate
 * the model, so a served prediction is bit-identical to the in-process
 * prediction of the checkpointed model. Batched and sequential
 * submission, and any worker count, produce identical results.
 *
 * ServeConfig::precision selects the serving arithmetic:
 * nn::Precision::kF64 (the default) is bit-identical to the graph
 * engine; kF32 converts the weights to float once at load and runs
 * the batched kernels in single precision — faster, and gated to
 * < 1e-5 relative error against the double path (never bit-exact;
 * see docs/BENCHMARKS.md and tests/test_serve.cc). predictUncached
 * always stays the double-precision graph reference.
 *
 * The public API is synchronous and single-caller; concurrency lives
 * inside predictAll's shard fan-out.
 */

#ifndef DIFFTUNE_SERVE_ENGINE_HH
#define DIFFTUNE_SERVE_ENGINE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/checkpoint.hh"
#include "nn/batched.hh"
#include "serve/lru_cache.hh"

namespace difftune::serve
{

/** Engine tuning knobs. */
struct ServeConfig
{
    int workers = 0;             ///< shard count (<= 0: library default)
    size_t cacheCapacity = 8192; ///< LRU entries (canonical blocks)
    /** Serving arithmetic (see the file comment; kF32 is opt-in). */
    nn::Precision precision = nn::Precision::kF64;
};

/** Monotonic serving counters. */
struct ServeStats
{
    uint64_t requests = 0; ///< blocks submitted
    uint64_t hits = 0;     ///< answered from the LRU cache
    uint64_t misses = 0;   ///< not in the cache at submit time
    uint64_t forwards = 0; ///< LSTM forward passes actually run
    uint64_t batches = 0;  ///< predictAll calls
};

/** Loads a checkpoint once; serves block-timing queries. */
class PredictionEngine
{
  public:
    /**
     * Serve @p checkpoint (must carry a model; a paramDim > 0 model
     * additionally requires the parameter table and sampling-dist
     * sections). The model must match the process vocabulary.
     */
    explicit PredictionEngine(io::Checkpoint checkpoint,
                              ServeConfig config = {});

    /** Load @p path and serve it. */
    static PredictionEngine fromFile(const std::string &path,
                                     ServeConfig config = {});

    /** Predict one block given in canonical assembly syntax. */
    double predict(const std::string &block_text);

    /** Predict a batch; results align with @p block_texts. */
    std::vector<double>
    predictAll(const std::vector<std::string> &block_texts);

    /** Predict one already-parsed block (cached like predict()). */
    double predictBlock(const isa::BasicBlock &block);

    /**
     * The uncached, unbatched reference path: parse + encode + one
     * fresh graph per call. Serves as the bench baseline and as the
     * ground truth the cached path must match bit-exactly.
     */
    double predictUncached(const std::string &block_text) const;

    const ServeStats &stats() const { return stats_; }
    const surrogate::Model &model() const { return *model_; }
    const std::optional<params::ParamTable> &table() const
    {
        return table_;
    }
    int workers() const { return workers_; }
    nn::Precision precision() const { return precision_; }

  private:
    /** Forward one encoded block on @p graph; returns exp(head). */
    double forwardEncoded(nn::Graph &graph,
                          const surrogate::EncodedBlock &encoded,
                          const isa::BasicBlock &block) const;

    /** Blocks needing a forward pass within one batch. */
    struct Miss
    {
        std::string key; ///< canonical text
        isa::BasicBlock block;
        double prediction = 0.0;
        std::vector<uint32_t> outputs; ///< result slots to fill
    };

    /**
     * Run misses [lo, hi) through shard @p shard's executor as one
     * batch and fill their predictions (exp of the batched head
     * outputs).
     */
    void forwardMissBatch(int shard, std::vector<Miss> &misses,
                          size_t lo, size_t hi);

    std::unique_ptr<surrogate::Model> model_;
    std::optional<params::ParamTable> table_;
    /** Per-opcode parameter-input column, precomputed at load. */
    std::vector<nn::Tensor> opcodeInputs_;

    int workers_;
    nn::Precision precision_;
    /** One batched executor per shard (weights converted at load). */
    std::vector<std::unique_ptr<nn::BatchedForward>> batched_;
    /**
     * One instruction-hidden memo table per shard (weights are
     * frozen, so token-level hiddens are reusable across batches;
     * caches affect speed only, never results).
     */
    std::vector<surrogate::InstHiddenCache> instCaches_;
    /**
     * Front cache keyed by the *raw* request text: repeat traffic
     * skips parsing and canonicalization entirely. Distinct raw
     * texts of one canonical block still meet in cache_.
     */
    LruCache<std::string, double> textCache_;
    LruCache<std::string, double> cache_;
    ServeStats stats_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_ENGINE_HH
