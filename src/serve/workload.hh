/**
 * @file
 * Synthetic serving workloads and the naive-vs-batched throughput
 * comparison shared by bench/bench_serve and the difftune_serve
 * CLI's `bench` command, so the two report the same experiment.
 */

#ifndef DIFFTUNE_SERVE_WORKLOAD_HH
#define DIFFTUNE_SERVE_WORKLOAD_HH

#include <chrono>

#include "bhive/corpus.hh"
#include "obs/metrics.hh"
#include "serve/engine.hh"

namespace difftune::serve
{

/** Elapsed wall-clock seconds between two steady_clock points. */
inline double
secondsBetween(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * A power-law request stream over the first @p unique blocks of
 * @p corpus: low ranks dominate, approximating serving traffic where
 * a small working set receives most requests.
 */
std::vector<std::string> powerLawWorkload(const bhive::Corpus &corpus,
                                          size_t requests,
                                          size_t unique, uint64_t seed);

/** Wall-clock results of compareThroughput / engineVsNaive. */
struct ThroughputComparison
{
    double naiveSeconds = 0.0;  ///< predictUncached per request
    double engineSeconds = 0.0; ///< wave-batched predictAll
    double maxRelErr = 0.0;     ///< worst per-request |e-n|/|n|

    double speedup() const { return naiveSeconds / engineSeconds; }
};

/**
 * One timed pass of the naive reference path (parse + encode + one
 * fresh double-precision graph per request) with its per-request
 * predictions, reusable across several engine comparisons.
 */
struct NaiveRun
{
    std::vector<double> predictions;
    double seconds = 0.0;
};

/** Run and time the naive reference over @p workload. */
NaiveRun runNaive(const PredictionEngine &engine,
                  const std::vector<std::string> &workload);

/**
 * Run @p workload through the batched engine in waves of @p wave
 * requests (as a serving endpoint would) and compare every
 * prediction against @p naive. rel_tol 0 demands bit-exact
 * agreement (the kF64 contract); a positive rel_tol bounds the
 * relative error instead (the kF32 accuracy gate). Fatal on any
 * violation. The engine's caches are expected cold on entry.
 */
ThroughputComparison
engineVsNaive(PredictionEngine &engine,
              const std::vector<std::string> &workload,
              const NaiveRun &naive, size_t wave = 250,
              double rel_tol = 0.0);

/**
 * runNaive + engineVsNaive in one call (the naive pass runs first,
 * so the engine's cache starts cold).
 */
ThroughputComparison
compareThroughput(PredictionEngine &engine,
                  const std::vector<std::string> &workload,
                  size_t wave = 250, double rel_tol = 0.0);

/**
 * Request-latency percentiles of an async client run (seconds).
 * Estimated from an obs::LatencyHistogram the client threads record
 * into wait-free (no per-thread latency vectors, no final sort), so
 * each value is within LatencyHistogram::kMaxRelativeError (6.25%)
 * of the exact order statistic.
 */
struct LatencyStats
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Percentiles of @p hist converted to seconds, or all zeros when the
 * histogram recorded no samples: an empty histogram has no order
 * statistics, and reporting explicit zeros beats asking a snapshot
 * with count() == 0 for its p99 (callers used to do exactly that —
 * every latency consumer now goes through this guard).
 */
LatencyStats latencyFromHistogram(const obs::LatencyHistogram &hist);

/**
 * Results of compareAsyncClients: a single-caller synchronous pass
 * versus @p threads concurrent client threads submitting through
 * the AsyncEngine micro-batcher. Both passes serve the full
 * workload on a fresh engine (cold caches).
 */
struct AsyncClientComparison
{
    double singleSeconds = 0.0; ///< 1 thread, sync predict/request
    double asyncSeconds = 0.0;  ///< threads x async submit + get
    int threads = 0;
    LatencyStats latency; ///< async per-request submit-to-get time

    /** Aggregate multi-client speedup over single-caller. */
    double speedup() const { return singleSeconds / asyncSeconds; }
};

/**
 * Measure what the micro-batcher buys concurrent traffic: one
 * client thread calling the synchronous path block-at-a-time versus
 * @p threads client threads each submitting its interleaved share
 * of @p workload through AsyncEngine::submit and blocking on the
 * future (at most @p threads requests in flight, as with real
 * users). Each pass runs on a fresh engine built from @p artifact —
 * the engines share @p artifact's WeightSnapshot, so the comparison
 * also exercises cross-engine weight sharing. When @p reference is
 * non-null every prediction of both passes is checked bit-exact
 * against it (the kF64 contract; pass null for kF32).
 */
AsyncClientComparison
compareAsyncClients(const io::ModelSnapshot &artifact,
                    const std::vector<std::string> &workload,
                    int threads, const NaiveRun *reference,
                    const AsyncConfig &config = {});

/**
 * Results of runDaemonClients: one prediction slot per request
 * (errored requests hold NaN so they can never bit-match a
 * reference), plus the error count and wall-clock timing.
 */
struct DaemonClientRun
{
    std::vector<double> predictions; ///< request-indexed; NaN = error
    uint64_t errors = 0;  ///< requests the daemon answered non-kOk
    double seconds = 0.0; ///< whole-run wall clock
    LatencyStats latency; ///< per-request round-trip time
};

/**
 * Drive a running difftuned over loopback TCP: @p threads client
 * connections (one DaemonClient each) split @p workload interleaved
 * — thread t owns requests t, t + threads, ... — and block on each
 * response before the next request. The shared harness behind
 * test_serve_daemon, bench_serve's daemon section and the
 * `difftuned client` command, so all three measure the same traffic
 * shape as compareAsyncClients' in-process pass.
 */
DaemonClientRun
runDaemonClients(const std::string &host, uint16_t port,
                 const std::string &model,
                 const std::vector<std::string> &workload,
                 int threads);

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_WORKLOAD_HH
