/**
 * @file
 * Synthetic serving workloads and the naive-vs-batched throughput
 * comparison shared by bench/bench_serve and the difftune_serve
 * CLI's `bench` command, so the two report the same experiment.
 */

#ifndef DIFFTUNE_SERVE_WORKLOAD_HH
#define DIFFTUNE_SERVE_WORKLOAD_HH

#include <chrono>

#include "bhive/corpus.hh"
#include "serve/engine.hh"

namespace difftune::serve
{

/** Elapsed wall-clock seconds between two steady_clock points. */
inline double
secondsBetween(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/**
 * A power-law request stream over the first @p unique blocks of
 * @p corpus: low ranks dominate, approximating serving traffic where
 * a small working set receives most requests.
 */
std::vector<std::string> powerLawWorkload(const bhive::Corpus &corpus,
                                          size_t requests,
                                          size_t unique, uint64_t seed);

/** Wall-clock results of compareThroughput. */
struct ThroughputComparison
{
    double naiveSeconds = 0.0;  ///< predictUncached per request
    double engineSeconds = 0.0; ///< wave-batched predictAll

    double speedup() const { return naiveSeconds / engineSeconds; }
};

/**
 * Run @p workload through the naive path (parse + encode + one fresh
 * graph per request) and then through the batched engine, submitting
 * waves of @p wave requests as a serving endpoint would. The two
 * prediction streams must agree bit-exactly (fatal otherwise). The
 * naive pass runs first, so the engine's cache starts cold.
 */
ThroughputComparison
compareThroughput(PredictionEngine &engine,
                  const std::vector<std::string> &workload,
                  size_t wave = 250);

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_WORKLOAD_HH
