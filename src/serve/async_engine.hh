/**
 * @file
 * Serving API v2: a thread-safe, asynchronously-batched prediction
 * engine over one shared frozen WeightSnapshot.
 *
 * AsyncEngine is the serving core; the v1 serve::PredictionEngine
 * survives as a thin synchronous wrapper over it (serve/engine.hh).
 * Three things changed versus v1 (see docs/SERVING.md for the full
 * contract and migration notes):
 *
 *  - **Shared frozen weights.** All W shard executors borrow one
 *    nn::WeightSnapshot (weights, lazily-converted f32 panels,
 *    input-projection tables, per-opcode parameter-input columns)
 *    instead of holding per-shard copies, so per-engine weight
 *    allocations no longer scale with the worker count — and
 *    engines built from the same io::ModelSnapshot share too.
 *
 *  - **Thread safety.** Any number of client threads may call any
 *    combination of submit / submitAll / predict / predictAll
 *    concurrently. Caches are sharded-mutex LRUs, stats are atomic,
 *    and the shard executors are serialized behind one batch mutex
 *    (they parallelize internally over shards, as in v1).
 *
 *  - **Async micro-batched submission.** submit(text) returns a
 *    std::future immediately; a dispatcher pool (AsyncConfig::
 *    dispatchers workers, each with its own intake queue — striped
 *    round-robin assignment, idle-steal — and its own executor set)
 *    coalesces queued requests from many clients into micro-batches
 *    of up to maxBatch lanes (waiting at most maxWaitMicros for
 *    company), so concurrent single-block clients get batched
 *    execution — the amortization a DL-based simulator needs to
 *    win — without any client-side batching, and batches on
 *    different pool workers overlap on multi-core boxes.
 *
 * The front end behind predict is a three-level cache key hierarchy
 * (docs/FRONTEND.md): raw text -> interned canonical BlockId ->
 * encoded token lanes. A miss in the raw-text front cache parses
 * once, resolves to a dense BlockId in the engine's append-only
 * isa::Interner, and probes the prediction and pre-encoded caches by
 * that id — no canonical-text string is built on the hot path.
 *
 * # Determinism contract (unchanged from v1)
 *
 * A prediction is a pure function of the canonical block text and
 * the frozen checkpoint. Batching, arrival order, micro-batch
 * composition, worker count, cache state and client thread count
 * can therefore never change a result: in kF64 every answer is
 * bit-identical to the sequential reference path, and kF32 answers
 * are identical across all of the above (accuracy-gated < 1e-5
 * against f64, never bit-gated).
 *
 * # Shutdown
 *
 * shutdown() (also run by the destructor) stops intake, drains
 * every intake queue — every already-submitted future still
 * completes — and joins the dispatcher pool. submit after shutdown
 * throws
 * EngineStoppedError — a catchable rejection, not a process fatal:
 * a serving daemon must survive a client racing a drain (the
 * difftuned connection handler turns it into a "draining" wire
 * status and keeps running).
 */

#ifndef DIFFTUNE_SERVE_ASYNC_ENGINE_HH
#define DIFFTUNE_SERVE_ASYNC_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.hh"
#include "isa/intern.hh"
#include "obs/metrics.hh"
#include "serve/sharded_cache.hh"

namespace difftune::serve
{

/** AsyncEngine tuning knobs. */
struct AsyncConfig
{
    int workers = 0;             ///< shard count (<= 0: library default)
    size_t cacheCapacity = 8192; ///< LRU entries (each cache)
    /** Serving arithmetic (see nn/batched.hh; kF32 is opt-in). */
    nn::Precision precision = nn::Precision::kF64;
    /** Micro-batcher: max requests coalesced into one batch. */
    size_t maxBatch = 64;
    /**
     * Micro-batcher: longest a queued request waits for company
     * before being dispatched undersized. Only queued (submit /
     * submitAll) requests pay this; the synchronous calls run
     * inline.
     */
    int maxWaitMicros = 100;
    /** Lock stripes per LRU cache (<= 0: library default). */
    int cacheStripes = 0;
    /**
     * Pre-encoded block cache entries (0: 4x cacheCapacity). Sized
     * larger than the prediction LRU on purpose: an encoded entry
     * is ~100 bytes and saves a full tokenizer-encoding pass, so
     * encodings should outlive the predictions they back — a block
     * whose prediction was evicted then forwards again straight
     * from its cached lanes.
     */
    size_t encodedCapacity = 0;
    /**
     * Interned canonical blocks bound (0: library default, 64Ki;
     * the instruction table gets 2x this). The interner is
     * append-only, so this bounds its lifetime footprint; past it,
     * new canonical forms are served without canonical-level
     * caching (correct, just unmemoized).
     */
    size_t internCapacity = 0;
    /**
     * Telemetry name prefix (docs/OBSERVABILITY.md): every metric
     * this engine registers — the mirrored ServeStats counters, the
     * per-stage latency histograms, the queue gauges — is named
     * "<metricPrefix>.<metric>", so multiple engines/models in one
     * process stay distinguishable in a single /statsz dump. Empty
     * selects a unique "serve.engine<N>" automatically. Two live
     * engines must not share a prefix (fatal at construction).
     */
    std::string metricPrefix;
    /**
     * Registry the engine's metrics register in (null: the
     * process-wide obs::MetricRegistry::global()). Tests point this
     * at a private registry for isolated golden dumps. Ignored —
     * like all telemetry — when obs::enabled() is false at
     * construction (the DIFFTUNE_OBS_OFF kill switch).
     */
    obs::MetricRegistry *registry = nullptr;
    /**
     * Dispatcher-pool size for the async micro-batcher (<= 1: one
     * dispatcher, the original behavior). Each pool worker owns an
     * intake queue (striped round-robin assignment at submit, with
     * idle workers stealing from loaded siblings) and a private set
     * of shard executors, so micro-batches on different workers
     * genuinely overlap on a multi-core box. By the determinism
     * contract the pool size can never change a result — kF64
     * replies stay bit-identical to the single-dispatcher engine
     * for any size and arrival order (see docs/TRAFFIC_LAB.md).
     */
    int dispatchers = 1;
    /**
     * Replacement/admission policy for the serving caches, built
     * per stripe (null: classic LRU — decision-identical to the
     * pre-lab engine). Policies are speed-only by the determinism
     * contract; see lab/policy.hh and docs/TRAFFIC_LAB.md.
     */
    lab::PolicyFactory cachePolicy;
};

/**
 * Monotonic serving counters. All atomic: any thread may read them
 * at any time; a concurrent reader sees each counter individually
 * consistent (sums across counters may be mid-update unless the
 * engine is quiescent).
 *
 * Not engine-private: unless telemetry is disabled
 * (DIFFTUNE_OBS_OFF), every counter here is mirrored live into the
 * engine's obs::MetricRegistry under its metric prefix
 * ("<prefix>.requests", "<prefix>.text_hits", ...), so a /statsz
 * dump (obs::renderStatsz) reports them next to the per-stage
 * latency histograms. On a quiescent engine the mirrored values
 * reconcile exactly:
 *
 *   requests == text_hits + text_misses == hits + misses
 *
 * with intern_hits/encode_hits (and forwards/batches) outside that
 * invariant, as documented per field. The mirror reads this struct
 * directly (no second copy to drift); the engine unlinks it at
 * destruction. See docs/OBSERVABILITY.md.
 */
struct ServeStats
{
    std::atomic<uint64_t> requests{0};   ///< predictions asked for
    std::atomic<uint64_t> textHits{0};   ///< raw-text front-cache hits
    std::atomic<uint64_t> textMisses{0}; ///< past the front cache
    std::atomic<uint64_t> hits{0};       ///< answered from either LRU
    std::atomic<uint64_t> misses{0};     ///< in no cache when served
    std::atomic<uint64_t> forwards{0};   ///< LSTM forward passes run
    std::atomic<uint64_t> batches{0};    ///< batches executed
    /**
     * Parsed blocks whose canonical form the interner had already
     * seen — the near-miss traffic (same canonical block, different
     * raw spelling or whitespace) that resolves to an existing
     * BlockId without building a canonical string. Outside the
     * requests == hits + misses reconciliation: an intern hit may
     * still go on to a prediction-cache hit or a forward pass.
     */
    std::atomic<uint64_t> internHits{0};
    /**
     * Forward-pass blocks whose encoded token lanes came from the
     * pre-encoded cache instead of re-running the tokenizer →
     * vocabulary encoding. At most one per entry of forwards.
     */
    std::atomic<uint64_t> encodeHits{0};
};

/**
 * Thrown by submit/submitAll once shutdown() has closed intake.
 * Deliberately an ordinary catchable exception (derived from
 * std::runtime_error, so pre-existing catch sites keep working)
 * rather than fatal(): a client racing a graceful drain is an
 * expected serving condition, not a process-ending error — the
 * daemon answers it with a "draining" status and carries on.
 */
class EngineStoppedError : public std::runtime_error
{
  public:
    EngineStoppedError()
        : std::runtime_error(
              "AsyncEngine: submit after shutdown (engine draining)")
    {
    }
};

/** Thread-safe micro-batching engine over one frozen snapshot. */
class AsyncEngine
{
  public:
    /**
     * Serve @p artifact (from io::makeModelSnapshot /
     * io::loadModelSnapshot; must carry a model, and — for a
     * paramDim > 0 surrogate — the parameter table and sampling
     * distribution). Binding several engines to one artifact shares
     * its WeightSnapshot; construct them from one thread.
     */
    explicit AsyncEngine(io::ModelSnapshot artifact,
                         AsyncConfig config = {});

    /** Convenience: promote @p checkpoint, then serve it. */
    explicit AsyncEngine(io::Checkpoint checkpoint,
                         AsyncConfig config = {});

    /**
     * Load @p path once and serve it (errors name the path). The
     * engine is immovable, so the factory hands back a unique_ptr;
     * the v1 wrapper's fromFile delegates here.
     */
    static std::unique_ptr<AsyncEngine>
    loadFromFile(const std::string &path, AsyncConfig config = {});

    /** shutdown()s (draining pending requests) and joins. */
    ~AsyncEngine();

    AsyncEngine(const AsyncEngine &) = delete;
    AsyncEngine &operator=(const AsyncEngine &) = delete;

    // ---- Asynchronous API (micro-batched, any thread)

    /**
     * Queue one block for prediction; the future completes when its
     * micro-batch executes (or immediately on a front-cache hit).
     * Parse/validation errors surface through the future.
     */
    std::future<double> submit(std::string block_text);

    /**
     * Queue a group; futures align with @p block_texts. The whole
     * group is enqueued atomically and flushes the micro-batcher
     * (no coalescing delay), so a group behaves like v1 predictAll
     * submitted from another thread.
     */
    std::vector<std::future<double>>
    submitAll(std::vector<std::string> block_texts);

    // ---- Synchronous API (inline, any thread)

    /** Predict one block given in canonical assembly syntax. */
    double predict(const std::string &block_text);

    /** Predict a batch; results align with @p block_texts. */
    std::vector<double>
    predictAll(const std::vector<std::string> &block_texts);

    /** Predict one already-parsed block (cached like predict()). */
    double predictBlock(const isa::BasicBlock &block);

    /**
     * The uncached, unbatched reference path: parse + encode + one
     * fresh double-precision graph per call. The ground truth every
     * kF64 answer must match bit-exactly.
     */
    double predictUncached(const std::string &block_text) const;

    // ---- Lifecycle

    /**
     * Stop intake, drain every queued request, join the dispatcher.
     * Idempotent and safe to call from any thread (concurrent
     * callers serialize; each returns only once the drain is
     * complete); the destructor calls it too. Futures already
     * handed out all complete before this returns.
     */
    void shutdown();

    // ---- Introspection

    const ServeStats &stats() const { return stats_; }
    const surrogate::Model &model() const { return *artifact_.model; }
    /** Learned parameter table (shared with the artifact; may be
     *  null for an Ithemal-mode checkpoint). */
    const std::shared_ptr<const params::ParamTable> &
    table() const
    {
        return artifact_.table;
    }
    /** The frozen snapshot every shard of this engine borrows. */
    const nn::WeightSnapshot &snapshot() const { return *snapshot_; }
    std::shared_ptr<const nn::WeightSnapshot>
    snapshotPtr() const
    {
        return snapshot_;
    }
    int workers() const { return workers_; }
    nn::Precision precision() const { return precision_; }
    const AsyncConfig &config() const { return config_; }
    /** The engine's interned canonical tables (sizes/footprint). */
    const isa::Interner &interner() const { return interner_; }
    /**
     * The telemetry name prefix this engine registered under
     * (config or auto-assigned), or empty when telemetry was
     * disabled at construction.
     */
    const std::string &metricPrefix() const { return metricPrefix_; }

    /**
     * Bytes of weight-derived state this engine shares through its
     * snapshot: the f32 panels and projection tables (one copy per
     * *shard* before v2) plus the per-opcode input columns (one
     * copy per *engine* before v2). Constant in workers() by
     * construction, and shared further across engines built from
     * one io::ModelSnapshot.
     */
    size_t
    sharedWeightBytes() const
    {
        return snapshot_->sharedBytes();
    }

  private:
    /** One queued request. */
    struct Pending
    {
        std::string text;
        std::promise<double> promise;
        /** Enqueue instant (0 with telemetry off): the dispatcher
         *  records queue-wait and end-to-end spans from it. */
        uint64_t enqueuedNs = 0;
    };

    /** Per-request result of a served batch. */
    struct Outcome
    {
        double value = 0.0;
        std::exception_ptr error; ///< set iff the request failed
    };

    /** Blocks needing a forward pass within one batch. */
    struct Miss
    {
        /** Interned canonical id, or invalidBlockId (interner full:
         *  served uncachably, bit-identically). */
        isa::BlockId id = isa::invalidBlockId;
        isa::BasicBlock block;
        double prediction = 0.0;
        std::vector<uint32_t> outputs; ///< outcome slots to fill
    };

    /**
     * requests accounting + raw-text front-cache probe, shared by
     * every entry point. @return the cached value on a hit.
     */
    std::optional<double> frontProbe(const std::string &text);

    /** Per-shard executor + instruction-hidden memo (speed only). */
    struct Shard
    {
        std::unique_ptr<nn::BatchedForward> batched;
        surrogate::InstHiddenCache instCache;
    };

    /**
     * Serve @p texts (which already missed the front cache) on the
     * synchronous executor set: takes batchMutex_, then delegates
     * to serveBatchOn. Outcomes align with @p texts; per-request
     * errors land in Outcome::error. @p sample_laps (from
     * sampleTick()) turns the per-block stage laps on for this call.
     */
    std::vector<Outcome>
    serveBatch(const std::vector<const std::string *> &texts,
               bool sample_laps);

    /**
     * The batch core: dedup, parse, canonical-cache probe, shard
     * fan-out over the misses on @p shards, cache publish. The
     * caller must own @p shards exclusively — the sync path holds
     * batchMutex_ over shards_; each dispatcher-pool worker passes
     * its private set lock-free, which is how batches on different
     * workers overlap.
     */
    std::vector<Outcome>
    serveBatchOn(std::vector<Shard> &shards,
                 const std::vector<const std::string *> &texts,
                 bool sample_laps);

    /**
     * Run misses [lo, hi) through @p sh's executor as one lane
     * batch and fill their predictions. The caller owns @p sh
     * (shards of one set parallelize via parallelShards).
     */
    void forwardMissBatch(Shard &sh, std::vector<Miss> &misses,
                          size_t lo, size_t hi);

    /** Forward one encoded block on @p graph; returns exp(head). */
    double forwardEncoded(nn::Graph &graph,
                          const surrogate::EncodedBlock &encoded,
                          const isa::BasicBlock &block) const;

    /** Pool worker @p self: pop/steal, coalesce, serve, fulfill. */
    void dispatchLoop(size_t self);

    /** Start the dispatcher pool if needed; caller holds
     *  queueMutex_. */
    void ensureDispatchersLocked();

    io::ModelSnapshot artifact_;
    std::shared_ptr<const nn::WeightSnapshot> snapshot_;
    int workers_;
    nn::Precision precision_;
    AsyncConfig config_;

    /** Synchronous-path executors (guarded by batchMutex_). */
    std::vector<Shard> shards_;

    /**
     * Serializes batch execution (the shard executors and their
     * instruction caches are single-batch state). Cache probes and
     * the queue do not take this lock.
     */
    std::mutex batchMutex_;

    /**
     * Interned canonical tables: every parsed block resolves to a
     * dense BlockId here (append-only, lock-free reads), and the
     * BlockId keys both LRUs below — no canonical-text string is
     * built on the hot path. Private to this engine: its ids never
     * mean anything to another engine's caches.
     */
    isa::Interner interner_;
    /** Front cache keyed by the *raw* request text. */
    ShardedLruCache<std::string, double> textCache_;
    /** Main cache: interned canonical block -> prediction. */
    ShardedLruCache<isa::BlockId, double> cache_;
    /**
     * Pre-encoded block cache: interned canonical block -> encoded
     * token lanes, so a forward pass for a known block skips the
     * vocabulary encoding (shared_ptr values: a hit borrows the
     * entry even if a racing put evicts it).
     */
    ShardedLruCache<isa::BlockId,
                    std::shared_ptr<const surrogate::EncodedBlock>>
        encodedCache_;
    ServeStats stats_;

    /**
     * Per-stage telemetry (docs/OBSERVABILITY.md): registry-owned
     * histograms/gauges resolved once at construction. All null
     * when obs::enabled() was false — the StageTimer/StageClock
     * spans then cost one branch each (the kill-switch contract).
     * Histogram units are nanoseconds except batchSize (requests
     * per dispatcher micro-batch).
     */
    struct StageMetrics
    {
        obs::LatencyHistogram *request = nullptr;   ///< end-to-end
        obs::LatencyHistogram *parse = nullptr;     ///< tokenize+parse
        obs::LatencyHistogram *intern = nullptr;    ///< canonical id
        obs::LatencyHistogram *predCache = nullptr; ///< BlockId probe
        obs::LatencyHistogram *encode = nullptr;    ///< lane lookup
        obs::LatencyHistogram *forward = nullptr;   ///< LSTM batch
        obs::LatencyHistogram *queueWait = nullptr; ///< submit->pop
        obs::LatencyHistogram *coalesce = nullptr;  ///< batcher wait
        obs::LatencyHistogram *batchSize = nullptr; ///< reqs/batch
        obs::Gauge *queueDepth = nullptr;

        bool on() const { return request != nullptr; }
    };

    /**
     * Head-based trace sampling for the synchronous hot path: 1 in
     * this many sync predicts / serveBatch calls records its spans
     * (request_ns plus the per-block stage laps) — the decision is
     * made once up front, so a sampled call yields one coherent
     * trace. A clock read costs ~30 ns on shared runners and the
     * warm hit path is only a few us, so always-on spans would
     * blow bench_serve's 5% overhead gate; sampling keeps the
     * percentiles representative at ~1/8 the cost. Async-submitted
     * requests are exempt: the dispatcher records every one, since
     * its clock reads amortize across the popped batch.
     */
    static constexpr uint64_t kStageSamplePeriod = 8;

    /** Draw one sampling decision (false when telemetry is off). */
    bool sampleTick();

    /** Resolve stage_ and mirror stats_ (constructor tail). */
    void registerMetrics();

    StageMetrics stage_;
    std::atomic<uint64_t> stageSampleTick_{0};
    obs::MetricRegistry *registry_ = nullptr;
    std::string metricPrefix_;

    /**
     * One dispatcher-pool worker: an intake queue (guarded by
     * queueMutex_ like all queue state) plus a private executor set
     * its thread serves batches on without touching batchMutex_.
     * unique_ptr entries so worker addresses are stable.
     */
    struct DispatchWorker
    {
        std::deque<Pending> queue;
        std::vector<Shard> shards;
        std::thread thread;
    };

    /** Pool size the config resolves to (>= 1). */
    size_t
    poolSize() const
    {
        return size_t(std::max(config_.dispatchers, 1));
    }

    /**
     * One mutex guards every per-worker queue plus the stop/flush
     * flags: queue operations are tiny next to batch execution, so
     * striping the *lock* would buy nothing — what the per-worker
     * queues buy is striped FIFO assignment, per-worker coalescing
     * and idle-steal, and above all one private executor set per
     * worker so batch *execution* overlaps.
     */
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::vector<std::unique_ptr<DispatchWorker>> pool_;
    /** Round-robin intake stripe counter (submit picks a queue). */
    std::atomic<uint64_t> intakeStripe_{0};
    /** Sum of all per-worker queue sizes (guarded by queueMutex_);
     *  what the queue_depth gauge mirrors — with a pool, one
     *  worker's queue alone would under-report the backlog. */
    size_t totalQueued_ = 0;
    uint64_t flushes_ = 0; ///< submitAll/shutdown flush generation
    bool stopping_ = false;
    /** Fast intake-closed check (set before stopping_ is taken). */
    std::atomic<bool> stopped_{false};
    /**
     * The pool starts lazily on the first queued request (guarded
     * by queueMutex_), so engines used only through the synchronous
     * API never own idle threads.
     */
    bool dispatchersStarted_ = false;
    /** Serializes shutdown(): exactly one caller joins. */
    std::mutex shutdownMutex_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_ASYNC_ENGINE_HH
