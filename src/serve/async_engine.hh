/**
 * @file
 * Serving API v2: a thread-safe, asynchronously-batched prediction
 * engine over one shared frozen WeightSnapshot.
 *
 * AsyncEngine is the serving core; the v1 serve::PredictionEngine
 * survives as a thin synchronous wrapper over it (serve/engine.hh).
 * Three things changed versus v1 (see docs/SERVING.md for the full
 * contract and migration notes):
 *
 *  - **Shared frozen weights.** All W shard executors borrow one
 *    nn::WeightSnapshot (weights, lazily-converted f32 panels,
 *    input-projection tables, per-opcode parameter-input columns)
 *    instead of holding per-shard copies, so per-engine weight
 *    allocations no longer scale with the worker count — and
 *    engines built from the same io::ModelSnapshot share too.
 *
 *  - **Thread safety.** Any number of client threads may call any
 *    combination of submit / submitAll / predict / predictAll
 *    concurrently. Caches are sharded-mutex LRUs, stats are atomic,
 *    and the shard executors are serialized behind one batch mutex
 *    (they parallelize internally over shards, as in v1).
 *
 *  - **Async micro-batched submission.** submit(text) returns a
 *    std::future immediately; a dispatcher thread coalesces queued
 *    requests from many clients into micro-batches of up to
 *    maxBatch lanes (waiting at most maxWaitMicros for company), so
 *    concurrent single-block clients get batched execution — the
 *    amortization a DL-based simulator needs to win — without any
 *    client-side batching.
 *
 * # Determinism contract (unchanged from v1)
 *
 * A prediction is a pure function of the canonical block text and
 * the frozen checkpoint. Batching, arrival order, micro-batch
 * composition, worker count, cache state and client thread count
 * can therefore never change a result: in kF64 every answer is
 * bit-identical to the sequential reference path, and kF32 answers
 * are identical across all of the above (accuracy-gated < 1e-5
 * against f64, never bit-gated).
 *
 * # Shutdown
 *
 * shutdown() (also run by the destructor) stops intake, drains the
 * queue — every already-submitted future still completes — and
 * joins the dispatcher. submit after shutdown throws.
 */

#ifndef DIFFTUNE_SERVE_ASYNC_ENGINE_HH
#define DIFFTUNE_SERVE_ASYNC_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.hh"
#include "serve/sharded_cache.hh"

namespace difftune::serve
{

/** AsyncEngine tuning knobs. */
struct AsyncConfig
{
    int workers = 0;             ///< shard count (<= 0: library default)
    size_t cacheCapacity = 8192; ///< LRU entries (each cache)
    /** Serving arithmetic (see nn/batched.hh; kF32 is opt-in). */
    nn::Precision precision = nn::Precision::kF64;
    /** Micro-batcher: max requests coalesced into one batch. */
    size_t maxBatch = 64;
    /**
     * Micro-batcher: longest a queued request waits for company
     * before being dispatched undersized. Only queued (submit /
     * submitAll) requests pay this; the synchronous calls run
     * inline.
     */
    int maxWaitMicros = 100;
    /** Lock stripes per LRU cache (<= 0: library default). */
    int cacheStripes = 0;
};

/**
 * Monotonic serving counters. All atomic: any thread may read them
 * at any time; a concurrent reader sees each counter individually
 * consistent (sums across counters may be mid-update unless the
 * engine is quiescent).
 */
struct ServeStats
{
    std::atomic<uint64_t> requests{0};   ///< predictions asked for
    std::atomic<uint64_t> textHits{0};   ///< raw-text front-cache hits
    std::atomic<uint64_t> textMisses{0}; ///< past the front cache
    std::atomic<uint64_t> hits{0};       ///< answered from either LRU
    std::atomic<uint64_t> misses{0};     ///< in no cache when served
    std::atomic<uint64_t> forwards{0};   ///< LSTM forward passes run
    std::atomic<uint64_t> batches{0};    ///< batches executed
};

/** Thread-safe micro-batching engine over one frozen snapshot. */
class AsyncEngine
{
  public:
    /**
     * Serve @p artifact (from io::makeModelSnapshot /
     * io::loadModelSnapshot; must carry a model, and — for a
     * paramDim > 0 surrogate — the parameter table and sampling
     * distribution). Binding several engines to one artifact shares
     * its WeightSnapshot; construct them from one thread.
     */
    explicit AsyncEngine(io::ModelSnapshot artifact,
                         AsyncConfig config = {});

    /** Convenience: promote @p checkpoint, then serve it. */
    explicit AsyncEngine(io::Checkpoint checkpoint,
                         AsyncConfig config = {});

    /**
     * Load @p path once and serve it (errors name the path). The
     * engine is immovable, so the factory hands back a unique_ptr;
     * the v1 wrapper's fromFile delegates here.
     */
    static std::unique_ptr<AsyncEngine>
    loadFromFile(const std::string &path, AsyncConfig config = {});

    /** shutdown()s (draining pending requests) and joins. */
    ~AsyncEngine();

    AsyncEngine(const AsyncEngine &) = delete;
    AsyncEngine &operator=(const AsyncEngine &) = delete;

    // ---- Asynchronous API (micro-batched, any thread)

    /**
     * Queue one block for prediction; the future completes when its
     * micro-batch executes (or immediately on a front-cache hit).
     * Parse/validation errors surface through the future.
     */
    std::future<double> submit(std::string block_text);

    /**
     * Queue a group; futures align with @p block_texts. The whole
     * group is enqueued atomically and flushes the micro-batcher
     * (no coalescing delay), so a group behaves like v1 predictAll
     * submitted from another thread.
     */
    std::vector<std::future<double>>
    submitAll(std::vector<std::string> block_texts);

    // ---- Synchronous API (inline, any thread)

    /** Predict one block given in canonical assembly syntax. */
    double predict(const std::string &block_text);

    /** Predict a batch; results align with @p block_texts. */
    std::vector<double>
    predictAll(const std::vector<std::string> &block_texts);

    /** Predict one already-parsed block (cached like predict()). */
    double predictBlock(const isa::BasicBlock &block);

    /**
     * The uncached, unbatched reference path: parse + encode + one
     * fresh double-precision graph per call. The ground truth every
     * kF64 answer must match bit-exactly.
     */
    double predictUncached(const std::string &block_text) const;

    // ---- Lifecycle

    /**
     * Stop intake, drain every queued request, join the dispatcher.
     * Idempotent and safe to call from any thread (concurrent
     * callers serialize; each returns only once the drain is
     * complete); the destructor calls it too. Futures already
     * handed out all complete before this returns.
     */
    void shutdown();

    // ---- Introspection

    const ServeStats &stats() const { return stats_; }
    const surrogate::Model &model() const { return *artifact_.model; }
    /** Learned parameter table (shared with the artifact; may be
     *  null for an Ithemal-mode checkpoint). */
    const std::shared_ptr<const params::ParamTable> &
    table() const
    {
        return artifact_.table;
    }
    /** The frozen snapshot every shard of this engine borrows. */
    const nn::WeightSnapshot &snapshot() const { return *snapshot_; }
    std::shared_ptr<const nn::WeightSnapshot>
    snapshotPtr() const
    {
        return snapshot_;
    }
    int workers() const { return workers_; }
    nn::Precision precision() const { return precision_; }
    const AsyncConfig &config() const { return config_; }

    /**
     * Bytes of weight-derived state this engine shares through its
     * snapshot: the f32 panels and projection tables (one copy per
     * *shard* before v2) plus the per-opcode input columns (one
     * copy per *engine* before v2). Constant in workers() by
     * construction, and shared further across engines built from
     * one io::ModelSnapshot.
     */
    size_t
    sharedWeightBytes() const
    {
        return snapshot_->sharedBytes();
    }

  private:
    /** One queued request. */
    struct Pending
    {
        std::string text;
        std::promise<double> promise;
    };

    /** Per-request result of a served batch. */
    struct Outcome
    {
        double value = 0.0;
        std::exception_ptr error; ///< set iff the request failed
    };

    /** Blocks needing a forward pass within one batch. */
    struct Miss
    {
        std::string key; ///< canonical text
        isa::BasicBlock block;
        double prediction = 0.0;
        std::vector<uint32_t> outputs; ///< outcome slots to fill
    };

    /**
     * requests accounting + raw-text front-cache probe, shared by
     * every entry point. @return the cached value on a hit.
     */
    std::optional<double> frontProbe(const std::string &text);

    /**
     * Serve @p texts (which already missed the front cache):
     * dedup, parse, canonical-cache probe, shard fan-out over the
     * misses, cache publish. Takes batchMutex_. Outcomes align with
     * @p texts; per-request errors land in Outcome::error.
     */
    std::vector<Outcome>
    serveBatch(const std::vector<const std::string *> &texts);

    /**
     * Run misses [lo, hi) through shard @p shard's executor as one
     * lane batch and fill their predictions. Caller holds
     * batchMutex_ (shards parallelize under it via parallelShards).
     */
    void forwardMissBatch(int shard, std::vector<Miss> &misses,
                          size_t lo, size_t hi);

    /** Forward one encoded block on @p graph; returns exp(head). */
    double forwardEncoded(nn::Graph &graph,
                          const surrogate::EncodedBlock &encoded,
                          const isa::BasicBlock &block) const;

    /** The dispatcher thread: pop, coalesce, serve, fulfill. */
    void dispatchLoop();

    /** Start the dispatcher if needed; caller holds queueMutex_. */
    void ensureDispatcherLocked();

    io::ModelSnapshot artifact_;
    std::shared_ptr<const nn::WeightSnapshot> snapshot_;
    int workers_;
    nn::Precision precision_;
    AsyncConfig config_;

    /** Per-shard executor + instruction-hidden memo (speed only). */
    struct Shard
    {
        std::unique_ptr<nn::BatchedForward> batched;
        surrogate::InstHiddenCache instCache;
    };
    std::vector<Shard> shards_;

    /**
     * Serializes batch execution (the shard executors and their
     * instruction caches are single-batch state). Cache probes and
     * the queue do not take this lock.
     */
    std::mutex batchMutex_;

    /** Front cache keyed by the *raw* request text. */
    ShardedLruCache<std::string, double> textCache_;
    /** Main cache keyed by canonicalized block text. */
    ShardedLruCache<std::string, double> cache_;
    ServeStats stats_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Pending> queue_;
    uint64_t flushes_ = 0; ///< submitAll/shutdown flush generation
    bool stopping_ = false;
    /** Fast intake-closed check (set before stopping_ is taken). */
    std::atomic<bool> stopped_{false};
    /**
     * The dispatcher starts lazily on the first queued request
     * (guarded by queueMutex_), so engines used only through the
     * synchronous API never own an idle thread.
     */
    bool dispatcherStarted_ = false;
    /** Serializes shutdown(): exactly one caller joins. */
    std::mutex shutdownMutex_;
    std::thread dispatcher_;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_ASYNC_ENGINE_HH
