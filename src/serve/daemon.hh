/**
 * @file
 * difftuned: the serving daemon — a process boundary around the
 * ModelRegistry — plus the loopback client that drives it.
 *
 * # Wire protocol (length-prefixed binary, little-endian)
 *
 * Every message — request or response — is one frame:
 *
 *   u32 payload_length | payload  (payload_length <= maxFrameBytes)
 *
 * Request payloads start with a one-byte opcode:
 *
 *   kPredict  u8 op=1 | u16 name_len | name | u32 text_len | text
 *   kStatsz   u8 op=2
 *   kLoad     u8 op=3 | u16 name_len | name | u32 path_len | path
 *   kList     u8 op=4
 *   kPing     u8 op=5
 *
 * Response payloads start with a one-byte status:
 *
 *   kOk=0        body by request: predict -> 8-byte f64 bit
 *                pattern (the prediction, bit-exact across the
 *                wire); statsz -> u32 len | text dump; list ->
 *                u32 count | (u16 len | name)*; load/ping -> empty
 *   kError=1     u32 len | message (the request failed; the
 *                connection stays usable)
 *   kDraining=2  u32 len | message (the daemon is shutting down;
 *                no new work is accepted)
 *
 * A malformed frame (bad opcode, truncated field, oversized length)
 * gets a kError response when the framing itself is still sound,
 * otherwise the connection is closed. One connection processes one
 * request at a time, in order — concurrency comes from many
 * connections, whose predict calls the shared AsyncEngine
 * micro-batcher coalesces across connections.
 *
 * # Lifecycle / graceful drain
 *
 * start() binds (port 0 picks an ephemeral port — read it back with
 * port()), listens, and serves each accepted connection on its own
 * thread. drain() — wired to SIGTERM/SIGINT by the difftuned binary
 * — closes intake in order: stop accepting, shut down every
 * connection's read side (in-flight requests still complete and
 * their responses are written), join the connection threads, then
 * drain the registry (every pending engine future completes). No
 * accepted request is ever dropped. See docs/SERVING.md ("Running
 * difftuned").
 */

#ifndef DIFFTUNE_SERVE_DAEMON_HH
#define DIFFTUNE_SERVE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.hh"

namespace difftune::serve
{

/** Protocol constants shared by daemon, client and tests. */
namespace wire
{

enum Op : uint8_t
{
    kPredict = 1,
    kStatsz = 2,
    kLoad = 3,
    kList = 4,
    kPing = 5,
};

enum Status : uint8_t
{
    kOk = 0,
    kError = 1,
    kDraining = 2,
};

/** Default per-frame size cap (requests and responses). */
constexpr size_t kDefaultMaxFrameBytes = size_t(1) << 20;

} // namespace wire

/** Daemon tuning knobs. */
struct DaemonConfig
{
    /** Address to bind; loopback by default (difftuned is not an
     *  authenticated public endpoint). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read back via port()). */
    uint16_t port = 0;
    /** Registry knobs: per-model engine template, metric root. */
    RegistryConfig registry;
    /** Reject request frames larger than this (a garbage length
     *  prefix must not become a giant allocation). */
    size_t maxFrameBytes = wire::kDefaultMaxFrameBytes;
};

/**
 * Thrown by DaemonClient on connection failures, protocol
 * violations, and kError/kDraining responses (draining() tells the
 * two apart so a client racing a shutdown can stop cleanly).
 */
class DaemonError : public std::runtime_error
{
  public:
    explicit DaemonError(const std::string &what, bool draining = false)
        : std::runtime_error(what), draining_(draining)
    {
    }

    /** True when the daemon answered kDraining. */
    bool draining() const { return draining_; }

  private:
    bool draining_;
};

/** The difftuned server: a TCP front end over a ModelRegistry. */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig config = {});

    /** drain()s (completing all in-flight work) and joins. */
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind, listen and start accepting. Models may be loaded into
     * registry() before or after — a predict for a not-yet-loaded
     * name is a kError, not a crash. Throws on bind failure.
     */
    void start();

    /** The bound port (the ephemeral pick when config.port was 0).
     *  Valid after start(). */
    uint16_t port() const { return port_; }

    /** The model map this daemon serves (load/swap/remove through
     *  it; hot-swaps are live immediately). */
    ModelRegistry &registry() { return registry_; }
    const ModelRegistry &registry() const { return registry_; }

    /**
     * Graceful drain: close intake (listener + connection read
     * sides), let every in-flight request finish and flush its
     * response, join all threads, drain the registry. Idempotent;
     * safe from any thread except a connection handler's own.
     */
    void drain();

    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** Connections accepted over the daemon's lifetime. */
    uint64_t connectionsAccepted() const
    {
        return connections_.load(std::memory_order_relaxed);
    }

    /** Request frames processed (all opcodes). */
    uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Requests answered kError (malformed, unknown model, ...). */
    uint64_t errorsServed() const
    {
        return errors_.load(std::memory_order_relaxed);
    }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    /** Accept loop (acceptor thread body). */
    void acceptLoop();

    /** Per-connection frame loop (connection thread body). */
    void serveConnection(Connection &connection);

    /** Handle one request payload; returns the response payload. */
    std::string handleRequest(const std::string &payload);

    std::string handlePredict(const std::string &payload);
    std::string handleLoad(const std::string &payload);

    /** Join finished connection threads (called while accepting, so
     *  a long-lived daemon does not accumulate dead threads). */
    void reapConnectionsLocked();

    DaemonConfig config_;
    ModelRegistry registry_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptor_;
    std::atomic<bool> draining_{false};
    /** Serializes drain() callers; start() sets up before any. */
    std::mutex drainMutex_;
    std::mutex connectionsMutex_;
    std::vector<std::unique_ptr<Connection>> connections_list_;
    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> errors_{0};
    /** Registry-owned mirrors (immortal: they survive engine
     *  hot-swaps, unlike per-engine counters). Null when obs is
     *  disabled. */
    obs::Counter *connCounter_ = nullptr;
    obs::Counter *reqCounter_ = nullptr;
    obs::Counter *errCounter_ = nullptr;
};

/**
 * Blocking loopback client for difftuned, used by tests,
 * bench_serve and the CI daemon smoke. One instance owns one
 * connection and is single-threaded — concurrent clients each open
 * their own (serve::runDaemonClients does exactly that). All calls
 * throw DaemonError on failure; predict returns the f64 bit pattern
 * from the wire, so a loopback prediction is bit-exact against the
 * in-process engine.
 */
class DaemonClient
{
  public:
    DaemonClient(const std::string &host, uint16_t port);
    explicit DaemonClient(uint16_t port); ///< 127.0.0.1
    ~DaemonClient();

    DaemonClient(const DaemonClient &) = delete;
    DaemonClient &operator=(const DaemonClient &) = delete;
    DaemonClient(DaemonClient &&other) noexcept;
    DaemonClient &operator=(DaemonClient &&other) noexcept;

    /** Predict @p block_text under model @p model. */
    double predict(const std::string &model,
                   const std::string &block_text);

    /** The daemon's full /statsz text dump. */
    std::string statsz();

    /** Load (or hot-swap) @p path under @p model on the daemon. */
    void load(const std::string &model, const std::string &path);

    /** Names the daemon is currently serving, sorted. */
    std::vector<std::string> models();

    /** Round-trip liveness check. */
    void ping();

  private:
    /** Send one framed request, receive one framed response; checks
     *  the status byte and strips it. */
    std::string roundTrip(const std::string &payload);

    int fd_ = -1;
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_DAEMON_HH
