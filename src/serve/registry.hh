/**
 * @file
 * Multi-model registry with zero-downtime hot-swap.
 *
 * The train-once/serve-many north star needs one process serving
 * *many* checkpoints — per-uarch surrogates, A/B candidates, a
 * retrained model rolling out — behind one endpoint. ModelRegistry
 * maps a model name to a serve::AsyncEngine and lets an operator
 * atomically replace the engine behind a name while traffic flows:
 *
 *  - **Readers never block on a swap.** acquire(name) hands back a
 *    shared_ptr<AsyncEngine>; the map lookup is a brief mutex hold
 *    and the returned reference keeps the engine (and its frozen
 *    nn::WeightSnapshot) alive for however long the caller uses it.
 *
 *  - **Swaps drop zero requests.** load(name, ...) constructs the
 *    replacement engine completely *outside* the map lock (readers
 *    keep acquiring the old engine meanwhile), then swaps one
 *    shared_ptr. In-flight requests finish on the engine they
 *    acquired; the old engine is destroyed — its destructor drains
 *    every pending future — only when the last such reference
 *    releases. The PR-5 snapshot design makes this nearly free: the
 *    two engines never share mutable state, and a checkpoint's
 *    weights live behind shared_ptr<const> for exactly this
 *    handover.
 *
 *  - **Swaps fail closed.** If the replacement checkpoint does not
 *    load or validate, load() throws and the previous engine keeps
 *    serving untouched.
 *
 * # Telemetry
 *
 * Every engine registers its metrics under
 * "<metricRoot>.<name>.g<generation>" (generation increments per
 * load of a name and survives remove(): an outgoing — or removed —
 * engine is still live, and still linked, while references to it
 * last, so no two engines ever share a prefix; see
 * obs::MetricRegistry::linkCounter). The registry additionally
 * owns immortal counters "<metricRoot>.registry.{loads,swaps}" and
 * gauge "<metricRoot>.registry.models" that survive engine
 * turnover, all feeding the same /statsz dump
 * (obs::renderStatsz). See docs/SERVING.md ("Running difftuned").
 */

#ifndef DIFFTUNE_SERVE_REGISTRY_HH
#define DIFFTUNE_SERVE_REGISTRY_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/async_engine.hh"

namespace difftune::serve
{

/** ModelRegistry tuning knobs. */
struct RegistryConfig
{
    /**
     * Template for every engine the registry constructs. metricPrefix
     * and registry are managed by the ModelRegistry itself (see
     * metricRoot below); the remaining knobs — workers, precision,
     * cache capacities, batcher limits — apply to each model.
     */
    AsyncConfig engine;
    /**
     * Root of every metric name this registry emits (model engines
     * under "<root>.<name>.g<gen>.", registry counters under
     * "<root>.registry."). Restricted, like all metric names, to
     * [A-Za-z0-9._-].
     */
    std::string metricRoot = "model";
    /**
     * Metric registry for the registry counters and every engine
     * (null: the process-wide global). Tests point this at a private
     * registry.
     */
    obs::MetricRegistry *registry = nullptr;
};

/**
 * Thrown by acquire() for a name no model was loaded under, and by
 * load() after drain() closed the registry.
 */
class UnknownModelError : public std::runtime_error
{
  public:
    explicit UnknownModelError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Name -> engine map with atomic, zero-downtime engine replacement. */
class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryConfig config = {});

    /** drain()s: every engine's pending futures complete first. */
    ~ModelRegistry();

    ModelRegistry(const ModelRegistry &) = delete;
    ModelRegistry &operator=(const ModelRegistry &) = delete;

    /**
     * Install @p artifact under @p name, or — if @p name is already
     * serving — hot-swap it: the replacement engine is built first
     * (readers keep hitting the old one), then one pointer swap
     * publishes it. Throws without touching the live engine if the
     * artifact does not validate. @p name must be non-empty and
     * metric-safe ([A-Za-z0-9._-]).
     */
    void load(const std::string &name, io::ModelSnapshot artifact);

    /** loadModelSnapshot(@p path), then load(). Errors name the path. */
    void loadFromFile(const std::string &name, const std::string &path);

    /**
     * The engine currently serving @p name. The returned reference
     * stays valid (and the engine keeps answering) across any number
     * of subsequent swaps. Throws UnknownModelError for an unknown
     * name.
     */
    std::shared_ptr<AsyncEngine> acquire(const std::string &name) const;

    /** acquire() that returns null instead of throwing. */
    std::shared_ptr<AsyncEngine>
    find(const std::string &name) const noexcept;

    /**
     * Remove @p name. In-flight holders of the engine finish
     * normally; the engine drains and dies with its last reference.
     * @return whether the name was present.
     */
    bool remove(const std::string &name);

    /** Currently-registered names, sorted. */
    std::vector<std::string> names() const;

    size_t size() const;

    /** Hot-swaps performed (loads over an already-serving name). */
    uint64_t swaps() const;

    /**
     * Close the registry: shut down every engine (draining all
     * pending futures before returning) and refuse further load()s.
     * acquire() keeps resolving so late callers get an engine whose
     * submit throws EngineStoppedError rather than a missing name.
     * Idempotent; called by the destructor.
     */
    void drain();

    bool draining() const;

  private:
    struct Entry
    {
        std::shared_ptr<AsyncEngine> engine;
        uint64_t generation = 0; ///< metric-prefix generation
    };

    RegistryConfig config_;
    obs::MetricRegistry *metrics_ = nullptr; ///< null: obs disabled
    obs::Counter *loads_ = nullptr;
    obs::Counter *swapCounter_ = nullptr;
    obs::Gauge *models_ = nullptr;

    /**
     * Serializes load()/remove()/drain() so concurrent swaps of one
     * name cannot interleave generations. Never held while an engine
     * constructs or is destroyed... except destruction via the map
     * entry reset, which is safe: destroying an AsyncEngine joins
     * only its own dispatcher. Taken before mapMutex_ (lock order).
     */
    mutable std::mutex adminMutex_;
    /** Guards the map itself; acquire() holds only this, briefly. */
    mutable std::mutex mapMutex_;
    std::map<std::string, Entry> entries_;
    /**
     * Next metric-prefix generation per name. Deliberately outlives
     * remove(): a removed engine may still be referenced (and its
     * counters linked), so a later reload of the same name must not
     * reuse its prefix. Guarded by adminMutex_.
     */
    std::map<std::string, uint64_t> nextGeneration_;
    bool draining_ = false;
    std::atomic<uint64_t> swaps_{0};
};

} // namespace difftune::serve

#endif // DIFFTUNE_SERVE_REGISTRY_HH
