/**
 * @file
 * Per-microarchitecture measured datasets with train/validation/test
 * splits (Section V-A: 80/10/10, block-wise disjoint — guaranteed by
 * corpus deduplication — with the same split used across uarches).
 */

#ifndef DIFFTUNE_BHIVE_DATASET_HH
#define DIFFTUNE_BHIVE_DATASET_HH

#include <string>
#include <vector>

#include "bhive/corpus.hh"
#include "hw/ref_machine.hh"

namespace difftune::bhive
{

/** One labeled example: a corpus block and its measured timing. */
struct Entry
{
    uint32_t blockIdx; ///< index into the corpus
    double timing;     ///< measured cycles per iteration
};

/** A measured, split dataset for one microarchitecture. */
class Dataset
{
  public:
    /**
     * Measure every corpus block on @p uarch's reference machine
     * (in parallel; measurements are deterministic per block) and
     * split 80/10/10. The split depends only on the corpus and
     * @p split_seed, so different uarches share the same split.
     */
    Dataset(const Corpus &corpus, hw::Uarch uarch,
            uint64_t split_seed = 0x5eed517ULL);

    const Corpus &corpus() const { return *corpus_; }
    hw::Uarch uarch() const { return uarch_; }

    const std::vector<Entry> &train() const { return train_; }
    const std::vector<Entry> &valid() const { return valid_; }
    const std::vector<Entry> &test() const { return test_; }

    /** Block for an entry. */
    const isa::BasicBlock &
    block(const Entry &entry) const
    {
        return (*corpus_)[entry.blockIdx].block;
    }

    /** Corpus metadata for an entry. */
    const BlockInfo &
    info(const Entry &entry) const
    {
        return (*corpus_)[entry.blockIdx];
    }

  private:
    const Corpus *corpus_;
    hw::Uarch uarch_;
    std::vector<Entry> train_, valid_, test_;
};

/** Table III-style summary statistics. */
struct DatasetSummary
{
    size_t trainBlocks = 0, validBlocks = 0, testBlocks = 0;
    size_t minLength = 0, maxLength = 0;
    double medianLength = 0.0, meanLength = 0.0;
    /** Unique opcodes in train / valid / test / overall. */
    size_t trainOpcodes = 0, validOpcodes = 0, testOpcodes = 0,
           totalOpcodes = 0;
    /** Median timing (cycles per 100 iterations) per dataset. */
    std::vector<std::pair<std::string, double>> medianTimings;
};

/** Summarize a corpus and its per-uarch datasets. */
DatasetSummary summarize(const Corpus &corpus,
                         const std::vector<const Dataset *> &datasets);

} // namespace difftune::bhive

#endif // DIFFTUNE_BHIVE_DATASET_HH
