/**
 * @file
 * Dataset measurement and splitting.
 */

#include "bhive/dataset.hh"

#include <algorithm>
#include <set>

#include "base/parallel.hh"
#include "base/random.hh"
#include "stats/metrics.hh"

namespace difftune::bhive
{

Dataset::Dataset(const Corpus &corpus, hw::Uarch uarch,
                 uint64_t split_seed)
    : corpus_(&corpus), uarch_(uarch)
{
    const size_t n = corpus.size();
    std::vector<double> timings(n);
    hw::RefMachine machine(uarch);
    parallelFor(n, 0, [&](size_t i) {
        timings[i] = machine.measure(corpus[i].block);
    });

    // Deterministic split, independent of uarch.
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = uint32_t(i);
    Rng rng(split_seed);
    rng.shuffle(order);

    const size_t train_count = n * 8 / 10;
    const size_t valid_count = n / 10;
    for (size_t i = 0; i < n; ++i) {
        Entry entry{order[i], timings[order[i]]};
        if (i < train_count)
            train_.push_back(entry);
        else if (i < train_count + valid_count)
            valid_.push_back(entry);
        else
            test_.push_back(entry);
    }
}

DatasetSummary
summarize(const Corpus &corpus,
          const std::vector<const Dataset *> &datasets)
{
    DatasetSummary summary;
    if (corpus.size() == 0)
        return summary;

    summary.minLength = corpus[0].block.size();
    summary.maxLength = 0;
    std::vector<double> lengths;
    lengths.reserve(corpus.size());
    for (const auto &info : corpus.blocks()) {
        const size_t len = info.block.size();
        summary.minLength = std::min(summary.minLength, len);
        summary.maxLength = std::max(summary.maxLength, len);
        lengths.push_back(double(len));
    }
    summary.medianLength = stats::median(lengths);
    summary.meanLength = stats::mean(lengths);

    auto opcodeCount = [&corpus](const std::vector<Entry> &entries) {
        std::set<isa::OpcodeId> seen;
        for (const auto &entry : entries)
            for (const auto &inst : corpus[entry.blockIdx].block.insts)
                seen.insert(inst.opcode);
        return seen.size();
    };

    if (!datasets.empty()) {
        const Dataset &first = *datasets.front();
        summary.trainBlocks = first.train().size();
        summary.validBlocks = first.valid().size();
        summary.testBlocks = first.test().size();
        summary.trainOpcodes = opcodeCount(first.train());
        summary.validOpcodes = opcodeCount(first.valid());
        summary.testOpcodes = opcodeCount(first.test());
        std::set<isa::OpcodeId> all;
        for (const auto &info : corpus.blocks())
            for (const auto &inst : info.block.insts)
                all.insert(inst.opcode);
        summary.totalOpcodes = all.size();

        for (const Dataset *dataset : datasets) {
            std::vector<double> timings;
            timings.reserve(dataset->test().size());
            for (const auto &entry : dataset->test())
                timings.push_back(entry.timing * 100.0);
            summary.medianTimings.emplace_back(
                hw::uarchName(dataset->uarch()),
                stats::median(timings));
        }
    }
    return summary;
}

} // namespace difftune::bhive
