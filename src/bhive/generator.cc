/**
 * @file
 * Block-generator implementation.
 */

#include "bhive/generator.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "isa/isa.hh"

namespace difftune::bhive
{

namespace
{

using isa::MemMode;
using isa::OpClass;
using isa::OpcodeId;

/** Opcode pools per generator group, built once from the Isa. */
struct GroupPools
{
    std::array<std::vector<OpcodeId>, numGenGroups> pools;

    GroupPools()
    {
        const isa::Isa &isa = isa::theIsa();
        for (OpcodeId id = 0; id < isa.numOpcodes(); ++id) {
            const auto &op = isa.info(id);
            GenGroup group = classify(op);
            pools[int(group)].push_back(id);
        }
        for (int g = 0; g < numGenGroups; ++g) {
            panic_if(pools[g].empty(), "generator group {} is empty", g);
        }
    }

    static GenGroup
    classify(const isa::OpcodeInfo &op)
    {
        if (op.stackOp)
            return GenGroup::Stack;
        if (op.isVector) {
            switch (op.opClass) {
              case OpClass::VecAlu:
                return GenGroup::VecArith;
              case OpClass::VecMul:
              case OpClass::VecFma:
                return GenGroup::VecMulFma;
              case OpClass::VecDiv:
                return GenGroup::VecDiv;
              case OpClass::VecMov:
                return GenGroup::VecMem;
              case OpClass::VecShuf:
                return GenGroup::VecShuf;
              default:
                break;
            }
        }
        switch (op.opClass) {
          case OpClass::IntMul:
            return GenGroup::Mul;
          case OpClass::IntDiv:
            return GenGroup::Div;
          case OpClass::Lea:
            return GenGroup::Lea;
          case OpClass::Setcc:
          case OpClass::Cmov:
            return GenGroup::FlagConsumer;
          case OpClass::Nop:
            return GenGroup::Nop;
          case OpClass::Load:
            return GenGroup::Load;
          case OpClass::Store:
            return GenGroup::Store;
          case OpClass::Shift:
            return op.mem == MemMode::LoadStore ? GenGroup::MemRmw
                                                : GenGroup::Shift;
          case OpClass::Mov:
            return op.hasImm ? GenGroup::MovImm : GenGroup::MovRR;
          case OpClass::IntAlu:
            if (op.mem == MemMode::LoadStore)
                return GenGroup::MemRmw;
            if (op.mem == MemMode::Load)
                return GenGroup::LoadOp;
            if (op.regOps.empty() ||
                (op.regOps.size() >= 1 &&
                 std::all_of(op.regOps.begin(), op.regOps.end(),
                             [](isa::OperandRole r) {
                                 return r == isa::OperandRole::Src;
                             })))
                return GenGroup::ScalarCmp;
            return GenGroup::ScalarArith;
          default:
            break;
        }
        return GenGroup::ScalarArith;
    }
};

const GroupPools &
groupPools()
{
    static const GroupPools pools;
    return pools;
}

AppProfile
makeProfile(App app, std::initializer_list<std::pair<GenGroup, double>>
                         weights)
{
    AppProfile profile;
    profile.app = app;
    for (const auto &[group, weight] : weights)
        profile.groupWeights[int(group)] = weight;
    return profile;
}

using G = GenGroup;

const std::array<AppProfile, numApps> &
allProfiles()
{
    static const std::array<AppProfile, numApps> profiles = {
        makeProfile(App::OpenBLAS,
                    {{G::VecMulFma, 30}, {G::VecArith, 15},
                     {G::VecMem, 20}, {G::Lea, 8}, {G::ScalarArith, 10},
                     {G::Load, 8}, {G::ScalarCmp, 4}, {G::Shift, 2},
                     {G::MovRR, 3}}),
        makeProfile(App::Redis,
                    {{G::Load, 22}, {G::Store, 12}, {G::MovRR, 12},
                     {G::MovImm, 8}, {G::ScalarArith, 18},
                     {G::ScalarCmp, 12}, {G::Lea, 5}, {G::Stack, 4},
                     {G::LoadOp, 4}, {G::FlagConsumer, 3}}),
        makeProfile(App::SQLite,
                    {{G::Load, 20}, {G::ScalarCmp, 15},
                     {G::FlagConsumer, 8}, {G::ScalarArith, 15},
                     {G::Store, 10}, {G::MovImm, 8}, {G::MovRR, 10},
                     {G::Stack, 5}, {G::LoadOp, 5}, {G::Lea, 4}}),
        makeProfile(App::GZip,
                    {{G::Shift, 22}, {G::ScalarArith, 22}, {G::Load, 18},
                     {G::ScalarCmp, 12}, {G::Store, 8}, {G::MovRR, 8},
                     {G::LoadOp, 6}, {G::MemRmw, 4}}),
        makeProfile(App::TensorFlow,
                    {{G::VecArith, 18}, {G::VecMulFma, 16},
                     {G::VecMem, 16}, {G::Load, 12}, {G::Lea, 8},
                     {G::ScalarArith, 12}, {G::MovRR, 6}, {G::Store, 5},
                     {G::ScalarCmp, 5}, {G::VecShuf, 2}}),
        makeProfile(App::Clang,
                    {{G::Load, 16}, {G::Store, 9}, {G::MovRR, 14},
                     {G::MovImm, 8}, {G::ScalarArith, 18},
                     {G::ScalarCmp, 11}, {G::Lea, 7}, {G::Stack, 6},
                     {G::FlagConsumer, 4}, {G::LoadOp, 4},
                     {G::MemRmw, 2}, {G::Mul, 1}}),
        makeProfile(App::Eigen,
                    {{G::VecMulFma, 28}, {G::VecArith, 18},
                     {G::VecMem, 18}, {G::Lea, 10}, {G::Load, 8},
                     {G::ScalarArith, 10}, {G::ScalarCmp, 4},
                     {G::MovRR, 4}}),
        makeProfile(App::Embree,
                    {{G::VecArith, 22}, {G::VecShuf, 14},
                     {G::VecMem, 18}, {G::VecMulFma, 18}, {G::Load, 8},
                     {G::ScalarArith, 8}, {G::ScalarCmp, 5},
                     {G::MovRR, 4}, {G::VecDiv, 3}}),
        makeProfile(App::FFmpeg,
                    {{G::VecArith, 20}, {G::Load, 14},
                     {G::ScalarArith, 16}, {G::Shift, 10},
                     {G::VecMem, 10}, {G::VecShuf, 6}, {G::Store, 8},
                     {G::MovRR, 7}, {G::ScalarCmp, 6},
                     {G::VecMulFma, 3}}),
    };
    return profiles;
}

} // namespace

const AppProfile &
appProfile(App app)
{
    return allProfiles()[int(app)];
}

const std::array<double, numApps> &
appShares()
{
    // Proportions approximate the per-application block counts of
    // Table V (Clang/LLVM dominant, GZip smallest).
    static const std::array<double, numApps> shares = {
        1478, // OpenBLAS
        839,  // Redis
        764,  // SQLite
        182,  // GZip
        6399, // TensorFlow
        18781, // Clang/LLVM
        387,  // Eigen
        1067, // Embree
        1516, // FFmpeg
    };
    return shares;
}

isa::BasicBlock
generateBlock(Rng &rng, const AppProfile &profile)
{
    const isa::Isa &isa = isa::theIsa();
    const GroupPools &pools = groupPools();

    // Block length: lognormal with median 3, clamped to [1, 64]
    // (BHive: min 1, median 3, mean 4.9).
    int length = int(std::lround(std::exp(rng.normal(1.1, 0.95))));
    length = std::clamp(length, 1, 64);

    // Block-local register palettes.
    const int num_gprs = int(rng.uniformInt(2, 6));
    const int num_vecs = int(rng.uniformInt(2, 6));
    std::vector<isa::RegId> gprs, vecs, bases;
    {
        std::vector<isa::RegId> all_gprs;
        for (isa::RegId r = 0; r < isa::numGprRegs; ++r)
            if (r != isa::stackPointer)
                all_gprs.push_back(r);
        rng.shuffle(all_gprs);
        gprs.assign(all_gprs.begin(), all_gprs.begin() + num_gprs);
        std::vector<isa::RegId> all_vecs;
        for (isa::RegId r = isa::firstVec;
             r < isa::firstVec + isa::numVecRegs; ++r)
            all_vecs.push_back(r);
        rng.shuffle(all_vecs);
        vecs.assign(all_vecs.begin(), all_vecs.begin() + num_vecs);
        // Memory base registers: one or two of the GPR palette.
        bases.push_back(gprs[0]);
        if (gprs.size() > 1 && rng.bernoulli(0.5))
            bases.push_back(gprs[1]);
    }
    static const int32_t disps[] = {0, 8, 16, 24, 32, 48, 64, 128};

    auto pickGpr = [&] { return gprs[rng.uniformInt(0, gprs.size() - 1)]; };
    auto pickVec = [&] { return vecs[rng.uniformInt(0, vecs.size() - 1)]; };
    auto pickMem = [&] {
        isa::MemRef mem;
        mem.base = bases[rng.uniformInt(0, bases.size() - 1)];
        mem.disp = disps[rng.uniformInt(0, 7)];
        return mem;
    };

    std::vector<double> weights(profile.groupWeights.begin(),
                                profile.groupWeights.end());

    isa::BasicBlock block;
    block.insts.reserve(length);
    for (int i = 0; i < length; ++i) {
        const int group = int(rng.weightedIndex(weights));
        const auto &pool = pools.pools[group];
        const OpcodeId opcode =
            pool[rng.uniformInt(0, pool.size() - 1)];
        const auto &op = isa.info(opcode);

        std::vector<isa::RegId> slots;
        slots.reserve(op.numRegOps());
        for (size_t s = 0; s < op.numRegOps(); ++s)
            slots.push_back(op.isVector ? pickVec() : pickGpr());

        isa::MemRef mem;
        if (op.mem != MemMode::None && !op.stackOp)
            mem = pickMem();

        int64_t imm = 0;
        if (op.hasImm) {
            imm = op.opClass == OpClass::Shift
                      ? rng.uniformInt(1, op.width - 1)
                      : rng.uniformInt(1, 64);
        }

        block.insts.push_back(isa::makeInstruction(opcode, slots, mem,
                                                   imm));
    }
    return block;
}

} // namespace difftune::bhive
