/**
 * @file
 * Per-application basic-block generators.
 *
 * Each application has an instruction-mix profile: weights over
 * generator groups (scalar arithmetic, loads, vector FMA, ...).
 * Blocks draw opcodes from the profile, assign registers from a small
 * block-local palette (creating realistic dependence chains), and use
 * a small displacement set for memory operands (creating occasional
 * address aliasing, which exercises the reference machine's
 * store-to-load forwarding).
 */

#ifndef DIFFTUNE_BHIVE_GENERATOR_HH
#define DIFFTUNE_BHIVE_GENERATOR_HH

#include <array>
#include <vector>

#include "base/random.hh"
#include "bhive/corpus.hh"

namespace difftune::bhive
{

/** Instruction groups the generator mixes between. */
enum class GenGroup : uint8_t
{
    ScalarArith, ///< add/sub/and/or/xor/inc/dec/neg/not, register forms
    Shift,       ///< shl/shr/sar
    ScalarCmp,   ///< cmp/test
    MovRR,       ///< register moves and extensions
    MovImm,      ///< immediate moves
    Load,        ///< pure loads
    Store,       ///< pure stores
    LoadOp,      ///< scalar op with memory source
    MemRmw,      ///< scalar read-modify-write on memory
    Stack,       ///< push/pop
    Mul,         ///< integer multiply
    Div,         ///< integer divide
    Lea,         ///< address computation
    FlagConsumer, ///< setcc/cmov
    VecArith,    ///< packed add/logic/min/max
    VecMulFma,   ///< packed multiply and FMA
    VecDiv,      ///< packed divide
    VecMem,      ///< vector moves/loads/stores/broadcasts
    VecShuf,     ///< shuffles
    Nop,         ///< nop
    NumGroups,
};

constexpr int numGenGroups = int(GenGroup::NumGroups);

/** Application instruction-mix profile. */
struct AppProfile
{
    App app;
    std::array<double, numGenGroups> groupWeights{};
};

/** @return the profile for @p app. */
const AppProfile &appProfile(App app);

/** Relative corpus share of each app (mirrors Table V's proportions). */
const std::array<double, numApps> &appShares();

/** Generate one block under @p profile. */
isa::BasicBlock generateBlock(Rng &rng, const AppProfile &profile);

} // namespace difftune::bhive

#endif // DIFFTUNE_BHIVE_GENERATOR_HH
