/**
 * @file
 * Corpus generation: app sampling, deduplication, categorization.
 */

#include "bhive/corpus.hh"

#include <unordered_map>

#include "bhive/generator.hh"

namespace difftune::bhive
{

const char *
appName(App app)
{
    switch (app) {
      case App::OpenBLAS: return "OpenBLAS";
      case App::Redis: return "Redis";
      case App::SQLite: return "SQLite";
      case App::GZip: return "GZip";
      case App::TensorFlow: return "TensorFlow";
      case App::Clang: return "Clang/LLVM";
      case App::Eigen: return "Eigen";
      case App::Embree: return "Embree";
      case App::FFmpeg: return "FFmpeg";
      default: return "?";
    }
}

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::Scalar: return "Scalar";
      case Category::Vec: return "Vec";
      case Category::ScalarVec: return "Scalar/Vec";
      case Category::Ld: return "Ld";
      case Category::St: return "St";
      case Category::LdSt: return "Ld/St";
      default: return "?";
    }
}

Category
classifyBlock(const isa::BasicBlock &block)
{
    int loads = 0, stores = 0, scalar_arith = 0, vec_arith = 0;
    for (const auto &inst : block.insts) {
        const auto &op = inst.info();
        if (op.mem == isa::MemMode::Load ||
            op.mem == isa::MemMode::LoadStore)
            ++loads;
        if (op.mem == isa::MemMode::Store ||
            op.mem == isa::MemMode::LoadStore)
            ++stores;
        switch (op.opClass) {
          case isa::OpClass::IntAlu:
          case isa::OpClass::IntMul:
          case isa::OpClass::IntDiv:
          case isa::OpClass::Shift:
          case isa::OpClass::Lea:
          case isa::OpClass::Setcc:
          case isa::OpClass::Cmov:
            ++scalar_arith;
            break;
          case isa::OpClass::VecAlu:
          case isa::OpClass::VecMul:
          case isa::OpClass::VecDiv:
          case isa::OpClass::VecFma:
          case isa::OpClass::VecShuf:
            ++vec_arith;
            break;
          default:
            break;
        }
    }
    if (loads == 0 && stores == 0) {
        if (vec_arith > 0 && scalar_arith > 0)
            return Category::ScalarVec;
        if (vec_arith > 0)
            return Category::Vec;
        return Category::Scalar;
    }
    if (loads > 0 && stores > 0)
        return Category::LdSt;
    return loads > 0 ? Category::Ld : Category::St;
}

Corpus
Corpus::generate(size_t target, uint64_t seed)
{
    Corpus corpus;
    corpus.blocks_.reserve(target);

    Rng rng(seed);
    std::vector<double> shares(appShares().begin(), appShares().end());
    std::unordered_map<uint64_t, size_t> by_hash;
    by_hash.reserve(target * 2);

    size_t attempts = 0;
    const size_t max_attempts = target * 3 + 1000;
    while (corpus.blocks_.size() < target && attempts < max_attempts) {
        ++attempts;
        const App app = App(rng.weightedIndex(shares));
        isa::BasicBlock block = generateBlock(rng, appProfile(app));
        const uint64_t hash = block.hash();
        auto it = by_hash.find(hash);
        if (it != by_hash.end()) {
            // Duplicate block: merge the application label (BHive
            // blocks can come from multiple applications).
            corpus.blocks_[it->second].appMask |= uint16_t(1u << int(app));
            continue;
        }
        BlockInfo info;
        info.category = classifyBlock(block);
        info.appMask = uint16_t(1u << int(app));
        info.block = std::move(block);
        by_hash[hash] = corpus.blocks_.size();
        corpus.blocks_.push_back(std::move(info));
    }
    return corpus;
}

} // namespace difftune::bhive
