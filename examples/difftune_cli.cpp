/**
 * @file
 * difftune_cli — a command-line front end over the library, the entry
 * point a downstream user scripts against.
 *
 *   difftune_cli simulate <uarch> <block.s> [params.txt]
 *       Predict a block's timing with XMca (default or saved table).
 *   difftune_cli measure <uarch> <block.s>
 *       Measure a block on the reference machine (ground truth).
 *   difftune_cli tune <uarch> <out_params.txt> [corpus_size]
 *       Run the full DiffTune pipeline and save the learned table.
 *   difftune_cli eval <uarch> <params.txt> [corpus_size]
 *       Evaluate a saved table on a freshly measured test split.
 *   difftune_cli dump-defaults <uarch> <out_params.txt>
 *       Write the expert default table to a file.
 *
 * Blocks use the canonical syntax printed by the library, one
 * instruction per line; '-' reads from stdin.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "base/table.hh"
#include "bhive/dataset.hh"
#include "core/difftune.hh"
#include "core/evaluate.hh"
#include "hw/default_table.hh"
#include "hw/ref_machine.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

namespace
{

using namespace difftune;

hw::Uarch
parseUarch(const std::string &name)
{
    for (hw::Uarch uarch : hw::allUarches())
        if (name == hw::uarchName(uarch))
            return uarch;
    fatal("unknown microarchitecture '{}' (expected IvyBridge, "
          "Haswell, Skylake or Zen2)",
          name);
}

std::string
readFileOrStdin(const std::string &path)
{
    std::stringstream buffer;
    if (path == "-") {
        buffer << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        fatal_if(!in, "cannot open '{}'", path);
        buffer << in.rdbuf();
    }
    return buffer.str();
}

params::ParamTable
loadTable(const std::string &path)
{
    return params::ParamTable::load(readFileOrStdin(path));
}

int
cmdSimulate(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: simulate <uarch> <block.s> [params]");
    const hw::Uarch uarch = parseUarch(argv[2]);
    auto block = isa::parseBlock(readFileOrStdin(argv[3]));
    auto table =
        argc > 4 ? loadTable(argv[4]) : hw::defaultTable(uarch);
    mca::XMca sim;
    std::cout << sim.timing(block, table) << "\n";
    return 0;
}

int
cmdMeasure(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: measure <uarch> <block.s>");
    hw::RefMachine machine(parseUarch(argv[2]));
    std::cout << machine.measure(
                     isa::parseBlock(readFileOrStdin(argv[3])))
              << "\n";
    return 0;
}

int
cmdTune(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: tune <uarch> <out_params> [corpus]");
    const hw::Uarch uarch = parseUarch(argv[2]);
    const size_t corpus_size =
        argc > 4 ? std::stoul(argv[4]) : 2000;
    setVerbose(true);

    auto corpus = bhive::Corpus::generate(corpus_size, 42);
    bhive::Dataset dataset(corpus, uarch);
    mca::XMca sim;
    auto base = hw::defaultTable(uarch);
    core::DiffTune difftune(sim, dataset, base,
                            core::DiffTuneConfig{});
    auto result = difftune.run();

    std::ofstream(argv[3]) << result.learned.save();
    auto eval =
        core::evaluate(sim, result.learned, dataset, dataset.test());
    std::cout << "learned table -> " << argv[3]
              << "  (test error " << fmtPercent(eval.error)
              << ", tau " << fmtDouble(eval.kendallTau, 3) << ")\n";
    return 0;
}

int
cmdEval(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: eval <uarch> <params> [corpus]");
    const hw::Uarch uarch = parseUarch(argv[2]);
    const size_t corpus_size =
        argc > 4 ? std::stoul(argv[4]) : 2000;
    auto corpus = bhive::Corpus::generate(corpus_size, 42);
    bhive::Dataset dataset(corpus, uarch);
    mca::XMca sim;
    auto eval = core::evaluate(sim, loadTable(argv[3]), dataset,
                               dataset.test());
    std::cout << "error " << fmtPercent(eval.error) << "  tau "
              << fmtDouble(eval.kendallTau, 3) << "  ("
              << dataset.test().size() << " test blocks)\n";
    return 0;
}

int
cmdDumpDefaults(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: dump-defaults <uarch> <out_params>");
    std::ofstream(argv[3])
        << hw::defaultTable(parseUarch(argv[2])).save();
    std::cout << "default table -> " << argv[3] << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: difftune_cli "
                     "<simulate|measure|tune|eval|dump-defaults> ...\n";
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "simulate")
            return cmdSimulate(argc, argv);
        if (command == "measure")
            return cmdMeasure(argc, argv);
        if (command == "tune")
            return cmdTune(argc, argv);
        if (command == "eval")
            return cmdEval(argc, argv);
        if (command == "dump-defaults")
            return cmdDumpDefaults(argc, argv);
        std::cerr << "unknown command '" << command << "'\n";
        return 2;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
}
