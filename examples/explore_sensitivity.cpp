/**
 * @file
 * Explore how a block's predicted timing responds to individual
 * parameters — the Figure 2/Figure 5 style analysis for any block.
 *
 *   ./explore_sensitivity                      # demo block
 *   ./explore_sensitivity "PUSH64r %rbx" PUSH64r
 *
 * The optional second argument selects the opcode whose WriteLatency
 * is swept (defaults to the first instruction's opcode).
 */

#include <iostream>

#include "base/logging.hh"
#include "base/table.hh"
#include "hw/default_table.hh"
#include "hw/ref_machine.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    using namespace difftune;

    isa::BasicBlock block = isa::parseBlock(
        argc > 1 ? argv[1] : "ADD32mr 16(%rsp), %eax");
    isa::OpcodeId swept = block.insts.front().opcode;
    if (argc > 2) {
        swept = isa::theIsa().opcodeByName(argv[2]);
        fatal_if(swept == isa::invalidOpcode, "unknown opcode {}",
                 argv[2]);
    }

    std::cout << "Block:\n" << isa::toString(block) << "\n";
    hw::RefMachine machine(hw::Uarch::Haswell);
    std::cout << "measured (Haswell RefMachine): "
              << fmtDouble(machine.measure(block), 3)
              << " cycles/iteration\n\n";

    mca::XMca sim;
    auto table = hw::defaultTable(hw::Uarch::Haswell);

    std::cout << "Sweeping WriteLatency("
              << isa::theIsa().info(swept).name << "):\n";
    TextTable wl_table({"WriteLatency", "XMca timing"});
    for (int wl = 0; wl <= 10; ++wl) {
        auto t = table;
        t.perOpcode[swept].writeLatency = wl;
        wl_table.addRow({std::to_string(wl),
                         fmtDouble(sim.timing(block, t), 3)});
    }
    std::cout << wl_table.render();

    std::cout << "\nSweeping DispatchWidth (Figure 2 style):\n";
    TextTable dw_table({"DispatchWidth", "XMca timing"});
    for (int dw = 1; dw <= 10; ++dw) {
        auto t = table;
        t.dispatchWidth = dw;
        dw_table.addRow({std::to_string(dw),
                         fmtDouble(sim.timing(block, t), 3)});
    }
    std::cout << dw_table.render();
    return 0;
}
