/**
 * @file
 * End-to-end DiffTune walkthrough: generate a dataset, learn the
 * simulator's entire parameter table from end-to-end measurements,
 * and compare against the expert defaults. Mirrors the paper's
 * Figure 1 pipeline at laptop scale (a couple of minutes).
 *
 *   ./tune_simulator [uarch]   # IvyBridge|Haswell|Skylake|Zen2
 */

#include <fstream>
#include <iostream>
#include <string>

#include "base/table.hh"
#include "bhive/dataset.hh"
#include "core/difftune.hh"
#include "core/evaluate.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    using namespace difftune;
    setVerbose(true);

    hw::Uarch uarch = hw::Uarch::Haswell;
    if (argc > 1) {
        const std::string name = argv[1];
        for (hw::Uarch candidate : hw::allUarches())
            if (name == hw::uarchName(candidate))
                uarch = candidate;
    }
    std::cout << "Tuning the XMca simulator for "
              << hw::uarchName(uarch) << "\n";

    // 1. Collect the real dataset: blocks + end-to-end measurements.
    auto corpus = bhive::Corpus::generate(1500, 42);
    bhive::Dataset dataset(corpus, uarch);
    std::cout << "dataset: " << dataset.train().size() << " train / "
              << dataset.valid().size() << " valid / "
              << dataset.test().size() << " test blocks\n";

    mca::XMca sim;
    auto base = hw::defaultTable(uarch);

    // 2-5. Simulated dataset -> surrogate -> table -> extraction.
    core::DiffTuneConfig cfg;
    cfg.simulatedMultiple = 6;
    cfg.surrogateLoops = 6;
    cfg.tableEpochs = 45;
    cfg.model.hidden = 48;
    cfg.model.embedDim = 32;
    cfg.model.tokenLayers = 1;
    cfg.seed = 1;
    core::DiffTune difftune(sim, dataset, base, cfg);
    auto result = difftune.run();

    auto def_eval = core::evaluate(sim, base, dataset, dataset.test());
    auto dt_eval =
        core::evaluate(sim, result.learned, dataset, dataset.test());

    TextTable table({"Parameters", "Test error", "Kendall tau"});
    table.addRow({"Expert defaults", fmtPercent(def_eval.error),
                  fmtDouble(def_eval.kendallTau, 3)});
    table.addRow({"DiffTune-learned", fmtPercent(dt_eval.error),
                  fmtDouble(dt_eval.kendallTau, 3)});
    std::cout << table.render();
    std::cout << "surrogate fidelity (vs simulator): "
              << fmtPercent(result.surrogateFidelity) << "\n"
              << "simulator evaluations used: "
              << result.simulatorEvals << "\n";

    const std::string out = "learned_params.txt";
    std::ofstream(out) << result.learned.save();
    std::cout << "learned table saved to " << out
              << " (reload with ParamTable::load)\n";
    return 0;
}
