/**
 * @file
 * difftune_lab — the traffic-lab CLI over src/lab/
 * (docs/TRAFFIC_LAB.md).
 *
 *   difftune_lab gen <out.trace> [--seed N] [--corpus N]
 *                [--corpus-seed N] [--requests N] [--zipf S]
 *                [--respell P] [--models N]
 *       Deterministically generate a trace and save its compact
 *       serialized form (same knobs -> byte-identical file).
 *   difftune_lab replay <trace>
 *       (--ckpt PATH [--policy lru|slru|tinylfu] [--dispatchers N]
 *        [--capacity N] [--check]
 *        | --daemon PORT [--host H] [--model NAME])
 *       Replay the trace's request stream (respellings and all)
 *       against a local AsyncEngine or a running difftuned daemon,
 *       reporting throughput and cache behavior. Replay always
 *       verifies self-consistency — the same raw text must yield
 *       the same bits every time it appears; --check additionally
 *       verifies every reply bit-exact against the engine's
 *       uncached reference path (the determinism contract).
 *   difftune_lab sweep <trace> [--capacity N]
 *       Replay the trace's key stream through lab::CacheSim for
 *       every registered cache policy and print the hit-rate /
 *       eviction / probe-latency table.
 *
 * Exit codes: 0 success, 1 a replay check failed (bits diverged),
 * 3 operational error (bad usage, unreadable file, connection
 * refused) — mirroring difftune_compare so scripts can tell a
 * harness breakage from a real divergence.
 */

#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "lab/cache_sim.hh"
#include "lab/policy.hh"
#include "lab/trace.hh"
#include "obs/metrics.hh"
#include "serve/async_engine.hh"
#include "serve/daemon.hh"

namespace
{

using namespace difftune;

int
cmdGen(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: gen <out.trace> [--seed N] "
                       "[--corpus N] [--corpus-seed N] "
                       "[--requests N] [--zipf S] [--respell P] "
                       "[--models N]");
    const std::string out = argv[2];
    lab::TraceConfig config;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        fatal_if(i + 1 >= argc, "gen: {} needs a value", arg);
        const std::string value = argv[++i];
        if (arg == "--seed")
            config.seed = std::stoull(value);
        else if (arg == "--corpus")
            config.corpusTarget = std::stoull(value);
        else if (arg == "--corpus-seed")
            config.corpusSeed = std::stoull(value);
        else if (arg == "--requests")
            config.requests = std::stoull(value);
        else if (arg == "--zipf")
            config.zipfSkew = std::stod(value);
        else if (arg == "--respell")
            config.respellProb = std::stod(value);
        else if (arg == "--models")
            config.models = uint32_t(std::stoul(value));
        else
            fatal("gen: unknown argument '{}'", arg);
    }
    const lab::TraceWorkload trace =
        lab::TraceWorkload::generate(config);
    trace.save(out);
    std::cout << "gen: " << trace.requests().size() << " requests, "
              << trace.corpusTexts().size() << " distinct blocks, "
              << "zipf " << config.zipfSkew << ", seed "
              << config.seed << " -> " << out << "\n";
    return 0;
}

/** One replied request of a replay, for the consistency audits. */
struct Reply
{
    const std::string *text;
    double value;
};

/**
 * Self-consistency + (optionally) reference audit over a finished
 * replay. Returns the process exit code.
 */
int
auditReplies(const std::vector<Reply> &replies,
             const std::function<double(const std::string &)> &ref)
{
    std::unordered_map<std::string, uint64_t> first;
    first.reserve(replies.size());
    uint64_t inconsistent = 0, diverged = 0;
    for (const Reply &reply : replies) {
        const auto bits = std::bit_cast<uint64_t>(reply.value);
        const auto [it, fresh] = first.emplace(*reply.text, bits);
        if (!fresh && it->second != bits)
            ++inconsistent;
    }
    if (ref) {
        for (const auto &[text, bits] : first)
            if (std::bit_cast<uint64_t>(ref(text)) != bits)
                ++diverged;
    }
    if (inconsistent > 0)
        std::cout << "replay: FAIL — " << inconsistent
                  << " repeated request(s) answered with different "
                     "bits\n";
    if (diverged > 0)
        std::cout << "replay: FAIL — " << diverged
                  << " distinct text(s) diverged from the uncached "
                     "reference\n";
    if (inconsistent == 0 && diverged == 0) {
        std::cout << "replay: "
                  << (ref ? "bit-exact against the uncached "
                            "reference"
                          : "self-consistent")
                  << " (" << first.size() << " distinct texts)\n";
        return 0;
    }
    return 1;
}

int
cmdReplay(int argc, char **argv)
{
    fatal_if(argc < 3,
             "usage: replay <trace> (--ckpt PATH [--policy P] "
             "[--dispatchers N] [--capacity N] [--check] | "
             "--daemon PORT [--host H] [--model NAME])");
    const lab::TraceWorkload trace = lab::TraceWorkload::load(argv[2]);
    std::string ckpt, host = "127.0.0.1", model = "default";
    std::string policy = "lru";
    int port = -1, dispatchers = 1;
    size_t capacity = 8192;
    bool check = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
            continue;
        }
        fatal_if(i + 1 >= argc, "replay: {} needs a value", arg);
        const std::string value = argv[++i];
        if (arg == "--ckpt")
            ckpt = value;
        else if (arg == "--policy")
            policy = value;
        else if (arg == "--dispatchers")
            dispatchers = std::stoi(value);
        else if (arg == "--capacity")
            capacity = std::stoull(value);
        else if (arg == "--daemon")
            port = std::stoi(value);
        else if (arg == "--host")
            host = value;
        else if (arg == "--model")
            model = value;
        else
            fatal("replay: unknown argument '{}'", arg);
    }
    fatal_if(ckpt.empty() && port < 0,
             "replay: need --ckpt PATH or --daemon PORT");
    fatal_if(!ckpt.empty() && port >= 0,
             "replay: --ckpt and --daemon are exclusive");
    fatal_if(check && port >= 0,
             "replay: --check needs a local engine (use "
             "difftune_compare check for daemon audits)");

    const std::vector<std::string> texts = trace.requestTexts();
    std::vector<Reply> replies;
    replies.reserve(texts.size());
    const auto start = std::chrono::steady_clock::now();

    std::unique_ptr<serve::AsyncEngine> engine;
    if (port < 0) {
        serve::AsyncConfig cfg;
        cfg.dispatchers = dispatchers;
        cfg.cachePolicy = lab::policyFactory(policy);
        cfg.cacheCapacity = capacity;
        engine = serve::AsyncEngine::loadFromFile(ckpt, cfg);
        std::vector<std::future<double>> futures;
        futures.reserve(texts.size());
        for (const std::string &text : texts)
            futures.push_back(engine->submit(text));
        for (size_t i = 0; i < futures.size(); ++i)
            replies.push_back(Reply{&texts[i], futures[i].get()});
    } else {
        serve::DaemonClient client(host, uint16_t(port));
        for (const std::string &text : texts)
            replies.push_back(
                Reply{&text, client.predict(model, text)});
    }

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::cout << "replay: " << replies.size() << " requests in "
              << seconds << " s ("
              << double(replies.size()) / seconds << " req/s)";
    if (engine) {
        const serve::ServeStats &stats = engine->stats();
        std::cout << " — policy " << policy << ", pool "
                  << dispatchers << ", hits " << stats.hits.load()
                  << ", misses " << stats.misses.load();
    }
    std::cout << "\n";

    std::function<double(const std::string &)> ref;
    if (check)
        ref = [&engine](const std::string &text) {
            return engine->predictUncached(text);
        };
    return auditReplies(replies, ref);
}

int
cmdSweep(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: sweep <trace> [--capacity N]");
    const lab::TraceWorkload trace = lab::TraceWorkload::load(argv[2]);
    size_t capacity = 64;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        fatal_if(i + 1 >= argc, "sweep: {} needs a value", arg);
        const std::string value = argv[++i];
        if (arg == "--capacity")
            capacity = std::stoull(value);
        else
            fatal("sweep: unknown argument '{}'", arg);
    }
    obs::MetricRegistry registry;
    std::cout << "sweep: " << trace.requests().size()
              << " requests over " << trace.corpusTexts().size()
              << " blocks, capacity " << capacity << "\n"
              << lab::simTableHeader() << "\n";
    for (const lab::SimResult &result :
         lab::sweepPolicies(trace, capacity, registry))
        std::cout << result.row() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: difftune_lab <gen|replay|sweep> ...\n";
        return 3;
    }
    const std::string command = argv[1];
    // Operational failures exit 3: 0/1 belong to the replay-check
    // contract and must never come from a run that didn't replay.
    try {
        if (command == "gen")
            return cmdGen(argc, argv);
        if (command == "replay")
            return cmdReplay(argc, argv);
        if (command == "sweep")
            return cmdSweep(argc, argv);
        std::cerr << "unknown command '" << command << "'\n";
        return 3;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 3;
    }
}
