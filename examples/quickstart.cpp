/**
 * @file
 * Quickstart: simulate a basic block, compare against the reference
 * machine, and inspect the parameters involved.
 *
 *   ./quickstart                 # built-in demo block
 *   ./quickstart "PUSH64r %rbx"  # your own (canonical syntax)
 */

#include <iostream>

#include "base/table.hh"
#include "hw/default_table.hh"
#include "hw/ref_machine.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    using namespace difftune;

    const char *demo =
        "MOV64rm 8(%rsi), %rdi\n"
        "ADD64rr %rdi, %rbx\n"
        "IMUL64rr %rbx, %rcx\n"
        "PUSH64r %rbx\n";
    isa::BasicBlock block =
        isa::parseBlock(argc > 1 ? argv[1] : demo);

    std::cout << "Block under analysis:\n" << isa::toString(block)
              << "\n";

    // The "physical CPU": measured ground truth per uarch.
    // The simulator: XMca (llvm-mca analog) with the expert tables.
    mca::XMca sim;
    TextTable table({"Microarchitecture", "Measured (RefMachine)",
                     "XMca w/ default params", "Error"});
    for (hw::Uarch uarch : hw::allUarches()) {
        hw::RefMachine machine(uarch);
        const double truth = machine.measure(block);
        const double pred =
            sim.timing(block, hw::defaultTable(uarch));
        table.addRow({hw::uarchName(uarch), fmtDouble(truth, 3),
                      fmtDouble(pred, 3),
                      fmtPercent(std::abs(pred - truth) /
                                 std::max(truth, 1e-9))});
    }
    std::cout << table.render();

    // Peek at the per-opcode parameters the simulator consumed.
    auto hsw = hw::defaultTable(hw::Uarch::Haswell);
    std::cout << "\nHaswell default parameters for this block "
                 "(Table II layout):\n";
    TextTable ptable({"Opcode", "NumMicroOps", "WriteLatency",
                      "ReadAdvance[0]", "Ports used"});
    for (const auto &inst : block.insts) {
        int ports = 0;
        for (int p = 0; p < params::numPorts; ++p)
            ports += hsw.portCycles(inst.opcode, p) > 0;
        ptable.addRow({inst.info().name,
                       std::to_string(hsw.uops(inst.opcode)),
                       std::to_string(hsw.latency(inst.opcode)),
                       std::to_string(
                           hsw.readAdvanceCycles(inst.opcode, 0)),
                       std::to_string(ports)});
    }
    std::cout << ptable.render()
              << "\nNext: examples/tune_simulator.cpp learns these "
                 "values from end-to-end measurements alone.\n";
    return 0;
}
