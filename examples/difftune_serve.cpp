/**
 * @file
 * difftune_serve — train-once / serve-many front end over the
 * checkpointing (src/io) and prediction-serving (src/serve) layers.
 *
 *   difftune_serve save <uarch> <out.ckpt> [corpus_size]
 *       Run the DiffTune pipeline and save a full serving checkpoint
 *       (surrogate model + sampling distribution + learned table).
 *   difftune_serve save-ithemal <uarch> <out.ckpt> [corpus_size]
 *       Train the Ithemal baseline and save a model-only checkpoint.
 *   difftune_serve info <ckpt> [--json]
 *       Print the checkpoint's sections, dimensions, weight
 *       precision and the serving memory footprint (the derived
 *       bytes all workers share through one WeightSnapshot),
 *       followed by the full /statsz telemetry dump of the probe
 *       (--json renders the dump as JSON).
 *   difftune_serve predict <ckpt> <block.s|->...
 *       Load the checkpoint once and predict each block file's
 *       timing (one result line per file; '-' reads stdin). Printed
 *       with 17 significant digits so values can be compared
 *       bit-exactly across processes.
 *   difftune_serve convert <in.ckpt> <out.ckpt> [f32|f64]
 *       Re-encode a checkpoint's model weights (default f32: a
 *       half-size serving-only artifact; see
 *       docs/CHECKPOINT_FORMAT.md for the format-version semantics).
 *   difftune_serve bench <ckpt> [requests] [unique_blocks] [--f32]
 *                        [--threads N] [--json]
 *       Measure cold-load latency, batched-engine vs naive
 *       throughput, cache-counter and shared-snapshot stats on a
 *       skewed synthetic workload; --f32 serves the engine pass in
 *       the accuracy-gated float mode, --threads N adds the
 *       multi-threaded async client mode (N concurrent submitters
 *       vs one synchronous caller, with latency percentiles). Ends
 *       with the full /statsz telemetry dump — per-stage latency
 *       histograms and the mirrored ServeStats counters (--json
 *       renders the dump as JSON; DIFFTUNE_OBS_OFF leaves it
 *       empty).
 *
 * Blocks use the canonical syntax printed by the library, one
 * instruction per line.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "base/table.hh"
#include "bhive/corpus.hh"
#include "bhive/dataset.hh"
#include "core/difftune.hh"
#include "core/evaluate.hh"
#include "core/ithemal.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"
#include "nn/matvec_dispatch.hh"
#include "obs/export.hh"
#include "serve/workload.hh"

namespace
{

using namespace difftune;

hw::Uarch
parseUarch(const std::string &name)
{
    for (hw::Uarch uarch : hw::allUarches())
        if (name == hw::uarchName(uarch))
            return uarch;
    fatal("unknown microarchitecture '{}' (expected IvyBridge, "
          "Haswell, Skylake or Zen2)",
          name);
}

std::string
readFileOrStdin(const std::string &path)
{
    std::stringstream buffer;
    if (path == "-") {
        buffer << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        fatal_if(!in, "cannot open '{}'", path);
        buffer << in.rdbuf();
    }
    return buffer.str();
}

/**
 * Dump the global metric registry (info/bench epilogue). The text
 * form gets a "/statsz" banner; --json prints the bare JSON object
 * so the output stays machine-parseable.
 */
void
printStatsz(bool json)
{
    if (json)
        std::cout << obs::renderStatszJson() << "\n";
    else
        std::cout << "/statsz\n" << obs::renderStatsz();
}

/** Pull a "--json" flag out of @p argv, compacting the rest. */
bool
extractJsonFlag(int &argc, char **argv)
{
    bool json = false;
    int out = 0;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            json = true;
        else
            argv[out++] = argv[i];
    }
    argc = out;
    return json;
}

int
cmdSave(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: save <uarch> <out.ckpt> [corpus]");
    const hw::Uarch uarch = parseUarch(argv[2]);
    const std::string path = argv[3];
    const size_t corpus_size = argc > 4 ? std::stoul(argv[4]) : 2000;
    setVerbose(true);

    auto corpus = bhive::Corpus::generate(corpus_size, 42);
    bhive::Dataset dataset(corpus, uarch);
    mca::XMca sim;
    auto base = hw::defaultTable(uarch);
    core::DiffTuneConfig cfg;
    cfg.checkpoint.path = path;
    cfg.checkpoint.every = 2; // crash-safe: keep the best-so-far fresh
    core::DiffTune difftune(sim, dataset, base, cfg);
    auto result = difftune.run();

    auto eval =
        core::evaluate(sim, result.learned, dataset, dataset.test());
    std::cout << "checkpoint -> " << path << "  (test error "
              << fmtPercent(eval.error) << ", surrogate fidelity "
              << fmtPercent(result.surrogateFidelity) << ")\n";

    // Print the in-process model's prediction for a probe block with
    // full precision: `difftune_serve predict <ckpt> -` on the same
    // block in a fresh process must print identical digits (the
    // round-trip is bit-exact).
    const std::string probe = "ADD32rr %ebx, %ecx\nNOP\n";
    const auto block = isa::parseBlock(probe);
    const core::ParamNormalizer norm(cfg.dist);
    nn::Graph graph;
    nn::Ctx ctx{graph, difftune.model().params(), nullptr};
    auto inputs =
        core::constParamInputs(graph, result.learned, block, norm);
    nn::Var pred = graph.exp(difftune.model().forward(
        ctx, surrogate::encodeBlock(block), inputs));
    std::cout.precision(17);
    std::cout << "probe ADD32rr+NOP -> " << graph.scalarValue(pred)
              << "\n";
    return 0;
}

int
cmdSaveIthemal(int argc, char **argv)
{
    fatal_if(argc < 4,
             "usage: save-ithemal <uarch> <out.ckpt> [corpus]");
    const hw::Uarch uarch = parseUarch(argv[2]);
    const std::string path = argv[3];
    const size_t corpus_size = argc > 4 ? std::stoul(argv[4]) : 2000;
    setVerbose(true);

    auto corpus = bhive::Corpus::generate(corpus_size, 42);
    bhive::Dataset dataset(corpus, uarch);
    core::IthemalConfig cfg;
    cfg.checkpoint.path = path;
    core::Ithemal ithemal(dataset, cfg);
    ithemal.train();

    auto eval = ithemal.evaluate(dataset.test());
    std::cout << "checkpoint -> " << path << "  (test error "
              << fmtPercent(eval.error) << ")\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    const bool json = extractJsonFlag(argc, argv);
    fatal_if(argc < 3, "usage: info <ckpt> [--json]");
    io::Checkpoint ckpt = io::loadCheckpoint(argv[2]);
    std::cout << "checkpoint " << argv[2] << " ("
              << std::filesystem::file_size(argv[2]) << " bytes)\n";
    if (ckpt.model) {
        const auto &cfg = ckpt.model->config();
        std::cout << "  model: embed " << cfg.embedDim << ", hidden "
                  << cfg.hidden << ", token layers " << cfg.tokenLayers
                  << ", block layers " << cfg.blockLayers
                  << ", paramDim " << cfg.paramDim << ", vocab "
                  << ckpt.vocabSize << ", "
                  << ckpt.model->params().scalarCount() << " "
                  << nn::precisionName(ckpt.weightPrecision)
                  << " weights\n";
    }
    if (ckpt.dist)
        std::cout << "  sampling distribution: present\n";
    if (ckpt.table)
        std::cout << "  parameter table: " << ckpt.table->numOpcodes()
                  << " opcodes\n";
    if (ckpt.model) {
        // Serving footprint: what one engine (any worker count)
        // keeps resident through the shared WeightSnapshot.
        try {
            serve::PredictionEngine probe(
                io::makeModelSnapshot(std::move(ckpt)));
            probe.predict("NOP\n"); // materialize the projections
            const auto &snapshot = probe.async().snapshot();
            std::cout << "  serving: " << snapshot.f64Bytes()
                      << " weight bytes in place, "
                      << probe.async().sharedWeightBytes()
                      << " derived bytes shared across "
                      << probe.workers() << " workers\n";
            const auto &interner = probe.async().interner();
            std::cout << "  front end: matvec kernel "
                      << nn::matvecPathName() << "; intern tables "
                      << interner.numInsts() << " insts / "
                      << interner.numBlocks() << " blocks, "
                      << interner.bytes() << " bytes\n";
        } catch (const std::exception &error) {
            std::cout << "  serving: unavailable ("
                      << stripErrorPrefix(error.what()) << ")\n";
        }
    }
    // The probe's stage histograms (and the surrogate batch
    // counters) survive the probe engine; its ServeStats mirrors
    // were unlinked at destruction.
    printStatsz(json);
    return 0;
}

int
cmdPredict(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: predict <ckpt> <block.s|->...");
    auto engine = serve::PredictionEngine::fromFile(argv[2]);
    std::cout.precision(17);
    for (int i = 3; i < argc; ++i)
        std::cout << engine.predict(readFileOrStdin(argv[i])) << "\n";
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: convert <in.ckpt> <out.ckpt> "
                       "[f32|f64]");
    const std::string mode = argc > 4 ? argv[4] : "f32";
    fatal_if(mode != "f32" && mode != "f64",
             "unknown weight precision '{}' (expected f32 or f64)",
             mode);
    io::Checkpoint ckpt = io::loadCheckpoint(argv[2]);
    fatal_if(!ckpt.model, "'{}' carries no model to convert",
             argv[2]);
    io::saveCheckpoint(argv[3], ckpt.model.get(),
                       ckpt.dist ? &*ckpt.dist : nullptr,
                       ckpt.table ? &*ckpt.table : nullptr,
                       mode == "f32" ? nn::Precision::kF32
                                     : nn::Precision::kF64);
    std::cout << argv[2] << " ("
              << std::filesystem::file_size(argv[2]) << " bytes, "
              << nn::precisionName(ckpt.weightPrecision) << ") -> "
              << argv[3] << " ("
              << std::filesystem::file_size(argv[3]) << " bytes, "
              << mode << ")\n";
    return 0;
}

int
cmdBench(int argc, char **argv)
{
    bool f32 = false;
    bool json = false;
    int threads = 0;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--f32") {
            f32 = true;
        } else if (std::string(argv[i]) == "--json") {
            json = true;
        } else if (std::string(argv[i]) == "--threads") {
            fatal_if(i + 1 >= argc, "--threads needs a count");
            threads = std::stoi(argv[++i]);
            fatal_if(threads < 1, "--threads needs a count >= 1");
        } else {
            args.push_back(argv[i]);
        }
    }
    fatal_if(args.size() < 3,
             "usage: bench <ckpt> [requests] [unique] [--f32] "
             "[--threads N] [--json]");
    const std::string path = args[2];
    const size_t requests =
        args.size() > 3 ? std::stoul(args[3]) : 4000;
    const size_t unique = args.size() > 4 ? std::stoul(args[4]) : 400;

    serve::ServeConfig cfg;
    if (f32)
        cfg.precision = nn::Precision::kF32;
    const auto load_begin = std::chrono::steady_clock::now();
    const io::ModelSnapshot artifact = io::loadModelSnapshot(path);
    serve::PredictionEngine engine(artifact, cfg);
    const auto load_end = std::chrono::steady_clock::now();
    const double load_ms =
        1e3 * serve::secondsBetween(load_begin, load_end);
    std::cout << "cold load: " << fmtDouble(load_ms, 1) << " ms ("
              << std::filesystem::file_size(path) << " bytes)\n";

    const auto corpus = bhive::Corpus::generate(unique, 0xbe7c);
    const auto workload = serve::powerLawWorkload(
        corpus, requests, corpus.size(), 0x5e77e);

    // Naive (fresh double graph per request) vs the batched engine,
    // waves of requests as at a serving endpoint (serve/workload.hh).
    // The f32 engine is accuracy-gated rather than bit-gated. One
    // naive pass serves both this comparison and the client mode.
    const serve::NaiveRun naive = serve::runNaive(engine, workload);
    const auto timing = serve::engineVsNaive(
        engine, workload, naive, 250, f32 ? 1e-5 : 0.0);

    const auto &stats = engine.stats();
    std::cout << "workload: " << workload.size() << " requests over "
              << corpus.size() << " unique blocks\n"
              << "naive:  "
              << fmtDouble(double(requests) / timing.naiveSeconds, 0)
              << " blocks/s\n"
              << "engine: "
              << fmtDouble(double(requests) / timing.engineSeconds, 0)
              << " blocks/s ("
              << nn::precisionName(engine.precision()) << ", "
              << engine.workers() << " workers, speedup "
              << fmtDouble(timing.speedup(), 1) << "x)\n"
              << "stats:  " << stats.requests.load() << " requests, "
              << stats.textHits.load() << " raw-text hits / "
              << stats.textMisses.load() << " misses, "
              << stats.hits.load() << " total cache hits, "
              << stats.internHits.load() << " intern hits, "
              << stats.encodeHits.load() << " encode hits, "
              << stats.forwards.load() << " forwards, "
              << stats.batches.load() << " batches\n"
              << "front end: matvec kernel " << nn::matvecPathName()
              << "; intern tables "
              << engine.async().interner().numInsts() << " insts / "
              << engine.async().interner().numBlocks() << " blocks, "
              << engine.async().interner().bytes() << " bytes\n"
              << "shared snapshot: "
              << engine.async().sharedWeightBytes()
              << " derived bytes resident once (pre-v2 layout: "
              << (engine.async().snapshot().f32Bytes() +
                  engine.async().snapshot().projBytes()) *
                     size_t(engine.workers()) +
                     engine.async().snapshot().inputColumnBytes()
              << ")\n";
    if (f32)
        std::cout << "max rel err vs double: "
                  << fmtDouble(timing.maxRelErr * 1e6, 2)
                  << "e-6 (gate 1e-5)\n";

    if (threads > 0) {
        // Client mode: N concurrent threads submitting through the
        // micro-batcher vs one synchronous caller (bit-checked
        // against the naive pass in f64). --threads 1 is allowed
        // and measures the micro-batcher's single-client overhead.
        serve::AsyncConfig acfg;
        acfg.precision = cfg.precision;
        const auto clients = serve::compareAsyncClients(
            artifact, workload, threads,
            f32 ? nullptr : &naive, acfg);
        std::cout
            << "single caller: "
            << fmtDouble(double(requests) / clients.singleSeconds, 0)
            << " blocks/s\n"
            << "async x" << threads << ":      "
            << fmtDouble(double(requests) / clients.asyncSeconds, 0)
            << " blocks/s ("
            << fmtDouble(clients.speedup(), 2)
            << "x aggregate, p50/p95/p99 "
            << fmtDouble(clients.latency.p50 * 1e6, 0) << "/"
            << fmtDouble(clients.latency.p95 * 1e6, 0) << "/"
            << fmtDouble(clients.latency.p99 * 1e6, 0) << " us)\n";
    }
    printStatsz(json);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: difftune_serve "
                     "<save|save-ithemal|info|predict|convert|"
                     "bench> ...\n";
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "save")
            return cmdSave(argc, argv);
        if (command == "save-ithemal")
            return cmdSaveIthemal(argc, argv);
        if (command == "info")
            return cmdInfo(argc, argv);
        if (command == "predict")
            return cmdPredict(argc, argv);
        if (command == "convert")
            return cmdConvert(argc, argv);
        if (command == "bench")
            return cmdBench(argc, argv);
        std::cerr << "unknown command '" << command << "'\n";
        return 2;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
}
