/**
 * @file
 * difftuned — the standalone serving daemon over serve::Daemon /
 * serve::ModelRegistry, plus the loopback client and a tiny-artifact
 * generator that together make the daemon drivable end to end (CI
 * runs exactly that loop: save-tiny -> serve -> client -> SIGTERM).
 *
 *   difftuned serve <name>=<ckpt>... [--port N] [--port-file PATH]
 *                   [--workers N] [--dispatchers N] [--f32]
 *       Load each checkpoint under its model name and serve them on
 *       loopback TCP (docs/SERVING.md documents the wire protocol;
 *       --port 0, the default, binds an ephemeral port and
 *       --port-file writes the pick where scripts can read it).
 *       SIGTERM/SIGINT trigger a graceful drain: intake closes,
 *       every in-flight request still gets its response, and the
 *       process exits 0 only once nothing is owed to any client.
 *   difftuned client <port> [--host H] [--model NAME] [--requests N]
 *                    [--unique N] [--threads N] [--swap NAME=CKPT]
 *                    [--check]
 *       Drive a running daemon with the synthetic power-law workload
 *       (serve::runDaemonClients). --swap hot-swaps NAME to CKPT
 *       from a side connection mid-run — the expected client-visible
 *       effect of a swap is *nothing*: zero errors, every response a
 *       well-formed prediction. --check then audits the daemon's
 *       /statsz over the wire: daemon.errors == 0 and every engine's
 *       requests == hits + misses (the serving-counter contract).
 *       Exits non-zero on any error or failed check.
 *   difftuned save-tiny <out.ckpt> [seed]
 *       Write an untrained tiny surrogate checkpoint (full sampling
 *       distribution + default Haswell table). Predictions are
 *       meaningless but deterministic per seed — two seeds give two
 *       artifacts whose predictions differ, which is exactly what a
 *       hot-swap smoke test needs, in milliseconds not minutes.
 */

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "base/table.hh"
#include "bhive/corpus.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "io/checkpoint.hh"
#include "isa/tokens.hh"
#include "obs/export.hh"
#include "params/sampling.hh"
#include "serve/daemon.hh"
#include "serve/workload.hh"
#include "surrogate/model.hh"

namespace
{

using namespace difftune;

/** Self-pipe the signal handlers write to; main blocks reading it. */
int signalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    // Best-effort: a full pipe just means a signal is already
    // pending, which is all we need recorded.
    [[maybe_unused]] ssize_t ignored =
        ::write(signalPipe[1], &byte, 1);
}

/** Split "name=path"; fatal if '=' is missing. */
std::pair<std::string, std::string>
splitModelArg(const std::string &arg)
{
    const size_t eq = arg.find('=');
    fatal_if(eq == std::string::npos || eq == 0 ||
                 eq + 1 == arg.size(),
             "expected <name>=<checkpoint>, got '{}'", arg);
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

int
cmdServe(int argc, char **argv)
{
    serve::DaemonConfig cfg;
    std::string port_file;
    std::vector<std::pair<std::string, std::string>> models;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port") {
            fatal_if(i + 1 >= argc, "--port needs a number");
            cfg.port = uint16_t(std::stoi(argv[++i]));
        } else if (arg == "--port-file") {
            fatal_if(i + 1 >= argc, "--port-file needs a path");
            port_file = argv[++i];
        } else if (arg == "--workers") {
            fatal_if(i + 1 >= argc, "--workers needs a count");
            cfg.registry.engine.workers = std::stoi(argv[++i]);
        } else if (arg == "--dispatchers") {
            fatal_if(i + 1 >= argc, "--dispatchers needs a count");
            cfg.registry.engine.dispatchers = std::stoi(argv[++i]);
        } else if (arg == "--f32") {
            cfg.registry.engine.precision = nn::Precision::kF32;
        } else {
            models.push_back(splitModelArg(arg));
        }
    }
    fatal_if(models.empty(),
             "usage: serve <name>=<ckpt>... [--port N] "
             "[--port-file PATH] [--workers N] [--dispatchers N] "
             "[--f32]");

    // The self-pipe must exist before the daemon can race a signal.
    fatal_if(::pipe(signalPipe) != 0, "pipe(): self-pipe failed");
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    serve::Daemon daemon(cfg);
    for (const auto &[name, path] : models) {
        daemon.registry().loadFromFile(name, path);
        std::cout << "loaded " << name << " <- " << path << "\n";
    }
    daemon.start();
    std::cout << "difftuned serving " << daemon.registry().size()
              << " model(s) on 127.0.0.1:" << daemon.port() << "\n"
              << std::flush;
    if (!port_file.empty()) {
        // Written after the socket is live: a reader that sees the
        // file can connect immediately.
        std::ofstream out(port_file);
        fatal_if(!out, "cannot write port file '{}'", port_file);
        out << daemon.port() << "\n";
    }

    // Block until SIGTERM/SIGINT, then drain: stop intake, answer
    // everything in flight, settle every engine future. Exit code 0
    // is the contract scripts assert on.
    char byte = 0;
    while (::read(signalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::cout << "difftuned: draining ("
              << daemon.requestsServed() << " requests served, "
              << daemon.connectionsAccepted() << " connections)\n";
    daemon.drain();
    std::cout << "difftuned: drained, exiting\n";
    return 0;
}

int
cmdClient(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string model = "default";
    std::string swap_arg;
    size_t requests = 400;
    size_t unique = 60;
    int threads = 4;
    bool check = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host") {
            fatal_if(i + 1 >= argc, "--host needs an address");
            host = argv[++i];
        } else if (arg == "--model") {
            fatal_if(i + 1 >= argc, "--model needs a name");
            model = argv[++i];
        } else if (arg == "--requests") {
            fatal_if(i + 1 >= argc, "--requests needs a count");
            requests = std::stoul(argv[++i]);
        } else if (arg == "--unique") {
            fatal_if(i + 1 >= argc, "--unique needs a count");
            unique = std::stoul(argv[++i]);
        } else if (arg == "--threads") {
            fatal_if(i + 1 >= argc, "--threads needs a count");
            threads = std::stoi(argv[++i]);
        } else if (arg == "--swap") {
            fatal_if(i + 1 >= argc, "--swap needs <name>=<ckpt>");
            swap_arg = argv[++i];
        } else if (arg == "--check") {
            check = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    fatal_if(args.size() < 3,
             "usage: client <port> [--host H] [--model NAME] "
             "[--requests N] [--unique N] [--threads N] "
             "[--swap NAME=CKPT] [--check]");
    const uint16_t port = uint16_t(std::stoi(args[2]));

    const auto corpus = bhive::Corpus::generate(unique, 0xbe7c);
    const auto workload = serve::powerLawWorkload(
        corpus, requests, corpus.size(), 0x5e77e);

    // The optional hot-swap rides a side connection while the client
    // threads are mid-run; a short head start makes sure the swap
    // lands against live traffic rather than before or after it.
    std::thread swapper;
    std::atomic<bool> swap_failed{false};
    if (!swap_arg.empty()) {
        const auto [name, path] = splitModelArg(swap_arg);
        swapper = std::thread([&host, &swap_failed, port,
                               name = name, path = path] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            // An exception escaping a thread body terminates the
            // whole client process; a refused connection or bad
            // checkpoint must fail the run with a message instead.
            try {
                serve::DaemonClient admin(host, port);
                admin.load(name, path);
            } catch (const std::exception &error) {
                std::cerr << "hot-swap failed: " << error.what()
                          << "\n";
                swap_failed.store(true, std::memory_order_relaxed);
            }
        });
    }
    const serve::DaemonClientRun run = serve::runDaemonClients(
        host, port, model, workload, threads);
    if (swapper.joinable())
        swapper.join();

    std::cout << "difftuned client: " << workload.size()
              << " requests, " << threads << " threads, "
              << run.errors << " errors, "
              << fmtDouble(double(requests) / run.seconds, 0)
              << " blocks/s (p50/p95/p99 "
              << fmtDouble(run.latency.p50 * 1e6, 0) << "/"
              << fmtDouble(run.latency.p95 * 1e6, 0) << "/"
              << fmtDouble(run.latency.p99 * 1e6, 0) << " us)\n";
    bool failed = run.errors != 0 ||
                  swap_failed.load(std::memory_order_relaxed);

    if (check) {
        // Audit the daemon's own telemetry over the wire: no request
        // errored, and every engine's cache counters reconcile
        // (requests == hits + misses — misses being forwards that
        // really ran; docs/OBSERVABILITY.md).
        serve::DaemonClient auditor(host, port);
        const std::string dump = auditor.statsz();
        const auto errors =
            obs::statszCounter(dump, "model.daemon.errors");
        if (!errors || *errors != 0) {
            std::cout << "check FAILED: model.daemon.errors = "
                      << (errors ? std::to_string(*errors)
                                 : std::string("absent"))
                      << "\n";
            failed = true;
        }
        size_t engines_checked = 0;
        std::istringstream lines(dump);
        std::string line;
        while (std::getline(lines, line)) {
            // Only counter lines are exactly "counter <name> <v>";
            // histogram lines carry more fields and must not desync
            // the scan.
            std::istringstream fields(line);
            std::string kind, name;
            uint64_t value = 0;
            if (!(fields >> kind >> name >> value) ||
                kind != "counter")
                continue;
            const std::string suffix = ".requests";
            if (name.size() <= suffix.size() ||
                name.compare(name.size() - suffix.size(),
                             suffix.size(), suffix) != 0)
                continue;
            const std::string prefix =
                name.substr(0, name.size() - suffix.size());
            const auto hits =
                obs::statszCounter(dump, prefix + ".hits");
            const auto misses =
                obs::statszCounter(dump, prefix + ".misses");
            if (!hits || !misses)
                continue; // not an engine prefix (e.g. daemon.*)
            ++engines_checked;
            if (*hits + *misses != value) {
                std::cout << "check FAILED: " << prefix << ": "
                          << value << " requests != " << *hits
                          << " hits + " << *misses << " misses\n";
                failed = true;
            }
        }
        if (engines_checked == 0) {
            std::cout << "check FAILED: no engine counters in "
                         "/statsz (is DIFFTUNE_OBS_OFF set?)\n";
            failed = true;
        }
        if (!failed)
            std::cout << "check ok: daemon errors 0, "
                      << engines_checked
                      << " engine(s) reconciled\n";
    }
    return failed ? 1 : 0;
}

int
cmdSaveTiny(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: save-tiny <out.ckpt> [seed]");
    const std::string path = argv[2];
    const uint64_t seed = argc > 3 ? std::stoul(argv[3]) : 5;

    const params::SamplingDist dist = params::SamplingDist::full();
    const core::ParamNormalizer norm(dist);
    surrogate::ModelConfig cfg;
    cfg.embedDim = 8;
    cfg.hidden = 10;
    cfg.tokenLayers = 1;
    cfg.blockLayers = 1;
    cfg.paramDim = norm.paramDim();
    cfg.seed = seed;
    const surrogate::Model model(cfg, isa::theVocab().size());
    const params::ParamTable table =
        hw::defaultTable(hw::Uarch::Haswell);
    io::saveCheckpoint(path, &model, &dist, &table);
    std::cout << "tiny checkpoint (seed " << seed << ") -> " << path
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr
            << "usage: difftuned <serve|client|save-tiny> ...\n";
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "serve")
            return cmdServe(argc, argv);
        if (command == "client")
            return cmdClient(argc, argv);
        if (command == "save-tiny")
            return cmdSaveTiny(argc, argv);
        std::cerr << "unknown command '" << command << "'\n";
        return 2;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 1;
    }
}
