/**
 * @file
 * Compare every predictor family on one microarchitecture: the
 * parameterized simulator with default tables, the analytical model,
 * and a learned Ithemal — the Table IV cast, on demand.
 *
 *   ./compare_predictors [uarch] [corpus_size]
 */

#include <iostream>
#include <string>

#include "analytical/iaca.hh"
#include "base/table.hh"
#include "bhive/dataset.hh"
#include "core/evaluate.hh"
#include "core/ithemal.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "usim/usim.hh"

int
main(int argc, char **argv)
{
    using namespace difftune;
    setVerbose(false);

    hw::Uarch uarch = hw::Uarch::Skylake;
    if (argc > 1) {
        const std::string name = argv[1];
        for (hw::Uarch candidate : hw::allUarches())
            if (name == hw::uarchName(candidate))
                uarch = candidate;
    }
    const size_t corpus_size =
        argc > 2 ? std::stoul(argv[2]) : 1200;

    auto corpus = bhive::Corpus::generate(corpus_size, 7);
    bhive::Dataset dataset(corpus, uarch);
    std::cout << "predictor comparison on " << hw::uarchName(uarch)
              << " (" << dataset.test().size() << " test blocks)\n";

    TextTable table({"Predictor", "Error", "Kendall tau"});
    auto add = [&table](const std::string &name,
                        const core::EvalResult &eval) {
        table.addRow({name, fmtPercent(eval.error),
                      fmtDouble(eval.kendallTau, 3)});
    };

    auto def = hw::defaultTable(uarch);
    mca::XMca xmca;
    add("XMca (llvm-mca analog), default params",
        core::evaluate(xmca, def, dataset, dataset.test()));

    usim::USim usim_sim;
    add("USim (llvm_sim analog), default params",
        core::evaluate(usim_sim, def, dataset, dataset.test()));

    if (analytical::XIaca::supports(uarch)) {
        analytical::XIaca iaca(uarch);
        std::vector<double> preds;
        for (const auto &entry : dataset.test())
            preds.push_back(iaca.timing(dataset.block(entry)));
        add("XIaca (IACA analog)",
            core::evaluatePredictions(std::move(preds),
                                      dataset.test()));
    } else {
        table.addRow({"XIaca (IACA analog)", "N/A (AMD)", "N/A"});
    }

    core::IthemalConfig cfg;
    cfg.epochs = 8;
    cfg.model.hidden = 48;
    cfg.model.embedDim = 32;
    cfg.model.tokenLayers = 1;
    core::Ithemal ithemal(dataset, cfg);
    ithemal.train();
    add("Ithemal (learned, unconstrained)",
        ithemal.evaluate(dataset.test()));

    std::cout << table.render()
              << "\nExpected ordering (paper Table IV): Ithemal < "
                 "analytical < simulator defaults; USim worst.\n";
    return 0;
}
