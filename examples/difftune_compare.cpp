/**
 * @file
 * difftune_compare — the semantic-diff harness CLI over
 * src/compare/ (docs/COMPARE.md).
 *
 *   difftune_compare snapshot <out.preds>
 *       (--ckpt PATH [--workers N] [--f32]
 *        | --daemon PORT [--host H] [--model NAME])
 *       [--corpus gen:<count>:<seed>|file:<path>]
 *       Run the checkpoint (or a live difftuned daemon) over the
 *       declared corpus and write a CRC-guarded .preds artifact.
 *   difftune_compare compare <a.preds> <b.preds>
 *       [--tolerance X] [--json]
 *       Diff two artifacts; print the report (human table, or JSON
 *       with --json) and exit with the classification code.
 *   difftune_compare check <ref.preds>
 *       (--ckpt PATH [--workers N] [--f32]
 *        | --daemon PORT [--host H] [--model NAME])
 *       [--tolerance X] [--json]
 *       Snapshot the live engine over the reference artifact's own
 *       corpus (its block texts) and compare against it — the
 *       one-command CI gate.
 *   difftune_compare dump <a.preds>
 *       One tab-separated line per block: index, instruction count,
 *       comma-joined distinct opcodes, prediction bits, escaped
 *       text. Lets scripts compute expected diff sets themselves.
 *   difftune_compare perturb <in.ckpt> <out.ckpt>
 *       (--opcode NAME | --tensor I --row R --col C) [--delta X]
 *       Test hook: copy a checkpoint with exactly one weight
 *       changed (see src/compare/perturb.hh).
 *
 * Exit codes: compare/check exit the classification contract —
 * 0 all bit-exact, 1 within-tolerance only, 2 any diverged or
 * missing block. Operational failures (bad usage, unreadable file,
 * connection refused) exit 3 so CI can never mistake a harness
 * breakage for a clean comparison.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "compare/compare.hh"
#include "compare/perturb.hh"
#include "compare/preds.hh"

namespace
{

using namespace difftune;

/** Source selection shared by snapshot and check. */
struct EngineArgs
{
    std::string ckpt;
    std::string host = "127.0.0.1";
    std::string model = "default";
    int port = -1;
    compare::SnapshotOptions options;

    bool daemon() const { return port >= 0; }

    /** @return true if @p arg (+ value) was consumed. */
    bool
    consume(const std::string &arg, int argc, char **argv, int &i)
    {
        if (arg == "--ckpt") {
            fatal_if(i + 1 >= argc, "--ckpt needs a path");
            ckpt = argv[++i];
        } else if (arg == "--daemon") {
            fatal_if(i + 1 >= argc, "--daemon needs a port");
            port = std::stoi(argv[++i]);
        } else if (arg == "--host") {
            fatal_if(i + 1 >= argc, "--host needs an address");
            host = argv[++i];
        } else if (arg == "--model") {
            fatal_if(i + 1 >= argc, "--model needs a name");
            model = argv[++i];
        } else if (arg == "--workers") {
            fatal_if(i + 1 >= argc, "--workers needs a count");
            options.workers = std::stoi(argv[++i]);
        } else if (arg == "--f32") {
            options.precision = nn::Precision::kF32;
        } else {
            return false;
        }
        return true;
    }

    void
    require(const char *verb) const
    {
        fatal_if(ckpt.empty() && !daemon(),
                 "{}: need --ckpt PATH or --daemon PORT", verb);
        fatal_if(!ckpt.empty() && daemon(),
                 "{}: --ckpt and --daemon are exclusive", verb);
    }

    compare::PredsArtifact
    snapshot(const std::vector<std::string> &texts) const
    {
        if (daemon())
            return compare::snapshotDaemon(host, uint16_t(port),
                                           model, texts);
        return compare::snapshotCheckpoint(ckpt, texts, options);
    }
};

int
cmdSnapshot(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: snapshot <out.preds> ...");
    const std::string out = argv[2];
    EngineArgs engine;
    std::string corpus_spec = compare::defaultCorpusSpec;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (engine.consume(arg, argc, argv, i))
            continue;
        if (arg == "--corpus") {
            fatal_if(i + 1 >= argc, "--corpus needs a spec");
            corpus_spec = argv[++i];
        } else {
            fatal("snapshot: unknown argument '{}'", arg);
        }
    }
    engine.require("snapshot");

    const std::vector<std::string> texts =
        compare::resolveCorpus(corpus_spec);
    const compare::PredsArtifact artifact = engine.snapshot(texts);
    compare::savePreds(out, artifact);
    std::cout << "snapshot: " << artifact.blocks.size()
              << " blocks (" << artifact.engine.precision << ", "
              << artifact.engine.kernel << ") -> " << out << "\n";
    return 0;
}

/** Shared report tail of compare and check. */
int
report(const compare::CompareReport &result, bool json)
{
    if (json)
        std::cout << compare::renderJson(result) << "\n";
    else
        std::cout << compare::renderTable(result);
    return result.exitCode();
}

int
cmdCompare(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: compare <a.preds> <b.preds> "
                       "[--tolerance X] [--json]");
    compare::CompareConfig config;
    bool json = false;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tolerance") {
            fatal_if(i + 1 >= argc, "--tolerance needs a number");
            config.tolerance = std::stod(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else {
            fatal("compare: unknown argument '{}'", arg);
        }
    }
    const compare::PredsArtifact a = compare::loadPreds(argv[2]);
    const compare::PredsArtifact b = compare::loadPreds(argv[3]);
    return report(compare::compare(a, b, config), json);
}

int
cmdCheck(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: check <ref.preds> ...");
    EngineArgs engine;
    compare::CompareConfig config;
    bool json = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (engine.consume(arg, argc, argv, i))
            continue;
        if (arg == "--tolerance") {
            fatal_if(i + 1 >= argc, "--tolerance needs a number");
            config.tolerance = std::stod(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else {
            fatal("check: unknown argument '{}'", arg);
        }
    }
    engine.require("check");

    const compare::PredsArtifact ref = compare::loadPreds(argv[2]);
    // The reference carries its corpus: snapshot the live engine
    // over exactly those texts, in order.
    std::vector<std::string> texts;
    texts.reserve(ref.blocks.size());
    for (const compare::BlockPreds &block : ref.blocks)
        texts.push_back(block.text);
    return report(compare::compare(ref, engine.snapshot(texts),
                                   config),
                  json);
}

int
cmdDump(int argc, char **argv)
{
    fatal_if(argc < 3, "usage: dump <a.preds>");
    const compare::PredsArtifact artifact =
        compare::loadPreds(argv[2]);
    for (size_t i = 0; i < artifact.blocks.size(); ++i) {
        const compare::BlockPreds &block = artifact.blocks[i];
        std::string opcodes;
        for (const std::string &op :
             compare::distinctOpcodes(block.text)) {
            if (!opcodes.empty())
                opcodes += ",";
            opcodes += op;
        }
        std::string escaped;
        for (char c : block.text)
            if (c == '\n')
                escaped += "\\n";
            else if (c == '\t')
                escaped += "\\t";
            else if (c == '\\')
                escaped += "\\\\";
            else
                escaped += c;
        char bits[32];
        std::snprintf(bits, sizeof(bits), "%016llx",
                      static_cast<unsigned long long>(block.bits));
        std::cout << i << "\t"
                  << compare::instructionCount(block.text) << "\t"
                  << opcodes << "\t" << bits << "\t" << escaped
                  << "\n";
    }
    return 0;
}

int
cmdPerturb(int argc, char **argv)
{
    fatal_if(argc < 4, "usage: perturb <in.ckpt> <out.ckpt> "
                       "(--opcode NAME | --tensor I --row R --col C) "
                       "[--delta X]");
    std::string opcode;
    int tensor = -1, row = -1, col = -1;
    double delta = 0.5;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--opcode") {
            fatal_if(i + 1 >= argc, "--opcode needs a name");
            opcode = argv[++i];
        } else if (arg == "--tensor") {
            fatal_if(i + 1 >= argc, "--tensor needs an index");
            tensor = std::stoi(argv[++i]);
        } else if (arg == "--row") {
            fatal_if(i + 1 >= argc, "--row needs an index");
            row = std::stoi(argv[++i]);
        } else if (arg == "--col") {
            fatal_if(i + 1 >= argc, "--col needs an index");
            col = std::stoi(argv[++i]);
        } else if (arg == "--delta") {
            fatal_if(i + 1 >= argc, "--delta needs a number");
            delta = std::stod(argv[++i]);
        } else {
            fatal("perturb: unknown argument '{}'", arg);
        }
    }
    compare::PerturbInfo info;
    if (!opcode.empty()) {
        fatal_if(tensor >= 0, "--opcode and --tensor are exclusive");
        info = compare::perturbOpcodeEmbedding(argv[2], argv[3],
                                               opcode, delta);
    } else {
        fatal_if(tensor < 0 || row < 0 || col < 0,
                 "need --opcode NAME or --tensor I --row R --col C");
        info = compare::perturbWeight(argv[2], argv[3],
                                      size_t(tensor), row, col,
                                      delta);
    }
    std::cout << "perturbed tensor " << info.tensorIndex << " ("
              << info.row << ", " << info.col << "): " << info.before
              << " -> " << info.after << " -> " << argv[3] << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: difftune_compare "
                     "<snapshot|compare|check|dump|perturb> ...\n";
        return 3;
    }
    const std::string command = argv[1];
    // Operational failures exit 3: codes 0/1/2 belong to the
    // classification contract and must never be emitted by a run
    // that didn't actually compare anything.
    try {
        if (command == "snapshot")
            return cmdSnapshot(argc, argv);
        if (command == "compare")
            return cmdCompare(argc, argv);
        if (command == "check")
            return cmdCheck(argc, argv);
        if (command == "dump")
            return cmdDump(argc, argv);
        if (command == "perturb")
            return cmdPerturb(argc, argv);
        std::cerr << "unknown command '" << command << "'\n";
        return 3;
    } catch (const std::exception &error) {
        std::cerr << error.what() << "\n";
        return 3;
    }
}
