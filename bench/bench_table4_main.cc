/**
 * @file
 * Reproduces Table IV: error and Kendall's tau of the default tables,
 * DiffTune-learned tables, Ithemal, IACA-analog and OpenTuner across
 * the four microarchitectures.
 *
 * Expected shape (paper): DiffTune matches or beats the defaults on
 * every uarch; Ithemal is clearly best; the analytical model sits in
 * between (Intel only); OpenTuner exceeds 100% error.
 */

#include "analytical/iaca.hh"
#include "bench/bench_util.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "tuner/opentuner.hh"

namespace
{

using namespace difftune;

struct PaperRow
{
    const char *def, *dt, *ithemal, *iaca, *ot;
};

const PaperRow paperRows[] = {
    {"33.5%/0.788", "25.4%/0.735", "9.4%/0.858", "15.7%/0.810",
     "102.0%/0.515"},
    {"25.0%/0.783", "23.7%/0.745", "9.2%/0.854", "17.1%/0.800",
     "105.4%/0.522"},
    {"26.7%/0.776", "23.0%/0.748", "9.3%/0.859", "14.3%/0.811",
     "113.0%/0.516"},
    {"34.9%/0.794", "26.1%/0.689", "9.4%/0.873", "N/A",
     "131.3%/0.494"},
};

std::string
cell(const core::EvalResult &result)
{
    return fmtPercent(result.error) + "/" +
           fmtDouble(result.kendallTau, 3);
}

} // namespace

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    setVerbose(envLong("DIFFTUNE_VERBOSE", 0) != 0);
    return bench::runBench(
        "bench_table4_main: error of llvm-mca-analog with default and "
        "learned parameters vs baselines",
        "Table IV (main results)", [] {
            mca::XMca sim;
            TextTable table({"Arch", "Predictor", "Ours (err/tau)",
                             "Paper (err/tau)"});
            int row = 0;
            for (hw::Uarch uarch : hw::allUarches()) {
                const auto &dataset = core::sharedDataset(uarch);
                const char *arch = hw::uarchName(uarch);
                const PaperRow &paper = paperRows[row++];

                // Default expert table.
                auto def = hw::defaultTable(uarch);
                auto def_eval =
                    core::evaluate(sim, def, dataset, dataset.test());
                table.addRow({arch, "Default", cell(def_eval),
                              paper.def});

                // DiffTune-learned table (cached across benches).
                auto learned = core::learnedTable(uarch, "full", 1);
                auto dt_eval = core::evaluate(sim, learned, dataset,
                                              dataset.test());
                table.addRow({arch, "DiffTune", cell(dt_eval),
                              paper.dt});

                // Ithemal baseline.
                core::Ithemal ithemal(dataset,
                                      core::standardIthemal(7));
                ithemal.train();
                auto ith_eval = ithemal.evaluate(dataset.test());
                table.addRow({arch, "Ithemal", cell(ith_eval),
                              paper.ithemal});

                // IACA-analog (Intel only).
                if (analytical::XIaca::supports(uarch)) {
                    analytical::XIaca iaca(uarch);
                    std::vector<double> preds;
                    preds.reserve(dataset.test().size());
                    for (const auto &entry : dataset.test())
                        preds.push_back(
                            iaca.timing(dataset.block(entry)));
                    auto iaca_eval = core::evaluatePredictions(
                        std::move(preds), dataset.test());
                    table.addRow({arch, "IACA-analog", cell(iaca_eval),
                                  paper.iaca});
                } else {
                    table.addRow({arch, "IACA-analog", "N/A",
                                  paper.iaca});
                }

                // OpenTuner with DiffTune's simulator-eval budget.
                // The additive slack scales with DIFFTUNE_SCALE so
                // the --smoke tier keeps a link-and-run floor instead
                // of a fixed 20k evaluations.
                tuner::TunerConfig tuner_cfg;
                tuner_cfg.evalBudget = long(
                    core::standardConfig(1).simulatedMultiple *
                    double(dataset.train().size())) +
                    scaledCount(20000, 1024);
                tuner_cfg.seed = 17;
                tuner::OpenTuner opentuner(sim, dataset, def,
                                           tuner_cfg);
                auto tuned = opentuner.run();
                auto ot_eval = core::evaluate(sim, tuned.best, dataset,
                                              dataset.test());
                table.addRow({arch, "OpenTuner", cell(ot_eval),
                              paper.ot});
                table.addSeparator();
            }
            std::cout << table.render();
        });
}
