/**
 * @file
 * google-benchmark microbenchmarks for the neural substrate: matvec,
 * LSTM step, full surrogate forward and forward+backward. These
 * document the per-sample training cost behind the Table IV
 * pipelines.
 *
 * All loops reuse one Graph via clear() — the arena-tape idiom every
 * production call site (BatchRunner shards, the serving engine,
 * Model::predict) uses; construction is allocation-free in steady
 * state. The *Unfused variants build the node-per-op reference
 * composition in a graph that is rebuilt from scratch each iteration
 * — the pre-rewrite engine's construction pattern — so fused-vs-
 * unfused is the old-vs-new comparison.
 *
 * --smoke additionally runs the old-vs-new harness below, which
 * prints node counts and the forward+backward speedup ratio and
 * fails (exit 1) if the ratio drops under the CI floor.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_micro_util.hh"

#include "isa/parse.hh"
#include "nn/batched.hh"
#include "nn/modules.hh"
#include "surrogate/model.hh"

namespace
{

using namespace difftune;

void
BM_MatVec(benchmark::State &state)
{
    const int n = int(state.range(0));
    Rng rng(1);
    nn::ParamSet params;
    int w = params.add(n, n);
    params[w].uniformInit(rng, 0.1);
    nn::Tensor x(n, 1);
    x.uniformInit(rng, 1.0);
    nn::Graph g;
    for (auto _ : state) {
        g.clear();
        nn::Var wv = g.param(params, w, nullptr);
        benchmark::DoNotOptimize(g.matmul(wv, g.input(x)));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MatVec)->Arg(32)->Arg(64)->Arg(128);

void
BM_LstmStep(benchmark::State &state)
{
    const int h = int(state.range(0));
    Rng rng(2);
    nn::ParamSet params;
    nn::LstmCell cell(params, h, h, rng);
    nn::Tensor x(h, 1);
    x.uniformInit(rng, 1.0);
    nn::Graph g;
    for (auto _ : state) {
        g.clear();
        nn::Ctx ctx{g, params, nullptr};
        auto s = cell.initial(ctx);
        benchmark::DoNotOptimize(cell.step(ctx, g.input(x), s));
    }
}
BENCHMARK(BM_LstmStep)->Arg(32)->Arg(64);

surrogate::Model &
benchModel()
{
    static surrogate::Model model(
        [] {
            surrogate::ModelConfig cfg;
            cfg.hidden = 64;
            cfg.embedDim = 32;
            cfg.tokenLayers = 1;
            cfg.blockLayers = 2;
            cfg.paramDim = 0;
            return cfg;
        }(),
        isa::theVocab().size());
    return model;
}

const surrogate::EncodedBlock &
benchBlock()
{
    static const surrogate::EncodedBlock block =
        surrogate::encodeBlock(isa::parseBlock(
            "MOV64rm 8(%rsi), %rdi\n"
            "ADD64rr %rdi, %rbx\n"
            "IMUL64rr %rbx, %rcx\n"
            "CMP64rr %rcx, %rdx\n"
            "PUSH64r %rbx\n"));
    return block;
}

void
BM_SurrogateForward(benchmark::State &state)
{
    auto &model = benchModel();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(benchBlock()));
}
BENCHMARK(BM_SurrogateForward);

/** A small pool of distinct blocks for the batched forward benches. */
const std::vector<surrogate::EncodedBlock> &
benchBlockPool()
{
    static const std::vector<surrogate::EncodedBlock> pool = [] {
        const std::vector<std::string> texts = {
            "MOV64rm 8(%rsi), %rdi\nADD64rr %rdi, %rbx\n"
            "IMUL64rr %rbx, %rcx\nCMP64rr %rcx, %rdx\nPUSH64r %rbx\n",
            "ADD32rr %ebx, %ecx\nNOP\n",
            "IMUL64rr %rbx, %rcx\n",
            "PUSH64r %rbx\nPOP64r %rcx\nADD32rr %ebx, %ecx\n",
        };
        std::vector<surrogate::EncodedBlock> blocks;
        for (const auto &text : texts)
            blocks.push_back(
                surrogate::encodeBlock(isa::parseBlock(text)));
        return blocks;
    }();
    return pool;
}

/**
 * The batched multi-block forward (nn/batched.hh) at batch sizes
 * 1/8/32, per block: the serving engine's per-shard execution mode.
 * Compare items/s against BM_SurrogateForward for the per-block win;
 * the f32 variant additionally runs the polynomial-transcendental
 * single-precision kernels (accuracy-gated, serving only).
 */
template <nn::Precision P>
void
BM_SurrogatePredictBatch(benchmark::State &state)
{
    auto &model = benchModel();
    const auto &pool = benchBlockPool();
    const size_t batch = size_t(state.range(0));
    std::vector<const surrogate::EncodedBlock *> blocks;
    for (size_t i = 0; i < batch; ++i)
        blocks.push_back(&pool[i % pool.size()]);
    nn::BatchedForward bf(model.params(), P);
    std::vector<double> out;
    for (auto _ : state) {
        model.predictBatch(bf, blocks, {}, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(batch));
}
BENCHMARK(BM_SurrogatePredictBatch<nn::Precision::kF64>)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);
BENCHMARK(BM_SurrogatePredictBatch<nn::Precision::kF32>)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);

/** One sample's forward+backward in @p g; returns the loss. */
double
forwardBackward(nn::Graph &g, nn::Grads &grads, bool fuse)
{
    auto &model = benchModel();
    nn::Ctx ctx{g, model.params(), &grads, fuse};
    nn::Var pred = g.exp(model.forward(ctx, benchBlock(), {}));
    nn::Var loss = g.lossMape(pred, 2.0, 0.05);
    g.backward(loss);
    return g.scalarValue(loss);
}

void
BM_SurrogateForwardBackward(benchmark::State &state)
{
    auto &model = benchModel();
    nn::Grads grads(model.params());
    nn::Graph g;
    for (auto _ : state) {
        grads.zero();
        g.clear();
        benchmark::DoNotOptimize(forwardBackward(g, grads, true));
    }
}
BENCHMARK(BM_SurrogateForwardBackward);

void
BM_SurrogateForwardBackwardUnfused(benchmark::State &state)
{
    auto &model = benchModel();
    nn::Grads grads(model.params());
    for (auto _ : state) {
        grads.zero();
        // Fresh graph each iteration: the pre-rewrite construction
        // pattern (no arena reuse).
        nn::Graph g;
        benchmark::DoNotOptimize(forwardBackward(g, grads, false));
    }
}
BENCHMARK(BM_SurrogateForwardBackwardUnfused);

// ------------------------------------------------- old-vs-new floor

/** CI floor for fused+reused over unfused+rebuilt (see ISSUE 3). */
constexpr double speedupFloor = 1.8;

/** Seconds per iteration of one batch of @p iters calls. */
template <typename Body>
double
secPerIter(int iters, const Body &body)
{
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        body();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    return dt.count() / iters;
}

/**
 * The old-vs-new check. The "old" side reproduces the pre-rewrite
 * engine: the unfused node-per-op composition, routed through the
 * frozen PR-1 scalar kernels (Graph::setReferenceKernels), in a
 * graph rebuilt from scratch each sample (the pre-arena construction
 * pattern). The "new" side is fused ops in one arena-reused graph.
 * Prints node counts and the speedup ratio; returns false if the
 * ratio is under the floor.
 */
bool
runOldVsNewSmoke()
{
    auto &model = benchModel();
    nn::Grads grads(model.params());

    nn::Graph fused_graph;
    size_t fused_nodes = 0, unfused_nodes = 0;
    // Warm up both paths (first-touch arena growth, caches).
    for (int i = 0; i < 3; ++i) {
        fused_graph.clear();
        forwardBackward(fused_graph, grads, true);
        fused_nodes = fused_graph.numNodes();
        nn::Graph g;
        g.setReferenceKernels(true);
        forwardBackward(g, grads, false);
        unfused_nodes = g.numNodes();
    }

    // Interleave the two paths rep by rep and take the median of the
    // per-rep ratios: frequency drift and noisy-neighbour effects on
    // a shared runner hit both sides of each rep roughly equally.
    const int reps = 11, iters = 8;
    std::vector<double> ratios, unfused_times, fused_times;
    for (int r = 0; r < reps; ++r) {
        const double unfused_sec = secPerIter(iters, [&] {
            nn::Graph g;
            g.setReferenceKernels(true);
            forwardBackward(g, grads, false);
        });
        const double fused_sec = secPerIter(iters, [&] {
            fused_graph.clear();
            forwardBackward(fused_graph, grads, true);
        });
        ratios.push_back(unfused_sec / fused_sec);
        unfused_times.push_back(unfused_sec);
        fused_times.push_back(fused_sec);
    }
    std::sort(ratios.begin(), ratios.end());
    std::sort(unfused_times.begin(), unfused_times.end());
    std::sort(fused_times.begin(), fused_times.end());
    const double ratio = ratios[size_t(reps) / 2];
    const double unfused_sec = unfused_times[size_t(reps) / 2];
    const double fused_sec = fused_times[size_t(reps) / 2];
    std::printf("bench_micro_nn old-vs-new: nodes %zu -> %zu, "
                "fwd+bwd %.3f ms -> %.3f ms, speedup %.2fx "
                "(floor %.1fx)\n",
                unfused_nodes, fused_nodes, unfused_sec * 1e3,
                fused_sec * 1e3, ratio, speedupFloor);
    if (fused_nodes * 2 >= unfused_nodes) {
        std::fprintf(stderr,
                     "FAIL: fused graph has %zu nodes vs %zu "
                     "unfused — fusion stopped collapsing the "
                     "tape\n",
                     fused_nodes, unfused_nodes);
        return false;
    }
    if (ratio < speedupFloor) {
        std::fprintf(stderr,
                     "FAIL: fused autograd speedup %.2fx is under "
                     "the %.1fx floor\n",
                     ratio, speedupFloor);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    if (smoke && !runOldVsNewSmoke())
        return 1;
    return difftune::bench::runMicroBenchMain(argc, argv);
}
