/**
 * @file
 * google-benchmark microbenchmarks for the neural substrate: matvec,
 * LSTM step, full surrogate forward and forward+backward. These
 * document the per-sample training cost behind the Table IV
 * pipelines.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.hh"

#include "isa/parse.hh"
#include "nn/modules.hh"
#include "surrogate/model.hh"

namespace
{

using namespace difftune;

void
BM_MatVec(benchmark::State &state)
{
    const int n = int(state.range(0));
    Rng rng(1);
    nn::ParamSet params;
    int w = params.add(n, n);
    params[w].uniformInit(rng, 0.1);
    nn::Tensor x(n, 1);
    x.uniformInit(rng, 1.0);
    for (auto _ : state) {
        nn::Graph g;
        nn::Var wv = g.param(params, w, nullptr);
        benchmark::DoNotOptimize(g.matmul(wv, g.input(nn::Tensor(x))));
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MatVec)->Arg(32)->Arg(64)->Arg(128);

void
BM_LstmStep(benchmark::State &state)
{
    const int h = int(state.range(0));
    Rng rng(2);
    nn::ParamSet params;
    nn::LstmCell cell(params, h, h, rng);
    nn::Tensor x(h, 1);
    x.uniformInit(rng, 1.0);
    for (auto _ : state) {
        nn::Graph g;
        nn::Ctx ctx{g, params, nullptr};
        auto s = cell.initial(ctx);
        benchmark::DoNotOptimize(
            cell.step(ctx, g.input(nn::Tensor(x)), s));
    }
}
BENCHMARK(BM_LstmStep)->Arg(32)->Arg(64);

surrogate::Model &
benchModel()
{
    static surrogate::Model model(
        [] {
            surrogate::ModelConfig cfg;
            cfg.hidden = 64;
            cfg.embedDim = 32;
            cfg.tokenLayers = 1;
            cfg.blockLayers = 2;
            cfg.paramDim = 0;
            return cfg;
        }(),
        isa::theVocab().size());
    return model;
}

const surrogate::EncodedBlock &
benchBlock()
{
    static const surrogate::EncodedBlock block =
        surrogate::encodeBlock(isa::parseBlock(
            "MOV64rm 8(%rsi), %rdi\n"
            "ADD64rr %rdi, %rbx\n"
            "IMUL64rr %rbx, %rcx\n"
            "CMP64rr %rcx, %rdx\n"
            "PUSH64r %rbx\n"));
    return block;
}

void
BM_SurrogateForward(benchmark::State &state)
{
    auto &model = benchModel();
    for (auto _ : state)
        benchmark::DoNotOptimize(model.predict(benchBlock()));
}
BENCHMARK(BM_SurrogateForward);

void
BM_SurrogateForwardBackward(benchmark::State &state)
{
    auto &model = benchModel();
    nn::Grads grads(model.params());
    for (auto _ : state) {
        grads.zero();
        nn::Graph g;
        nn::Ctx ctx{g, model.params(), &grads};
        nn::Var pred = g.exp(model.forward(ctx, benchBlock(), {}));
        nn::Var loss = g.lossMape(pred, 2.0, 0.05);
        g.backward(loss);
        benchmark::DoNotOptimize(g.scalarValue(loss));
    }
}
BENCHMARK(BM_SurrogateForwardBackward);

} // namespace

int
main(int argc, char **argv)
{
    return difftune::bench::runMicroBenchMain(argc, argv);
}
