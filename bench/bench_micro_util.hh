/**
 * @file
 * Shared main() for the google-benchmark microbenchmarks: parses the
 * common bench flags, then hands the rest to the benchmark library.
 * --smoke shrinks the per-benchmark measurement budget.
 */

#ifndef DIFFTUNE_BENCH_BENCH_MICRO_UTIL_HH
#define DIFFTUNE_BENCH_BENCH_MICRO_UTIL_HH

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"

// google-benchmark >= 1.8 requires a unit suffix on
// --benchmark_min_time; older versions reject it. CMake picks the
// right spelling from the detected library version.
#ifndef DIFFTUNE_BENCH_SMOKE_MIN_TIME
#define DIFFTUNE_BENCH_SMOKE_MIN_TIME "0.01"
#endif

namespace difftune::bench
{

inline int
runMicroBenchMain(int argc, char **argv)
{
    const bool smoke = parseBenchArgs(argc, argv, /*strict=*/false);
    std::vector<char *> args(argv, argv + argc);
    static char min_time[] =
        "--benchmark_min_time=" DIFFTUNE_BENCH_SMOKE_MIN_TIME;
    if (smoke)
        args.insert(args.begin() + 1, min_time);
    args.push_back(nullptr);
    int args_count = static_cast<int>(args.size()) - 1;
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace difftune::bench

#endif // DIFFTUNE_BENCH_BENCH_MICRO_UTIL_HH
