/**
 * @file
 * Reproduces the Section VI-C case studies:
 *  - PUSH64r: default documented latency 2 makes the rsp chain 2
 *    cycles; learning drives it to ~0 and the store port binds at 1
 *    (true ~1.01).
 *  - XOR32rr as a zero idiom: hardware eliminates it (~0.31); the
 *    simulator cannot, but a learned latency of ~0 recovers most of
 *    the accuracy (default predicts ~1.03).
 *  - ADD32mr: hardware chains load->add->store->forward (~5.97); the
 *    simulator has no address-based dependences at all, so learning
 *    compensates with a degenerately high WriteLatency.
 */

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "hw/ref_machine.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(envLong("DIFFTUNE_VERBOSE", 0) != 0);
    return bench::runBench(
        "bench_case_studies: PUSH64r / XOR32rr / ADD32mr learned-"
        "parameter case studies",
        "Section VI-C (case studies)", [] {
            hw::RefMachine machine(hw::Uarch::Haswell);
            mca::XMca sim;
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            // The paper's case studies read the WriteLatency-only
            // learned table (Section VI-B).
            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "wlonly", 1);

            struct Case
            {
                const char *label;
                const char *block;
                const char *opcode;
                const char *paper;
            };
            const Case cases[] = {
                {"PUSH64r chain", "PUSH64r %rbx\nTEST32rr %r8d, %r8d\n",
                 "PUSH64r",
                 "true 1.01; default 2.03; learned 1.03 (wl 2 -> 0)"},
                {"XOR32rr zero idiom", "XOR32rr %r13d, %r13d\n",
                 "XOR32rr",
                 "true 0.31; default 1.03; learned 0.27 (wl 1 -> 0)"},
                {"ADD32mr mem chain", "ADD32mr 16(%rsp), %eax\n",
                 "ADD32mr",
                 "true 5.97; default 1.09; learned 1.64 (wl 7 -> 62, "
                 "degenerate)"},
            };

            TextTable table({"Case", "True", "Default pred",
                             "Learned pred", "WL def->learned",
                             "Paper"});
            for (const Case &c : cases) {
                auto block = isa::parseBlock(c.block);
                auto op = isa::theIsa().opcodeByName(c.opcode);
                table.addRow(
                    {c.label, fmtDouble(machine.measure(block), 2),
                     fmtDouble(sim.timing(block, def), 2),
                     fmtDouble(sim.timing(block, learned), 2),
                     std::to_string(def.latency(op)) + " -> " +
                         std::to_string(learned.latency(op)),
                     c.paper});
            }
            std::cout << table.render();
            std::cout << "\nShape checks: learned stack/zero-idiom "
                         "latencies shrink toward 0; the memory-RMW "
                         "case cannot be fixed by any latency (no "
                         "address-based dependences in the simulator) "
                         "so learning inflates it instead.\n";
        });
}
