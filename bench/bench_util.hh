/**
 * @file
 * Shared helpers for the benchmark harness binaries. Each bench
 * reproduces one table or figure of the paper and prints our measured
 * values next to the paper's reported ones.
 */

#ifndef DIFFTUNE_BENCH_BENCH_UTIL_HH
#define DIFFTUNE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/table.hh"

namespace difftune::bench
{

/** Print the bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << what << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "scale: DIFFTUNE_SCALE=" << experimentScale()
              << " (absolute numbers shift with scale; shapes should "
                 "hold)\n"
              << "==========================================================\n";
}

/** Wrap a bench body with fatal-error handling. */
template <typename Body>
int
runBench(const std::string &what, const std::string &paper_ref,
         Body &&body)
{
    banner(what, paper_ref);
    try {
        body();
    } catch (const std::exception &error) {
        std::cerr << "bench failed: " << error.what() << std::endl;
        return 1;
    }
    std::cout << std::endl;
    return 0;
}

} // namespace difftune::bench

#endif // DIFFTUNE_BENCH_BENCH_UTIL_HH
