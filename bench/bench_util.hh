/**
 * @file
 * Shared helpers for the benchmark harness binaries. Each bench
 * reproduces one table or figure of the paper and prints our measured
 * values next to the paper's reported ones.
 */

#ifndef DIFFTUNE_BENCH_BENCH_UTIL_HH
#define DIFFTUNE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>

#include "base/env.hh"
#include "base/logging.hh"
#include "base/table.hh"

namespace difftune::bench
{

/**
 * Parse the shared bench CLI flags, consuming them from argv:
 *
 *   --smoke      clamp DIFFTUNE_SCALE down to at most a tiny
 *                link-and-run sanity size (never enlarges a smaller
 *                explicit scale, regardless of flag order)
 *   --scale=<x>  set DIFFTUNE_SCALE explicitly (paper scale is 1.0)
 *
 * In strict mode (the paper benches) any other argument is an error —
 * a typo'd flag must not silently run the full-scale workload. With
 * strict=false (the google-benchmark harnesses) unknown arguments and
 * --help are left in argv for benchmark::Initialize to handle.
 *
 * Must run before the first experimentScale() call (the value is
 * cached). Returns true when --smoke was requested so google-benchmark
 * harnesses can also shrink their iteration budget.
 */
inline bool
parseBenchArgs(int &argc, char **argv, bool strict = true)
{
    bool smoke = false;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--scale=", 8) == 0) {
            setenv("DIFFTUNE_SCALE", argv[i] + 8, 1);
        } else if (strict && std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [--smoke] [--scale=<x>]\n"
                         "  --smoke      tiny iteration count (sanity "
                         "run)\n"
                         "  --scale=<x>  DIFFTUNE_SCALE multiplier "
                         "(paper scale: 1.0)\n";
            std::exit(0);
        } else if (strict) {
            std::cerr << argv[0] << ": unknown argument: " << argv[i]
                      << " (try --help)\n";
            std::exit(2);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argv[kept] = nullptr;
    argc = kept;
    if (smoke) {
        const double current = envDouble("DIFFTUNE_SCALE", 1.0);
        const double clamped = current < 0.05 ? current : 0.05;
        setenv("DIFFTUNE_SCALE", std::to_string(clamped).c_str(), 1);
    }
    return smoke;
}

/** Print the bench banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    const std::string rule(58, '=');
    std::cout << rule << "\n"
              << what << "\n"
              << "reproduces: " << paper_ref << "\n"
              << "scale: DIFFTUNE_SCALE=" << experimentScale()
              << " (absolute numbers shift with scale; shapes should "
                 "hold)\n"
              << rule << "\n";
}

/** Wrap a bench body with fatal-error handling. */
template <typename Body>
int
runBench(const std::string &what, const std::string &paper_ref,
         Body &&body)
{
    try {
        banner(what, paper_ref);
        body();
    } catch (const std::exception &error) {
        std::cerr << "bench failed: " << error.what() << std::endl;
        return 1;
    }
    std::cout << std::endl;
    return 0;
}

} // namespace difftune::bench

#endif // DIFFTUNE_BENCH_BENCH_UTIL_HH
