/**
 * @file
 * Reproduces Table V: Haswell error grouped by BHive source
 * application and by hardware-resource category, default vs learned.
 */

#include <array>
#include <cmath>

#include "bench/bench_util.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"

namespace
{

using namespace difftune;

struct GroupError
{
    long count = 0;
    double defaultSum = 0.0;
    double learnedSum = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    setVerbose(false);
    return bench::runBench(
        "bench_table5_breakdown: Haswell per-application and "
        "per-category error",
        "Table V (per-application / per-category breakdown)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            mca::XMca sim;
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "full", 1);

            auto def_eval =
                core::evaluate(sim, def, dataset, dataset.test());
            auto dt_eval =
                core::evaluate(sim, learned, dataset, dataset.test());

            std::array<GroupError, bhive::numApps> by_app;
            std::array<GroupError, bhive::numCategories> by_cat;
            for (size_t i = 0; i < dataset.test().size(); ++i) {
                const auto &entry = dataset.test()[i];
                const auto &info = dataset.info(entry);
                const double de =
                    std::fabs(def_eval.predictions[i] - entry.timing) /
                    entry.timing;
                const double le =
                    std::fabs(dt_eval.predictions[i] - entry.timing) /
                    entry.timing;
                for (int app = 0; app < bhive::numApps; ++app) {
                    if (!info.fromApp(bhive::App(app)))
                        continue;
                    by_app[app].count++;
                    by_app[app].defaultSum += de;
                    by_app[app].learnedSum += le;
                }
                auto &cat = by_cat[int(info.category)];
                cat.count++;
                cat.defaultSum += de;
                cat.learnedSum += le;
            }

            // Paper's Haswell numbers for reference.
            const char *paper_apps[] = {
                "28.8% -> 29.0%", "41.2% -> 22.5%", "32.8% -> 21.6%",
                "40.6% -> 20.6%", "33.5% -> 22.1%", "22.0% -> 21.0%",
                "44.3% -> 23.8%", "34.1% -> 21.3%", "30.9% -> 21.2%"};
            const char *paper_cats[] = {
                "17.2% -> 18.9%", "35.3% -> 39.6%", "53.6% -> 37.5%",
                "27.2% -> 24.4%", "24.7% -> 8.7%", "27.9% -> 30.3%"};

            TextTable table({"Block type", "# Blocks", "Default err",
                             "Learned err", "Paper (def -> learned)"});
            for (int app = 0; app < bhive::numApps; ++app) {
                const auto &group = by_app[app];
                if (group.count == 0)
                    continue;
                table.addRow(
                    {bhive::appName(bhive::App(app)),
                     std::to_string(group.count),
                     fmtPercent(group.defaultSum / group.count),
                     fmtPercent(group.learnedSum / group.count),
                     paper_apps[app]});
            }
            table.addSeparator();
            for (int cat = 0; cat < bhive::numCategories; ++cat) {
                const auto &group = by_cat[cat];
                if (group.count == 0)
                    continue;
                table.addRow(
                    {bhive::categoryName(bhive::Category(cat)),
                     std::to_string(group.count),
                     fmtPercent(group.defaultSum / group.count),
                     fmtPercent(group.learnedSum / group.count),
                     paper_cats[cat]});
            }
            std::cout << table.render();
        });
}
