/**
 * @file
 * Reproduces Figure 5: the simulator's error sensitivity to
 * DispatchWidth (top) and ReorderBufferSize (bottom), sweeping each
 * parameter within the default and the learned Haswell tables.
 *
 * Expected shape: sharp sensitivity to DispatchWidth around its
 * optimum; near-total insensitivity to ReorderBufferSize above a
 * small threshold (llvm-mca's L1-only modeling keeps the ROB from
 * being the bottleneck).
 */

#include "bench/bench_util.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(false);
    return bench::runBench(
        "bench_fig5_sensitivity: error vs DispatchWidth / "
        "ReorderBufferSize (Haswell)",
        "Figure 5 (parameter sensitivity)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            mca::XMca sim;
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "full", 1);

            TextTable dw_table({"DispatchWidth", "Err (default tbl)",
                                "Err (learned tbl)"});
            for (int dw = 1; dw <= 10; ++dw) {
                auto def_t = def;
                auto lrn_t = learned;
                def_t.dispatchWidth = dw;
                lrn_t.dispatchWidth = dw;
                dw_table.addRow(
                    {std::to_string(dw),
                     fmtPercent(core::evaluate(sim, def_t, dataset,
                                               dataset.test())
                                    .error),
                     fmtPercent(core::evaluate(sim, lrn_t, dataset,
                                               dataset.test())
                                    .error)});
            }
            std::cout << dw_table.render();
            std::cout << "(paper, default table: dw=3 -> 33.5%, 4 -> "
                         "25.0%, 5 -> 26.8%)\n\n";

            TextTable rob_table({"ReorderBufferSize",
                                 "Err (default tbl)",
                                 "Err (learned tbl)"});
            for (int rob : {10, 20, 40, 70, 100, 150, 200, 250, 300,
                            400}) {
                auto def_t = def;
                auto lrn_t = learned;
                def_t.reorderBufferSize = rob;
                lrn_t.reorderBufferSize = rob;
                rob_table.addRow(
                    {std::to_string(rob),
                     fmtPercent(core::evaluate(sim, def_t, dataset,
                                               dataset.test())
                                    .error),
                     fmtPercent(core::evaluate(sim, lrn_t, dataset,
                                               dataset.test())
                                    .error)});
            }
            std::cout << rob_table.render();
            std::cout << "(paper: flat above ROB ~70 — the ROB is "
                         "rarely the bottleneck under the L1-only "
                         "assumption)\n";
        });
}
