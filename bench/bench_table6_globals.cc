/**
 * @file
 * Reproduces Table VI: default vs learned global parameters
 * (DispatchWidth, ReorderBufferSize) on Haswell.
 */

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(false);
    return bench::runBench(
        "bench_table6_globals: default vs learned global parameters",
        "Table VI (global parameters, Haswell)", [] {
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "full", 1);

            TextTable table({"Parameters", "DispatchWidth",
                             "ReorderBufferSize"});
            table.addRow({"Default",
                          std::to_string(def.dispatch()),
                          std::to_string(def.robSize())});
            table.addRow({"Learned",
                          std::to_string(learned.dispatch()),
                          std::to_string(learned.robSize())});
            table.addSeparator();
            table.addRow({"Paper default", "4", "192"});
            table.addRow({"Paper learned", "4", "144"});
            std::cout << table.render();
            std::cout << "\n(The paper finds the learned ROB differs "
                         "from the default because llvm-mca is largely "
                         "insensitive to it; Figure 5's bench shows "
                         "the same flat sensitivity here.)\n";
        });
}
