/**
 * @file
 * Reproduces Section VI-B: learning only WriteLatency (all other
 * parameters kept at their expert defaults) yields lower error than
 * learning the full parameter set — evidence that full-set learning
 * is not globally optimal.
 *
 * Paper (Haswell): full set 23.7% / tau 0.745; WriteLatency-only
 * 16.2% / tau 0.823.
 */

#include "bench/bench_util.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(envLong("DIFFTUNE_VERBOSE", 0) != 0);
    return bench::runBench(
        "bench_vib_writelatency: WriteLatency-only learning "
        "(optimality probe)",
        "Section VI-B (optimality)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            mca::XMca sim;
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            auto full = core::learnedTable(hw::Uarch::Haswell, "full", 1);
            auto wlonly =
                core::learnedTable(hw::Uarch::Haswell, "wlonly", 1);

            TextTable table({"Configuration", "Ours (err/tau)",
                             "Paper (err/tau)"});
            auto row = [&](const char *name,
                           const params::ParamTable &table_values,
                           const char *paper) {
                auto eval = core::evaluate(sim, table_values, dataset,
                                           dataset.test());
                table.addRow({name,
                              fmtPercent(eval.error) + "/" +
                                  fmtDouble(eval.kendallTau, 3),
                              paper});
            };
            row("Default", def, "25.0%/0.783");
            row("Full set learned", full, "23.7%/0.745");
            row("WriteLatency only", wlonly, "16.2%/0.823");
            std::cout << table.render();
            std::cout << "\nShape check: WriteLatency-only should "
                         "beat full-set learning (the full problem "
                         "is non-convex and much larger).\n";
        });
}
