/**
 * @file
 * Ablations of DiffTune design choices called out in DESIGN.md:
 *
 *  1. Extraction rounding: round-to-nearest (paper) vs floor.
 *  2. Sampling-distribution width: the paper notes random tables
 *     from the sampling distribution average ~171% error; widening
 *     the distribution degrades the starting point further.
 *  3. Surrogate refinement (our Section VII-style extension):
 *     validation error of the learned table with and without
 *     refinement rounds.
 */

#include "bench/bench_util.hh"
#include "core/difftune.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "mca/xmca.hh"
#include "stats/metrics.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(false);
    return bench::runBench(
        "bench_ablation: extraction rounding, sampling width, "
        "surrogate refinement",
        "DESIGN.md ablation list (supports Sections IV & VII)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            mca::XMca sim;
            auto base = hw::defaultTable(hw::Uarch::Haswell);

            // ---- 1. Rounding mode at extraction.
            {
                auto learned =
                    core::learnedTable(hw::Uarch::Haswell, "full", 1);
                params::ParamTable floored(learned);
                for (auto &inst : floored.perOpcode) {
                    inst.writeLatency =
                        std::floor(inst.writeLatency);
                    inst.numMicroOps =
                        std::max(1.0, std::floor(inst.numMicroOps));
                }
                TextTable table({"Extraction", "Test error"});
                table.addRow(
                    {"round-to-nearest (paper)",
                     fmtPercent(core::evaluate(sim, learned, dataset,
                                               dataset.test())
                                    .error)});
                table.addRow(
                    {"floor",
                     fmtPercent(core::evaluate(sim, floored, dataset,
                                               dataset.test())
                                    .error)});
                std::cout << table.render() << "\n";
            }

            // ---- 2. Sampling-distribution width -> random error.
            {
                TextTable table({"WriteLatency range",
                                 "random-table error (mean+-std, "
                                 "5 draws)"});
                for (int wl_max : {3, 5, 10}) {
                    params::SamplingDist dist;
                    dist.writeLatencyMax = wl_max;
                    Rng rng(7);
                    std::vector<double> errors;
                    for (int i = 0; i < 5; ++i) {
                        auto theta = dist.sample(rng, base);
                        errors.push_back(
                            core::evaluate(sim, theta, dataset,
                                           dataset.valid())
                                .error);
                    }
                    table.addRow(
                        {"0.." + std::to_string(wl_max),
                         fmtPercent(stats::mean(errors)) + " +- " +
                             fmtPercent(stats::stddev(errors))});
                }
                std::cout << table.render();
                std::cout << "(paper: sampled tables average "
                             "171.4% +- 95.7%)\n\n";
            }

            // ---- 3. Refinement rounds on/off (reduced scale).
            {
                TextTable table({"Refinement", "Test error"});
                for (int rounds : {0, 2}) {
                    core::DiffTuneConfig cfg = core::standardConfig(3);
                    cfg.simulatedMultiple /= 2;
                    cfg.surrogateLoops =
                        std::max(2, cfg.surrogateLoops / 2);
                    // Half the standard epochs, which already scale
                    // with DIFFTUNE_SCALE (a --smoke run keeps its
                    // link-and-run floor).
                    cfg.tableEpochs = std::max(5, cfg.tableEpochs / 2);
                    cfg.refineRounds = rounds;
                    core::DiffTune difftune(sim, dataset, base, cfg);
                    auto result = difftune.run();
                    table.addRow(
                        {rounds == 0 ? "off (paper one-shot)"
                                     : "2 rounds (Section VII "
                                       "extension)",
                         fmtPercent(
                             core::evaluate(sim, result.learned,
                                            dataset, dataset.test())
                                 .error)});
                }
                std::cout << table.render();
            }
        });
}
