/**
 * @file
 * Reproduces Table III: dataset summary statistics.
 */

#include "bench/bench_util.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(false);
    return bench::runBench(
        "bench_table3_dataset: synthetic BHive summary statistics",
        "Table III (dataset summary statistics)", [] {
            const auto &corpus = core::sharedCorpus();
            std::vector<const bhive::Dataset *> datasets;
            for (hw::Uarch uarch : hw::allUarches())
                datasets.push_back(&core::sharedDataset(uarch));
            auto summary = bhive::summarize(corpus, datasets);

            TextTable table({"Statistic", "Ours", "Paper (BHive)"});
            table.addRow({"# Blocks: Train",
                          std::to_string(summary.trainBlocks),
                          "230111"});
            table.addRow({"# Blocks: Validation",
                          std::to_string(summary.validBlocks), "28764"});
            table.addRow({"# Blocks: Test",
                          std::to_string(summary.testBlocks), "28764"});
            table.addSeparator();
            table.addRow({"Block length: Min",
                          std::to_string(summary.minLength), "1"});
            table.addRow({"Block length: Median",
                          fmtDouble(summary.medianLength, 1), "3"});
            table.addRow({"Block length: Mean",
                          fmtDouble(summary.meanLength, 2), "4.93"});
            table.addRow({"Block length: Max",
                          std::to_string(summary.maxLength),
                          "256 (ours caps at 64)"});
            table.addSeparator();
            const char *paper_timing[] = {"132", "123", "120", "114"};
            for (size_t i = 0; i < summary.medianTimings.size(); ++i) {
                table.addRow(
                    {"Median timing: " + summary.medianTimings[i].first,
                     fmtDouble(summary.medianTimings[i].second, 0),
                     paper_timing[i]});
            }
            table.addSeparator();
            table.addRow({"# Unique opcodes: Train",
                          std::to_string(summary.trainOpcodes), "814"});
            table.addRow({"# Unique opcodes: Val",
                          std::to_string(summary.validOpcodes), "610"});
            table.addRow({"# Unique opcodes: Test",
                          std::to_string(summary.testOpcodes), "580"});
            table.addRow({"# Unique opcodes: Total",
                          std::to_string(summary.totalOpcodes), "837"});
            std::cout << table.render();
        });
}
