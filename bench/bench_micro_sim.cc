/**
 * @file
 * google-benchmark microbenchmarks for the simulator substrates:
 * XMca, RefMachine, USim and the analytical model, across block
 * sizes. These are throughput benchmarks (not paper artifacts); they
 * document the cost of one f(theta, x) evaluation, which drives the
 * OpenTuner budget and the simulated-dataset collection time.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_micro_util.hh"

#include "analytical/iaca.hh"
#include "bhive/generator.hh"
#include "hw/default_table.hh"
#include "hw/ref_machine.hh"
#include "mca/xmca.hh"
#include "usim/usim.hh"

namespace
{

using namespace difftune;

isa::BasicBlock
blockOfSize(int target)
{
    Rng rng(1234 + target);
    isa::BasicBlock block;
    while (int(block.size()) < target) {
        auto chunk =
            bhive::generateBlock(rng, bhive::appProfile(
                                          bhive::App::Clang));
        for (auto &inst : chunk.insts) {
            if (int(block.size()) >= target)
                break;
            block.insts.push_back(inst);
        }
    }
    return block;
}

void
BM_XMcaTiming(benchmark::State &state)
{
    const auto block = blockOfSize(int(state.range(0)));
    const auto table = hw::defaultTable(hw::Uarch::Haswell);
    mca::XMca sim;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.timing(block, table));
    state.SetItemsProcessed(state.iterations() * block.size() * 100);
}
BENCHMARK(BM_XMcaTiming)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void
BM_RefMachineMeasure(benchmark::State &state)
{
    const auto block = blockOfSize(int(state.range(0)));
    hw::RefMachine machine(hw::Uarch::Haswell);
    for (auto _ : state)
        benchmark::DoNotOptimize(machine.measure(block));
    state.SetItemsProcessed(state.iterations() * block.size() * 100);
}
BENCHMARK(BM_RefMachineMeasure)->Arg(4)->Arg(16)->Arg(64);

void
BM_USimTiming(benchmark::State &state)
{
    const auto block = blockOfSize(int(state.range(0)));
    const auto table = hw::defaultTable(hw::Uarch::Haswell);
    usim::USim sim;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.timing(block, table));
}
BENCHMARK(BM_USimTiming)->Arg(4)->Arg(16);

void
BM_AnalyticalTiming(benchmark::State &state)
{
    const auto block = blockOfSize(int(state.range(0)));
    analytical::XIaca model(hw::Uarch::Haswell);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.timing(block));
}
BENCHMARK(BM_AnalyticalTiming)->Arg(4)->Arg(16);

void
BM_BlockGeneration(benchmark::State &state)
{
    Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(bhive::generateBlock(
            rng, bhive::appProfile(bhive::App::TensorFlow)));
}
BENCHMARK(BM_BlockGeneration);

} // namespace

int
main(int argc, char **argv)
{
    return difftune::bench::runMicroBenchMain(argc, argv);
}
