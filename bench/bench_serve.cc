/**
 * @file
 * Serving-layer benchmark: checkpoint cold-load latency plus the
 * throughput of the batched PredictionEngine against the naive
 * one-fresh-graph-per-block path, on a skewed request stream (a small
 * working set dominates, as in real serving traffic; see
 * serve/workload.hh for the shared experiment definition).
 *
 * The engine's advantage comes from the mechanisms measured
 * together: the raw-text and canonical LRU caches (repeat blocks
 * skip parsing / the LSTM entirely), within-batch deduplication, the
 * batched forward executor (nn/batched.hh: no tape, shared weight
 * reads, per-token input projections, instruction-hidden reuse),
 * and — in the second engine row — the f32 serving mode.
 *
 * Serving API v2 additions: a resident-weight-bytes table showing
 * what the shared WeightSnapshot deduplicates versus the pre-v2
 * one-copy-per-shard layout, and a multi-threaded client mode
 * (serve/workload.hh compareAsyncClients) pitting N concurrent
 * threads submitting through the AsyncEngine micro-batcher against
 * single-caller synchronous submission.
 *
 * Floors (see docs/BENCHMARKS.md): the f64 engine must serve
 * bit-exactly at >= 3x over naive; under --smoke the speedup must
 * additionally reach >= 10x (the PR-4 batched-execution floor,
 * enforced by the CI bench-smoke job), the f32 engine must stay
 * within 1e-5 relative error of the double reference, and on >= 2
 * cores the multi-client aggregate must beat single-caller by
 * >= 1.5x (skipped, not failed, on 1-core runners). The telemetry
 * layer (src/obs/) adds two more checks: the instrumented warm path
 * must stay within 5% of an engine built with the obs kill switch
 * off, and the /statsz dump printed at the end must reconcile
 * exactly (requests == text_hits + text_misses == hits + misses),
 * parsed back out of the dump text itself.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <bit>
#include <filesystem>
#include <thread>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "core/raw_table.hh"
#include "hw/default_table.hh"
#include "isa/intern.hh"
#include "isa/parse.hh"
#include "nn/matvec_dispatch.hh"
#include "obs/export.hh"
#include "obs/stage_timer.hh"
#include "serve/daemon.hh"
#include "serve/workload.hh"
#include "surrogate/model.hh"

namespace
{

using namespace difftune;

/** CI floors under --smoke (docs/BENCHMARKS.md). */
constexpr double smokeSpeedupFloor = 10.0;
constexpr double f32RelErrGate = 1e-5;
/**
 * Multi-client floor: concurrent async submission must beat
 * single-caller submission by this much in aggregate. Only enforced
 * on >= 2 cores — on a 1-core runner the comparison is skipped (the
 * dispatcher and the clients would just time-slice).
 */
constexpr double asyncSpeedupFloor = 1.5;

/**
 * Front-end floor: replaying known canonical forms through respelled
 * raw text (raw-text LRU miss, but interner + canonical-cache hit)
 * must serve at least this much faster per block than the cold
 * first-sight path that runs the LSTM forward. The gap is what the
 * interned warm path buys near-miss traffic.
 */
constexpr double frontEndWarmFloor = 3.0;

/**
 * Telemetry overhead gate: the respelled-warm path served by an
 * instrumented engine must cost at most this ratio of the same pass
 * on an engine built with the obs kill switch off. Enforced under
 * --smoke only (wall-clock ratio; min-of-N passes bounds the noise).
 */
constexpr double obsOverheadGate = 1.05;

} // namespace

int
main(int argc, char **argv)
{
    // --dispatchers N sizes the AsyncEngine dispatcher pool for the
    // pooled multi-client row (default 2). Stripped here because
    // parseBenchArgs is strict and rejects flags it does not know.
    int dispatchers = 2;
    {
        int kept = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--dispatchers") == 0 &&
                i + 1 < argc) {
                dispatchers = std::atoi(argv[++i]);
                if (dispatchers < 1) {
                    std::fprintf(stderr,
                                 "--dispatchers needs a positive "
                                 "pool size\n");
                    return 2;
                }
            } else {
                argv[kept++] = argv[i];
            }
        }
        argv[kept] = nullptr;
        argc = kept;
    }
    const bool smoke = difftune::bench::parseBenchArgs(argc, argv);
    setVerbose(false);
    bool floors_ok = true;
    const int rc = bench::runBench(
        "bench_serve: checkpoint cold-load latency and batched "
        "serving throughput",
        "serving-layer extension (train once, serve many; Renda et "
        "al. 2021)",
        [&] {
            // A full serving artifact: surrogate-shaped model +
            // learned-table stand-in + sampling distribution. The
            // weights are untrained — throughput and round-trip
            // fidelity do not depend on training.
            const params::SamplingDist dist =
                params::SamplingDist::full();
            const core::ParamNormalizer norm(dist);
            surrogate::ModelConfig mcfg;
            mcfg.hidden = core::ExperimentScale::fromEnv().hidden;
            mcfg.embedDim = core::ExperimentScale::fromEnv().embed;
            mcfg.tokenLayers = 1;
            mcfg.blockLayers = 2;
            mcfg.paramDim = norm.paramDim();
            surrogate::Model model(mcfg, isa::theVocab().size());
            const params::ParamTable table =
                hw::defaultTable(hw::Uarch::Haswell);

            const std::string path =
                core::cacheDir() + "/bench_serve.ckpt";

            // ---- Checkpoint save + cold-load latency.
            const auto save_begin = std::chrono::steady_clock::now();
            io::saveCheckpoint(path, &model, &dist, &table);
            const auto save_end = std::chrono::steady_clock::now();

            // One load-once artifact serves every engine below; the
            // cold-load figure covers the read + promotion + first
            // engine bind (the v2 serving path).
            const auto load_begin = std::chrono::steady_clock::now();
            const io::ModelSnapshot artifact =
                io::loadModelSnapshot(path);
            serve::PredictionEngine engine(artifact);
            const auto load_end = std::chrono::steady_clock::now();

            TextTable io_table({"Checkpoint", "Value"});
            io_table.addRow(
                {"file size",
                 std::to_string(std::filesystem::file_size(path)) +
                     " bytes"});
            const double save_ms =
                1e3 * serve::secondsBetween(save_begin, save_end);
            const double load_ms =
                1e3 * serve::secondsBetween(load_begin, load_end);
            io_table.addRow({"save", fmtDouble(save_ms, 1) + " ms"});
            io_table.addRow(
                {"cold load", fmtDouble(load_ms, 1) + " ms"});
            std::cout << io_table.render() << "\n";
            std::cout << "matvec kernel: " << nn::matvecPathName()
                      << " (DIFFTUNE_FORCE_SCALAR pins scalar)\n\n";

            // ---- Throughput: naive vs the batched engine in both
            // serving precisions, against one shared naive pass. The
            // working set is a fraction of the corpus, as at a
            // serving endpoint where a hot subset dominates the
            // traffic.
            const size_t requests = size_t(scaledCount(20000, 800));
            const auto &corpus = core::sharedCorpus();
            const size_t unique = std::min(
                corpus.size(), std::max<size_t>(50, requests / 8));
            const auto workload = serve::powerLawWorkload(
                corpus, requests, unique, 0xbe7c);

            const serve::NaiveRun naive =
                serve::runNaive(engine, workload);
            const auto timing =
                serve::engineVsNaive(engine, workload, naive);

            serve::ServeConfig f32cfg;
            f32cfg.precision = nn::Precision::kF32;
            serve::PredictionEngine engine32(artifact, f32cfg);
            const auto timing32 = serve::engineVsNaive(
                engine32, workload, naive, 250, f32RelErrGate);

            const auto &stats = engine.stats();
            TextTable table2({"Path", "Throughput", "Notes"});
            table2.addRow(
                {"naive (fresh graph/block)",
                 fmtDouble(double(requests) / timing.naiveSeconds, 0) +
                     " blk/s",
                 "no cache, no batching"});
            table2.addRow(
                {"engine (batched f64)",
                 fmtDouble(double(requests) / timing.engineSeconds,
                           0) +
                     " blk/s",
                 std::to_string(engine.workers()) + " workers, " +
                     std::to_string(stats.hits) + " hits, " +
                     std::to_string(stats.forwards) + " forwards"});
            table2.addRow({"speedup (f64, bit-exact)",
                           fmtDouble(timing.speedup(), 1) + "x",
                           smoke ? "smoke floor: 10x"
                                 : "floor: 3x (BENCHMARKS.md)"});
            table2.addRow(
                {"engine (batched f32)",
                 fmtDouble(double(requests) / timing32.engineSeconds,
                           0) +
                     " blk/s",
                 "max rel err " +
                     fmtDouble(timing32.maxRelErr * 1e6, 2) +
                     "e-6 (gate 1e-5)"});
            table2.addRow({"speedup (f32)",
                           fmtDouble(timing32.speedup(), 1) + "x",
                           "accuracy-gated serving mode"});
            std::cout << table2.render();
            std::cout << "(" << workload.size() << " requests over "
                      << unique << " unique blocks)\n";

            if (smoke && timing.speedup() < smokeSpeedupFloor) {
                std::fprintf(stderr,
                             "FAIL: batched-vs-naive speedup %.1fx "
                             "is under the %.0fx smoke floor\n",
                             timing.speedup(), smokeSpeedupFloor);
                floors_ok = false;
            }

            // ---- Front-end breakdown: where a request spends its
            // time before the forward pass, and what the interned
            // warm path saves. Stage timings are per block over the
            // unique working set. The "warm" column replays the same
            // canonical forms through respelled raw text (extra tabs
            // and spaces), so the raw-text LRU misses but the
            // interner and the canonical prediction cache both hit —
            // the LSTM never runs.
            const size_t fe_n = std::min<size_t>(unique, 200);
            std::vector<std::string> fe_texts;
            std::vector<std::string> fe_warm_texts;
            fe_texts.reserve(fe_n);
            fe_warm_texts.reserve(fe_n);
            for (size_t i = 0; i < fe_n; ++i) {
                fe_texts.push_back(isa::toString(corpus[i].block));
                std::string spaced = "\t";
                for (const char c : fe_texts.back()) {
                    if (c == ',')
                        spaced += " ,";
                    else if (c == '\n')
                        spaced += "\n\t";
                    else
                        spaced += c;
                }
                fe_warm_texts.push_back(std::move(spaced));
            }

            const auto perBlockUs = [fe_n](auto &&fn) {
                const auto begin = std::chrono::steady_clock::now();
                fn();
                const auto end = std::chrono::steady_clock::now();
                return 1e6 * serve::secondsBetween(begin, end) /
                       double(fe_n);
            };

            size_t lexemes = 0;
            std::vector<isa::Lexeme> lex;
            const double tok_us = perBlockUs([&] {
                for (const std::string &text : fe_texts) {
                    lex.clear();
                    isa::lexBlock(text, lex);
                    lexemes += lex.size();
                }
            });

            std::vector<isa::BasicBlock> fe_blocks;
            fe_blocks.reserve(fe_n);
            const double parse_us = perBlockUs([&] {
                for (const std::string &text : fe_texts)
                    fe_blocks.push_back(isa::parseBlock(text));
            });

            isa::Interner fe_interner;
            const double intern_cold_us = perBlockUs([&] {
                for (const isa::BasicBlock &block : fe_blocks)
                    fe_interner.internBlock(block);
            });
            const double intern_warm_us = perBlockUs([&] {
                for (const isa::BasicBlock &block : fe_blocks)
                    fe_interner.internBlock(block);
            });

            size_t lanes = 0;
            const double encode_us = perBlockUs([&] {
                for (const isa::BasicBlock &block : fe_blocks)
                    lanes += surrogate::encodeBlock(block).size();
            });

            serve::PredictionEngine fe_engine(artifact);
            std::vector<double> fe_cold_preds;
            fe_cold_preds.reserve(fe_n);
            obs::LatencyHistogram fe_cold_hist;
            obs::LatencyHistogram fe_warm_hist;
            const double cold_us = perBlockUs([&] {
                for (const std::string &text : fe_texts) {
                    const uint64_t t0 = obs::nowNs();
                    fe_cold_preds.push_back(fe_engine.predict(text));
                    fe_cold_hist.record(
                        obs::elapsedNs(t0, obs::nowNs()));
                }
            });
            size_t fe_mismatch = 0;
            const double warm_us = perBlockUs([&] {
                for (size_t i = 0; i < fe_n; ++i) {
                    const uint64_t t0 = obs::nowNs();
                    if (fe_engine.predict(fe_warm_texts[i]) !=
                        fe_cold_preds[i]) {
                        ++fe_mismatch;
                    }
                    fe_warm_hist.record(
                        obs::elapsedNs(t0, obs::nowNs()));
                }
            });
            if (fe_mismatch != 0) {
                std::fprintf(stderr,
                             "FAIL: %zu respelled blocks diverged "
                             "from their cold predictions\n",
                             fe_mismatch);
                floors_ok = false;
            }

            const double fe_speedup = cold_us / warm_us;
            TextTable fe({"Front-end stage", "cold us/blk",
                          "warm us/blk"});
            fe.addRow({"tokenize (lexBlock)", fmtDouble(tok_us, 2),
                       "-"});
            fe.addRow({"parse -> canonical block",
                       fmtDouble(parse_us, 2),
                       fmtDouble(parse_us, 2)});
            fe.addRow({"intern (canonical -> BlockId)",
                       fmtDouble(intern_cold_us, 2),
                       fmtDouble(intern_warm_us, 2)});
            fe.addRow({"encode token lanes", fmtDouble(encode_us, 2),
                       "cached"});
            fe.addRow({"engine predict, end to end",
                       fmtDouble(cold_us, 1), fmtDouble(warm_us, 2)});
            const auto pctUs =
                [](const obs::HistogramSnapshot &snap) {
                    return fmtDouble(snap.percentile(0.50) * 1e-3,
                                     1) +
                           " / " +
                           fmtDouble(snap.percentile(0.95) * 1e-3,
                                     1) +
                           " / " +
                           fmtDouble(snap.percentile(0.99) * 1e-3,
                                     1);
                };
            fe.addRow({"predict p50/p95/p99 (us/blk)",
                       pctUs(fe_cold_hist.snapshot()),
                       pctUs(fe_warm_hist.snapshot())});
            fe.addRow({"warm speedup (end to end)",
                       fmtDouble(fe_speedup, 1) + "x",
                       smoke ? "smoke floor: 3x" : "floor: 3x"});
            std::cout << fe.render();
            const auto &fe_stats = fe_engine.stats();
            std::cout << "(" << fe_n << " unique blocks, " << lexemes
                      << " lexemes, " << lanes
                      << " encoded instructions; warm pass: "
                      << fe_stats.internHits << " intern hits, "
                      << fe_stats.forwards << " forwards total)\n\n";

            if (smoke && fe_speedup < frontEndWarmFloor) {
                std::fprintf(stderr,
                             "FAIL: warm interned path speedup "
                             "%.1fx is under the %.0fx smoke "
                             "floor\n",
                             fe_speedup, frontEndWarmFloor);
                floors_ok = false;
            }

            // ---- Telemetry overhead: the respelled-warm pass
            // (raw-text LRU miss, canonical hit — the cheapest path
            // that still crosses every stage timer) on an
            // instrumented engine versus one built with the obs kill
            // switch off. Each pass gets fresh spellings so the text
            // cache keeps misses; passes interleave the two engines
            // (alternating which runs first) and the gate compares
            // the per-variant *minimums*. Instrumentation is
            // deterministic work added to every iteration, so no
            // pass can dip below the true cost — while scheduler
            // bursts only ever inflate a pass. The min/min ratio is
            // therefore a consistent overhead estimator even on a
            // noisy shared runner, where any single pair is not.
            // Skipped entirely when DIFFTUNE_OBS_OFF already
            // disabled telemetry.
            const std::string obs_prefix =
                engine.async().metricPrefix();
            if (!obs_prefix.empty()) {
                const auto respell = [](const std::string &text,
                                        const std::string &gap) {
                    std::string out = gap;
                    for (const char c : text) {
                        if (c == ',')
                            out += gap + ",";
                        else if (c == '\n')
                            out += "\n" + gap;
                        else
                            out += c;
                    }
                    return out;
                };
                constexpr int overhead_passes = 32;
                // Every pass gets a distinct spelling (so the text
                // LRU keeps missing) of the SAME length: a 6-char
                // whitespace gap whose space/tab pattern encodes the
                // pass index. Equal lengths matter — parse cost
                // scales with text, so length-varying pads would
                // make one pass the unique minimum and the min/min
                // gate would rest on a single noisy pair. The
                // trailing space keeps pattern 0 distinct from the
                // tab-respelled warm pass above.
                std::vector<std::vector<std::string>> pass_texts;
                pass_texts.reserve(overhead_passes + 1);
                for (int p = 0; p < overhead_passes + 1; ++p) {
                    std::string gap;
                    for (int bit = 0; bit < 6; ++bit)
                        gap += (p >> bit) & 1 ? '\t' : ' ';
                    gap += ' ';
                    pass_texts.emplace_back();
                    pass_texts.back().reserve(fe_n);
                    for (const std::string &text : fe_texts)
                        pass_texts.back().push_back(
                            respell(text, gap));
                }
                serve::PredictionEngine on_engine(artifact);
                obs::setEnabled(false);
                serve::PredictionEngine off_engine(artifact);
                obs::setEnabled(true);
                for (const std::string &text : fe_texts) {
                    on_engine.predict(text); // cold fill
                    off_engine.predict(text);
                }
                // Passes interleave on/off (alternating which goes
                // first) so frequency scaling, cache warm-up, and
                // any first-runner penalty hit both sides alike.
                // Pass 0 is an untimed warm-up pair: the first pass
                // after process start consistently measures slow
                // (page-cache and allocator warm-up). The gate is
                // the MEDIAN of per-pair on/off ratios — each pair
                // runs back-to-back so slow epochs on this shared
                // runner are common-mode within a pair, and a
                // steal-time burst landing inside one run makes one
                // outlier pair the median ignores.
                double on_us = 1e300;
                double off_us = 1e300;
                bool on_first = true;
                size_t touch = 0;
                std::vector<double> ratios;
                ratios.reserve(overhead_passes);
                for (const auto &texts : pass_texts) {
                    // Fault this pass's fresh strings into cache so
                    // the first-position engine does not pay their
                    // cold misses (reading bytes leaves the text
                    // LRU untouched — a predict would not).
                    for (const std::string &text : texts)
                        for (const char c : text)
                            touch += size_t(c);
                    const auto run_on = [&] {
                        return perBlockUs([&] {
                            for (const std::string &text : texts)
                                on_engine.predict(text);
                        });
                    };
                    const auto run_off = [&] {
                        return perBlockUs([&] {
                            for (const std::string &text : texts)
                                off_engine.predict(text);
                        });
                    };
                    double on, off;
                    if (on_first) {
                        on = run_on();
                        off = run_off();
                    } else {
                        off = run_off();
                        on = run_on();
                    }
                    on_first = !on_first;
                    if (&texts == &pass_texts.front())
                        continue; // warm-up pair: discard
                    on_us = std::min(on_us, on);
                    off_us = std::min(off_us, off);
                    ratios.push_back(on / off);
                }
                // Keep the cache-priming reads observable.
                if (touch == size_t(-1))
                    std::cout << "";
                std::nth_element(ratios.begin(),
                                 ratios.begin() +
                                     long(ratios.size() / 2),
                                 ratios.end());
                const double ratio = ratios[ratios.size() / 2];
                TextTable ot({"Telemetry", "us/blk", "Notes"});
                ot.addRow({"warm path, obs on", fmtDouble(on_us, 2),
                           "stage timers + mirrored counters"});
                ot.addRow({"warm path, obs off",
                           fmtDouble(off_us, 2),
                           "kill-switch engine"});
                ot.addRow({"instrumentation overhead",
                           fmtDouble((ratio - 1.0) * 100.0, 1) + "%",
                           std::string("median of ") +
                               std::to_string(overhead_passes) +
                               " interleaved pairs" +
                               (smoke ? ", smoke gate: <= 5%"
                                      : ", gate: <= 5%")});
                std::cout << ot.render() << "\n";
                if (smoke && ratio > obsOverheadGate) {
                    std::fprintf(stderr,
                                 "FAIL: telemetry overhead %.1f%% "
                                 "exceeds the %.0f%% smoke gate\n",
                                 (ratio - 1.0) * 100.0,
                                 (obsOverheadGate - 1.0) * 100.0);
                    floors_ok = false;
                }

                // ---- /statsz: dump the global registry and check
                // the mirrored-counter invariant on the first f64
                // engine's section — parsed back out of the dump
                // text itself, so the exporter round-trip is what is
                // audited (always enforced; it is deterministic).
                const std::string dump = obs::renderStatsz();
                std::cout << "/statsz (global registry)\n" << dump
                          << "\n";
                bool dump_ok = true;
                const auto counter = [&](const char *field) {
                    const auto v = obs::statszCounter(
                        dump, obs_prefix + "." + field);
                    if (!v) {
                        std::fprintf(stderr,
                                     "FAIL: /statsz dump lacks "
                                     "counter %s.%s\n",
                                     obs_prefix.c_str(), field);
                        dump_ok = false;
                        return uint64_t(0);
                    }
                    return *v;
                };
                const unsigned long long req = counter("requests");
                const unsigned long long th = counter("text_hits");
                const unsigned long long tm = counter("text_misses");
                const unsigned long long ch = counter("hits");
                const unsigned long long cm = counter("misses");
                if (dump_ok &&
                    (req != th + tm || req != ch + cm)) {
                    std::fprintf(
                        stderr,
                        "FAIL: /statsz counters do not reconcile: "
                        "requests=%llu text=%llu+%llu "
                        "cache=%llu+%llu\n",
                        req, th, tm, ch, cm);
                    dump_ok = false;
                }
                if (!dump_ok)
                    floors_ok = false;
            }

            // ---- Serving API v2: shared snapshot memory and the
            // multi-threaded client mode. Both engines above were
            // built from one loaded artifact, so at this point ONE
            // WeightSnapshot is serving the f64 and the f32 engine:
            // the f32 panels and input projections — per *shard*
            // copies pre-v2 — and the per-opcode columns — per
            // *engine* pre-v2 — are each resident exactly once.
            const nn::WeightSnapshot &snapshot =
                engine.async().snapshot();
            // Pre-v2, each f64 shard held its own f64 projections
            // and each f32 shard its own f32 panels + f32
            // projections; the per-opcode columns were per engine.
            const size_t pre_v2 =
                size_t(engine.workers()) * snapshot.projBytesF64() +
                size_t(engine32.workers()) *
                    (snapshot.f32Bytes() + snapshot.projBytesF32()) +
                2 * snapshot.inputColumnBytes();
            TextTable mem({"Resident weight bytes", "Value"});
            mem.addRow({"frozen f64 weights (in place)",
                        std::to_string(snapshot.f64Bytes())});
            mem.addRow({"derived, pre-v2 layout (per-shard copies, "
                        "per-engine cols)",
                        std::to_string(pre_v2)});
            mem.addRow({"derived, v2 (1 shared snapshot, both "
                        "engines)",
                        std::to_string(snapshot.sharedBytes())});
            std::cout << mem.render();

            // ---- difftuned loopback round trip: the same artifact
            // served through the daemon's wire protocol. Reported,
            // not floored (TCP adds latency, not model work) — but
            // every response is bit-checked against the naive pass
            // and any error or mismatch fails the run: the process
            // boundary must not cost a single bit.
            {
                serve::DaemonConfig dcfg;
                dcfg.registry.engine.workers = engine.workers();
                serve::Daemon daemon(dcfg);
                daemon.registry().load("bench", artifact);
                daemon.start();
                const serve::DaemonClientRun run =
                    serve::runDaemonClients("127.0.0.1",
                                            daemon.port(), "bench",
                                            workload, 2);
                daemon.drain();
                size_t mismatches = 0;
                for (size_t i = 0; i < workload.size(); ++i)
                    if (std::bit_cast<uint64_t>(
                            run.predictions[i]) !=
                        std::bit_cast<uint64_t>(
                            naive.predictions[i]))
                        ++mismatches;
                TextTable dt({"difftuned loopback", "Value",
                              "Notes"});
                dt.addRow(
                    {"throughput",
                     fmtDouble(double(requests) / run.seconds, 0) +
                         " blk/s",
                     "2 connections, wire-framed f64"});
                dt.addRow({"round-trip p50/p95/p99",
                           fmtDouble(run.latency.p50 * 1e6, 0) +
                               " / " +
                               fmtDouble(run.latency.p95 * 1e6, 0) +
                               " / " +
                               fmtDouble(run.latency.p99 * 1e6, 0) +
                               " us",
                           "includes TCP framing"});
                dt.addRow({"errors / bit mismatches",
                           std::to_string(run.errors) + " / " +
                               std::to_string(mismatches),
                           "gate: 0 / 0"});
                std::cout << dt.render();
                if (run.errors != 0 || mismatches != 0) {
                    std::fprintf(stderr,
                                 "FAIL: difftuned loopback run had "
                                 "%llu errors, %zu bit "
                                 "mismatches\n",
                                 (unsigned long long)run.errors,
                                 mismatches);
                    floors_ok = false;
                }
            }

            const unsigned cores =
                std::thread::hardware_concurrency();
            const int threads = int(std::min(4u, cores));
            if (cores < 2) {
                std::cout << "multi-threaded client and dispatcher-"
                             "pool modes: skipped (1-core runner; "
                             "floor needs >= 2 cores)\n";
                return;
            }
            const auto clients = serve::compareAsyncClients(
                artifact, workload, threads, &naive);
            TextTable table3({"Submission", "Throughput", "Notes"});
            table3.addRow(
                {"single caller (sync, 1 thread)",
                 fmtDouble(double(requests) / clients.singleSeconds,
                           0) +
                     " blk/s",
                 "v1 usage style"});
            table3.addRow(
                {"async clients (" + std::to_string(threads) +
                     " threads)",
                 fmtDouble(double(requests) / clients.asyncSeconds,
                           0) +
                     " blk/s",
                 fmtDouble(double(requests) / clients.asyncSeconds /
                               threads,
                           0) +
                     " blk/s/thread, micro-batched"});
            table3.addRow(
                {"aggregate speedup",
                 fmtDouble(clients.speedup(), 2) + "x",
                 smoke ? "smoke floor: 1.5x" : "floor: 1.5x"});
            table3.addRow(
                {"async latency p50/p95/p99",
                 fmtDouble(clients.latency.p50 * 1e6, 0) + " / " +
                     fmtDouble(clients.latency.p95 * 1e6, 0) +
                     " / " +
                     fmtDouble(clients.latency.p99 * 1e6, 0) +
                     " us",
                 "submit-to-get, bit-exact vs naive"});
            std::cout << table3.render();

            if (smoke && clients.speedup() < asyncSpeedupFloor) {
                std::fprintf(stderr,
                             "FAIL: async multi-client speedup "
                             "%.2fx is under the %.1fx smoke "
                             "floor\n",
                             clients.speedup(), asyncSpeedupFloor);
                floors_ok = false;
            }

            // ---- Dispatcher pool: the same multi-client traffic
            // through a pool of N dispatchers (--dispatchers,
            // default 2) versus the single-dispatcher engine of the
            // row above. Reported, not floored — bench_lab owns the
            // pool-vs-single >= 1.0x floor on its deterministic
            // trace — but compareAsyncClients still bit-checks every
            // pooled response against the naive pass, so a pool that
            // costs a single bit fails the run.
            serve::AsyncConfig pool_cfg;
            pool_cfg.dispatchers = dispatchers;
            const auto pooled = serve::compareAsyncClients(
                artifact, workload, threads, &naive, pool_cfg);
            TextTable table4(
                {"Dispatcher pool", "Throughput", "Notes"});
            table4.addRow(
                {"pool of 1 (row above)",
                 fmtDouble(double(requests) / clients.asyncSeconds,
                           0) +
                     " blk/s",
                 std::to_string(threads) + " client threads"});
            table4.addRow(
                {"pool of " + std::to_string(dispatchers),
                 fmtDouble(double(requests) / pooled.asyncSeconds,
                           0) +
                     " blk/s",
                 "striped intake + idle-steal, bit-exact vs naive"});
            table4.addRow(
                {"pool / single",
                 fmtDouble(clients.asyncSeconds /
                               pooled.asyncSeconds,
                           2) +
                     "x",
                 "reported only; floored in bench_lab --smoke"});
            table4.addRow(
                {"pooled latency p50/p95/p99",
                 fmtDouble(pooled.latency.p50 * 1e6, 0) + " / " +
                     fmtDouble(pooled.latency.p95 * 1e6, 0) +
                     " / " +
                     fmtDouble(pooled.latency.p99 * 1e6, 0) + " us",
                 "submit-to-get"});
            std::cout << table4.render();
        });
    return rc != 0 ? rc : (floors_ok ? 0 : 1);
}
