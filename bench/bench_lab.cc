/**
 * @file
 * Traffic-lab benchmark: deterministic trace generation, the cache-
 * policy sweep, and dispatcher-pool replay throughput.
 *
 * Three sections (docs/TRAFFIC_LAB.md):
 *
 *  1. Trace generation — how fast lab::TraceWorkload materializes a
 *     Zipf-skewed bursty request stream, plus a serialize ->
 *     deserialize -> serialize round trip that must be byte-exact
 *     (the replayability contract; always enforced).
 *
 *  2. Policy sweep — lab::CacheSim replays the identical key stream
 *     against every registered policy. On a skewed trace
 *     (zipf s >= 1.0) the segmented and admission policies must not
 *     lose to plain LRU on hit rate; the sweep is fully
 *     deterministic, so the floor is enforced in every mode, not
 *     just --smoke.
 *
 *  3. Dispatcher-pool replay — the same trace served end-to-end
 *     through serve::AsyncEngine with a pool of 1 vs N dispatchers.
 *     Predictions must be bit-identical across pool sizes (always
 *     enforced); under --smoke on >= 2 cores the pool must reach at
 *     least 1.0x the single-dispatcher throughput (best pair of
 *     interleaved passes, so a scheduler burst cannot fail the
 *     floor by itself). On a 1-core runner the throughput floor is
 *     skipped — pool workers would just time-slice.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "isa/intern.hh"
#include "lab/cache_sim.hh"
#include "lab/policy.hh"
#include "lab/trace.hh"
#include "obs/metrics.hh"
#include "serve/async_engine.hh"
#include "surrogate/model.hh"

namespace
{

using namespace difftune;

/**
 * Pool throughput floor (--smoke, >= 2 cores): a pool of N
 * dispatchers must not serve the replay slower than a single
 * dispatcher. Modest by design — the pool's job is to scale
 * concurrent miss traffic without taxing anything else.
 */
constexpr double poolThroughputFloor = 1.0;

/** Interleaved single/pool timing pairs for the pool floor. */
constexpr int poolPasses = 3;

double
secondsSince(const std::chrono::steady_clock::time_point &begin)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = difftune::bench::parseBenchArgs(argc, argv);
    setVerbose(false);
    bool floors_ok = true;
    const int rc = bench::runBench(
        "bench_lab: trace generation, cache-policy sweep, and "
        "dispatcher-pool replay",
        "serving-traffic extension (train once, serve many; Renda "
        "et al. 2021)",
        [&] {
            // ---- 1. Trace generation + round trip.
            lab::TraceConfig tcfg;
            tcfg.seed = 42;
            tcfg.corpusSeed = 9;
            tcfg.corpusTarget = 256;
            tcfg.requests = uint64_t(scaledCount(40000, 4000));
            tcfg.zipfSkew = 1.1;
            tcfg.respellProb = 0.25;

            const auto gen_begin = std::chrono::steady_clock::now();
            const lab::TraceWorkload trace =
                lab::TraceWorkload::generate(tcfg);
            const double gen_s = secondsSince(gen_begin);

            const std::string blob = trace.serialize();
            const bool round_trip =
                lab::TraceWorkload::deserialize(blob).serialize() ==
                blob;

            TextTable gen_table({"Trace", "Value", "Notes"});
            gen_table.addRow(
                {"requests",
                 std::to_string(trace.requests().size()),
                 "zipf " + fmtDouble(tcfg.zipfSkew, 1) + ", " +
                     std::to_string(trace.corpusTexts().size()) +
                     " distinct blocks"});
            gen_table.addRow(
                {"generation",
                 fmtDouble(double(trace.requests().size()) / gen_s /
                               1e6,
                           2) +
                     " Mreq/s",
                 "corpus + stream + arrivals"});
            gen_table.addRow(
                {"serialized size", std::to_string(blob.size()) +
                                        " bytes",
                 fmtDouble(double(blob.size()) /
                               double(trace.requests().size()),
                           1) +
                     " bytes/request"});
            gen_table.addRow({"round trip",
                              round_trip ? "byte-exact" : "DIVERGED",
                              "gate: byte-exact"});
            std::cout << gen_table.render() << "\n";
            if (!round_trip) {
                std::fprintf(stderr,
                             "FAIL: trace serialize round trip is "
                             "not byte-exact\n");
                floors_ok = false;
            }

            // ---- 2. Policy sweep (deterministic; floor always on).
            constexpr size_t sweepCapacity = 64;
            obs::MetricRegistry scratch;
            const std::vector<lab::SimResult> sweep =
                lab::sweepPolicies(trace, sweepCapacity, scratch);
            std::cout << "policy sweep, capacity " << sweepCapacity
                      << ":\n"
                      << lab::simTableHeader() << "\n";
            double lru_rate = 0.0;
            for (const lab::SimResult &result : sweep) {
                std::cout << result.row() << "\n";
                if (result.policy == "lru")
                    lru_rate = result.hitRate;
            }
            std::cout << "\n";
            for (const lab::SimResult &result : sweep) {
                if (result.policy == "lru")
                    continue;
                if (result.hitRate < lru_rate) {
                    std::fprintf(
                        stderr,
                        "FAIL: policy %s hit rate %.4f is under "
                        "plain LRU's %.4f on a zipf %.1f trace\n",
                        result.policy.c_str(), result.hitRate,
                        lru_rate, tcfg.zipfSkew);
                    floors_ok = false;
                }
            }

            // ---- 3. Dispatcher-pool replay. A small cache keeps
            // miss traffic flowing (pool parallelism only matters on
            // the forward path; front-cache hits resolve inline in
            // the submitting thread either way).
            const params::SamplingDist dist =
                params::SamplingDist::full();
            const core::ParamNormalizer norm(dist);
            surrogate::ModelConfig mcfg;
            mcfg.hidden = core::ExperimentScale::fromEnv().hidden;
            mcfg.embedDim = core::ExperimentScale::fromEnv().embed;
            mcfg.tokenLayers = 1;
            mcfg.blockLayers = 2;
            mcfg.paramDim = norm.paramDim();
            surrogate::Model model(mcfg, isa::theVocab().size());
            const params::ParamTable table =
                hw::defaultTable(hw::Uarch::Haswell);
            const std::string path =
                core::cacheDir() + "/bench_lab.ckpt";
            io::saveCheckpoint(path, &model, &dist, &table);
            const io::ModelSnapshot artifact =
                io::loadModelSnapshot(path);

            const std::vector<std::string> texts =
                trace.requestTexts();
            const auto replay = [&](int dispatchers,
                                    std::vector<uint64_t> *bits,
                                    double &seconds) {
                serve::AsyncConfig acfg;
                acfg.dispatchers = dispatchers;
                acfg.cachePolicy = lab::policyFactory("slru");
                acfg.cacheCapacity = 32;
                serve::AsyncEngine engine(artifact, acfg);
                std::vector<std::future<double>> futures;
                futures.reserve(texts.size());
                const auto begin = std::chrono::steady_clock::now();
                for (const std::string &text : texts)
                    futures.push_back(engine.submit(text));
                if (bits) {
                    bits->clear();
                    bits->reserve(futures.size());
                    for (auto &f : futures)
                        bits->push_back(
                            std::bit_cast<uint64_t>(f.get()));
                } else {
                    for (auto &f : futures)
                        f.get();
                }
                seconds = secondsSince(begin);
            };

            const unsigned cores =
                std::thread::hardware_concurrency();
            const int pool = int(std::min(4u, std::max(2u, cores)));

            // Bit-stability across pool sizes: always enforced (the
            // determinism contract — pool size may only change
            // speed). The first pair also seeds the timing floor.
            std::vector<uint64_t> single_bits, pool_bits;
            double single_s = 0.0, pool_s = 0.0;
            double best_single = 1e300, best_pool = 1e300;
            double best_ratio = 0.0;
            bool pool_first = false;
            for (int pass = 0; pass < poolPasses; ++pass) {
                if (pool_first) {
                    replay(pool, pass == 0 ? &pool_bits : nullptr,
                           pool_s);
                    replay(1, pass == 0 ? &single_bits : nullptr,
                           single_s);
                } else {
                    replay(1, pass == 0 ? &single_bits : nullptr,
                           single_s);
                    replay(pool, pass == 0 ? &pool_bits : nullptr,
                           pool_s);
                }
                pool_first = !pool_first;
                best_single = std::min(best_single, single_s);
                best_pool = std::min(best_pool, pool_s);
                best_ratio =
                    std::max(best_ratio, single_s / pool_s);
            }
            const bool bits_match = single_bits == pool_bits;

            TextTable pt({"Replay", "Throughput", "Notes"});
            pt.addRow(
                {"single dispatcher",
                 fmtDouble(double(texts.size()) / best_single, 0) +
                     " req/s",
                 "slru policy, capacity 32"});
            pt.addRow(
                {"pool of " + std::to_string(pool),
                 fmtDouble(double(texts.size()) / best_pool, 0) +
                     " req/s",
                 "striped intake + idle-steal"});
            pt.addRow({"pool / single",
                       fmtDouble(best_ratio, 2) + "x",
                       cores < 2 ? "floor skipped (1-core runner)"
                       : smoke   ? "smoke floor: 1.0x"
                                 : "floor: 1.0x (BENCHMARKS.md)"});
            pt.addRow({"bits across pool sizes",
                       bits_match ? "identical" : "DIVERGED",
                       "gate: identical"});
            std::cout << pt.render();
            std::cout << "(best of " << poolPasses
                      << " interleaved pairs, " << texts.size()
                      << " requests)\n";

            if (!bits_match) {
                std::fprintf(stderr,
                             "FAIL: pool of %d diverged from the "
                             "single-dispatcher bits\n",
                             pool);
                floors_ok = false;
            }
            if (smoke && cores >= 2 &&
                best_ratio < poolThroughputFloor) {
                std::fprintf(stderr,
                             "FAIL: pool/single throughput ratio "
                             "%.2fx is under the %.1fx smoke "
                             "floor\n",
                             best_ratio, poolThroughputFloor);
                floors_ok = false;
            }
        });
    return rc != 0 ? rc : (floors_ok ? 0 : 1);
}
