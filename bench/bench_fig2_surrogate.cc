/**
 * @file
 * Reproduces Figure 2: simulator timing vs surrogate prediction for
 * the single-instruction block `SHR64mi $5, 16(%rsp)` while sweeping
 * DispatchWidth 1..10.
 *
 * Expected shape: the simulator's points fall as uops/DispatchWidth
 * and plateau; the surrogate traces a smooth curve through them,
 * making the parameter optimizable by gradient descent.
 */

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "isa/parse.hh"
#include "mca/xmca.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(envLong("DIFFTUNE_VERBOSE", 0) != 0);
    return bench::runBench(
        "bench_fig2_surrogate: surrogate vs simulator while sweeping "
        "DispatchWidth (SHR64mi block)",
        "Figure 2 (surrogate smoothness)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            mca::XMca sim;
            auto base = hw::defaultTable(hw::Uarch::Haswell);

            // Train a surrogate (shorter schedule: we only need the
            // qualitative curve).
            core::DiffTuneConfig cfg = core::standardConfig(21);
            cfg.surrogateLoops = std::max(3, cfg.surrogateLoops / 2);
            cfg.simulatedMultiple = cfg.simulatedMultiple / 2;
            core::DiffTune difftune(sim, dataset, base, cfg);
            difftune.collectSimulatedDataset();
            difftune.trainSurrogate();

            auto block = isa::parseBlock("SHR64mi $5, 16(%rsp)\n");
            auto encoded = surrogate::encodeBlock(block);
            core::ParamNormalizer norm(cfg.dist);

            TextTable table({"DispatchWidth", "Simulator timing",
                             "Surrogate prediction"});
            for (int dw = 1; dw <= 10; ++dw) {
                params::ParamTable theta(base);
                theta.dispatchWidth = dw;
                const double sim_timing = sim.timing(block, theta);

                nn::Graph graph;
                nn::Ctx ctx{graph, difftune.model().params(), nullptr};
                auto inputs =
                    core::constParamInputs(graph, theta, block, norm);
                nn::Var pred = graph.exp(
                    difftune.model().forward(ctx, encoded, inputs));
                table.addRow({std::to_string(dw),
                              fmtDouble(sim_timing, 3),
                              fmtDouble(graph.scalarValue(pred), 3)});
            }
            std::cout << table.render();
            std::cout << "\nPaper shape: timing ~= 4/DispatchWidth, "
                         "plateauing at the store-port bound; the "
                         "surrogate is a smooth approximation.\n";
        });
}
