/**
 * @file
 * Reproduces Table VIII (Appendix A): DiffTune on the llvm_sim-analog
 * USim, learning the parameters it reads (WriteLatency + PortMap).
 *
 * Expected shape: USim's default error is much higher than XMca's
 * (its model is a worse fit), and learning reduces it substantially
 * (paper: 61.3% -> 44.1%); OpenTuner stays above 100%.
 */

#include "bench/bench_util.hh"
#include "core/evaluate.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "tuner/opentuner.hh"
#include "usim/usim.hh"

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    using namespace difftune;
    setVerbose(envLong("DIFFTUNE_VERBOSE", 0) != 0);
    return bench::runBench(
        "bench_table8_usim: llvm_sim-analog with default and learned "
        "parameters",
        "Table VIII (llvm_sim, Haswell)", [] {
            const auto &dataset =
                core::sharedDataset(hw::Uarch::Haswell);
            usim::USim sim;
            auto def = hw::defaultTable(hw::Uarch::Haswell);

            TextTable table({"Predictor", "Ours (err/tau)",
                             "Paper (err/tau)"});
            auto cell = [](const core::EvalResult &eval) {
                return fmtPercent(eval.error) + "/" +
                       fmtDouble(eval.kendallTau, 3);
            };

            auto def_eval =
                core::evaluate(sim, def, dataset, dataset.test());
            table.addRow({"Default", cell(def_eval), "61.3%/0.726"});

            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "usim", 1);
            auto dt_eval =
                core::evaluate(sim, learned, dataset, dataset.test());
            table.addRow({"DiffTune", cell(dt_eval), "44.1%/0.718"});

            core::Ithemal ithemal(dataset, core::standardIthemal(7));
            ithemal.train();
            table.addRow({"Ithemal",
                          cell(ithemal.evaluate(dataset.test())),
                          "9.2%/0.854"});

            tuner::TunerConfig tuner_cfg;
            tuner_cfg.dist = params::SamplingDist::usim();
            tuner_cfg.evalBudget =
                long(core::standardConfig(1).simulatedMultiple *
                     double(dataset.train().size())) +
                20000;
            tuner_cfg.seed = 29;
            tuner::OpenTuner opentuner(sim, dataset, def, tuner_cfg);
            auto tuned = opentuner.run();
            auto ot_eval = core::evaluate(sim, tuned.best, dataset,
                                          dataset.test());
            table.addRow({"OpenTuner", cell(ot_eval),
                          "115.6%/0.507"});
            std::cout << table.render();
        });
}
