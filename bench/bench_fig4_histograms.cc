/**
 * @file
 * Reproduces Figure 4: distributions of default vs learned
 * per-instruction parameter values on Haswell (NumMicroOps,
 * WriteLatency, ReadAdvanceCycles, PortMap entries).
 */

#include "bench/bench_util.hh"
#include "core/experiment.hh"
#include "hw/default_table.hh"
#include "stats/histogram.hh"

namespace
{

using namespace difftune;

void
renderPair(const char *title, const stats::IntHistogram &def,
           const stats::IntHistogram &learned, const char *paper_note)
{
    std::cout << "---- " << title << " ----\n"
              << def.renderVersus(learned, "default", "learned")
              << "paper: " << paper_note << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    difftune::bench::parseBenchArgs(argc, argv);
    setVerbose(false);
    return bench::runBench(
        "bench_fig4_histograms: default vs learned parameter "
        "distributions (Haswell)",
        "Figure 4 (a-d)", [] {
            auto def = hw::defaultTable(hw::Uarch::Haswell);
            auto learned =
                core::learnedTable(hw::Uarch::Haswell, "full", 1);

            stats::IntHistogram uops_d(10), uops_l(10);
            stats::IntHistogram wl_d(10), wl_l(10);
            stats::IntHistogram ra_d(10), ra_l(10);
            stats::IntHistogram pm_d(10), pm_l(10);
            for (size_t op = 0; op < def.numOpcodes(); ++op) {
                uops_d.add(def.perOpcode[op].numMicroOps);
                uops_l.add(learned.perOpcode[op].numMicroOps);
                wl_d.add(def.perOpcode[op].writeLatency);
                wl_l.add(learned.perOpcode[op].writeLatency);
                for (int i = 0; i < params::numReadAdvance; ++i) {
                    ra_d.add(def.perOpcode[op].readAdvance[i]);
                    ra_l.add(learned.perOpcode[op].readAdvance[i]);
                }
                for (int p = 0; p < params::numPorts; ++p) {
                    pm_d.add(def.perOpcode[op].portMap[p]);
                    pm_l.add(learned.perOpcode[op].portMap[p]);
                }
            }
            renderPair("NumMicroOps (Fig. 4a)", uops_d, uops_l,
                       "learned roughly tracks the default "
                       "distribution");
            renderPair("WriteLatency (Fig. 4b)", wl_d, wl_l,
                       "learned has a large population at 0 (251/837 "
                       "opcodes in the paper) vs 1/837 by default");
            renderPair("ReadAdvanceCycles (Fig. 4c)", ra_d, ra_l,
                       "defaults mostly 0 with spikes at 5 and 7; "
                       "learned spreads more evenly");
            renderPair("PortMap entries (Fig. 4d)", pm_d, pm_l,
                       "both dominated by 0 (log-scale plot in "
                       "paper)");

            // The headline Fig. 4b statistic.
            long zero_default = 0, zero_learned = 0;
            for (size_t op = 0; op < def.numOpcodes(); ++op) {
                zero_default += def.latency(isa::OpcodeId(op)) == 0;
                zero_learned +=
                    learned.latency(isa::OpcodeId(op)) == 0;
            }
            std::cout << "WriteLatency == 0: default "
                      << zero_default << "/" << def.numOpcodes()
                      << ", learned " << zero_learned << "/"
                      << learned.numOpcodes()
                      << "  (paper: 1/837 default, 251/837 learned)\n";
        });
}
