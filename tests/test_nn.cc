/**
 * @file
 * Tests for the autograd engine and NN modules: every op is checked
 * against central-difference numerical gradients, LSTM cells and
 * stacks gradcheck end-to-end, optimizers converge on toy problems.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/graph.hh"
#include "nn/modules.hh"
#include "nn/optim.hh"

namespace difftune::nn
{
namespace
{

/**
 * Numerical gradient check: build the graph with `forward` (which
 * reads the single parameter tensor 0 of @p params), compare the
 * analytic gradient against central differences.
 */
void
gradCheck(ParamSet &params,
          const std::function<Var(Graph &, Ctx &)> &forward,
          double eps = 1e-5, double tol = 1e-5)
{
    Grads grads(params);
    Graph graph;
    Ctx ctx{graph, params, &grads};
    Var loss = forward(graph, ctx);
    graph.backward(loss);

    for (size_t p = 0; p < params.count(); ++p) {
        Tensor &tensor = params[int(p)];
        for (size_t i = 0; i < tensor.data.size(); ++i) {
            const double saved = tensor.data[i];
            tensor.data[i] = saved + eps;
            Graph gp;
            Ctx cp{gp, params, nullptr};
            const double up = gp.scalarValue(forward(gp, cp));
            tensor.data[i] = saved - eps;
            Graph gm;
            Ctx cm{gm, params, nullptr};
            const double down = gm.scalarValue(forward(gm, cm));
            tensor.data[i] = saved;
            const double numeric = (up - down) / (2 * eps);
            const double analytic = grads[int(p)].data[i];
            EXPECT_NEAR(analytic, numeric,
                        tol * std::max(1.0, std::fabs(numeric)))
                << "param " << p << " index " << i;
        }
    }
}

Tensor
vec(std::initializer_list<double> values)
{
    Tensor t(int(values.size()), 1);
    std::copy(values.begin(), values.end(), t.data.begin());
    return t;
}

TEST(Tensor, Basics)
{
    Tensor t(2, 3);
    EXPECT_EQ(t.size(), 6u);
    t.at(1, 2) = 5.0;
    EXPECT_EQ(t.row(1)[2], 5.0);
    Tensor u(2, 3);
    u.at(0, 0) = 1.0;
    t.addInPlace(u);
    EXPECT_EQ(t.at(0, 0), 1.0);
}

TEST(Graph, ForwardValues)
{
    Graph g;
    Var a = g.input(vec({1.0, -2.0}));
    Var b = g.input(vec({3.0, 4.0}));
    EXPECT_EQ(g.value(g.add(a, b)).data[0], 4.0);
    EXPECT_EQ(g.value(g.sub(a, b)).data[1], -6.0);
    EXPECT_EQ(g.value(g.mul(a, b)).data[1], -8.0);
    EXPECT_EQ(g.value(g.abs(a)).data[1], 2.0);
    EXPECT_EQ(g.value(g.relu(a)).data[1], 0.0);
    EXPECT_NEAR(g.value(g.sigmoid(a)).data[0], 0.7311, 1e-4);
    EXPECT_NEAR(g.value(g.tanh(a)).data[0], 0.7616, 1e-4);
    EXPECT_NEAR(g.value(g.exp(a)).data[0], std::exp(1.0), 1e-9);
}

TEST(Graph, MatmulShapes)
{
    Graph g;
    Tensor m(2, 3);
    for (int i = 0; i < 6; ++i)
        m.data[i] = i + 1;
    Var a = g.input(std::move(m));
    Var x = g.input(vec({1.0, 0.0, -1.0}));
    Var y = g.matmul(a, x);
    EXPECT_EQ(g.value(y).rows, 2);
    EXPECT_EQ(g.value(y).data[0], 1.0 - 3.0);
    EXPECT_EQ(g.value(y).data[1], 4.0 - 6.0);
}

TEST(Graph, ConcatAndSlice)
{
    Graph g;
    Var a = g.input(vec({1, 2}));
    Var b = g.input(vec({3}));
    Var c = g.concat({a, b});
    EXPECT_EQ(g.value(c).rows, 3);
    Var s = g.slice(c, 1, 2);
    EXPECT_EQ(g.value(s).data[0], 2.0);
    EXPECT_EQ(g.value(s).data[1], 3.0);
}

TEST(Graph, LossValues)
{
    Graph g;
    Var p = g.inputScalar(3.0);
    EXPECT_NEAR(g.scalarValue(g.lossMape(p, 2.0)), 0.5, 1e-12);
    EXPECT_NEAR(g.scalarValue(g.lossMae(p, 5.0)), 2.0, 1e-12);
    EXPECT_NEAR(g.scalarValue(g.lossMse(p, 1.0)), 4.0, 1e-12);
}

// ---------------------------------------------------------- grad checks

TEST(GradCheck, MatmulParam)
{
    Rng rng(1);
    ParamSet params;
    int w = params.add(3, 4);
    params[w].uniformInit(rng, 0.5);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var weight = g.param(ctx.params, w, ctx.sink);
        Tensor xv(4, 1);
        xv.data = {0.3, -1.0, 0.5, 2.0};
        Var y = g.matmul(weight, g.input(std::move(xv)));
        return g.lossMse(g.slice(y, 1, 1), 0.7);
    });
}

TEST(GradCheck, ElementwiseChain)
{
    Rng rng(2);
    ParamSet params;
    int w = params.add(4, 1);
    params[w].uniformInit(rng, 0.8);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var x = g.param(ctx.params, w, ctx.sink);
        Var y = g.mul(g.sigmoid(x), g.tanh(g.scale(x, 0.5)));
        Var z = g.add(y, g.abs(x));
        return g.lossMae(g.slice(z, 2, 1), 0.4);
    });
}

TEST(GradCheck, ExpAndScaleByVec)
{
    Rng rng(3);
    ParamSet params;
    int w = params.add(3, 1);
    params[w].uniformInit(rng, 0.5);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var x = g.param(ctx.params, w, ctx.sink);
        Var y = g.exp(g.scaleByVec(x, {0.5, -1.0, 2.0}));
        return g.lossMse(g.slice(y, 0, 1), 2.0);
    });
}

TEST(GradCheck, ConcatSliceSubRelu)
{
    Rng rng(4);
    ParamSet params;
    int a = params.add(2, 1);
    int b = params.add(3, 1);
    params[a].uniformInit(rng, 1.0);
    params[b].uniformInit(rng, 1.0);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var va = g.param(ctx.params, a, ctx.sink);
        Var vb = g.param(ctx.params, b, ctx.sink);
        Var cat = g.concat({va, vb});
        Var diff = g.sub(g.relu(cat), g.scale(cat, 0.25));
        return g.lossMae(g.slice(diff, 3, 1), -0.2);
    });
}

TEST(GradCheck, ParamRowGather)
{
    Rng rng(5);
    ParamSet params;
    int table = params.add(6, 4);
    params[table].uniformInit(rng, 1.0);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var r2 = g.paramRow(ctx.params, table, 2, ctx.sink);
        Var r4 = g.paramRow(ctx.params, table, 4, ctx.sink);
        Var sum = g.add(r2, r4);
        return g.lossMse(g.slice(g.tanh(sum), 1, 1), 0.3);
    });
}

TEST(GradCheck, MapeLoss)
{
    Rng rng(6);
    ParamSet params;
    int w = params.add(1, 1);
    params[w].data[0] = 1.7;
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Var x = g.param(ctx.params, w, ctx.sink);
        return g.lossMape(x, 3.0);
    });
}

TEST(GradCheck, LinearLayer)
{
    Rng rng(7);
    ParamSet params;
    Linear layer(params, 3, 2, rng);
    gradCheck(params, [&](Graph &g, Ctx &ctx) {
        Tensor xv(3, 1);
        xv.data = {0.2, -0.4, 1.0};
        Var y = layer.forward(ctx, g.input(std::move(xv)));
        return g.lossMse(g.slice(y, 0, 1), 0.5);
    });
}

TEST(GradCheck, LstmCellStep)
{
    Rng rng(8);
    ParamSet params;
    LstmCell cell(params, 3, 4, rng);
    gradCheck(
        params,
        [&](Graph &g, Ctx &ctx) {
            Tensor xv(3, 1);
            xv.data = {0.5, -0.2, 0.8};
            auto state = cell.initial(ctx);
            state = cell.step(ctx, g.input(Tensor(xv)), state);
            state = cell.step(ctx, g.input(Tensor(xv)), state);
            return g.lossMse(g.slice(state.h, 1, 1), 0.2);
        },
        1e-5, 1e-4);
}

TEST(GradCheck, LstmStackSequence)
{
    Rng rng(9);
    ParamSet params;
    LstmStack stack(params, 2, 3, 2, rng);
    gradCheck(
        params,
        [&](Graph &g, Ctx &ctx) {
            std::vector<Var> sequence;
            for (int t = 0; t < 3; ++t) {
                Tensor xv(2, 1);
                xv.data = {0.3 * t, -0.5 + 0.2 * t};
                sequence.push_back(g.input(std::move(xv)));
            }
            Var h = stack.runSequence(ctx, sequence);
            return g.lossMae(g.slice(h, 0, 1), 0.1);
        },
        1e-5, 1e-4);
}

TEST(GradCheck, FrozenParamsGetNoGradButPassThrough)
{
    Rng rng(10);
    ParamSet frozen;
    int w = frozen.add(2, 2);
    frozen[w].uniformInit(rng, 1.0);
    ParamSet trainable;
    int x = trainable.add(2, 1);
    trainable[x].uniformInit(rng, 1.0);

    Grads grads(trainable);
    Graph g;
    Var wv = g.param(frozen, w, nullptr); // frozen
    Var xv = g.param(trainable, x, &grads);
    Var loss = g.lossMse(g.slice(g.matmul(wv, xv), 0, 1), 1.0);
    g.backward(loss);

    double grad_norm = 0.0;
    for (double v : grads[x].data)
        grad_norm += std::fabs(v);
    EXPECT_GT(grad_norm, 0.0); // gradient flows through frozen weights
}

TEST(Graph, ParamNodeCaching)
{
    Rng rng(11);
    ParamSet params;
    int w = params.add(2, 2);
    params[w].uniformInit(rng, 1.0);
    Graph g;
    Var a = g.param(params, w, nullptr);
    Var b = g.param(params, w, nullptr);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(g.numCachedParams(), 1u);
    Var r0 = g.paramRow(params, w, 0, nullptr);
    Var r0_again = g.paramRow(params, w, 0, nullptr);
    Var r1 = g.paramRow(params, w, 1, nullptr);
    EXPECT_EQ(r0.id, r0_again.id);
    EXPECT_NE(r0.id, r1.id);
}

TEST(Graph, CachedParamGradAccumulatesAllUses)
{
    ParamSet params;
    int w = params.add(1, 1);
    params[w].data[0] = 2.0;
    Grads grads(params);
    Graph g;
    Var x = g.param(params, w, &grads);
    Var y = g.add(x, x); // y = 2w -> dy/dw = 2
    g.backward(g.lossMae(y, 0.0));
    EXPECT_NEAR(grads[w].data[0], 2.0, 1e-12);
}

// -------------------------------------------------------------- training

TEST(Optim, SgdSolvesLinearRegression)
{
    Rng rng(12);
    ParamSet params;
    Linear layer(params, 2, 1, rng);
    Sgd sgd(0.05);
    Grads grads(params);
    for (int step = 0; step < 600; ++step) {
        grads.zero();
        double loss_total = 0.0;
        for (int k = 0; k < 8; ++k) {
            const double x0 = rng.uniformReal(-1, 1);
            const double x1 = rng.uniformReal(-1, 1);
            const double target = 3.0 * x0 - 2.0 * x1 + 0.5;
            Graph g;
            Ctx ctx{g, params, &grads};
            Tensor xv(2, 1);
            xv.data = {x0, x1};
            Var y = layer.forward(ctx, g.input(std::move(xv)));
            Var loss = g.lossMse(y, target);
            g.backward(loss, 1.0 / 8);
            loss_total += g.scalarValue(loss);
        }
        sgd.step(params, grads);
        if (step == 599) {
            EXPECT_LT(loss_total / 8, 1e-3);
        }
    }
}

TEST(Optim, AdamFasterThanSgdOnIllConditioned)
{
    ParamSet params;
    int w = params.add(2, 1);
    params[w].data = {5.0, 5.0};
    Adam adam(0.1);
    Grads grads(params);
    for (int step = 0; step < 200; ++step) {
        grads.zero();
        // f(w) = w0^2 + 100 w1^2
        grads[w].data[0] = 2 * params[w].data[0];
        grads[w].data[1] = 200 * params[w].data[1];
        adam.step(params, grads);
    }
    EXPECT_NEAR(params[w].data[0], 0.0, 0.1);
    EXPECT_NEAR(params[w].data[1], 0.0, 0.1);
    EXPECT_EQ(adam.stepCount(), 200);
}

TEST(Grads, ClipAndNorm)
{
    ParamSet params;
    int w = params.add(2, 1);
    Grads grads(params);
    grads[w].data = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(grads.l2Norm(), 5.0);
    grads.clipL2(1.0);
    EXPECT_NEAR(grads.l2Norm(), 1.0, 1e-12);
    grads.scale(2.0);
    EXPECT_NEAR(grads.l2Norm(), 2.0, 1e-12);
}

TEST(Grads, AddFrom)
{
    ParamSet params;
    int w = params.add(2, 1);
    Grads a(params), b(params);
    a[w].data = {1.0, 2.0};
    b[w].data = {3.0, -1.0};
    a.addFrom(b);
    EXPECT_EQ(a[w].data[0], 4.0);
    EXPECT_EQ(a[w].data[1], 1.0);
}

TEST(ParamSet, SaveLoadRoundTrip)
{
    Rng rng(13);
    ParamSet params;
    int a = params.add(2, 3);
    int b = params.add(4, 1);
    params[a].uniformInit(rng, 1.0);
    params[b].uniformInit(rng, 1.0);
    const std::string blob = params.save();

    ParamSet other;
    other.add(2, 3);
    other.add(4, 1);
    other.load(blob);
    EXPECT_EQ(other[a].data, params[a].data);
    EXPECT_EQ(other[b].data, params[b].data);
    EXPECT_EQ(params.scalarCount(), 10u);
}

TEST(ParamSet, LoadRejectsShapeMismatch)
{
    ParamSet params;
    params.add(2, 2);
    ParamSet other;
    other.add(3, 2);
    EXPECT_THROW(other.load(params.save()), std::runtime_error);
}

} // namespace
} // namespace difftune::nn
