/**
 * @file
 * Tests for the IACA-style analytical model.
 */

#include <gtest/gtest.h>

#include "analytical/iaca.hh"
#include "isa/parse.hh"

namespace difftune::analytical
{
namespace
{

using isa::parseBlock;

TEST(XIaca, IntelOnly)
{
    EXPECT_TRUE(XIaca::supports(hw::Uarch::IvyBridge));
    EXPECT_TRUE(XIaca::supports(hw::Uarch::Haswell));
    EXPECT_TRUE(XIaca::supports(hw::Uarch::Skylake));
    EXPECT_FALSE(XIaca::supports(hw::Uarch::Zen2));
    EXPECT_THROW(XIaca model(hw::Uarch::Zen2), std::runtime_error);
}

TEST(XIaca, EmptyBlockZero)
{
    XIaca model(hw::Uarch::Haswell);
    EXPECT_EQ(model.timing(isa::BasicBlock{}), 0.0);
}

TEST(XIaca, FrontendBound)
{
    XIaca model(hw::Uarch::Haswell);
    // 4 independent single-uop instructions / rename width 4.
    auto block = parseBlock(
        "MOV32ri $1, %ebx\nMOV32ri $2, %ecx\n"
        "MOV32ri $3, %edi\nMOV32ri $4, %esi\n");
    EXPECT_NEAR(model.timing(block), 1.0, 0.1);
}

TEST(XIaca, StoreBound)
{
    XIaca model(hw::Uarch::Haswell);
    auto block = parseBlock(
        "MOV64mr %rbx, 0(%rsi)\nMOV64mr %rcx, 8(%rsi)\n");
    EXPECT_NEAR(model.timing(block), 2.0, 0.2);
}

TEST(XIaca, DependenceChainBound)
{
    XIaca model(hw::Uarch::Haswell);
    auto chase = parseBlock("MOV64rm 0(%r11), %r11\n");
    EXPECT_NEAR(model.timing(chase), 4.0, 0.3);
    auto chain = parseBlock("IMUL64rr %rbx, %rbx\n");
    EXPECT_NEAR(model.timing(chain), 4.0, 0.3); // 64-bit imul = 4
}

TEST(XIaca, KnowsZeroIdioms)
{
    XIaca model(hw::Uarch::Haswell);
    auto idiom = parseBlock("XOR32rr %ebx, %ebx\n");
    auto chain = parseBlock("XOR32rr %ebx, %ecx\n");
    EXPECT_LT(model.timing(idiom), 0.5);
    EXPECT_NEAR(model.timing(chain), 1.0, 0.1);
}

TEST(XIaca, KnowsStoreForwardChains)
{
    XIaca model(hw::Uarch::Haswell);
    auto rmw = parseBlock("ADD32mr 16(%rbp), %eax\n");
    EXPECT_GT(model.timing(rmw), 4.0);
}

TEST(XIaca, DividerPressure)
{
    XIaca model(hw::Uarch::Haswell);
    auto block = parseBlock("DIV32r %rsi\n");
    EXPECT_GT(model.timing(block), 5.0);
}

TEST(XIaca, SkylakeDiffersFromHaswell)
{
    auto block = parseBlock(
        "VADDPS128rr %xmm1, %xmm1, %xmm1\n"); // FP-add chain
    XIaca hsw(hw::Uarch::Haswell), skl(hw::Uarch::Skylake);
    EXPECT_NE(hsw.timing(block), skl.timing(block));
}

TEST(XIaca, TimingIsMaxOfBounds)
{
    // Mixed block: timing at least each individual bound.
    XIaca model(hw::Uarch::Haswell);
    auto block = parseBlock(
        "MOV64mr %rbx, 0(%rsi)\n"
        "IMUL64rr %rbx, %rbx\n"
        "NOP\nNOP\n");
    const double t = model.timing(block);
    EXPECT_GE(t, 1.0);  // store bound
    EXPECT_GE(t, 4.0 / 4.0); // frontend
}

} // namespace
} // namespace difftune::analytical
