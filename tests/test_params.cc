/**
 * @file
 * Tests for parameter tables: flattening, extraction, constraints,
 * serialization, masks and sampling distributions.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/isa.hh"
#include "params/param_table.hh"
#include "params/sampling.hh"

namespace difftune::params
{
namespace
{

size_t
numOps()
{
    return isa::theIsa().numOpcodes();
}

TEST(ParamTable, FlattenRoundTrip)
{
    ParamTable table(numOps());
    table.dispatchWidth = 6;
    table.reorderBufferSize = 100;
    table.perOpcode[3].writeLatency = 4;
    table.perOpcode[3].portMap[7] = 2;
    table.perOpcode[10].readAdvance[1] = 5;

    auto flat = table.flatten();
    EXPECT_EQ(flat.size(), table.flatSize());
    ParamTable back = ParamTable::unflatten(flat);
    EXPECT_EQ(back.numOpcodes(), table.numOpcodes());
    EXPECT_EQ(back.dispatchWidth, 6);
    EXPECT_EQ(back.perOpcode[3].writeLatency, 4);
    EXPECT_EQ(back.perOpcode[3].portMap[7], 2);
    EXPECT_EQ(back.perOpcode[10].readAdvance[1], 5);
}

TEST(ParamTable, FlatSize)
{
    ParamTable table(numOps());
    EXPECT_EQ(table.flatSize(), numGlobalParams + numOps() * 15u);
}

TEST(ParamTable, ExtractRoundsAndClamps)
{
    ParamTable table(2);
    table.dispatchWidth = -3.2;
    table.reorderBufferSize = 80.6;
    table.perOpcode[0].numMicroOps = 0.2;
    table.perOpcode[0].writeLatency = 2.5;
    table.perOpcode[1].portMap[0] = -0.4;

    ParamTable valid = table.extractToValid();
    EXPECT_EQ(valid.dispatchWidth, 1.0);   // clamped to >= 1
    EXPECT_EQ(valid.reorderBufferSize, 81.0);
    EXPECT_EQ(valid.perOpcode[0].numMicroOps, 1.0);
    EXPECT_EQ(valid.perOpcode[0].writeLatency, 3.0); // round-half-up
    EXPECT_EQ(valid.perOpcode[1].portMap[0], 0.0);
}

TEST(ParamTable, IntegerAccessorsClamp)
{
    ParamTable table(1);
    table.perOpcode[0].numMicroOps = -5.0;
    table.perOpcode[0].writeLatency = 2.4;
    table.dispatchWidth = 0.0;
    EXPECT_EQ(table.uops(0), 1);
    EXPECT_EQ(table.latency(0), 2);
    EXPECT_EQ(table.dispatch(), 1);
}

TEST(ParamTable, SaveLoadRoundTrip)
{
    ParamTable table(5);
    table.dispatchWidth = 7;
    table.perOpcode[2].writeLatency = 3.25;
    table.perOpcode[4].portMap[9] = 1;
    ParamTable back = ParamTable::load(table.save());
    EXPECT_EQ(back.numOpcodes(), 5u);
    EXPECT_EQ(back.dispatchWidth, 7);
    EXPECT_EQ(back.perOpcode[2].writeLatency, 3.25);
    EXPECT_EQ(back.perOpcode[4].portMap[9], 1);
}

TEST(ParamTable, LoadRejectsGarbage)
{
    EXPECT_THROW(ParamTable::load("not a table"), std::runtime_error);
}

TEST(ParamTable, Log10SpaceSizeGrowsWithValues)
{
    ParamTable small(10), large(10);
    for (auto &inst : large.perOpcode) {
        inst.writeLatency = 9;
        inst.numMicroOps = 9;
    }
    EXPECT_GT(large.log10SpaceSize(), small.log10SpaceSize());
}

TEST(ParamTable, SpaceSizeMatchesPaperScale)
{
    // The default Haswell-like table should induce an astronomically
    // large configuration space, as in the paper's footnote 2
    // (10^19336 for llvm-mca; ours is smaller but still enormous).
    ParamTable table(numOps());
    for (auto &inst : table.perOpcode) {
        inst.numMicroOps = 2;
        inst.writeLatency = 3;
        inst.portMap[0] = 1;
    }
    table.reorderBufferSize = 192;
    EXPECT_GT(table.log10SpaceSize(), 100.0);
}

TEST(FlatLowerBounds, MatchTableII)
{
    auto bounds = flatLowerBounds(2);
    EXPECT_EQ(bounds.size(), 2u + 2u * 15u);
    EXPECT_EQ(bounds[0], 1.0); // DispatchWidth >= 1
    EXPECT_EQ(bounds[1], 1.0); // ReorderBufferSize >= 1
    EXPECT_EQ(bounds[2], 1.0); // NumMicroOps >= 1
    EXPECT_EQ(bounds[3], 0.0); // WriteLatency >= 0
}

TEST(ParamMask, FlatLayout)
{
    auto mask = ParamMask::writeLatencyOnly().flat(2);
    EXPECT_FALSE(mask[0]); // globals
    EXPECT_FALSE(mask[2]); // uops
    EXPECT_TRUE(mask[3]);  // write latency
    EXPECT_FALSE(mask[4]); // read advance
}

TEST(ParamMask, ApplyMaskRestoresBase)
{
    ParamTable base(3), table(3);
    base.dispatchWidth = 4;
    base.perOpcode[1].numMicroOps = 2;
    table.dispatchWidth = 9;
    table.perOpcode[1].numMicroOps = 7;
    table.perOpcode[1].writeLatency = 5;

    applyMask(table, base, ParamMask::writeLatencyOnly());
    EXPECT_EQ(table.dispatchWidth, 4);
    EXPECT_EQ(table.perOpcode[1].numMicroOps, 2);
    EXPECT_EQ(table.perOpcode[1].writeLatency, 5); // kept
}

TEST(ParamMask, UsimMask)
{
    ParamMask mask = ParamMask::usim();
    EXPECT_TRUE(mask.writeLatency);
    EXPECT_TRUE(mask.portMap);
    EXPECT_FALSE(mask.numMicroOps);
    EXPECT_FALSE(mask.globals);
}

// ----------------------------------------------------------- sampling

class SamplingTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SamplingTest, FullDistRespectsPaperRanges)
{
    Rng rng(GetParam());
    ParamTable base(numOps());
    ParamTable theta = SamplingDist::full().sample(rng, base);

    EXPECT_GE(theta.dispatchWidth, 1);
    EXPECT_LE(theta.dispatchWidth, 10);
    EXPECT_GE(theta.reorderBufferSize, 50);
    EXPECT_LE(theta.reorderBufferSize, 250);
    for (const auto &inst : theta.perOpcode) {
        EXPECT_GE(inst.writeLatency, 0);
        EXPECT_LE(inst.writeLatency, 5);
        EXPECT_GE(inst.numMicroOps, 1);
        EXPECT_LE(inst.numMicroOps, 10);
        int ports_used = 0;
        for (double pc : inst.portMap) {
            EXPECT_GE(pc, 0);
            EXPECT_LE(pc, 2);
            ports_used += pc > 0;
        }
        EXPECT_LE(ports_used, 2);
        for (double ra : inst.readAdvance) {
            EXPECT_GE(ra, 0);
            EXPECT_LE(ra, 5);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(Sampling, WriteLatencyOnlyKeepsBase)
{
    Rng rng(3);
    ParamTable base(numOps());
    base.dispatchWidth = 4;
    base.perOpcode[5].numMicroOps = 3;
    base.perOpcode[5].portMap[2] = 2;

    auto dist = SamplingDist::writeLatencyOnly();
    ParamTable theta = dist.sample(rng, base);
    EXPECT_EQ(theta.dispatchWidth, 4);
    EXPECT_EQ(theta.perOpcode[5].numMicroOps, 3);
    EXPECT_EQ(theta.perOpcode[5].portMap[2], 2);
    // WriteLatency resampled on {0..10}.
    bool any_large = false;
    for (const auto &inst : theta.perOpcode) {
        EXPECT_LE(inst.writeLatency, 10);
        any_large = any_large || inst.writeLatency > 5;
    }
    EXPECT_TRUE(any_large);
}

TEST(Sampling, Deterministic)
{
    ParamTable base(numOps());
    Rng a(9), b(9);
    auto ta = SamplingDist::full().sample(a, base);
    auto tb = SamplingDist::full().sample(b, base);
    EXPECT_EQ(ta.flatten(), tb.flatten());
}

TEST(Sampling, CoversDispatchRange)
{
    ParamTable base(numOps());
    Rng rng(17);
    std::set<int> widths;
    for (int i = 0; i < 200; ++i)
        widths.insert(
            int(SamplingDist::full().sample(rng, base).dispatchWidth));
    EXPECT_GE(widths.size(), 9u);
}

} // namespace
} // namespace difftune::params
