/**
 * @file
 * Tests for the reference-hardware substrate: per-uarch configs, the
 * instruction timing model, RefMachine semantics (the canonical
 * case-study blocks) and the derived default tables.
 */

#include <gtest/gtest.h>

#include "hw/default_table.hh"
#include "hw/inst_model.hh"
#include "hw/ref_machine.hh"
#include "isa/parse.hh"

namespace difftune::hw
{
namespace
{

using isa::parseBlock;

isa::OpcodeId
op(const char *name)
{
    auto id = isa::theIsa().opcodeByName(name);
    EXPECT_NE(id, isa::invalidOpcode);
    return id;
}

TEST(Uarch, AllFourPresent)
{
    EXPECT_EQ(allUarches().size(), 4u);
    EXPECT_STREQ(uarchName(Uarch::Haswell), "Haswell");
    EXPECT_TRUE(isIntel(Uarch::Skylake));
    EXPECT_FALSE(isIntel(Uarch::Zen2));
}

TEST(Uarch, ConfigsDiffer)
{
    const auto &hsw = uarchConfig(Uarch::Haswell);
    const auto &zen = uarchConfig(Uarch::Zen2);
    EXPECT_NE(hsw.renameWidth, zen.renameWidth);
    EXPECT_NE(hsw.measurementSeed, zen.measurementSeed);
}

TEST(InstModel, AluLatencyIsOne)
{
    const auto &cfg = uarchConfig(Uarch::Haswell);
    EXPECT_EQ(instTiming(cfg, op("ADD32rr")).execLatency, 1);
    EXPECT_EQ(instTiming(cfg, op("AND64rr")).execLatency, 1);
}

TEST(InstModel, IntegerVectorFasterThanFp)
{
    const auto &cfg = uarchConfig(Uarch::Haswell);
    EXPECT_EQ(instTiming(cfg, op("VPADDD128rr")).execLatency, 1);
    EXPECT_EQ(instTiming(cfg, op("VADDPS128rr")).execLatency, 3);
}

TEST(InstModel, VpmulldIsSlowOnIntel)
{
    EXPECT_EQ(instTiming(uarchConfig(Uarch::Haswell),
                         op("VPMULLD128rr"))
                  .execLatency,
              10);
    EXPECT_EQ(
        instTiming(uarchConfig(Uarch::Zen2), op("VPMULLD128rr"))
            .execLatency,
        4);
}

TEST(InstModel, Width64MulPaysExtra)
{
    const auto &cfg = uarchConfig(Uarch::Haswell);
    EXPECT_GT(instTiming(cfg, op("IMUL64rr")).execLatency,
              instTiming(cfg, op("IMUL32rr")).execLatency);
}

TEST(InstModel, UopCounts)
{
    const auto &cfg = uarchConfig(Uarch::Haswell);
    EXPECT_EQ(instTiming(cfg, op("ADD32rr")).uops, 1);
    EXPECT_EQ(instTiming(cfg, op("ADD32rm")).uops, 2);  // load-op
    EXPECT_EQ(instTiming(cfg, op("ADD32mr")).uops, 4);  // RMW
    EXPECT_EQ(instTiming(cfg, op("MOV64rm")).uops, 1);  // pure load
    EXPECT_GT(instTiming(cfg, op("DIV64r")).uops, 5);   // microcoded
}

TEST(InstModel, IvyBridge256BitPenalty)
{
    const auto &ivb = uarchConfig(Uarch::IvyBridge);
    const auto &hsw = uarchConfig(Uarch::Haswell);
    EXPECT_GT(instTiming(ivb, op("VADDPS256rr")).occupancy,
              instTiming(hsw, op("VADDPS256rr")).occupancy);
    EXPECT_GT(instTiming(ivb, op("VADDPS256rr")).uops,
              instTiming(ivb, op("VADDPS128rr")).uops);
}

TEST(InstModel, OnlyPureMovesEliminable)
{
    const auto &cfg = uarchConfig(Uarch::Haswell);
    EXPECT_TRUE(instTiming(cfg, op("MOV64rr")).eliminable);
    EXPECT_TRUE(instTiming(cfg, op("VMOVAPS128rr")).eliminable);
    EXPECT_FALSE(instTiming(cfg, op("MOVSX64rr32")).eliminable);
    EXPECT_FALSE(instTiming(cfg, op("MOV64rm")).eliminable);
}

// ------------------------------------------------------------ RefMachine

TEST(RefMachine, EmptyBlockZero)
{
    RefMachine machine(Uarch::Haswell);
    EXPECT_EQ(machine.idealTiming(isa::BasicBlock{}), 0.0);
    EXPECT_EQ(machine.measure(isa::BasicBlock{}), 0.0);
}

TEST(RefMachine, PointerChasePaysL1Latency)
{
    RefMachine machine(Uarch::Haswell);
    auto chase = parseBlock("MOV64rm 0(%r11), %r11\n");
    EXPECT_NEAR(machine.idealTiming(chase), 4.0, 0.1);
}

TEST(RefMachine, PushTestBlockIsOneCycle)
{
    // The PUSH64r case study: true timing 1.01 cycles (the stack
    // engine makes the rsp chain free; the store port binds at 1).
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("PUSH64r %rbx\nTEST32rr %r8d, %r8d\n");
    EXPECT_NEAR(machine.idealTiming(block), 1.0, 0.1);
}

TEST(RefMachine, ZeroIdiomEliminated)
{
    // The XOR32rr case study: true timing 0.31 cycles.
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("XOR32rr %r13d, %r13d\n");
    EXPECT_NEAR(machine.idealTiming(block), 0.31, 0.05);
}

TEST(RefMachine, NonIdiomXorChains)
{
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("XOR32rr %r13d, %r14d\n");
    EXPECT_NEAR(machine.idealTiming(block), 1.0, 0.1);
}

TEST(RefMachine, MemoryRmwFormsChain)
{
    // The ADD32mr case study: ~6 cycles through the load -> add ->
    // store -> forward cycle (paper: 5.97 on real Haswell).
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("ADD32mr 16(%rbp), %eax\n");
    EXPECT_NEAR(machine.idealTiming(block), 6.0, 0.5);
}

TEST(RefMachine, DisjointAddressesDoNotChain)
{
    RefMachine machine(Uarch::Haswell);
    auto chained = parseBlock(
        "MOV64mr %rbx, 0(%rsi)\nMOV64rm 0(%rsi), %rcx\n");
    auto disjoint = parseBlock(
        "MOV64mr %rbx, 0(%rsi)\nMOV64rm 64(%rsi), %rcx\n");
    EXPECT_GT(machine.idealTiming(chained) + 0.5,
              machine.idealTiming(disjoint));
}

TEST(RefMachine, MoveEliminationFreesChain)
{
    RefMachine machine(Uarch::Haswell);
    // mov rr inside an add chain: eliminated, so chain is 1/iter.
    auto block = parseBlock(
        "ADD64rr %rbx, %rcx\nMOV64rr %rcx, %rbx\n");
    EXPECT_NEAR(machine.idealTiming(block), 1.0, 0.15);
}

TEST(RefMachine, DividerNotPipelined)
{
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("DIV32r %rsi\n");
    // Divider occupancy ~10: independent divides throttle at it.
    EXPECT_GT(machine.idealTiming(block), 5.0);
}

TEST(RefMachine, MeasurementDeterministicPerBlock)
{
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    EXPECT_EQ(machine.measure(block), machine.measure(block));
}

TEST(RefMachine, MeasurementNoiseIsSmallAndCentered)
{
    RefMachine machine(Uarch::Haswell);
    auto block = parseBlock("ADD32rr %ebx, %ecx\n");
    const double ideal = machine.idealTiming(block);
    const double measured = machine.measure(block);
    EXPECT_NEAR(measured / ideal, 1.0, 0.15);
}

TEST(RefMachine, UarchesProduceDifferentTimings)
{
    auto block = parseBlock(
        "VADDPS256rr %ymm1, %ymm2, %ymm1\n"
        "VMULPS256rr %ymm1, %ymm3, %ymm4\n");
    const double ivb =
        RefMachine(Uarch::IvyBridge).idealTiming(block);
    const double skl = RefMachine(Uarch::Skylake).idealTiming(block);
    EXPECT_NE(ivb, skl);
}

TEST(RefMachine, RenameWidthBoundsThroughput)
{
    // NOPs consume rename bandwidth but no execution units, so a
    // NOP-only block is purely rename-bound: 6/4 on Haswell, 6/5 on
    // the wider Zen 2.
    auto block = parseBlock("NOP\nNOP\nNOP\nNOP\nNOP\nNOP\n");
    RefMachine hsw(Uarch::Haswell); // rename 4
    RefMachine zen(Uarch::Zen2);    // rename 5
    EXPECT_NEAR(hsw.idealTiming(block), 6.0 / 4.0, 0.2);
    EXPECT_LT(zen.idealTiming(block), hsw.idealTiming(block));
}

// --------------------------------------------------------- default table

TEST(DefaultTable, GlobalsMatchDocumentation)
{
    auto hsw = defaultTable(Uarch::Haswell);
    EXPECT_EQ(hsw.dispatch(), 4);
    EXPECT_EQ(hsw.robSize(), 192);
    EXPECT_EQ(defaultTable(Uarch::IvyBridge).robSize(), 168);
    EXPECT_EQ(defaultTable(Uarch::Skylake).robSize(), 224);
}

TEST(DefaultTable, PortGroupsAreZeroed)
{
    // Multi-unit classes (the port groups the paper zeroes) have an
    // all-zero PortMap; single-unit resources keep their port.
    auto table = defaultTable(Uarch::Haswell);
    auto portsOf = [&](const char *name) {
        int used = 0;
        for (int p = 0; p < params::numPorts; ++p)
            used += table.portCycles(op(name), p) > 0;
        return used;
    };
    EXPECT_EQ(portsOf("ADD32rr"), 0);  // 4 ALU units -> group -> 0
    EXPECT_EQ(portsOf("MOV64rm"), 0);  // 2 load ports -> group -> 0
    EXPECT_GE(portsOf("IMUL32rr"), 1); // single multiplier
    EXPECT_GE(portsOf("PUSH64r"), 1);  // store port 4
    EXPECT_GT(table.portCycles(op("PUSH64r"), 4), 0);
}

TEST(DefaultTable, StoreOpsOccupyPort4)
{
    auto table = defaultTable(Uarch::Haswell);
    EXPECT_GT(table.portCycles(op("MOV32mr"), 4), 0);
    EXPECT_GT(table.portCycles(op("ADD32mr"), 4), 0);
}

TEST(DefaultTable, PushDocumentedTwoCycles)
{
    // The PUSH64r case study: default WriteLatency 2.
    auto table = defaultTable(Uarch::Haswell);
    EXPECT_EQ(table.latency(op("PUSH64r")), 2);
}

TEST(DefaultTable, FoldedLoadsGetReadAdvance)
{
    auto table = defaultTable(Uarch::Haswell);
    // Load-op: first (value) operand advanced by the L1 latency.
    EXPECT_EQ(table.readAdvanceCycles(op("ADD64rm"), 0), 4);
    // Pure loads and rr forms are not advanced.
    EXPECT_EQ(table.readAdvanceCycles(op("MOV64rm"), 0), 0);
}

TEST(DefaultTable, LoadLatencyIncludesL1)
{
    auto table = defaultTable(Uarch::Haswell);
    EXPECT_GE(table.latency(op("MOV64rm")), 3);
    EXPECT_GE(table.latency(op("ADD64rm")), 4);
    // RMW documented as load + op + store commit (the 7-cycle
    // ADD32mr default of the case study, +- doc jitter).
    EXPECT_GE(table.latency(op("ADD32mr")), 6);
}

TEST(DefaultTable, DeterministicPerUarch)
{
    auto a = defaultTable(Uarch::Skylake);
    auto b = defaultTable(Uarch::Skylake);
    EXPECT_EQ(a.flatten(), b.flatten());
}

TEST(DefaultTable, ZenTablesNoisier)
{
    // The AMD target uses mismatched (znver1-style) documentation:
    // more opcodes should deviate from Intel-style derivation.
    auto hsw = defaultTable(Uarch::Haswell);
    auto zen = defaultTable(Uarch::Zen2);
    int differing = 0;
    for (size_t i = 0; i < hsw.numOpcodes(); ++i)
        differing += hsw.perOpcode[i].writeLatency !=
                     zen.perOpcode[i].writeLatency;
    EXPECT_GT(differing, 20);
}

} // namespace
} // namespace difftune::hw
